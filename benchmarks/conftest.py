"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artifacts (or
a supporting ablation).  Since pytest captures stdout, each bench also
writes its regenerated table to ``benchmarks/results/<name>.txt`` so the
artifacts survive a plain ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_result():
    """``record_result(name, text)`` — print and persist an artifact."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n=== {name} ===")
        print(text)

    return _record


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Logical-to-real scale used by the simulation-heavy benchmarks.

    1024 keeps real data at ~3.4 MB for the 3.5 GB experiments: heavy
    enough to exercise every real code path, light enough for CI.
    """
    return 1024.0
