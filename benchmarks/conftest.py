"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artifacts (or
a supporting ablation).  Since pytest captures stdout, each bench also
writes its regenerated table to ``benchmarks/results/<name>.txt`` so the
artifacts survive a plain ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import collections
import json
import pathlib
import time

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_DIR = pathlib.Path(__file__).parent

#: Per-module wall-clock of the bench items that actually ran, written
#: to ``results/bench_wallclock.json`` at session end so CI can hold the
#: harness against the committed baseline (``check_wallclock.py``).
_module_wallclock: dict[str, float] = collections.defaultdict(float)


def _calibration_seconds() -> float:
    """Wall-clock of a fixed pure-python busy loop.

    A machine-speed yardstick stored next to the measured totals:
    ``check_wallclock.py`` scales the baseline by the calibration ratio
    so a slower CI runner is not mistaken for a code regression.
    """
    start = time.perf_counter()
    total = 0
    for value in range(2_000_000):
        total += value
    assert total > 0
    return time.perf_counter() - start


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_protocol(item, nextitem):
    start = time.perf_counter()
    yield
    path = pathlib.Path(str(item.fspath))
    # This conftest is loaded whenever benchmarks/ is collected, but the
    # hook then fires for *every* item in the run — only bench modules
    # belong in the bench wall-clock.
    if path.is_relative_to(BENCH_DIR):
        _module_wallclock[path.stem] += time.perf_counter() - start


def pytest_sessionfinish(session, exitstatus):
    if session.config.option.collectonly or not _module_wallclock:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    modules = {name: round(seconds, 4) for name, seconds in sorted(_module_wallclock.items())}
    payload = {
        "total_s": round(sum(_module_wallclock.values()), 4),
        "modules": modules,
        "calibration_s": round(_calibration_seconds(), 4),
    }
    (RESULTS_DIR / "bench_wallclock.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


@pytest.fixture(scope="session")
def record_result():
    """``record_result(name, text)`` — print and persist an artifact."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n=== {name} ===")
        print(text)

    return _record


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Logical-to-real scale used by the simulation-heavy benchmarks.

    1024 keeps real data at ~3.4 MB for the 3.5 GB experiments: heavy
    enough to exercise every real code path, light enough for CI.
    """
    return 1024.0
