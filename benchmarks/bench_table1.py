"""Benchmark: regenerate the paper's Table 1.

Paper values (3.5 GB input, parallelism 8):

    purely serverless:  83.32 s   $0.008
    VM-supported:      142.77 s   $0.010

We assert the *shape*: the purely serverless pipeline wins on latency by
roughly the paper's factor while both configurations cost the same
order of magnitude.  The wall-clock measured by pytest-benchmark is the
simulator's own cost of regenerating the table.
"""

import pytest

from repro.core import ExperimentConfig, run_table1


@pytest.fixture(scope="module")
def table1_result(bench_scale):
    return run_table1(ExperimentConfig(logical_scale=bench_scale))


def test_table1_regeneration(benchmark, record_result, bench_scale):
    result = benchmark.pedantic(
        lambda: run_table1(ExperimentConfig(logical_scale=bench_scale)),
        rounds=1,
        iterations=1,
    )
    record_result("table1", result.to_table())

    # --- shape assertions against the paper ---------------------------
    assert result.serverless.latency_s < result.vm.latency_s
    assert result.latency_speedup == pytest.approx(142.77 / 83.32, rel=0.25)
    assert result.serverless.latency_s == pytest.approx(83.32, rel=0.2)
    assert result.vm.latency_s == pytest.approx(142.77, rel=0.2)
    assert 0.5 < result.cost_ratio < 1.5  # "similar costs"


def test_table1_stage_breakdowns(benchmark, table1_result, record_result):
    # Rendering is the benchmarked operation; the artifacts are the point.
    serverless_render = benchmark(
        table1_result.serverless.workflow.tracker.render
    )
    record_result("table1_breakdown_serverless", serverless_render)
    record_result(
        "table1_breakdown_vm",
        table1_result.vm.workflow.tracker.render(),
    )
    # VM provisioning dominates the hybrid sort stage.
    vm_sort = table1_result.vm.stage_durations["sort"]
    boot = table1_result.vm.cloud.profile.vm.boot.mean
    assert vm_sort > boot * 0.8
