"""Benchmark S1: the worker-count U-curve behind the paper's thesis.

"Object storage performs well when the appropriate number of functions
is used in I/O-bound stages."  The sweep runs the *simulated* shuffle at
several worker counts and checks that (a) the latency curve is
U-shaped, and (b) the analytic Primula planner's choice is competitive
with the best measured count.
"""

import pytest

from repro.core import ExperimentConfig
from repro.experiments import format_rows, sweep_workers

WORKER_COUNTS = (2, 4, 8, 16, 32, 64)


@pytest.fixture(scope="module")
def sweep_rows(bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    return sweep_workers(config, worker_counts=WORKER_COUNTS)


def test_worker_sweep(benchmark, record_result, bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    rows = benchmark.pedantic(
        lambda: sweep_workers(config, worker_counts=WORKER_COUNTS),
        rounds=1,
        iterations=1,
    )
    headers = list(rows[0].keys())
    record_result(
        "s1_worker_sweep",
        format_rows(headers, [[row[h] for h in headers] for row in rows],
                    title="S1: sort latency vs worker count (3.5 GB)"),
    )

    latency = {row["workers"]: row["sort_latency_s"] for row in rows}
    best = min(latency, key=latency.get)
    # U-shape: both extremes are clearly worse than the best point.
    assert latency[WORKER_COUNTS[0]] > 1.5 * latency[best]
    assert latency[WORKER_COUNTS[-1]] > latency[best]
    # Interior optimum: the paper's "appropriate number of functions".
    assert WORKER_COUNTS[0] < best <= WORKER_COUNTS[-1]


def test_planner_choice_is_competitive(sweep_rows):
    latency = {row["workers"]: row["sort_latency_s"] for row in sweep_rows}
    planned = sweep_rows[0]["planner_optimum"]
    best_measured = min(latency.values())
    # The planner's pick (evaluated on the measured curve when present,
    # else its nearest measured neighbour) is within 40% of the best.
    nearest = min(latency, key=lambda workers: abs(workers - planned))
    assert latency[nearest] <= best_measured * 1.4


def test_planner_prediction_tracks_measurement(sweep_rows):
    """Predicted and measured latencies agree within 2x at every point
    (the model is analytic, not fitted per point)."""
    for row in sweep_rows:
        ratio = row["sort_latency_s"] / row["planner_predicted_s"]
        assert 0.5 < ratio < 2.0, f"at W={row['workers']}: ratio {ratio:.2f}"
