"""Benchmark S12: mid-stream re-selection vs every static decision.

The S12 scenario is the one no pre-flight decision can win: an
object-storage brownout in effect at launch that clears mid-run (after
every static operator has committed its whole-split reads into it),
plus a ``late-hot`` key distribution whose hot key hides in the
stream's tail where pre-flight sampling cannot see it.  The online
operator must strictly beat all eight static (substrate × mode)
decisions on the planner's own score, with at least one mid-stream
substrate switch, at byte parity — moving bytes differently must never
change them.
"""

import pytest

from repro.core import ExperimentConfig
from repro.experiments import format_rows
from repro.experiments.sweeps import sweep_online


@pytest.fixture(scope="module")
def online_rows(bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    return sweep_online(config)


def test_online_sweep(benchmark, record_result, online_rows):
    rows = benchmark.pedantic(lambda: online_rows, rounds=1, iterations=1)
    timeline: list[str] = []
    table_rows = []
    for row in rows:
        row = dict(row)
        lines = row.pop("_timeline", None)
        if lines and not timeline:
            timeline = lines
        table_rows.append(row)
    headers = list(table_rows[0].keys())
    text = format_rows(
        headers,
        [[row[h] for h in headers] for row in table_rows],
        title="S12: online mid-stream re-selection vs static decisions (3.5 GB)",
    )
    text += "\n\nonline decision timeline:\n" + "\n".join(
        f"  {line}" for line in timeline
    )
    record_result("s12_online", text)

    online = next(
        row for row in rows
        if row["scenario"] == "shift" and row["strategy"] == "online"
    )
    statics = [row for row in rows if row["strategy"] != "online"]
    assert len(statics) == 8  # 4 substrates x 2 modes

    # Online strictly beats every static decision on the planner's score.
    for static in statics:
        assert online["score_usd"] < static["score_usd"], (
            static["strategy"], static["mode"])

    # ... and it did so by actually re-deciding mid-stream.
    assert online["switches"] >= 1

    # Byte parity: re-selection moves bytes, never changes them.
    digests = {row["output_digest"] for row in rows}
    assert len(digests) == 1, digests


def test_online_reroute_row(online_rows):
    reroute = next(
        row for row in online_rows if row["scenario"] == "reroute"
    )
    # The late hot key must be absorbed by chunk-grain rerouting on the
    # pinned sharded fleet...
    assert reroute["reroutes"] >= 1
    # ... without any shard ever exceeding its usable relay memory.
    assert 0.0 < reroute["peak_fill"] <= 1.0
    # The pinned-fleet run still reproduces the exact same output.
    shift_online = online_rows[0]
    assert reroute["output_digest"] == shift_online["output_digest"]


def test_online_timeline_is_a_timeline(online_rows):
    online = online_rows[0]
    lines = online["_timeline"]
    # One decision point per wave boundary, plus the initial decision.
    assert len(lines) >= 3
    assert "[initial]" in lines[0]
    assert any("SWITCH" in line for line in lines)
