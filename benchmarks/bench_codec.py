"""Benchmark S5: METHCOMP codec vs gzip (the "~10x better" claim).

The paper motivates METHCOMP with "about 10x better compression ratio
than gzip" on methylation data.  This bench measures our codec's ratio
against gzip on the synthetic methylome — and, since the codec does
*real* work, its wall-clock throughput is a genuine benchmark (not a
simulation artifact).
"""

import pytest

from repro.experiments import format_rows, sweep_codec
from repro.methcomp import MethylomeGenerator, serialize_records
from repro.methcomp.codec import compress, decompress, gzip_compress


@pytest.fixture(scope="module")
def corpus():
    return serialize_records(MethylomeGenerator(seed=2021).records(60_000))


def test_codec_ratio_table(benchmark, record_result):
    rows = benchmark.pedantic(
        lambda: sweep_codec(record_counts=(10_000, 50_000, 150_000)),
        rounds=1,
        iterations=1,
    )
    headers = list(rows[0].keys())
    record_result(
        "s5_codec_ratio",
        format_rows(headers, [[row[h] for h in headers] for row in rows],
                    title="S5: METHCOMP-style codec vs gzip"),
    )
    for row in rows:
        # Several-fold better than gzip at every size (paper: ~10x on
        # real ENCODE data; synthetic data has a higher entropy floor —
        # see EXPERIMENTS.md).
        assert row["methcomp_vs_gzip"] > 4.0
        assert row["methcomp_ratio"] > 15.0


def test_codec_encode_throughput(benchmark, corpus):
    compressed = benchmark(compress, corpus)
    assert len(compressed) < len(corpus) / 10


def test_codec_decode_throughput(benchmark, corpus):
    compressed = compress(corpus)
    restored = benchmark(decompress, compressed)
    assert restored == corpus


def test_gzip_baseline_throughput(benchmark, corpus):
    compressed = benchmark(gzip_compress, corpus)
    assert len(compressed) < len(corpus)
