"""Benchmark S15: observability overhead + exported trace artifacts.

The tracing plane claims *zero-cost-off* structurally (a disabled
tracer hands out one shared no-op span and records nothing) — the
tier-1 parity suites pin that byte-for-byte.  This bench quantifies
the *on* cost instead: the same S8-style ``auto_sort`` pipeline runs
with the full observability plane enabled (spans + timeline) and
disabled, min-of-``ROUNDS`` wall-clock each, and the traced run must
stay within ``OVERHEAD_GATE`` of the plain one while producing the
identical simulated outcome.

The second test regenerates the CI observability artifacts: a
Perfetto-loadable Chrome trace (``results/s8_trace.json``) and a
Prometheus text snapshot (``results/s8_metrics.txt``) of one traced
pipeline, with the exporter's own validation and SLO gate holding.
"""

import json
import pathlib
import time

from repro.cloud.environment import Cloud
from repro.core.calibration import ExperimentConfig
from repro.core.experiment import run_pipeline
from repro.core.pipelines import AUTO_SUPPORTED
from repro.obs.cli import export_metrics, export_trace

RESULTS = pathlib.Path(__file__).parent / "results"
ROUNDS = 3
SCALE = 256.0
SEED = 2021
#: Traced wall-clock must stay within this factor of untraced.
OVERHEAD_GATE = 1.05


def _run_once(observed):
    from repro.sim import Simulator

    config = ExperimentConfig(logical_scale=SCALE, seed=SEED)
    cloud = Cloud(
        Simulator(seed=config.seed, trace=observed, spans=observed),
        config.make_profile(),
    )
    start = time.perf_counter()
    run = run_pipeline(config, AUTO_SUPPORTED, cloud=cloud)
    elapsed = time.perf_counter() - start
    return run, cloud, elapsed


def _best_of(observed):
    best_run = best_cloud = None
    best_s = float("inf")
    for _ in range(ROUNDS):
        run, cloud, elapsed = _run_once(observed)
        if elapsed < best_s:
            best_run, best_cloud, best_s = run, cloud, elapsed
    return best_run, best_cloud, best_s


def test_tracing_overhead_is_bounded(record_result):
    traced_run, traced_cloud, traced_s = _best_of(True)
    plain_run, _plain_cloud, plain_s = _best_of(False)
    overhead = traced_s / plain_s

    tracer = traced_cloud.sim.tracer
    lines = [
        "S15: observability overhead (auto_sort pipeline, min of "
        f"{ROUNDS} rounds)",
        f"{'mode':<12} {'wall_s':>8} {'spans':>7} {'timeline':>9}",
        "-" * 40,
        f"{'traced':<12} {traced_s:>8.3f} {len(tracer.spans):>7} "
        f"{len(traced_cloud.sim.timeline.records):>9}",
        f"{'plain':<12} {plain_s:>8.3f} {0:>7} {0:>9}",
        "-" * 40,
        f"overhead: {overhead:.3f}x (gate <= {OVERHEAD_GATE:.2f}x)",
    ]
    record_result("s15_obs", "\n".join(lines))

    # The traced run is a *view*, never a perturbation: identical
    # simulated outcome with the plane on and off.
    assert traced_run.latency_s == plain_run.latency_s
    assert traced_run.cost_usd == plain_run.cost_usd
    assert traced_run.stage_durations == plain_run.stage_durations

    # The trace itself is well-formed and non-trivial.
    assert tracer.validate() == []
    assert len(tracer.spans) > 30

    assert overhead <= OVERHEAD_GATE, (
        f"tracing overhead {overhead:.3f}x exceeds {OVERHEAD_GATE:.2f}x"
    )


def test_trace_and_metrics_artifacts(record_result):
    RESULTS.mkdir(exist_ok=True)

    trace_path = RESULTS / "s8_trace.json"
    trace_summary = export_trace(str(trace_path), SCALE, SEED)
    assert trace_summary["problems"] == []
    payload = json.loads(trace_path.read_text(encoding="utf-8"))
    assert payload["traceEvents"], "empty Chrome trace"
    assert payload["displayTimeUnit"] == "ms"

    metrics_path = RESULTS / "s8_metrics.txt"
    metrics_summary = export_metrics(str(metrics_path), SCALE, SEED)
    exposition = metrics_path.read_text(encoding="utf-8")
    assert "# TYPE repro_exchange_sorts_total counter" in exposition
    assert "FAIL" not in metrics_summary["slo"]

    record_result(
        "s15_obs_artifacts",
        "\n".join(
            [
                "S15: exported observability artifacts",
                f"chrome trace:  {trace_path.name} "
                f"({trace_summary['spans']} spans, "
                f"{trace_summary['timeline_records']} timeline records, "
                f"{len(payload['traceEvents'])} events)",
                f"prometheus:    {metrics_path.name} "
                f"({metrics_summary['metrics']} metrics)",
                metrics_summary["slo"],
            ]
        ),
    )
