"""Benchmark S3: sensitivity to the object store's request-rate ceiling.

"I/O-bound stages ... can end up bottlenecking the system.  This
typically occurs due to the limited throughput of object storage
services (e.g., IBM COS only supports a few thousand operations/s)."

The sweep throttles the simulated store underneath a *naive* 32-worker
all-to-all (W² PUTs + W² GETs, no write-combining) — the configuration
the paper's warning describes.  Benchmark S7 (``bench_io_ablation``)
shows how Primula's write-combining removes this sensitivity.
"""

import pytest

from repro.core import ExperimentConfig
from repro.experiments import format_rows, sweep_storage_ops

OPS_RATES = (100, 250, 500, 1000, 3000, 8000)


def test_storage_ops_sensitivity(benchmark, record_result, bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    rows = benchmark.pedantic(
        lambda: sweep_storage_ops(
            config, ops_rates=OPS_RATES, workers=32, write_combining=False
        ),
        rounds=1,
        iterations=1,
    )
    headers = list(rows[0].keys())
    record_result(
        "s3_storage_sensitivity",
        format_rows(headers, [[row[h] for h in headers] for row in rows],
                    title="S3: naive 32-worker all-to-all vs store ops/s"),
    )

    latency = {row["ops_per_second"]: row["sort_latency_s"] for row in rows}
    # Starving the store of request throughput must hurt, materially.
    assert latency[100] > 1.3 * latency[8000]
    # Beyond a few thousand ops/s the shuffle stops caring (COS's actual
    # regime in the paper).
    assert latency[3000] < 1.15 * latency[8000]
    # Latency is monotone non-increasing in the ceiling (tolerance for
    # jitter).
    ordered = [latency[ops] for ops in OPS_RATES]
    assert all(a >= b * 0.9 for a, b in zip(ordered, ordered[1:]))
    # The naive layout really does issue ~W² requests per phase.
    assert rows[0]["requests"] > 32 * 32
