"""Benchmark S9: fault injection overhead and straggler mitigation.

Serverless fan-outs self-heal by re-invoking crashed calls and by
launching backup tasks for stragglers.  Both mechanisms trade extra
invocations (dollars) for reliability and tail latency; these rows
quantify that trade on the simulated platform.
"""

import pytest

from repro.core import ExperimentConfig
from repro.experiments import format_rows
from repro.experiments.sweeps import sweep_fault_rate, sweep_speculation


def test_fault_rate_overhead(benchmark, record_result, bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    rows = benchmark.pedantic(
        lambda: sweep_fault_rate(config),
        rounds=1,
        iterations=1,
    )
    headers = list(rows[0].keys())
    record_result(
        "s9_fault_rate",
        format_rows(headers, [[row[h] for h in headers] for row in rows],
                    title="S9a: map-job overhead vs injected crash rate"),
    )

    by_rate = {row["crash_probability"]: row for row in rows}
    baseline = by_rate[0.0]
    worst = by_rate[max(by_rate)]
    # Failures must cost something, and healing must stay lossless
    # (asserted inside the sweep itself).
    assert worst["latency_s"] > baseline["latency_s"]
    assert worst["cost_usd"] > baseline["cost_usd"]
    assert worst["crashes"] > 0
    assert baseline["crashes"] == 0
    # Every crash triggered exactly one replacement invocation.
    assert worst["invocations"] == 32 + worst["crashes"]


def test_speculation_ablation(benchmark, record_result, bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    rows = benchmark.pedantic(
        lambda: sweep_speculation(config),
        rounds=1,
        iterations=1,
    )
    headers = list(rows[0].keys())
    record_result(
        "s9_speculation",
        format_rows(headers, [[row[h] for h in headers] for row in rows],
                    title="S9b: straggler mitigation under heavy-tailed "
                          "cold starts"),
    )

    by_label = {row["speculation"]: row for row in rows}
    # Backups fire, and the job does not get slower for having them.
    assert by_label["on"]["backup_tasks"] > 0
    assert by_label["on"]["latency_s"] <= by_label["off"]["latency_s"] * 1.01
    # The mitigation is paid for in duplicate invocations.
    assert by_label["on"]["invocations"] > by_label["off"]["invocations"]
