"""Benchmark S9: fault injection overhead and straggler mitigation.

Serverless fan-outs self-heal by re-invoking crashed calls and by
launching backup tasks for stragglers.  Both mechanisms trade extra
invocations (dollars) for reliability and tail latency; these rows
quantify that trade on the simulated platform.

S9c/S9d extend both mechanisms across the four exchange substrates:
attempt-scoped cancellation (dead attempts' transfers aborted, their
relay reservations reclaimed, losers of speculative races fenced) makes
crash-retry and speculation safe on the stateful substrates too, at
byte parity with the crash-free object-storage artifact.
"""

import pytest

from repro.core import ExperimentConfig
from repro.experiments import format_rows
from repro.experiments.sweeps import (
    sweep_exchange_faults,
    sweep_exchange_speculation,
    sweep_fault_rate,
    sweep_speculation,
)


def test_fault_rate_overhead(benchmark, record_result, bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    rows = benchmark.pedantic(
        lambda: sweep_fault_rate(config),
        rounds=1,
        iterations=1,
    )
    headers = list(rows[0].keys())
    record_result(
        "s9_fault_rate",
        format_rows(headers, [[row[h] for h in headers] for row in rows],
                    title="S9a: map-job overhead vs injected crash rate"),
    )

    by_rate = {row["crash_probability"]: row for row in rows}
    baseline = by_rate[0.0]
    worst = by_rate[max(by_rate)]
    # Failures must cost something, and healing must stay lossless
    # (asserted inside the sweep itself).
    assert worst["latency_s"] > baseline["latency_s"]
    assert worst["cost_usd"] > baseline["cost_usd"]
    assert worst["crashes"] > 0
    assert baseline["crashes"] == 0
    # Every crash triggered exactly one replacement invocation.
    assert worst["invocations"] == 32 + worst["crashes"]


def test_speculation_ablation(benchmark, record_result, bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    rows = benchmark.pedantic(
        lambda: sweep_speculation(config),
        rounds=1,
        iterations=1,
    )
    headers = list(rows[0].keys())
    record_result(
        "s9_speculation",
        format_rows(headers, [[row[h] for h in headers] for row in rows],
                    title="S9b: straggler mitigation under heavy-tailed "
                          "cold starts"),
    )

    by_label = {row["speculation"]: row for row in rows}
    # Backups fire, and the job does not get slower for having them.
    assert by_label["on"]["backup_tasks"] > 0
    assert by_label["on"]["latency_s"] <= by_label["off"]["latency_s"] * 1.01
    # The mitigation is paid for in duplicate invocations.
    assert by_label["on"]["invocations"] > by_label["off"]["invocations"]


def test_exchange_fault_sweep(benchmark, record_result, bench_scale):
    """S9c: crash injection on all four substrates, relays included."""
    config = ExperimentConfig(logical_scale=bench_scale)
    rows = benchmark.pedantic(
        lambda: sweep_exchange_faults(config),
        rounds=1,
        iterations=1,
    )
    headers = list(rows[0].keys())
    record_result(
        "s9c_exchange_faults",
        format_rows(headers, [[row[h] for h in headers] for row in rows],
                    title="S9c: crash injection by exchange substrate "
                          "(byte parity asserted in-sweep)"),
    )

    # The injection bit on every substrate at the top rate...
    top = max(row["crash_probability"] for row in rows)
    for row in rows:
        if row["crash_probability"] == top:
            assert row["crashes"] > 0
            assert row["invocations"] > 40  # retries actually happened
    # ...every artifact digest is identical (the sweep asserts parity
    # internally too)...
    assert len({row["output_digest"] for row in rows}) == 1
    # ...and neither relay flavour leaks a byte of a dead attempt.
    for row in rows:
        if row["strategy"] in ("relay", "sharded-relay"):
            assert row["residual_bytes"] == 0.0


def test_exchange_speculation_sweep(benchmark, record_result, bench_scale):
    """S9d: straggler mitigation is safe on every substrate."""
    config = ExperimentConfig(logical_scale=bench_scale)
    rows = benchmark.pedantic(
        lambda: sweep_exchange_speculation(config),
        rounds=1,
        iterations=1,
    )
    headers = list(rows[0].keys())
    record_result(
        "s9d_exchange_speculation",
        format_rows(headers, [[row[h] for h in headers] for row in rows],
                    title="S9d: speculation by exchange substrate "
                          "(identical digests asserted in-sweep)"),
    )

    by_key = {(row["strategy"], row["speculation"]): row for row in rows}
    for strategy in ("objectstore", "cache", "relay", "sharded-relay"):
        on, off = by_key[(strategy, "on")], by_key[(strategy, "off")]
        # Backups fire and their losers are cancelled, not drained.
        assert on["backup_tasks"] > 0
        assert on["cancelled_attempts"] > 0
        assert on["invocations"] > off["invocations"]
        # A cancelled loser is billed only up to the kill: the total
        # wasted GB-seconds stay a small fraction of the duplicates'
        # would-be full cost.
        assert on["cancelled_gb_s"] < on["backup_tasks"] * 60.0
