"""Benchmark S16: content-addressed exchange — dedup, lineage, replay.

Three claims of the content-addressing work, held against the paper's
3.5 GB methylome sort:

* **dedup matrix** — the same sort run cold then warm on one cloud, for
  every substrate × execution mode.  The warm run must save wire bytes
  through content dedup (``dedup_bytes > 0``) while staying
  byte-identical to the cold run on every cell;
* **lineage cache** — re-running an identical ``auto_sort`` workflow
  stage must hit the warm-run lineage cache and come back at least an
  order of magnitude cheaper in *both* dollars and latency;
* **verifiable replay** — every warm run's hash-chained
  :class:`~repro.shuffle.content.RunManifest` must replay-verify clean
  (offline and against the store), and a tampered manifest must FAIL
  loudly through the CLI.  One manifest is persisted to
  ``benchmarks/results/s16_run_manifest.json`` as the CI artifact.
"""

import json
import pathlib

import pytest

from repro.core import ExperimentConfig, stage_input
from repro.experiments import format_rows
from repro.experiments.sweeps import _fresh_cloud, _make_exchange_operator
from repro.executor import FunctionExecutor
from repro.shuffle.content import verify_manifest, verify_manifest_file
from repro.shuffle.streaming import StreamConfig

SUBSTRATES = ("objectstore", "cache", "relay", "sharded-relay")
MODES = ("staged", "streaming")

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _run_cell(config, substrate, mode):
    """Cold + warm identical sorts on one cloud; one matrix row."""
    cloud = _fresh_cloud(config)
    stage_input(cloud, config, "pipeline", "input/methylome.bed")
    executor = FunctionExecutor(
        cloud, runtime_memory_mb=config.function_memory_mb, bucket="pipeline"
    )
    stream = StreamConfig() if mode == "streaming" else None
    operator, provisioned = _make_exchange_operator(
        cloud, config, substrate, executor, stream=stream
    )

    def one(prefix):
        marker = cloud.meter.snapshot()
        started = cloud.sim.now

        def driver():
            return (
                yield operator.sort(
                    "pipeline", "input/methylome.bed",
                    workers=16, out_prefix=prefix,
                )
            )

        result = cloud.sim.run_process(driver())
        return {
            "result": result,
            "latency_s": cloud.sim.now - started,
            "cost_usd": cloud.meter.since(marker).total_usd,
            "dedup_bytes": operator.report.extra.get("dedup_bytes", 0.0),
            "digest": _digest(cloud, result),
            "manifest": operator.run_manifest,
        }

    cold = one("cold")
    warm = one("warm")
    if provisioned is not None:
        provisioned.terminate()
    return cloud, cold, warm


def _digest(cloud, result):
    from repro.cas import output_digest

    return output_digest(cloud, result)


@pytest.fixture(scope="module")
def cas_matrix(bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    cells = {}
    for substrate in SUBSTRATES:
        for mode in MODES:
            cells[(substrate, mode)] = _run_cell(config, substrate, mode)
    return cells


def test_dedup_matrix(benchmark, record_result, cas_matrix):
    cells = benchmark.pedantic(lambda: cas_matrix, rounds=1, iterations=1)
    rows = []
    for (substrate, mode), (_cloud, cold, warm) in cells.items():
        rows.append([
            substrate,
            mode,
            round(cold["latency_s"], 2),
            round(warm["latency_s"], 2),
            round(cold["cost_usd"], 4),
            round(warm["cost_usd"], 4),
            round(warm["dedup_bytes"] / (1 << 20), 1),
            cold["digest"],
            warm["digest"],
        ])
    text = format_rows(
        ["substrate", "mode", "cold_s", "warm_s", "cold_usd", "warm_usd",
         "warm_dedup_mb", "cold_digest", "warm_digest"],
        rows,
        title="S16: content-addressed exchange — cold vs warm dedup (3.5 GB)",
    )
    record_result("s16_cas", text)

    for (substrate, mode), (_cloud, cold, warm) in cells.items():
        cell = f"{substrate}/{mode}"
        # The warm run saved wire bytes through content dedup (a cold
        # streaming run may self-dedup repeated chunks; the warm run
        # must save at least that plus the cross-run hits)...
        assert warm["dedup_bytes"] > 0, cell
        assert warm["dedup_bytes"] >= cold["dedup_bytes"], cell
        # ...at exact byte parity with the cold run.
        assert warm["digest"] == cold["digest"], cell


def test_every_run_replay_verifies(cas_matrix):
    """Each cell's manifests re-derive offline and against the store."""
    for (substrate, mode), (cloud, cold, warm) in cas_matrix.items():
        cell = f"{substrate}/{mode}"
        for run in (cold, warm):
            manifest = run["manifest"]
            assert manifest is not None, cell
            assert verify_manifest(manifest) == [], cell
            assert verify_manifest(manifest, store=cloud.store) == [], cell


def test_manifest_artifact_and_tamper_detection(cas_matrix, tmp_path):
    """Persist the CI artifact; PASS clean, FAIL on a mutated chunk."""
    from repro.experiments.cli import main

    manifest = cas_matrix[("objectstore", "staged")][2]["manifest"]
    RESULTS_DIR.mkdir(exist_ok=True)
    artifact = RESULTS_DIR / "s16_run_manifest.json"
    artifact.write_text(manifest.to_json() + "\n", encoding="utf-8")
    assert verify_manifest_file(str(artifact)) == []
    assert main(["replay-verify", "--manifest", str(artifact)]) == 0

    tampered = manifest.to_dict()
    assert tampered["chunks"], "heavy-dup sort must log exchange chunks"
    tampered["chunks"][0]["sha256"] = "0" * 64
    bad = tmp_path / "tampered.json"
    bad.write_text(json.dumps(tampered), encoding="utf-8")
    assert main(["replay-verify", "--manifest", str(bad)]) == 1


def test_lineage_warm_rerun_order_of_magnitude_cheaper(
    record_result, bench_scale
):
    """An identical ``auto_sort`` stage re-run hits the lineage cache and
    returns the prior manifest at control-plane cost: ≥10× cheaper in
    dollars *and* latency."""
    from repro.workflows import WorkflowEngine
    from repro.workflows.dag import StageSpec, WorkflowDag

    config = ExperimentConfig(logical_scale=bench_scale)
    cloud = _fresh_cloud(config)
    stage_input(cloud, config, "pipeline", "input/methylome.bed")

    def run(name):
        dag = WorkflowDag(
            name,
            [
                StageSpec("ingest", "dataset_ref",
                          params={"key": "input/methylome.bed"}),
                StageSpec("sort", "auto_sort", after=("ingest",),
                          params={"workers": 16}),
            ],
            bucket="pipeline",
        )
        engine = WorkflowEngine(cloud, dag)
        engine.workload = config.workload
        marker = cloud.meter.snapshot()
        started = cloud.sim.now
        outcome = engine.execute()
        return (
            outcome,
            cloud.meter.since(marker).total_usd,
            cloud.sim.now - started,
        )

    cold, cold_usd, cold_s = run("s16-lineage-cold")
    warm, warm_usd, warm_s = run("s16-lineage-warm")

    assert cold.artifacts["sort"]["lineage"] == "miss"
    assert warm.artifacts["sort"]["lineage"] == "hit"
    assert warm.artifacts["sort"]["runs"] == cold.artifacts["sort"]["runs"]
    assert warm_usd * 10 <= cold_usd, (warm_usd, cold_usd)
    assert warm_s * 10 <= cold_s, (warm_s, cold_s)

    text = format_rows(
        ["run", "usd", "latency_s", "lineage"],
        [
            ["cold", round(cold_usd, 4), round(cold_s, 2), "miss"],
            ["warm", round(warm_usd, 6), round(warm_s, 4), "hit"],
        ],
        title="S16: warm-run lineage cache (3.5 GB auto_sort)",
    )
    record_result("s16_lineage", text)
