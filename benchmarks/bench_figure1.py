"""Benchmark: regenerate the paper's Figure 1 (architecture diagram).

Figure 1 shows the two incarnations of the genomics compression
pipeline.  The reproduction renders the *executable* DAGs — the same
objects the experiment runs — as annotated ASCII.
"""

from repro.core import ExperimentConfig
from repro.experiments import render_figure1


def test_figure1_regeneration(benchmark, record_result):
    art = benchmark(render_figure1, ExperimentConfig())
    record_result("figure1", art)

    # Both incarnations present, with the right substrates.
    assert "(A) VM-supported (hybrid)" in art
    assert "(B) Purely serverless" in art
    assert "vm_sort" in art and "virtual machine" in art
    assert "shuffle_sort" in art and "cloud functions" in art
    assert art.count("methcomp_encode") == 2
    assert "object storage" in art
