"""Benchmark S10a: on-the-fly tuning vs static calibration vs oracle.

Primula picks "the optimal number of functions for a given shuffle data
size on the fly".  This bench shows why *on the fly* matters: when the
region deviates from its calibration (throttled NICs, inflated request
latency), the statically planned worker count loses to the probe-based
tuner, which stays near the measured oracle even after paying for its
probe invocation.
"""

import pytest

from repro.core import ExperimentConfig
from repro.experiments import format_rows
from repro.experiments.sweeps import sweep_tuner


@pytest.fixture(scope="module")
def tuner_rows(bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    return sweep_tuner(config)


def test_autotune_sweep(benchmark, record_result, tuner_rows):
    rows = benchmark.pedantic(lambda: tuner_rows, rounds=1, iterations=1)
    headers = list(rows[0].keys())
    record_result(
        "s10a_autotune",
        format_rows(headers, [[row[h] for h in headers] for row in rows],
                    title="S10a: planner regret by region scenario (3.5 GB)"),
    )

    by_scenario = {row["scenario"]: row for row in rows}

    # The tuner stays near the oracle everywhere — its worst case is
    # probe overhead on regions where calibration was already right.
    for row in rows:
        assert row["tuned_regret"] < 1.3, row["scenario"]

    # Where the calibration is badly wrong (throttled NICs), the static
    # plan pays a real penalty and the tuner clearly beats it.
    slow_nic = by_scenario["slow-nic"]
    assert slow_nic["static_regret"] > 1.3
    assert slow_nic["tuned_regret"] < slow_nic["static_regret"]

    # On the calibrated region the probe must not change the pick's
    # quality class (tuner within probe overhead of the static choice).
    calibrated = by_scenario["calibrated"]
    assert calibrated["static_regret"] < 1.1


def test_probe_overhead_is_small(tuner_rows):
    for row in tuner_rows:
        # The probe must cost a fraction of the shuffle it optimizes.
        assert row["probe_s"] < 0.25 * row["oracle_latency_s"], row["scenario"]
