"""Benchmark S14: scalar vs vectorized record kernels.

Every substrate's map/reduce stages now route partitioning, merging,
sampling and grouping through :mod:`repro.shuffle.kernels`, which runs
a numpy fast path whenever the codec advertises a vectorizable layout
(``vector_layout``/``vector_spec``) and falls back to the original
pure-python scalar path otherwise.  S14 measures that fast path in
isolation — same buffer, same boundaries, scalar vs vectorized — on
the repo's three record shapes:

* fixed-width 16-byte records with an 8-byte big-endian key prefix,
  under uniform and Zipf key laws (the parity/chaos suites' payload);
* bedMethyl text lines keyed by ``(chromosome rank, start)`` (the
  paper's METHCOMP sort input), under a Zipf genomic-locus law.

Asserted contract:

* **byte parity** — the vectorized partition emits the identical
  combined buffer, per-partition offsets and record counts as the
  scalar path, and the vectorized merge emits the identical sorted
  output: the kernels are a pure speedup, never a semantic change;
* **the fast path engages** — every workload here reports
  ``kernel == "vectorized"`` (an accidental fallback would silently
  re-slow every substrate);
* **>= 5x records/sec** on the partition and merge kernels of the
  fixed-width workloads, where key extraction is a strided slice and
  the record gather is one reshape — the shape the kernels were built
  for.  The BED text workload is gated at a strict win (>= 1.3x,
  measured ~2.1-2.7x): its scalar baseline parses only two fields per
  line, while the vectorized path must still pay a byte-level gather
  for the variable-length records, so the margin is structurally
  smaller.  The sampling kernel is reported but not gated: its window
  decode is already a small fraction of a shuffle.

The harness-level wall-clock of this module also lands in
``results/bench_wallclock.json`` (see ``conftest.py``), which
``check_wallclock.py`` holds against the committed baseline in CI.
"""

import random
import time

import pytest

from repro.experiments import format_rows
from repro.methcomp.datagen import generate_skewed_bed_bytes
from repro.methcomp.pipeline import bed_record_codec
from repro.shuffle.kernels import (
    KERNEL_SCALAR,
    KERNEL_VECTORIZED,
    kernels_enabled,
    partition_buffer,
    sort_buffer,
    window_keys,
)
from repro.shuffle.records import FixedWidthCodec
from repro.shuffle.sampler import choose_weighted_boundaries, reservoir_sample
from repro.shuffle.skew import SkewSpec, skewed_fixed_payload

if not kernels_enabled():  # numpy absent or REPRO_KERNELS=scalar
    pytest.skip(
        "vectorized kernels unavailable; S14 compares them against scalar",
        allow_module_level=True,
    )

FIXED_RECORDS = 150_000
BED_BYTES = 3_000_000
PARTITIONS = 32
SAMPLE_CAPACITY = 4096
ROUNDS = 3
#: Per-shape floors on the gated stages: fixed-width records must hit
#: the headline 5x, variable-length text must strictly win (see module
#: docstring for why its margin is structurally smaller).
SPEEDUP_FLOORS = {"fixed-16B": 5.0, "bed-line": 1.3}
GATED_STAGES = ("partition", "merge")


def _workloads():
    fixed = FixedWidthCodec(record_size=16, key_bytes=8)
    return [
        (
            "fixed-16B/uniform",
            fixed,
            skewed_fixed_payload(
                FIXED_RECORDS, SkewSpec(distribution="uniform"), seed=29
            ),
        ),
        (
            "fixed-16B/zipf",
            fixed,
            skewed_fixed_payload(
                FIXED_RECORDS, SkewSpec(distribution="zipf"), seed=29
            ),
        ),
        (
            "bed-line/zipf",
            bed_record_codec(),
            generate_skewed_bed_bytes(BED_BYTES, seed=29),
        ),
    ]


def _boundaries(codec, payload):
    keys = [codec.key(record) for record in codec.split(payload)]
    sample = reservoir_sample(keys, SAMPLE_CAPACITY, random.Random(7))
    return choose_weighted_boundaries(sample, PARTITIONS)


def _best(run):
    """Best-of-N: the outcome with the lowest kernel-side elapsed time."""
    best = None
    for _ in range(ROUNDS):
        outcome = run()
        if best is None or outcome.elapsed_s < best.elapsed_s:
            best = outcome
    return best


def _rps(records, elapsed_s):
    return records / max(elapsed_s, 1e-9)


@pytest.fixture(scope="module")
def kernel_rows():
    rows = []
    for workload, codec, payload in _workloads():
        boundaries = _boundaries(codec, payload)

        scalar = _best(
            lambda: partition_buffer(codec, payload, boundaries, force_scalar=True)
        )
        vector = _best(lambda: partition_buffer(codec, payload, boundaries))
        partition_parity = (
            bytes(vector.combined) == bytes(scalar.combined)
            and vector.offsets == scalar.offsets
            and vector.partition_records == scalar.partition_records
        )
        rows.append(
            {
                "workload": workload,
                "stage": "partition",
                "records": scalar.records,
                "scalar_kernel": scalar.kernel,
                "vector_kernel": vector.kernel,
                "scalar_rps": _rps(scalar.records, scalar.elapsed_s),
                "vector_rps": _rps(vector.records, vector.elapsed_s),
                "parity": partition_parity,
            }
        )

        scalar_sort = _best(lambda: sort_buffer(codec, payload, force_scalar=True))
        vector_sort = _best(lambda: sort_buffer(codec, payload))
        rows.append(
            {
                "workload": workload,
                "stage": "merge",
                "records": scalar_sort.records,
                "scalar_kernel": scalar_sort.kernel,
                "vector_kernel": vector_sort.kernel,
                "scalar_rps": _rps(scalar_sort.records, scalar_sort.elapsed_s),
                "vector_rps": _rps(vector_sort.records, vector_sort.elapsed_s),
                "parity": bytes(vector_sort.output) == bytes(scalar_sort.output),
            }
        )

        # Sampling kernel: reported, not gated — window decode is a
        # small slice of any real shuffle, and window_keys times the
        # whole call (list materialization included).
        def _window(force_scalar):
            start = time.perf_counter()
            keys, seen, kernel = window_keys(
                codec, payload, is_first=True, global_start=0,
                force_scalar=force_scalar,
            )
            return keys, seen, kernel, time.perf_counter() - start

        scalar_keys = vector_keys = None
        scalar_s = vector_s = float("inf")
        for _ in range(ROUNDS):
            keys, seen, kernel, elapsed = _window(True)
            if elapsed < scalar_s:
                scalar_keys, scalar_seen, scalar_win_kernel, scalar_s = (
                    keys, seen, kernel, elapsed,
                )
            keys, seen, kernel, elapsed = _window(False)
            if elapsed < vector_s:
                vector_keys, vector_seen, vector_win_kernel, vector_s = (
                    keys, seen, kernel, elapsed,
                )
        rows.append(
            {
                "workload": workload,
                "stage": "sample",
                "records": scalar_seen,
                "scalar_kernel": scalar_win_kernel,
                "vector_kernel": vector_win_kernel,
                "scalar_rps": _rps(scalar_seen, scalar_s),
                "vector_rps": _rps(vector_seen, vector_s),
                "parity": vector_keys == scalar_keys,
            }
        )
    return rows


def test_kernel_sweep(benchmark, record_result, kernel_rows):
    rows = benchmark.pedantic(lambda: kernel_rows, rounds=1, iterations=1)
    headers = ["workload", "stage", "records", "scalar_rps", "vector_rps", "speedup"]
    table = [
        [
            row["workload"],
            row["stage"],
            row["records"],
            row["scalar_rps"],
            row["vector_rps"],
            row["vector_rps"] / row["scalar_rps"],
        ]
        for row in rows
    ]
    record_result(
        "s14_kernels",
        format_rows(
            headers,
            table,
            title="S14: scalar vs vectorized record kernels "
            f"(best of {ROUNDS}, {PARTITIONS} partitions, "
            f"{FIXED_RECORDS} fixed records / {BED_BYTES // 1_000_000} MB BED)",
        ),
    )

    for row in rows:
        # Byte parity everywhere: the fast path may never change bytes.
        assert row["parity"], f"{row['workload']}/{row['stage']} lost byte parity"
        # The fast path must actually engage on these codecs.
        assert row["scalar_kernel"] == KERNEL_SCALAR
        assert row["vector_kernel"] == KERNEL_VECTORIZED, (
            f"{row['workload']}/{row['stage']} fell back to the scalar kernel"
        )


def test_partition_and_merge_speedup(kernel_rows):
    for row in kernel_rows:
        if row["stage"] not in GATED_STAGES:
            continue
        floor = SPEEDUP_FLOORS[row["workload"].split("/")[0]]
        speedup = row["vector_rps"] / row["scalar_rps"]
        assert speedup >= floor, (
            f"{row['workload']}/{row['stage']}: vectorized kernel is only "
            f"{speedup:.1f}x scalar (floor {floor:g}x)"
        )
