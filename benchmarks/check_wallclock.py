"""Wall-clock guard for the benchmark harness.

``benchmarks/conftest.py`` writes ``results/bench_wallclock.json``
(per-module wall-clock of whatever bench modules just ran, plus a
machine-speed calibration) after every bench session.  This script
compares that fresh measurement against the committed baseline
``results/bench_wallclock_baseline.json`` and exits non-zero when the
shared modules' total regresses more than 20% — the CI tripwire that
holds the vectorized-kernel speedups (and every other bench's budget)
across future PRs.

Only modules present in *both* files are compared, so running a single
module (``make bench-kernels``) guards that module without penalizing
the baseline's wider coverage, and a brand-new bench module does not
fail CI before its baseline lands.  The tolerance is scaled by the
calibration ratio so a slower runner is not mistaken for a slower repo.

Refresh the baseline deliberately after an accepted slowdown or a
machine change::

    make bench-kernels
    cp benchmarks/results/bench_wallclock.json \
       benchmarks/results/bench_wallclock_baseline.json
"""

from __future__ import annotations

import json
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
CURRENT = RESULTS_DIR / "bench_wallclock.json"
BASELINE = RESULTS_DIR / "bench_wallclock_baseline.json"
TOLERANCE = 0.20


def main() -> int:
    if not CURRENT.exists():
        print(f"wallclock guard: {CURRENT} missing — run a bench module first")
        return 1
    if not BASELINE.exists():
        print(f"wallclock guard: no committed baseline at {BASELINE}; skipping")
        return 0

    current = json.loads(CURRENT.read_text(encoding="utf-8"))
    baseline = json.loads(BASELINE.read_text(encoding="utf-8"))
    shared = sorted(set(current["modules"]) & set(baseline["modules"]))
    if not shared:
        print("wallclock guard: no modules shared with the baseline; skipping")
        return 0

    # Machine-speed normalization: the baseline's budget stretches (or
    # shrinks) with the runner's measured python throughput.
    scale = max(current["calibration_s"], 1e-9) / max(baseline["calibration_s"], 1e-9)

    current_total = sum(current["modules"][name] for name in shared)
    budget_total = sum(baseline["modules"][name] for name in shared) * scale
    limit = budget_total * (1.0 + TOLERANCE)

    print(f"wallclock guard: calibration ratio {scale:.2f}x "
          f"(this machine vs baseline machine)")
    for name in shared:
        budget = baseline["modules"][name] * scale
        print(f"  {name:<28} {current['modules'][name]:8.2f}s "
              f"(baseline {budget:8.2f}s adj)")
    print(f"  {'total':<28} {current_total:8.2f}s "
          f"(limit {limit:8.2f}s = baseline +{TOLERANCE:.0%})")

    if current_total > limit:
        print("wallclock guard: FAIL — bench wall-clock regressed beyond 20%")
        return 1
    print("wallclock guard: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
