"""Microbenchmarks of the simulation kernel itself.

Not a paper artifact — these quantify the substrate's own performance
(events/second, resource churn, link re-rating), which bounds how big an
experiment the harness can regenerate in reasonable wall-clock time.
"""

from repro.sim import FairShareLink, Resource, Simulator, TokenBucket


def test_event_throughput(benchmark):
    def run_events():
        sim = Simulator(seed=1)
        for _ in range(10_000):
            sim.timeout(1.0)
        sim.run()
        return sim.now

    assert benchmark(run_events) == 1.0


def test_process_switch_throughput(benchmark):
    def run_processes():
        sim = Simulator(seed=1)

        def worker():
            for _ in range(100):
                yield sim.timeout(1.0)

        for _ in range(100):
            sim.process(worker())
        sim.run()
        return sim.now

    assert benchmark(run_processes) == 100.0


def test_token_bucket_throughput(benchmark):
    def run_bucket():
        sim = Simulator(seed=1)
        bucket = TokenBucket(sim, rate=1000.0, capacity=100.0)

        def consumer():
            for _ in range(2_000):
                yield bucket.consume(1.0)

        sim.process(consumer())
        sim.run()
        return sim.now

    benchmark(run_bucket)


def test_resource_contention_throughput(benchmark):
    def run_resource():
        sim = Simulator(seed=1)
        resource = Resource(sim, capacity=4)

        def worker():
            for _ in range(50):
                yield resource.acquire()
                yield sim.timeout(0.01)
                resource.release()

        for _ in range(40):
            sim.process(worker())
        sim.run()
        return sim.now

    benchmark(run_resource)


def test_fair_link_rerating_throughput(benchmark):
    def run_link():
        sim = Simulator(seed=1)
        link = FairShareLink(sim, capacity=1e9)

        def sender(delay):
            yield sim.timeout(delay)
            yield link.transfer(1e6)

        for index in range(200):
            sim.process(sender(index * 0.001))
        sim.run()
        return link.bytes_delivered

    delivered = benchmark(run_link)
    assert abs(delivered - 200 * 1e6) < 1.0  # fluid model: float tolerance
