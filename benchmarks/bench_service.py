"""Benchmark S13: shared multi-tenant exchange service vs fleet-per-job.

The same open-loop arrival schedule — three tenants bursting full-size
sorts, then a small-job tail — served two ways on identical clouds: one
shared :class:`~repro.service.ExchangeService` (bounded admission queue,
per-tenant token buckets, demand-driven fleet autoscaling, per-tenant
cost attribution) versus the provision-per-job shape every earlier
experiment used (each arrival cold-boots its own right-sized fleet and
terminates it).  The service must strictly beat the baseline on total
dollars at no worse p95 latency, actually resize in both directions,
keep every job byte-identical to its per-job twin, starve nobody, and
bill tenants dollars that sum to the fleet total.
"""

import pytest

from repro.core import ExperimentConfig
from repro.experiments import format_rows
from repro.experiments.sweeps import sweep_service
from repro.obs.slo import SloGate


@pytest.fixture(scope="module")
def service_rows(bench_scale):
    from repro.obs.metrics import reset_registry

    # Start from a clean registry so the latency histogram the SLO gate
    # reads describes this sweep alone, not earlier runs in the session.
    reset_registry()
    config = ExperimentConfig(logical_scale=bench_scale)
    return sweep_service(config)


def _only(rows, strategy, kind):
    return [r for r in rows if r["strategy"] == strategy and r["kind"] == kind]


def test_service_sweep(benchmark, record_result, service_rows):
    rows = benchmark.pedantic(lambda: service_rows, rounds=1, iterations=1)
    headers = list(rows[0].keys())
    text = format_rows(
        headers,
        [[row[h] for h in headers] for row in rows],
        title="S13: shared exchange service vs provision-per-job (3.5 GB)",
    )
    record_result("s13_service", text)

    service = _only(rows, "service", "total")[0]
    perjob = _only(rows, "per-job", "total")[0]

    # The shared, right-sized substrate is strictly cheaper in total...
    assert service["total_usd"] < perjob["total_usd"]
    assert service["fleet_usd"] < perjob["fleet_usd"]
    # ... at no worse p95 latency (the baseline pays a VM boot per job;
    # the service's queue waits must not eat that advantage).  The gate
    # reads the service's own latency histogram from the metrics
    # registry rather than the sweep's ad-hoc row list, so the SLO is
    # checked against what the service actually observed per job.
    gate = SloGate("s13-service")
    gate.p95(
        "service-p95-latency",
        "repro_service_job_latency_seconds",
        threshold_s=perjob["p95_latency_s"],
    )
    gate.assert_ok()

    # The fleet actually breathed: grew for the burst, shrank after.
    assert service["scale_ups"] >= 1
    assert service["scale_downs"] >= 1


def test_service_byte_parity(service_rows):
    """Sharing the substrate moves bytes differently, never changes them."""
    service_jobs = {r["job"]: r for r in _only(service_rows, "service", "job")}
    perjob_jobs = {r["job"]: r for r in _only(service_rows, "per-job", "job")}
    assert set(service_jobs) == set(perjob_jobs)
    for job_id, row in service_jobs.items():
        assert row["output_digest"] == perjob_jobs[job_id]["output_digest"], job_id
    # Distinct inputs produced distinct outputs (the digests mean something).
    assert len({r["output_digest"] for r in service_jobs.values()}) == len(
        service_jobs
    )


def test_service_fairness(service_rows):
    """No tenant starves: every job ran, and its queue wait is bounded
    by the schedule (token refill) rather than by other tenants' load."""
    jobs = _only(service_rows, "service", "job")
    assert len(jobs) == 5
    for row in jobs:
        # sweep_service raises on a non-"done" job; the wait bound here
        # pins the fairness property the admission queue promises.
        assert row["wait_s"] < 120.0, (row["job"], row["wait_s"])


def test_service_cost_attribution(service_rows):
    """Per-tenant billed totals sum to the service totals to the cent."""
    tenants = _only(service_rows, "service", "tenant")
    total = _only(service_rows, "service", "total")[0]
    assert {r["tenant"] for r in tenants} == {"alice", "bob", "carol"}
    assert sum(r["faas_usd"] for r in tenants) == pytest.approx(
        total["faas_usd"]
    )
    assert sum(r["fleet_usd"] for r in tenants) == pytest.approx(
        total["fleet_usd"]
    )
    assert sum(r["total_usd"] for r in tenants) == pytest.approx(
        total["total_usd"]
    )
