"""Benchmark S11: does the paper's conclusion survive a provider change?

Lithops is multi-cloud (the paper's reference [3]); the experiment
re-runs the Table 1 comparison on the AWS-flavoured profile (Lambda +
S3 + EC2 m5) next to the paper's IBM one.  The absolute numbers move —
Lambda starts faster, S3 sustains more requests, EC2 boots quicker —
but the conclusion must not: purely serverless wins on latency at
comparable cost on both providers.
"""

import pytest

from repro.core import ExperimentConfig
from repro.experiments import format_rows
from repro.experiments.sweeps import sweep_multicloud


def test_multicloud_comparison(benchmark, record_result, bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    rows = benchmark.pedantic(
        lambda: sweep_multicloud(config),
        rounds=1,
        iterations=1,
    )
    headers = list(rows[0].keys())
    record_result(
        "s11_multicloud",
        format_rows(headers, [[row[h] for h in headers] for row in rows],
                    title="S11: Table 1 comparison across providers (3.5 GB)"),
    )

    by_provider = {row["provider"]: row for row in rows}
    for provider, row in by_provider.items():
        # The paper's qualitative claim holds on every provider.
        assert row["speedup"] > 1.2, provider
        cost_ratio = row["serverless_cost_usd"] / row["vm_cost_usd"]
        assert 0.4 < cost_ratio < 1.6, provider

    # Provider differences show where expected: faster Lambda cold
    # starts and higher function-to-storage throughput make the AWS
    # serverless pipeline faster in absolute terms.
    assert (
        by_provider["aws-us-east"]["serverless_latency_s"]
        < by_provider["ibm-us-east"]["serverless_latency_s"]
    )
    # The paper's own setting stays calibrated to its Table 1.
    ibm = by_provider["ibm-us-east"]
    assert ibm["serverless_latency_s"] == pytest.approx(83.32, rel=0.2)
    assert ibm["vm_latency_s"] == pytest.approx(142.77, rel=0.2)
