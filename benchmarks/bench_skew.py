"""Benchmark S11: skew-aware shuffle under Zipfian key distributions.

Every earlier bench sorts uniform random keys, so range boundaries land
near-equal partitions and the relay fleet's CRC key routing never sees
a hot shard.  S11 sorts the *same seeded dataset* under a Zipf key law
(a handful of hot duplicate keys owning most of the mass) and contrasts
three configurations per distribution: the object-storage baseline, the
sharded relay fleet with naive CRC-32 routing, and the fleet with
load-aware routing (planned partition bytes spread across shards with a
deterministic LPT assignment — the ``ShardedRelayExchange`` default).

Asserted contract:

* **byte parity** — routing moves bytes between shards, never changes
  them: all three configurations of one distribution emit identical
  sorted artifacts;
* **CRC saturates a shard** — on the Zipf workload the naive fleet
  parks well over its fair share of exchange bytes on one shard, while
  the rebalanced fleet stays at ~1/shards; on the uniform control the
  two routings are equivalent;
* **strict win** — at byte parity, the rebalanced fleet strictly beats
  the CRC fleet on the Zipf workload (the hot shard's NIC is the
  exchange bottleneck the LPT assignment dissolves);
* **skew is measured and predicted** — ``ExchangeReport.partition_skew``
  (max/mean reducer bytes) blows up on the Zipf rows and the sampling
  pass's estimate agrees; the skew-aware planner's prediction tracks
  the measured latency within the same 2x tolerance the worker-sweep
  bench holds the uniform model to;
* **no leaks** — zero residual relay reservations on every fleet row.
"""

import math

import pytest

from repro.core import ExperimentConfig
from repro.experiments import format_rows
from repro.experiments.sweeps import sweep_skew

DISTRIBUTIONS = ("uniform", "zipf")
WORKERS = 12
SHARDS = 2
ZIPF_S = 2.0
DISTINCT_KEYS = 4


@pytest.fixture(scope="module")
def skew_rows(bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    return sweep_skew(
        config,
        distributions=DISTRIBUTIONS,
        workers=WORKERS,
        shards=SHARDS,
        zipf_s=ZIPF_S,
        distinct_keys=DISTINCT_KEYS,
    )


def test_skew_sweep(benchmark, record_result, skew_rows):
    rows = benchmark.pedantic(lambda: skew_rows, rounds=1, iterations=1)
    headers = list(rows[0].keys())
    record_result(
        "s11_skew",
        format_rows(
            headers, [[row[h] for h in headers] for row in rows],
            title="S11: skew-aware shuffle "
                  f"(3.5 GB, W={WORKERS}, {SHARDS} shards, "
                  f"Zipf s={ZIPF_S:g} over {DISTINCT_KEYS} keys)",
        ),
    )

    by_key = {(row["distribution"], row["routing"]): row for row in rows}

    for distribution in DISTRIBUTIONS:
        base = by_key[(distribution, "-")]
        crc = by_key[(distribution, "crc")]
        rebalanced = by_key[(distribution, "rebalanced")]
        # Byte parity: routing (and the substrate) never changes bytes.
        assert base["output_digest"] == crc["output_digest"]
        assert base["output_digest"] == rebalanced["output_digest"]
        # The same dataset reports the same measured skew everywhere.
        assert crc["partition_skew"] == pytest.approx(base["partition_skew"])
        assert rebalanced["partition_skew"] == pytest.approx(
            base["partition_skew"]
        )
        # Zero residual relay reservations once each run settled.
        assert crc["residual_bytes"] == 0.0
        assert rebalanced["residual_bytes"] == 0.0
        # The rebalanced fleet always holds ~its fair share per shard.
        assert rebalanced["hot_shard_share"] == pytest.approx(
            1.0 / SHARDS, abs=0.05
        )

    uniform_crc = by_key[("uniform", "crc")]
    uniform_reb = by_key[("uniform", "rebalanced")]
    zipf_crc = by_key[("zipf", "crc")]
    zipf_reb = by_key[("zipf", "rebalanced")]

    # The Zipf dataset is genuinely skewed (a hot indivisible key owns
    # most of the mass) and the sampling pass detected it.
    assert by_key[("zipf", "-")]["partition_skew"] > 4.0
    assert by_key[("uniform", "-")]["partition_skew"] < 1.5
    assert zipf_crc["predicted_skew"] == pytest.approx(
        zipf_crc["partition_skew"], rel=0.25
    )

    # Naive CRC routing saturates one shard on the Zipf workload...
    assert zipf_crc["hot_shard_share"] > zipf_reb["hot_shard_share"] + 0.08
    assert zipf_crc["hot_shard_share"] > 0.6
    # ...and the rebalanced fleet strictly beats it at byte parity.
    assert zipf_reb["sort_latency_s"] < zipf_crc["sort_latency_s"]
    # On the uniform control the two routings are equivalent: CRC is
    # only naive about *bytes*, which uniform keys spread by themselves.
    assert uniform_reb["sort_latency_s"] == pytest.approx(
        uniform_crc["sort_latency_s"], rel=0.05
    )
    assert uniform_crc["hot_shard_share"] == pytest.approx(
        1.0 / SHARDS, abs=0.05
    )


def test_skew_aware_planner_tracks_measurement(skew_rows):
    """The skew-priced relay model stays within the 2x envelope the
    worker-sweep bench holds the uniform model to — on both the uniform
    control and the 8x-skewed Zipf workload."""
    for row in skew_rows:
        if row["strategy"] != "sharded-relay":
            continue
        assert not math.isnan(row["predicted_s"])
        ratio = row["sort_latency_s"] / row["predicted_s"]
        assert 0.5 < ratio < 2.0, (
            f"{row['distribution']}/{row['routing']}: ratio {ratio:.2f}"
        )
