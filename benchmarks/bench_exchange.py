"""Benchmarks S8/S8b: object storage vs cache vs VM-relay data exchange.

The paper's headline comparison is object-storage- vs VM-driven data
exchange, and it names AWS ElastiCache as the low-latency alternative.
S8 runs the shuffle over all four substrates (object storage, cache
cluster, single VM relay, sharded relay fleet) across worker counts,
plus the full four-way pipeline comparison, and asserts the predicted
shape:

* at high worker counts the provisioned substrates (cache cluster, VM
  relays) beat the object-storage sort (the W² request traffic is where
  COS hurts);
* the cache and relay rows carry extra provisioned-infrastructure cost
  (node-hours / VM instance-seconds) the COS rows never pay;
* all substrates emit byte-identical sorted artifacts — only latency
  and cost move;
* end to end, the serverless variants beat the VM pipeline.

S8b isolates the sharding claim: at a worker count where the single
relay's NIC is saturated (aggregate worker demand exceeds one
instance's line rate), a ≥2-shard fleet strictly reduces exchange time
— while still producing the byte-identical artifact — at N instances'
provisioned cost.
"""

import pytest

from repro.core import ExperimentConfig, run_exchange_comparison
from repro.experiments import format_rows
from repro.experiments.sweeps import sweep_exchange, sweep_relay_shards

WORKER_COUNTS = (4, 8, 16, 32, 64)

#: S8b configuration: the sharding win needs the exchange waves to
#: genuinely saturate one instance NIC, which takes both a high worker
#: count AND a large dataset (at 3.5 GB the per-worker transfers are
#: short enough that dispatch stagger keeps concurrency — and thus
#: aggregate demand — below one line rate).  14 GB at W=64 holds
#: ~60 concurrent 44 MB/s flows against a 16 Gb/s NIC.
SHARD_SWEEP_WORKERS = 64
SHARD_SWEEP_SIZE_GB = 14.0
SHARD_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def exchange_rows(bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    return sweep_exchange(config, worker_counts=WORKER_COUNTS)


def test_exchange_worker_sweep(benchmark, record_result, bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    rows = benchmark.pedantic(
        lambda: sweep_exchange(config, worker_counts=WORKER_COUNTS),
        rounds=1,
        iterations=1,
    )
    headers = list(rows[0].keys())
    record_result(
        "s8_exchange_worker_sweep",
        format_rows(headers, [[row[h] for h in headers] for row in rows],
                    title="S8: sort latency by exchange substrate (3.5 GB)"),
    )

    latency = {
        (r["strategy"], r["workers"]): r["sort_latency_s"] for r in rows
    }
    # At the largest worker count, the provisioned substrates' batched
    # sub-ms requests beat object storage's per-request latencies.
    top = WORKER_COUNTS[-1]
    assert latency[("cache", top)] < latency[("objectstore", top)]
    assert latency[("relay", top)] < latency[("objectstore", top)]
    assert latency[("sharded-relay", top)] < latency[("objectstore", top)]
    # The provisioned substrates degrade more slowly from their best
    # point than the object-storage one does (flatter right flank).
    def degradation(strategy):
        curve = [latency[(strategy, w)] for w in WORKER_COUNTS]
        return latency[(strategy, top)] / min(curve)

    assert degradation("cache") < degradation("objectstore")
    assert degradation("relay") < degradation("objectstore")
    assert degradation("sharded-relay") < degradation("objectstore")
    # At 3.5 GB the exchange is worker-NIC-bound, so the fleet tracks
    # the single relay to within jitter (the strict win, at a dataset
    # that saturates one relay NIC, is S8b's assertion).
    assert latency[("sharded-relay", top)] <= latency[("relay", top)] * 1.02


def test_exchange_substrates_emit_identical_artifacts(exchange_rows):
    """The substrate moves the bytes; it must never change them."""
    for workers in WORKER_COUNTS:
        digests = {
            row["output_digest"]
            for row in exchange_rows
            if row["workers"] == workers
        }
        assert len(digests) == 1, f"artifacts diverged at W={workers}"


def test_relay_shard_sweep(benchmark, record_result, bench_scale):
    """S8b: shard count lifts the single relay's NIC ceiling."""
    config = ExperimentConfig(
        logical_scale=bench_scale, size_gb=SHARD_SWEEP_SIZE_GB
    )
    rows = benchmark.pedantic(
        lambda: sweep_relay_shards(
            config, shard_counts=SHARD_COUNTS, workers=SHARD_SWEEP_WORKERS
        ),
        rounds=1,
        iterations=1,
    )
    headers = list(rows[0].keys())
    record_result(
        "s8b_relay_shards",
        format_rows(
            headers, [[row[h] for h in headers] for row in rows],
            title="S8b: relay fleet shard-count sweep "
                  f"({SHARD_SWEEP_SIZE_GB:g} GB, W={SHARD_SWEEP_WORKERS})",
        ),
    )

    # Precondition: the single relay NIC is genuinely saturated at this
    # worker count — aggregate worker demand exceeds one line rate.
    profile = config.make_profile()
    relay_nic = profile.vm.catalog[
        config.resolved_relay_instance_type
    ].nic_bandwidth
    worker_demand = SHARD_SWEEP_WORKERS * min(
        profile.faas.instance_bandwidth, relay_nic
    )
    assert worker_demand > relay_nic, (
        "raise SHARD_SWEEP_WORKERS: the single relay NIC is not saturated"
    )

    by_shards = {
        row["shards"]: row for row in rows if row["strategy"] == "sharded-relay"
    }
    # Acceptance: a >=2-shard fleet strictly reduces exchange time over
    # the saturated single relay...
    assert by_shards[2]["sort_latency_s"] < by_shards[1]["sort_latency_s"]
    # ...and more shards never make it meaningfully worse (two shards
    # already clear the NIC bound here, so four only tracks two within
    # jitter)...
    assert (
        by_shards[4]["sort_latency_s"]
        <= by_shards[2]["sort_latency_s"] * 1.01
    )
    # ...with byte parity against the object-storage baseline (and every
    # other fleet size)...
    assert len({row["output_digest"] for row in rows}) == 1
    # ...paid for with N instances' provisioned dollars...
    assert by_shards[2]["provisioned_usd"] > by_shards[1]["provisioned_usd"]
    assert by_shards[4]["provisioned_usd"] > by_shards[2]["provisioned_usd"]
    # ...and zero residual reservations on every fleet after settling.
    for row in rows:
        if row["strategy"] == "sharded-relay":
            assert row["residual_bytes"] == 0.0


def test_exchange_pipeline_comparison(benchmark, record_result, bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    result = benchmark.pedantic(
        lambda: run_exchange_comparison(config),
        rounds=1,
        iterations=1,
    )
    record_result("s8_exchange_pipelines", result.to_table())

    # Every variant sorted and encoded the same records.
    records = {
        run.variant: run.workflow.artifacts["encode"]["records"]
        for run in result.runs()
    }
    assert len(set(records.values())) == 1
    # All serverless-compute variants beat the VM pipeline end to end.
    assert result.serverless.latency_s < result.vm.latency_s
    assert result.cache.latency_s < result.vm.latency_s
    assert result.relay.latency_s < result.vm.latency_s
    # The provisioned substrates make their sorts costlier than COS.
    assert result.cache.stage_costs["sort"] > result.serverless.stage_costs["sort"]
    assert result.relay.stage_costs["sort"] > result.serverless.stage_costs["sort"]


def test_provisioned_substrates_cost_infrastructure(exchange_rows):
    by_key = {(r["strategy"], r["workers"]): r for r in exchange_rows}
    for workers in WORKER_COUNTS:
        cos_row = by_key[("objectstore", workers)]
        assert cos_row["provisioned_usd"] == 0.0
        for strategy in ("cache", "relay", "sharded-relay"):
            row = by_key[(strategy, workers)]
            assert row["sort_cost_usd"] > 0
            # Provisioned node/instance seconds make the substrate's
            # sort costlier than the pay-as-you-go COS one, and the
            # uniform report prices that infrastructure explicitly.
            assert row["sort_cost_usd"] > cos_row["sort_cost_usd"]
            assert row["provisioned_usd"] > 0.0
            # The provisioned shuffles still talk to COS (input + runs)
            # but issue far fewer storage requests than the all-to-all.
            assert row["storage_requests"] < cos_row["storage_requests"]
