"""Benchmark S8: object-storage vs cache vs VM-relay data exchange.

The paper's headline comparison is object-storage- vs VM-driven data
exchange, and it names AWS ElastiCache as the low-latency alternative.
This bench runs the shuffle over all three substrates across worker
counts, plus the full four-way pipeline comparison, and asserts the
predicted shape:

* at high worker counts both provisioned substrates (cache cluster, VM
  relay) beat the object-storage sort (the W² request traffic is where
  COS hurts);
* the cache and relay rows carry extra provisioned-infrastructure cost
  (node-hours / VM instance-seconds) the COS rows never pay;
* all substrates emit byte-identical sorted artifacts — only latency
  and cost move;
* end to end, the serverless variants beat the VM pipeline.
"""

import pytest

from repro.core import ExperimentConfig, run_exchange_comparison
from repro.experiments import format_rows
from repro.experiments.sweeps import sweep_exchange

WORKER_COUNTS = (4, 8, 16, 32, 64)


@pytest.fixture(scope="module")
def exchange_rows(bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    return sweep_exchange(config, worker_counts=WORKER_COUNTS)


def test_exchange_worker_sweep(benchmark, record_result, bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    rows = benchmark.pedantic(
        lambda: sweep_exchange(config, worker_counts=WORKER_COUNTS),
        rounds=1,
        iterations=1,
    )
    headers = list(rows[0].keys())
    record_result(
        "s8_exchange_worker_sweep",
        format_rows(headers, [[row[h] for h in headers] for row in rows],
                    title="S8: sort latency by exchange substrate (3.5 GB)"),
    )

    latency = {
        (r["strategy"], r["workers"]): r["sort_latency_s"] for r in rows
    }
    # At the largest worker count, both provisioned substrates' batched
    # sub-ms requests beat object storage's per-request latencies.
    top = WORKER_COUNTS[-1]
    assert latency[("cache", top)] < latency[("objectstore", top)]
    assert latency[("relay", top)] < latency[("objectstore", top)]
    # The provisioned substrates degrade more slowly from their best
    # point than the object-storage one does (flatter right flank).
    def degradation(strategy):
        curve = [latency[(strategy, w)] for w in WORKER_COUNTS]
        return latency[(strategy, top)] / min(curve)

    assert degradation("cache") < degradation("objectstore")
    assert degradation("relay") < degradation("objectstore")


def test_exchange_substrates_emit_identical_artifacts(exchange_rows):
    """The substrate moves the bytes; it must never change them."""
    for workers in WORKER_COUNTS:
        digests = {
            row["output_digest"]
            for row in exchange_rows
            if row["workers"] == workers
        }
        assert len(digests) == 1, f"artifacts diverged at W={workers}"


def test_exchange_pipeline_comparison(benchmark, record_result, bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    result = benchmark.pedantic(
        lambda: run_exchange_comparison(config),
        rounds=1,
        iterations=1,
    )
    record_result("s8_exchange_pipelines", result.to_table())

    # Every variant sorted and encoded the same records.
    records = {
        run.variant: run.workflow.artifacts["encode"]["records"]
        for run in result.runs()
    }
    assert len(set(records.values())) == 1
    # All serverless-compute variants beat the VM pipeline end to end.
    assert result.serverless.latency_s < result.vm.latency_s
    assert result.cache.latency_s < result.vm.latency_s
    assert result.relay.latency_s < result.vm.latency_s
    # The provisioned substrates make their sorts costlier than COS.
    assert result.cache.stage_costs["sort"] > result.serverless.stage_costs["sort"]
    assert result.relay.stage_costs["sort"] > result.serverless.stage_costs["sort"]


def test_provisioned_substrates_cost_infrastructure(exchange_rows):
    by_key = {(r["strategy"], r["workers"]): r for r in exchange_rows}
    for workers in WORKER_COUNTS:
        cos_row = by_key[("objectstore", workers)]
        for strategy in ("cache", "relay"):
            row = by_key[(strategy, workers)]
            assert row["sort_cost_usd"] > 0
            # Provisioned node/instance seconds make the substrate's
            # sort costlier than the pay-as-you-go COS one.
            assert row["sort_cost_usd"] > cos_row["sort_cost_usd"]
            # The provisioned shuffles still talk to COS (input + runs)
            # but issue far fewer storage requests than the all-to-all.
            assert row["storage_requests"] < cos_row["storage_requests"]
