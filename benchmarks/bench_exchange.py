"""Benchmark S8: object-storage vs cache-mediated data exchange.

The paper names AWS ElastiCache as the low-latency alternative to
object storage for intermediate data.  This bench runs the shuffle over
both substrates across worker counts, plus the full three-way pipeline
comparison, and asserts the predicted shape:

* at high worker counts the cache substrate's sort is faster than the
  object-storage one (the W² request traffic is where COS hurts);
* the cache rows carry the extra provisioned node-hour cost;
* end to end, all three pipelines deliver the same sorted+encoded
  artifacts — only latency and cost move.
"""

import pytest

from repro.core import ExperimentConfig, run_exchange_comparison
from repro.experiments import format_rows
from repro.experiments.sweeps import sweep_exchange

WORKER_COUNTS = (4, 8, 16, 32, 64)


@pytest.fixture(scope="module")
def exchange_rows(bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    return sweep_exchange(config, worker_counts=WORKER_COUNTS)


def test_exchange_worker_sweep(benchmark, record_result, bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    rows = benchmark.pedantic(
        lambda: sweep_exchange(config, worker_counts=WORKER_COUNTS),
        rounds=1,
        iterations=1,
    )
    headers = list(rows[0].keys())
    record_result(
        "s8_exchange_worker_sweep",
        format_rows(headers, [[row[h] for h in headers] for row in rows],
                    title="S8: sort latency by exchange substrate (3.5 GB)"),
    )

    cos = {r["workers"]: r["sort_latency_s"] for r in rows
           if r["strategy"] == "objectstore"}
    cache = {r["workers"]: r["sort_latency_s"] for r in rows
             if r["strategy"] == "cache"}
    # At the largest worker count, the cache's batched sub-ms requests
    # beat object storage's per-request latencies.
    top = WORKER_COUNTS[-1]
    assert cache[top] < cos[top]
    # The cache substrate degrades more slowly from its best point than
    # the object-storage one does (flatter right flank of the U).
    cos_degradation = cos[top] / min(cos.values())
    cache_degradation = cache[top] / min(cache.values())
    assert cache_degradation < cos_degradation


def test_exchange_pipeline_comparison(benchmark, record_result, bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    result = benchmark.pedantic(
        lambda: run_exchange_comparison(config),
        rounds=1,
        iterations=1,
    )
    record_result("s8_exchange_pipelines", result.to_table())

    # Every variant sorted and encoded the same records.
    records = {
        run.variant: run.workflow.artifacts["encode"]["records"]
        for run in result.runs()
    }
    assert len(set(records.values())) == 1
    # Both serverless variants beat the VM pipeline end to end.
    assert result.serverless.latency_s < result.vm.latency_s
    assert result.cache.latency_s < result.vm.latency_s
    # The cache's provisioned node-hours make it the costliest sort.
    assert result.cache.stage_costs["sort"] > result.serverless.stage_costs["sort"]


def test_cache_cost_includes_node_hours(exchange_rows):
    by_key = {(r["strategy"], r["workers"]): r for r in exchange_rows}
    for workers in WORKER_COUNTS:
        cache_row = by_key[("cache", workers)]
        cos_row = by_key[("objectstore", workers)]
        assert cache_row["sort_cost_usd"] > 0
        # The cache shuffle still talks to COS (input + runs) but issues
        # far fewer storage requests than the all-to-all through COS.
        assert cache_row["storage_requests"] < cos_row["storage_requests"]
