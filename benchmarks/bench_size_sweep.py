"""Benchmark S2: data-size scaling of both configurations.

The VM-supported pipeline pays a ~constant provisioning penalty, so the
serverless advantage should *shrink in relative terms but persist* as
data grows at fixed parallelism — and at small sizes the VM variant is
hopeless.  This sweep documents where the crossover would sit (if any).
"""

import pytest

from repro.core import ExperimentConfig
from repro.experiments import format_rows, sweep_size

SIZES_GB = (0.5, 1.0, 2.0, 3.5, 7.0)


def test_size_sweep(benchmark, record_result, bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    rows = benchmark.pedantic(
        lambda: sweep_size(config, sizes_gb=SIZES_GB), rounds=1, iterations=1
    )
    headers = list(rows[0].keys())
    record_result(
        "s2_size_sweep",
        format_rows(headers, [[row[h] for h in headers] for row in rows],
                    title="S2: latency vs input size (parallelism 8)"),
    )

    # Serverless wins at every size in this range.
    assert all(row["speedup"] > 1.0 for row in rows)
    # The relative gap narrows as size grows (fixed boot amortizes).
    assert rows[0]["speedup"] > rows[-1]["speedup"]
    # Latency grows monotonically with size for both variants.
    serverless = [row["serverless_latency_s"] for row in rows]
    vm = [row["vm_latency_s"] for row in rows]
    assert serverless == sorted(serverless)
    assert vm == sorted(vm)
