"""Benchmark S4: startup-time sensitivity.

The paper's latencies *include startup times*: function cold starts on
the serverless side, VM provisioning on the hybrid side.  This sweep
scales both and shows the asymmetry — cold starts are a sub-second
nuisance, VM provisioning is the hybrid pipeline's defining penalty.
"""

import pytest

from repro.core import ExperimentConfig
from repro.experiments import format_rows, sweep_startup

COLD_MULTIPLIERS = (0.5, 1.0, 2.0, 4.0)
BOOT_TIMES = (30.0, 60.0, 99.0, 180.0)


def test_startup_sensitivity(benchmark, record_result, bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    rows = benchmark.pedantic(
        lambda: sweep_startup(
            config, cold_multipliers=COLD_MULTIPLIERS, boot_times=BOOT_TIMES
        ),
        rounds=1,
        iterations=1,
    )
    headers = list(rows[0].keys())
    record_result(
        "s4_startup_sensitivity",
        format_rows(headers, [[row[h] for h in headers] for row in rows],
                    title="S4: latency vs startup knobs"),
    )

    cold = {
        row["value"]: row["latency_s"] for row in rows if row["knob"] == "cold_start_x"
    }
    boot = {
        row["value"]: row["latency_s"] for row in rows if row["knob"] == "vm_boot_s"
    }
    # Quadrupling cold starts costs the serverless pipeline only a few
    # seconds (one cold start per container, paid once).
    assert cold[4.0] - cold[0.5] < 10.0
    # VM boot feeds ~1:1 into hybrid latency.
    assert boot[180.0] - boot[30.0] == pytest.approx(150.0, rel=0.15)
    # The crossover finding: the hybrid variant loses *because of
    # provisioning*, not intrinsically — with a (hypothetical) 30 s boot
    # it would actually beat the serverless pipeline at this size, while
    # at the realistic Lithops-standalone boot it clearly loses.
    assert boot[30.0] < cold[1.0]
    assert boot[99.0] > cold[1.0]
