"""Benchmark S7: write-combining ablation (why Primula exists).

The paper attributes the viability of purely serverless shuffles to
Primula's "I/O optimizations for serverless all-to-all communication".
This ablation runs the same shuffle with and without write-combining:

* combined (Primula): ``W`` map-output PUTs, range-GETs on the reduce
  side — request count grows *linearly* in ``W``;
* naive: one object per (mapper, partition) — ``W²`` PUTs and ``W²``
  GETs, plus per-request latency paid ``W`` times per mapper.
"""

import pytest

from repro.core import ExperimentConfig
from repro.experiments import format_rows, sweep_io_ablation

WORKER_COUNTS = (8, 16, 32, 64)


def test_write_combining_ablation(benchmark, record_result, bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    rows = benchmark.pedantic(
        lambda: sweep_io_ablation(config, worker_counts=WORKER_COUNTS),
        rounds=1,
        iterations=1,
    )
    headers = list(rows[0].keys())
    record_result(
        "s7_io_ablation",
        format_rows(headers, [[row[h] for h in headers] for row in rows],
                    title="S7: Primula write-combining vs naive all-to-all"),
    )

    by_key = {
        (row["workers"], row["write_combining"]): row for row in rows
    }
    for workers in WORKER_COUNTS:
        combined = by_key[(workers, True)]
        naive = by_key[(workers, False)]
        # The naive layout issues far more PUTs (~W x more map outputs).
        assert naive["storage_puts"] > combined["storage_puts"] + workers * (workers - 2)
        # And it is never faster; at wide fan-out it is clearly slower.
        assert naive["sort_latency_s"] >= combined["sort_latency_s"] * 0.98
    # At wide fan-out (W=64: 4096 map-output objects) the per-request
    # overheads dominate and write-combining pays off clearly.
    wide_combined = by_key[(64, True)]["sort_latency_s"]
    wide_naive = by_key[(64, False)]["sort_latency_s"]
    assert wide_naive > wide_combined * 1.1
