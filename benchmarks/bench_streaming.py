"""Benchmark S10: streaming vs staged map→reduce exchange.

The staged shuffle pays a hard wave barrier on every substrate: no
reducer starts before the last mapper finished publishing.  The
streaming subsystem (`repro.shuffle.streaming`) removes it — the reduce
wave launches with the map wave and reducers consume partitions through
each substrate's readiness protocol (manifest polling on object
storage, set notification on the cache, rendezvous pulls on the relay).

S10 runs the same seeded 3.5 GB sort staged and streaming on three
substrates and asserts the subsystem's contract:

* **byte parity** — every run (staged, streaming, streaming with a
  bounded buffer) emits the identical sorted artifact; streaming moves
  *when* bytes flow, never the bytes;
* **strict win** — at byte parity, streaming strictly beats staged on
  at least one substrate (the relay's rendezvous pulls make it the
  natural fit), with positive measured map/reduce wall-clock overlap;
* **backpressure** — when the reducer buffers are bounded below what
  the map wave delivers, backpressure waits are recorded (> 0) and the
  buffer high watermark stays in the bound's neighbourhood, while byte
  parity still holds;
* **no leaks** — the relay reports zero residual reservations after
  every streaming run.
"""

import pytest

from repro.core import ExperimentConfig
from repro.experiments import format_rows
from repro.experiments.sweeps import sweep_streaming

STRATEGIES = ("objectstore", "cache", "relay")
WORKERS = 16
CHUNK_MB = 32.0
BUFFER_MB = 256.0
#: Bounded well below one map wave's delivery (W fetchers x 2 MB
#: segments arrive concurrently), so reducers *must* push back.
BOUNDED_BUFFER_MB = 4.0


@pytest.fixture(scope="module")
def streaming_rows(bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    return sweep_streaming(
        config,
        strategies=STRATEGIES,
        workers=WORKERS,
        chunk_mb=CHUNK_MB,
        buffer_mb=BUFFER_MB,
        bounded_buffer_mb=BOUNDED_BUFFER_MB,
    )


def test_streaming_sweep(benchmark, record_result, streaming_rows):
    rows = benchmark.pedantic(lambda: streaming_rows, rounds=1, iterations=1)
    headers = list(rows[0].keys())
    record_result(
        "s10_streaming",
        format_rows(
            headers, [[row[h] for h in headers] for row in rows],
            title="S10: streaming vs staged exchange "
                  f"(3.5 GB, W={WORKERS}, {CHUNK_MB:g} MB chunks)",
        ),
    )

    by_key = {(row["strategy"], row["mode"]): row for row in rows}

    # Byte parity across every (substrate, mode, buffer) combination.
    assert len({row["output_digest"] for row in rows}) == 1

    # Streaming strictly beats staged at byte parity on >= 1 substrate;
    # the relay's rendezvous pulls make it the guaranteed one.
    wins = [
        strategy
        for strategy in STRATEGIES
        if by_key[(strategy, "streaming")]["sort_latency_s"]
        < by_key[(strategy, "staged")]["sort_latency_s"]
    ]
    assert "relay" in wins and wins, "streaming never beat staged"

    for strategy in STRATEGIES:
        staged = by_key[(strategy, "staged")]
        streaming = by_key[(strategy, "streaming")]
        bounded = by_key[(strategy, "streaming-bounded")]
        # The waves genuinely overlapped...
        assert streaming["overlap_s"] > 0.0
        # ...and staged runs report no overlap (the barrier is real).
        assert staged["overlap_s"] == 0.0
        # Ample buffers never push back; bounded-below-throughput ones do.
        assert streaming["backpressure_waits"] == 0
        assert bounded["backpressure_waits"] > 0
        # The buffers were genuinely exercised, and the bounded
        # watermark respects the admission gate's hard ceiling: the
        # bound plus one in-flight segment per mapper (the gate admits
        # concurrent fetchers that each add at most one ~chunk/W
        # segment before re-checking).  Throttling realigns arrivals,
        # so it may sit slightly above or below the free-running peak.
        per_mapper_segment_mb = CHUNK_MB / WORKERS
        assert (
            0.0
            < bounded["buffer_hwm_mb"]
            <= BOUNDED_BUFFER_MB + WORKERS * per_mapper_segment_mb
        )
        # Zero residual relay reservations once the job settled.
        assert staged["residual_bytes"] == 0.0
        assert streaming["residual_bytes"] == 0.0
        assert bounded["residual_bytes"] == 0.0


def test_streaming_pays_for_overlap_with_requests(streaming_rows):
    """Streaming is not free: the readiness protocol costs requests
    (manifests + polls on COS), which is why the planner charges a
    per-chunk overhead instead of assuming perfect pipelining."""
    by_key = {(row["strategy"], row["mode"]): row for row in streaming_rows}
    cos_staged = by_key[("objectstore", "staged")]
    cos_streaming = by_key[("objectstore", "streaming")]
    assert cos_streaming["sort_cost_usd"] > cos_staged["sort_cost_usd"]
