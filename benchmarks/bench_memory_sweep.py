"""Benchmark S6: function-memory sizing of the serverless pipeline.

Memory buys CPU share below the full-share point (2048 MB on IBM CF)
but bills linearly in GB-seconds.  The paper fixes 2 GB functions; the
sweep shows why that is the sweet spot for this CPU-bound workload.
"""

import pytest

from repro.core import ExperimentConfig
from repro.experiments import format_rows, sweep_memory

MEMORY_SIZES = (512, 1024, 2048, 4096)


def test_memory_sweep(benchmark, record_result, bench_scale):
    config = ExperimentConfig(logical_scale=bench_scale)
    rows = benchmark.pedantic(
        lambda: sweep_memory(config, memory_sizes=MEMORY_SIZES),
        rounds=1,
        iterations=1,
    )
    headers = list(rows[0].keys())
    record_result(
        "s6_memory_sweep",
        format_rows(headers, [[row[h] for h in headers] for row in rows],
                    title="S6: serverless pipeline vs function memory"),
    )

    latency = {row["memory_mb"]: row["latency_s"] for row in rows}
    cost = {row["memory_mb"]: row["cost_usd"] for row in rows}
    # Below the full-CPU share, more memory means materially faster.
    assert latency[512] > 1.5 * latency[2048]
    # Beyond the full share, extra memory buys nothing but still bills.
    assert latency[4096] == pytest.approx(latency[2048], rel=0.1)
    assert cost[4096] > 1.5 * cost[2048]
