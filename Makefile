# Developer entry points.  The repo is import-ready with PYTHONPATH=src
# (no editable install needed in the offline environment).

PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)
PYTEST := PYTHONPATH=$(PYTHONPATH) python -m pytest

.PHONY: test collect bench verify

# Tier-1 suite (must stay green).
test:
	$(PYTEST) -x -q

# Collection-regression smoke: fails fast when test modules collide or
# an import breaks, without running anything.
collect:
	$(PYTEST) --collect-only -q tests benchmarks > /dev/null && echo "collection OK"

# Full benchmark harness (regenerates benchmarks/results/*.txt).
bench:
	$(PYTEST) benchmarks/ -q

verify: collect test
