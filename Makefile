# Developer entry points.  The repo is import-ready with PYTHONPATH=src
# (no editable install needed in the offline environment).

PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)
PYTEST := PYTHONPATH=$(PYTHONPATH) python -m pytest

#: Fixed seed matrix for the chaos (fault-injection) suite; widen with
#: `make test-faults CHAOS_SEEDS=1,2,3,4`.
CHAOS_SEEDS ?= 13,2021,77

.PHONY: test test-faults test-skew test-service test-obs test-cas collect bench bench-exchange bench-streaming bench-skew bench-online bench-service bench-kernels bench-obs bench-cas verify

# Tier-1 suite (must stay green).  Runs the chaos suite first with the
# pinned seed matrix, then the skew suite, then the multi-tenant
# service suite, then the observability suite, then the
# content-addressing suite, then everything (which collects them again
# under their in-repo defaults — identical by default).
test: test-faults test-skew test-service test-obs test-cas
	$(PYTEST) -x -q

# Chaos suite alone: crash-injected shuffles on all four exchange
# substrates (sharded relay fleet included), speculation parity, and
# the attempt-cancellation units.
test-faults:
	REPRO_CHAOS_SEEDS=$(CHAOS_SEEDS) $(PYTEST) -x -q \
		tests/shuffle/test_chaos_faults.py \
		tests/shuffle/test_speculation_parity.py \
		tests/cloud/test_vm_relay_cancellation.py \
		tests/cloud/test_vm_relay_fleet.py \
		tests/cloud/test_faas_cancellation.py

# Skew suite alone: weighted-boundary/sampling properties, the Zipf
# cross-substrate parity matrix, load-aware fleet routing, and the
# skew-priced planners/selector.
test-skew:
	$(PYTEST) -x -q \
		tests/shuffle/test_skew_sampler.py \
		tests/shuffle/test_skew_parity.py \
		tests/shuffle/test_skew_planner.py

# Multi-tenant service suite alone: the shared ExchangeService
# (fairness, tenant fencing, autoscaling, cost attribution) plus the
# relay-level multi-tenant primitives it rests on (read-leases, scope
# fencing, peak epochs, concurrent-sort parity).
test-service:
	$(PYTEST) -x -q \
		tests/service/test_exchange_service.py \
		tests/cloud/test_vm_relay_multitenant.py \
		tests/shuffle/test_multitenant.py

# Observability suite alone: tracer lifecycle units + hypothesis
# properties, span trees on all four substrates in both modes, chaos /
# speculation exactly-once span ends with byte parity, exporters
# (Perfetto JSON, Prometheus text), metrics registry and SLO gates.
test-obs:
	$(PYTEST) -x -q tests/obs

# Content-addressing suite alone: the CAS hash core + stable
# serialization, per-substrate dedup at byte parity (including the
# dedup-vs-LRU-eviction restore race), hash-chained run manifests with
# tamper detection, the warm-run lineage cache, and the shared
# output_digest helper the sweeps report.
test-cas:
	$(PYTEST) -x -q \
		tests/shuffle/test_cas.py \
		tests/experiments/test_output_digest.py

# Collection-regression smoke: fails fast when test modules collide or
# an import breaks, without running anything.
collect:
	$(PYTEST) --collect-only -q tests benchmarks > /dev/null && echo "collection OK"

# Full benchmark harness (regenerates benchmarks/results/*.txt).
bench:
	$(PYTEST) benchmarks/ -q

# Exchange benches only: regenerates just the S8/S8b results
# (benchmarks/results/s8_*.txt and s8b_*.txt) — the four-way substrate
# sweep, the shard-count sweep, and the pipeline comparison.  The
# streaming-vs-staged companion (S10, s10_streaming.txt) is its own
# target below: `make bench-streaming`.
bench-exchange:
	$(PYTEST) benchmarks/bench_exchange.py -q

# Streaming bench only: regenerates just the S10 result
# (benchmarks/results/s10_streaming.txt) — staged vs streaming
# execution on three substrates, with byte-parity, strict-win and
# backpressure assertions.
bench-streaming:
	$(PYTEST) benchmarks/bench_streaming.py -q

# Skew bench only: regenerates just the S11 result
# (benchmarks/results/s11_skew.txt) — CRC vs load-aware fleet routing
# on a Zipf workload, with byte-parity, hot-shard, strict-win and
# planner-tracking assertions.
bench-skew:
	$(PYTEST) benchmarks/bench_skew.py -q

# Online bench only: regenerates just the S12 result
# (benchmarks/results/s12_online.txt) — mid-stream re-selection vs all
# eight static decisions under a recovering storage brownout, with
# strict-win, mid-stream-switch, byte-parity, chunk-reroute and
# relay-fill assertions.
bench-online:
	$(PYTEST) benchmarks/bench_online.py -q

# Service bench only: regenerates just the S13 result
# (benchmarks/results/s13_service.txt) — one shared autoscaled
# ExchangeService vs provision-per-job on an open-loop arrival
# schedule, with strict cost win, p95, scale-up/down, byte-parity,
# fairness and cost-attribution assertions.
bench-service:
	$(PYTEST) benchmarks/bench_service.py -q

# Kernel bench only: regenerates the S14 result
# (benchmarks/results/s14_kernels.txt) — scalar vs vectorized record
# kernels at byte parity, with per-shape speedup floors — then holds
# the harness wall-clock (results/bench_wallclock.json, written by
# benchmarks/conftest.py) against the committed baseline.
bench-kernels:
	$(PYTEST) benchmarks/bench_kernels.py -q
	python benchmarks/check_wallclock.py

# Observability bench only: regenerates the S15 result
# (benchmarks/results/s15_obs.txt) — tracing-on vs tracing-off
# wall-clock on the auto_sort pipeline, gated at <=5% overhead with
# identical simulated outcomes — plus the CI observability artifacts
# (results/s8_trace.json Perfetto trace, results/s8_metrics.txt
# Prometheus snapshot).
bench-obs:
	$(PYTEST) benchmarks/bench_obs.py -q

# Content-addressing bench only: regenerates the S16 results
# (benchmarks/results/s16_cas.txt dedup matrix, s16_lineage.txt and the
# s16_run_manifest.json replay artifact) — cold vs warm sorts on every
# substrate x mode with dedup-at-byte-parity assertions, the >=10x
# lineage-cache win in dollars and latency, and replay-verify
# PASS/tamper-FAIL gates.
bench-cas:
	$(PYTEST) benchmarks/bench_cas.py -q

verify: collect test
