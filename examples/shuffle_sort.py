#!/usr/bin/env python3
"""Sorting through object storage with the Primula-like shuffle.

Shows the shuffle operator on raw binary records — independent of the
genomics workload — including the planner's predicted worker-count
curve and the real sorted output validation.

Run: ``python examples/shuffle_sort.py``
"""

import random

from repro.cloud import GB, Cloud
from repro.executor import FunctionExecutor
from repro.shuffle import FixedWidthCodec, ShuffleSort, plan_shuffle


def main() -> None:
    cloud = Cloud.fresh(seed=7)
    cloud.store.ensure_bucket("data")

    # --- what does the planner think about a 3.5 GB shuffle? -----------
    plan = plan_shuffle(3.5 * GB, cloud.profile)
    print("planner curve for a 3.5 GB shuffle (predicted seconds):")
    for workers in (2, 4, 8, 16, 32, 64, 128):
        point = plan.point(workers)
        bar = "#" * max(1, int(point.total_s / 2))
        print(f"  W={workers:>4}  {point.total_s:7.1f}s  {bar}")
    print(f"planner optimum: {plan.workers} workers\n")

    # --- actually sort some data ---------------------------------------
    rng = random.Random(1)
    codec = FixedWidthCodec(record_size=16, key_bytes=8)
    payload = b"".join(
        rng.getrandbits(64).to_bytes(8, "big") + bytes(8) for _ in range(100_000)
    )
    executor = FunctionExecutor(cloud)
    operator = ShuffleSort(executor, codec)

    def driver():
        yield cloud.store.put("data", "records.bin", payload)
        return (yield operator.sort("data", "records.bin", workers=8))

    result = cloud.sim.run_process(driver())
    print(
        f"sorted {result.total_records:,} records with {result.workers} "
        f"workers in {result.duration_s:.2f} virtual seconds"
    )

    merged = b"".join(cloud.store.peek("data", run.key) for run in result.runs)
    keys = [codec.key(record) for record in codec.split(merged)]
    print(f"output globally sorted: {keys == sorted(keys)}")
    print(f"object store requests: {cloud.store.stats.total_requests} "
          f"(write-combining keeps the map phase at {result.workers} PUTs)")


if __name__ == "__main__":
    main()
