#!/usr/bin/env python3
"""The paper's central claim, visualized: worker count vs sort latency.

"Object storage performs well when the appropriate number of functions
is used in I/O-bound stages" — this example sweeps the shuffle's worker
count, plots the measured U-curve as ASCII, and overlays the analytic
planner's prediction (Primula's on-the-fly choice).

Run: ``python examples/worker_sweep.py [logical_scale]``
(a minute or two at the default scale; pass 8192 for a quick pass)
"""

import sys

from repro.core import ExperimentConfig
from repro.experiments import sweep_workers


def main() -> None:
    logical_scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1024.0
    config = ExperimentConfig(logical_scale=logical_scale)
    rows = sweep_workers(config, worker_counts=(2, 4, 8, 16, 32, 64))

    print(f"sort latency vs workers ({config.size_gb:g} GB logical input)\n")
    peak = max(row["sort_latency_s"] for row in rows)
    for row in rows:
        bar = "#" * max(1, round(40 * row["sort_latency_s"] / peak))
        print(
            f"  W={row['workers']:>3}  measured {row['sort_latency_s']:7.1f}s "
            f"(planner: {row['planner_predicted_s']:6.1f}s)  {bar}"
        )
    optimum = min(rows, key=lambda row: row["sort_latency_s"])
    print(
        f"\nmeasured optimum: {optimum['workers']} workers; "
        f"planner chose: {rows[0]['planner_optimum']}"
    )
    print(
        "too few workers → bandwidth-starved; too many → request latency\n"
        "and the object store's ops/s ceiling dominate."
    )


if __name__ == "__main__":
    main()
