#!/usr/bin/env python3
"""The paper's headline experiment: object storage- vs VM-driven sort.

Runs the METHCOMP genomics pipeline both ways on a synthetic
ENCFF988BSW-like methylome and prints the Table 1 comparison plus the
per-stage breakdowns from the job tracker (the paper's cost-breakdown
UI, headless).

Run: ``python examples/methcomp_pipeline.py [logical_scale]``

``logical_scale`` (default 1024) divides the real bytes generated: the
performance model still sees the paper's 3.5 GB, but the demo finishes
in seconds.  Use 256 for a heavier, higher-fidelity run.
"""

import sys

from repro.core import ExperimentConfig, run_table1


def main() -> None:
    logical_scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1024.0
    config = ExperimentConfig(logical_scale=logical_scale)
    real_mb = config.real_bytes / (1 << 20)
    print(
        f"simulating a {config.size_gb:g} GB methylome "
        f"({real_mb:.1f} MB of real data at scale {logical_scale:g}) ...\n"
    )

    result = run_table1(config)
    print(result.to_table())

    print("\n--- purely serverless: stage breakdown " + "-" * 24)
    print(result.serverless.workflow.tracker.render())
    print("\n--- VM-supported: stage breakdown " + "-" * 29)
    print(result.vm.workflow.tracker.render())

    encode = result.serverless.workflow.artifacts["encode"]
    print(
        f"\nMETHCOMP compressed {encode['raw_bytes']:,} B to "
        f"{encode['compressed_bytes']:,} B "
        f"({encode['ratio']:.1f}x) across {encode['workers']} functions"
    )


if __name__ == "__main__":
    main()
