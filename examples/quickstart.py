#!/usr/bin/env python3
"""Quickstart: run serverless functions against the simulated cloud.

Demonstrates the Lithops-like programming model in five minutes:

1. build a simulated region (object store + FaaS + VMs + billing);
2. ``map`` a plain Python function over some data;
3. run a *simulation-aware* function that does storage I/O and modeled
   compute;
4. read the itemized bill.

Run: ``python examples/quickstart.py``
"""

from repro.cloud import Cloud
from repro.executor import FunctionExecutor


def word_count(text):
    """A plain Python callable — runs verbatim inside the 'cloud'."""
    return len(text.split())


def grep_worker(ctx, task):
    """A simulation-aware function: note the explicit storage/compute.

    Generator functions receive a context whose storage and compute
    calls advance *virtual* time according to the performance model.
    """
    data = yield ctx.storage.get(task["bucket"], task["key"])
    needle = task["needle"].encode()
    matches = [line for line in data.splitlines() if needle in line]
    yield ctx.compute_bytes(len(data), throughput_bps=200e6)
    return len(matches)


def main() -> None:
    cloud = Cloud.fresh(seed=42)
    executor = FunctionExecutor(cloud, runtime_memory_mb=2048)

    documents = [
        "the quick brown fox",
        "jumps over the lazy dog",
        "serverless functions are fun",
        "object storage is the data plane",
    ]

    def driver():
        # --- plain map -------------------------------------------------
        futures = yield executor.map(word_count, documents)
        counts = yield executor.get_result(futures)
        print(f"word counts: {counts}")

        # --- storage + sim-aware function -------------------------------
        corpus = ("\n".join(documents) * 1000).encode()
        yield cloud.store.put("lithops-staging", "corpus.txt", corpus)
        future = yield executor.call_async(
            grep_worker,
            {"bucket": "lithops-staging", "key": "corpus.txt", "needle": "the"},
        )
        matches = yield executor.get_result(future)
        print(f"lines containing 'the': {matches}")

    cloud.sim.run_process(driver())
    cloud.finalize()

    print(f"\nvirtual time elapsed: {cloud.sim.now:.2f}s")
    print(f"cold starts: {cloud.faas.stats.cold_starts}, "
          f"warm starts: {cloud.faas.stats.warm_starts}")
    print("\nitemized bill:")
    print(cloud.meter.report())


if __name__ == "__main__":
    main()
