#!/usr/bin/env python3
"""Declarative pipelines: define the workflow in JSON, run it, track it.

The paper augments Lithops with "a module to create pipelines from JSON
configuration files" and a job-tracking UI with per-stage cost
breakdown.  This example does exactly that: a JSON document describes
the DAG (including a verification stage), the engine executes it on the
simulated cloud, and the tracker prints progress and the bill.

Run: ``python examples/declarative_workflow.py``
"""

import json

from repro.cloud.environment import Cloud
from repro.core import ExperimentConfig, stage_input
from repro.sim import Simulator
from repro.workflows import WorkflowEngine, parse_spec, render_dag

WORKFLOW_JSON = json.dumps(
    {
        "name": "methcomp-json-demo",
        "bucket": "pipeline",
        "stages": [
            {
                "name": "ingest",
                "kind": "dataset_ref",
                "params": {"key": "input/methylome.bed"},
            },
            {
                "name": "sort",
                "kind": "shuffle_sort",
                "after": ["ingest"],
                "params": {"workers": 4},
            },
            {
                "name": "encode",
                "kind": "methcomp_encode",
                "after": ["sort"],
            },
            {
                "name": "verify",
                "kind": "methcomp_verify",
                "after": ["encode"],
            },
        ],
    },
    indent=2,
)


def main() -> None:
    print("workflow definition (JSON):")
    print(WORKFLOW_JSON)

    dag = parse_spec(WORKFLOW_JSON)
    print("\nworkflow DAG:")
    print(render_dag(dag))

    config = ExperimentConfig(size_gb=1.0, logical_scale=1024.0)
    cloud = Cloud(Simulator(seed=11), config.make_profile())
    stage_input(cloud, config, "pipeline", "input/methylome.bed")

    engine = WorkflowEngine(cloud, dag)
    result = engine.execute()

    print("\nexecution log:")
    for line in engine.tracker.log:
        print("  " + line)

    print("\njob tracker (progress + per-stage cost breakdown):")
    print(engine.tracker.render())
    print(f"\nmakespan: {result.makespan_s:.2f} virtual seconds")
    print(f"verification: {result.artifacts['verify']}")


if __name__ == "__main__":
    main()
