#!/usr/bin/env python3
"""Serverless GroupBy: per-chromosome methylation statistics.

The paper names "GroupBy and OrderBy" as the all-to-all stages that make
or break serverless workflows.  This example runs a GroupBy over the
synthetic methylome entirely through object storage: records are
range-partitioned by chromosome across functions, and each reducer
computes per-chromosome aggregate statistics.

Run: ``python examples/groupby_stats.py``
"""

from repro.cloud import Cloud
from repro.executor import FunctionExecutor
from repro.methcomp import MethylomeGenerator, serialize_records
from repro.shuffle import LineRecordCodec, ShuffleGroupBy


def chrom_key(line: bytes) -> bytes:
    """Grouping key: the chromosome column."""
    return line.split(b"\t", 1)[0]


def methylation_stats(chrom: bytes, records: list[bytes]) -> list[bytes]:
    """Aggregate one chromosome: site count, mean coverage, mean pct."""
    coverages = []
    percents = []
    for line in records:
        fields = line.rstrip(b"\n").split(b"\t")
        coverages.append(int(fields[9]))
        percents.append(int(fields[10]))
    summary = (
        f"{chrom.decode()}\tsites={len(records)}\t"
        f"mean_coverage={sum(coverages) / len(coverages):.1f}\t"
        f"mean_pct_meth={sum(percents) / len(percents):.1f}\n"
    )
    return [summary.encode()]


def main() -> None:
    cloud = Cloud.fresh(seed=9)
    cloud.store.ensure_bucket("data")
    payload = serialize_records(MethylomeGenerator(seed=9).shuffled_records(30_000))

    executor = FunctionExecutor(cloud)
    operator = ShuffleGroupBy(executor, LineRecordCodec(chrom_key), chrom_key)

    def driver():
        yield cloud.store.put("data", "methylome.bed", payload)
        return (
            yield operator.group_by(
                "data", "methylome.bed", methylation_stats, workers=6
            )
        )

    result = cloud.sim.run_process(driver())
    print(
        f"grouped {result.records_in:,} records into {result.total_groups} "
        f"chromosomes with {result.workers} functions "
        f"in {result.duration_s:.2f} virtual seconds\n"
    )
    for out in result.outputs:
        body = cloud.store.peek("data", out["output_key"])
        for line in body.decode().splitlines():
            print("  " + line)
    print(f"\ntotal cost: ${cloud.meter.total_usd:.6f}")


if __name__ == "__main__":
    main()
