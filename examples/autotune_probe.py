#!/usr/bin/env python3
"""On-the-fly shuffle tuning: probe the region, then plan.

Primula picks the number of shuffle functions "on the fly".  This
example shows why that beats static calibration: the same planner runs
on (a) last month's calibration constants and (b) the numbers a single
probe function just measured — on a region whose NICs are silently
throttled to 8 MB/s.

Run: ``python examples/autotune_probe.py``
"""

from repro.cloud import Cloud
from repro.core import ExperimentConfig
from repro.core.experiment import stage_input
from repro.executor import FunctionExecutor
from repro.shuffle.adaptive import OnlineTuner
from repro.shuffle.planner import plan_shuffle
from repro.sim import Simulator

CANDIDATES = (4, 8, 16, 32, 64, 128)


def main() -> None:
    config = ExperimentConfig(logical_scale=1024.0)

    # The region everyone *thinks* they are on...
    static_plan = plan_shuffle(
        config.logical_bytes,
        config.make_profile(),
        config.workload.shuffle_cost_model(),
        candidates=CANDIDATES,
    )
    print(f"static calibration picks:  {static_plan.workers:>4} workers "
          f"(predicts {static_plan.predicted_s:.1f} s)")

    # ...and the region they are actually on: NICs throttled to 8 MB/s.
    profile = config.make_profile()
    profile.faas.instance_bandwidth = 8e6
    cloud = Cloud(Simulator(seed=7), profile)
    stage_input(cloud, config, "pipeline", "input/methylome.bed")
    executor = FunctionExecutor(cloud, bucket="pipeline")
    tuner = OnlineTuner(executor)

    def driver():
        return (
            yield tuner.tune(
                "pipeline",
                config.logical_bytes,
                config.workload.shuffle_cost_model(),
                candidates=CANDIDATES,
            )
        )

    report, tuned_plan = cloud.sim.run_process(driver())
    print(f"probe measured:            {report.describe()}")
    print(f"online tuner picks:        {tuned_plan.workers:>4} workers "
          f"(predicts {tuned_plan.predicted_s:.1f} s)")
    print()
    if tuned_plan.workers > static_plan.workers:
        print("With less bandwidth per function, the tuner spreads the "
              "shuffle over more functions —")
        print("exploiting the object store's aggregate bandwidth, exactly "
              "the paper's point.")


if __name__ == "__main__":
    main()
