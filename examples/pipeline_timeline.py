#!/usr/bin/env python3
"""Draw where the time goes: Gantt charts of both pipeline incarnations.

The paper's demo shows a live job-tracking UI; this example renders the
equivalent offline picture from the simulation trace.  Side by side, the
two charts make the paper's Table 1 visually obvious:

* the purely serverless pipeline is a wall of short, parallel function
  bars (cold starts marked with ``*``);
* the hybrid pipeline is dominated by one long VM bar whose first ~100
  seconds are provisioning, before any byte is sorted.

Run: ``python examples/pipeline_timeline.py [logical_scale]``
"""

import sys

from repro.cloud import Cloud
from repro.core import (
    PURE_SERVERLESS,
    VM_SUPPORTED,
    ExperimentConfig,
    run_pipeline,
)
from repro.sim import Simulator
from repro.workflows import workflow_gantt


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 2048.0
    config = ExperimentConfig(logical_scale=scale, parallelism=4)

    for variant in (PURE_SERVERLESS, VM_SUPPORTED):
        cloud = Cloud(
            Simulator(seed=config.seed, trace=True), config.make_profile()
        )
        run = run_pipeline(config, variant, cloud=cloud)
        print(workflow_gantt(run.workflow.tracker, cloud.sim.timeline,
                             max_rows=28))
        print(f"end-to-end: {run.latency_s:.2f} s, ${run.cost_usd:.4f}")
        print()


if __name__ == "__main__":
    main()
