#!/usr/bin/env python3
"""Interactive top-k genomics query with limit pushdown.

OrderBy is the paper's *other* I/O-bound all-to-all stage.  This example
ranks a synthetic whole-genome methylome by read coverage and fetches
only the 15 deepest-covered CpG sites — a typical quality-control query
("are my high-coverage sites all on chrM?").

Because the driver learns per-partition record counts from the map
phase, a LIMIT 15 query runs just one of the 8 reduce partitions and
truncates it — compare the request counts printed for the full ranking
vs the top-k one.

Run: ``python examples/topk_query.py [records]``
"""

import sys

from repro.cloud import Cloud
from repro.executor import FunctionExecutor
from repro.methcomp.bed import serialize_records
from repro.methcomp.datagen import MethylomeGenerator
from repro.shuffle import LineRecordCodec, ShuffleOrderBy


def coverage_key(line: bytes):
    """Rank bedMethyl lines by read coverage (column 10)."""
    fields = line.split(b"\t")
    return (int(fields[9]), fields[0], int(fields[1]))


def run_query(payload: bytes, limit: int | None):
    cloud = Cloud.fresh(seed=99)
    cloud.store.ensure_bucket("genomics")
    executor = FunctionExecutor(cloud, bucket="genomics")
    operator = ShuffleOrderBy(
        executor, LineRecordCodec(coverage_key), descending=True
    )

    def driver():
        yield cloud.store.put("genomics", "methylome.bed", payload)
        return (
            yield operator.order(
                "genomics", "methylome.bed", workers=8, limit=limit
            )
        )

    result = cloud.sim.run_process(driver())
    ranked = b"".join(
        cloud.store.peek("genomics", run.key) for run in result.runs
    )
    return result, ranked, cloud.store.stats.total_requests


def main() -> None:
    records = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    generator = MethylomeGenerator(seed=7)
    payload = serialize_records(generator.records(records))
    print(f"methylome: {records} CpG sites, {len(payload) / 1e6:.1f} MB")

    full, _ranked, full_requests = run_query(payload, limit=None)
    topk, ranked, topk_requests = run_query(payload, limit=15)

    print()
    print("top 15 sites by read coverage:")
    print(f"{'chrom':<8} {'start':>12} {'coverage':>9} {'meth %':>7}")
    for line in ranked.splitlines():
        fields = line.split(b"\t")
        print(
            f"{fields[0].decode():<8} {int(fields[1]):>12} "
            f"{int(fields[9]):>9} {int(fields[10]):>7}"
        )

    print()
    print(
        f"full ranking:  {full.emitted_records} records, "
        f"{full_requests} storage requests, {full.duration_s:.2f} s"
    )
    print(
        f"top-15 query:  {topk.emitted_records} records, "
        f"{topk_requests} storage requests, {topk.duration_s:.2f} s "
        f"({topk.pruned_partitions} of {topk.workers} partitions pruned)"
    )


if __name__ == "__main__":
    main()
