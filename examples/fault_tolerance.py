#!/usr/bin/env python3
"""Fault tolerance in serverless fan-outs: retries and backup tasks.

Two mechanisms keep a wide map job healthy on a flaky platform:

* **crash retries** — the executor re-invokes calls the platform killed
  (Lithops does the same); the job completes losslessly, at a cost;
* **speculative execution** — once most calls finish, stragglers get a
  backup attempt; whichever finishes first wins, cutting tail latency.

This example injects crashes and heavy-tailed cold starts, then prints
the latency/cost of each mitigation combination.

Run: ``python examples/fault_tolerance.py``
"""

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.executor import FunctionExecutor, SpeculationPolicy


def crunch(x):
    """The map payload; its runtime comes from the cpu model below."""
    return x * x


def run_job(crash_probability: float, speculation: SpeculationPolicy | None):
    profile = ibm_us_east()
    profile.faas.cold_start.mean = 1.5
    profile.faas.cold_start.sigma = 1.4  # occasional pathological cold start
    cloud = Cloud.fresh(seed=11, profile=profile)
    cloud.faas.crash_probability = crash_probability
    cloud.faas.crash_latest_s = 6.0
    executor = FunctionExecutor(cloud, speculation=speculation)

    def driver():
        futures = yield executor.map(
            crunch, list(range(48)), cpu_model=lambda _x: 5.0
        )
        return (yield executor.get_result(futures))

    results = cloud.sim.run_process(driver())
    assert results == [x * x for x in range(48)], "lost results!"
    return {
        "latency_s": cloud.sim.now,
        "cost_usd": cloud.meter.total_usd,
        "crashes": cloud.faas.stats.crashes,
        "backup_tasks": executor.speculative_launches,
    }


def main() -> None:
    policy = SpeculationPolicy(quantile=0.7, latency_multiplier=1.3)
    configurations = [
        ("healthy, no speculation", 0.0, None),
        ("healthy, speculation", 0.0, policy),
        ("crashy (p=0.2), no speculation", 0.2, None),
        ("crashy (p=0.2), speculation", 0.2, policy),
    ]
    print(f"{'configuration':<34} {'latency':>9} {'cost':>9} "
          f"{'crashes':>8} {'backups':>8}")
    print("-" * 74)
    for label, crash_probability, speculation in configurations:
        row = run_job(crash_probability, speculation)
        print(
            f"{label:<34} {row['latency_s']:>8.2f}s "
            f"${row['cost_usd']:>7.5f} {row['crashes']:>8} "
            f"{row['backup_tasks']:>8}"
        )
    print()
    print("All 48 results verified correct in every configuration —")
    print("failures cost time and money, never data.")


if __name__ == "__main__":
    main()
