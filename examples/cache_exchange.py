#!/usr/bin/env python3
"""Three-way data exchange: object storage vs VM vs in-memory cache.

The paper compares two ways to run the METHCOMP sort stage (through
object storage with many functions, or inside one big VM) and *mentions*
a third — "alternatives such as AWS ElastiCache".  This example runs all
three on the same synthetic 3.5 GB methylome and prints the paper-style
latency/cost table, plus the per-stage breakdown of the cache variant.

What to look for in the output:

* the cache-supported sort is the fastest of the three — sub-millisecond
  batched requests absorb the all-to-all traffic;
* it is also the most expensive — the cache cluster bills node-seconds
  whether or not requests flow;
* object storage stays the "comfortable" default: nearly as fast here,
  cheapest, and with nothing to provision or size.

Run: ``python examples/cache_exchange.py``
"""

from repro.core import ExperimentConfig, run_exchange_comparison


def main() -> None:
    config = ExperimentConfig(
        logical_scale=1024.0,  # simulate 3.5 GB with ~3.4 MB of real data
        parallelism=8,
    )
    result = run_exchange_comparison(config)
    print(result.to_table())

    print()
    print("Cache-supported pipeline, stage by stage:")
    print(result.cache.workflow.tracker.render())

    sort_artifact = result.cache.workflow.artifacts["sort"]
    print()
    print(
        f"cache cluster: {sort_artifact['cache_nodes']} x "
        f"{sort_artifact['cache_node_type']}, peak fill "
        f"{sort_artifact['cache_peak_fill']:.1%}"
    )

    print()
    print("Itemized bill of the cache run:")
    print(result.cache.cloud.meter.report())


if __name__ == "__main__":
    main()
