"""Tests for the retrying storage client and serializer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.cloud.storageview import BoundStorage
from repro.errors import StorageError
from repro.storage import Storage, chunk_bytes, concat_chunks, deserialize, serialize
from repro.storage.api import RetryPolicy


@pytest.fixture
def cloud():
    cloud = Cloud.fresh(seed=17, profile=ibm_us_east(deterministic=True))
    cloud.store.ensure_bucket("bucket")
    return cloud


@pytest.fixture
def client(cloud):
    return Storage(cloud.sim, BoundStorage(cloud.store, None))


class TestBasicOps:
    def test_put_get_roundtrip(self, cloud, client):
        def scenario():
            yield client.put_object("bucket", "k", b"payload")
            return (yield client.get_object("bucket", "k"))

        assert cloud.sim.run_process(scenario()) == b"payload"

    def test_pickle_roundtrip(self, cloud, client):
        value = {"nested": [1, 2, (3, 4)], "name": "pipeline"}

        def scenario():
            yield client.put_pickle("bucket", "k", value)
            return (yield client.get_pickle("bucket", "k"))

        assert cloud.sim.run_process(scenario()) == value

    def test_text_roundtrip(self, cloud, client):
        def scenario():
            yield client.put_text("bucket", "k", "héllo wörld")
            return (yield client.get_text("bucket", "k"))

        assert cloud.sim.run_process(scenario()) == "héllo wörld"

    def test_range_read(self, cloud, client):
        def scenario():
            yield client.put_object("bucket", "k", b"0123456789")
            return (yield client.get_object_range("bucket", "k", 2, 6))

        assert cloud.sim.run_process(scenario()) == b"2345"

    def test_list_and_delete(self, cloud, client):
        def scenario():
            yield client.put_object("bucket", "a/1", b"x")
            yield client.put_object("bucket", "a/2", b"x")
            yield client.delete_object("bucket", "a/1")
            return (yield client.list_keys("bucket", "a/"))

        assert cloud.sim.run_process(scenario()) == ["a/2"]


class TestRetry:
    def _throttled_cloud(self):
        profile = ibm_us_east(deterministic=True)
        profile.objectstore.ops_per_second = 50.0
        profile.objectstore.ops_burst = 5.0
        profile.objectstore.slowdown_after_s = 0.2
        cloud = Cloud.fresh(seed=17, profile=profile)
        cloud.store.ensure_bucket("bucket")
        return cloud

    def test_slowdown_retried_transparently(self):
        cloud = self._throttled_cloud()
        client = Storage(cloud.sim, BoundStorage(cloud.store, None))
        outcomes = []

        def worker(index):
            yield client.put_object("bucket", f"k{index}", b"x")
            outcomes.append(index)

        for index in range(120):
            cloud.sim.process(worker(index))
        cloud.sim.run()
        assert len(outcomes) == 120  # every request eventually lands
        assert client.retries > 0  # and some were throttled + retried

    def test_retries_exhausted_raises_storage_error(self):
        cloud = self._throttled_cloud()
        policy = RetryPolicy(max_attempts=1)
        client = Storage(cloud.sim, BoundStorage(cloud.store, None), retry=policy)
        failures = []

        def worker(index):
            try:
                yield client.put_object("bucket", f"k{index}", b"x")
            except StorageError:
                failures.append(index)

        for index in range(120):
            cloud.sim.process(worker(index))
        cloud.sim.run()
        assert failures  # with a single attempt, throttling surfaces

    def test_backoff_delays_grow(self):
        policy = RetryPolicy(base_delay_s=1.0, max_delay_s=60.0, multiplier=2.0)

        class FakeRng:
            def uniform(self, low, high):
                return high  # deterministic: always the ceiling

        rng = FakeRng()
        delays = [policy.delay(attempt, rng) for attempt in (1, 2, 3, 4)]
        assert delays == [1.0, 2.0, 4.0, 8.0]

    def test_backoff_caps_at_max_delay(self):
        policy = RetryPolicy(base_delay_s=1.0, max_delay_s=5.0, multiplier=10.0)

        class FakeRng:
            def uniform(self, low, high):
                return high

        assert policy.delay(5, FakeRng()) == 5.0


class TestSerializer:
    def test_roundtrip_plain_data(self):
        value = {"a": [1, 2, 3], "b": b"bytes"}
        assert deserialize(serialize(value)) == value

    def test_roundtrip_lambda(self):
        fn = deserialize(serialize(lambda x: x + 1))
        assert fn(41) == 42

    def test_roundtrip_closure(self):
        offset = 100

        def add_offset(x):
            return x + offset

        fn = deserialize(serialize(add_offset))
        assert fn(1) == 101

    @given(st.binary(max_size=10_000), st.integers(1, 1_000))
    def test_chunk_concat_roundtrip(self, data, chunk_size):
        chunks = list(chunk_bytes(data, chunk_size))
        assert concat_chunks(chunks) == data
        assert all(len(chunk) <= chunk_size for chunk in chunks)

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(Exception):
            list(chunk_bytes(b"xx", 0))
