"""Tests for the retrying storage client and serializer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.cloud.storageview import BoundStorage
from repro.errors import StorageError
from repro.storage import Storage, chunk_bytes, concat_chunks, deserialize, serialize
from repro.storage.api import RetryPolicy


@pytest.fixture
def cloud():
    cloud = Cloud.fresh(seed=17, profile=ibm_us_east(deterministic=True))
    cloud.store.ensure_bucket("bucket")
    return cloud


@pytest.fixture
def client(cloud):
    return Storage(cloud.sim, BoundStorage(cloud.store, None))


class TestBasicOps:
    def test_put_get_roundtrip(self, cloud, client):
        def scenario():
            yield client.put_object("bucket", "k", b"payload")
            return (yield client.get_object("bucket", "k"))

        assert cloud.sim.run_process(scenario()) == b"payload"

    def test_pickle_roundtrip(self, cloud, client):
        value = {"nested": [1, 2, (3, 4)], "name": "pipeline"}

        def scenario():
            yield client.put_pickle("bucket", "k", value)
            return (yield client.get_pickle("bucket", "k"))

        assert cloud.sim.run_process(scenario()) == value

    def test_text_roundtrip(self, cloud, client):
        def scenario():
            yield client.put_text("bucket", "k", "héllo wörld")
            return (yield client.get_text("bucket", "k"))

        assert cloud.sim.run_process(scenario()) == "héllo wörld"

    def test_range_read(self, cloud, client):
        def scenario():
            yield client.put_object("bucket", "k", b"0123456789")
            return (yield client.get_object_range("bucket", "k", 2, 6))

        assert cloud.sim.run_process(scenario()) == b"2345"

    def test_list_and_delete(self, cloud, client):
        def scenario():
            yield client.put_object("bucket", "a/1", b"x")
            yield client.put_object("bucket", "a/2", b"x")
            yield client.delete_object("bucket", "a/1")
            return (yield client.list_keys("bucket", "a/"))

        assert cloud.sim.run_process(scenario()) == ["a/2"]


class TestRetry:
    def _throttled_cloud(self):
        profile = ibm_us_east(deterministic=True)
        profile.objectstore.ops_per_second = 50.0
        profile.objectstore.ops_burst = 5.0
        profile.objectstore.slowdown_after_s = 0.2
        cloud = Cloud.fresh(seed=17, profile=profile)
        cloud.store.ensure_bucket("bucket")
        return cloud

    def test_slowdown_retried_transparently(self):
        cloud = self._throttled_cloud()
        client = Storage(cloud.sim, BoundStorage(cloud.store, None))
        outcomes = []

        def worker(index):
            yield client.put_object("bucket", f"k{index}", b"x")
            outcomes.append(index)

        for index in range(120):
            cloud.sim.process(worker(index))
        cloud.sim.run()
        assert len(outcomes) == 120  # every request eventually lands
        assert client.retries > 0  # and some were throttled + retried

    def test_retries_exhausted_raises_storage_error(self):
        cloud = self._throttled_cloud()
        policy = RetryPolicy(max_attempts=1)
        client = Storage(cloud.sim, BoundStorage(cloud.store, None), retry=policy)
        failures = []

        def worker(index):
            try:
                yield client.put_object("bucket", f"k{index}", b"x")
            except StorageError:
                failures.append(index)

        for index in range(120):
            cloud.sim.process(worker(index))
        cloud.sim.run()
        assert failures  # with a single attempt, throttling surfaces

    def test_backoff_delays_grow(self):
        policy = RetryPolicy(base_delay_s=1.0, max_delay_s=60.0, multiplier=2.0)

        class FakeRng:
            def uniform(self, low, high):
                return high  # deterministic: always the ceiling

        rng = FakeRng()
        delays = [policy.delay(attempt, rng) for attempt in (1, 2, 3, 4)]
        assert delays == [1.0, 2.0, 4.0, 8.0]

    def test_backoff_caps_at_max_delay(self):
        policy = RetryPolicy(base_delay_s=1.0, max_delay_s=5.0, multiplier=10.0)

        class FakeRng:
            def uniform(self, low, high):
                return high

        assert policy.delay(5, FakeRng()) == 5.0


class _FlakyBackend:
    """Backend whose GETs fail with SlowDown a fixed number of times.

    Stands in for a BoundStorage so ``Storage._retry_loop`` can be
    exercised deterministically, without tuning a throttled store.
    """

    def __init__(self, sim, failures: int, payload: bytes = b"payload"):
        self.sim = sim
        self.failures = failures
        self.payload = payload
        self.calls = 0

    def get(self, bucket, key):
        from repro.cloud.objectstore.errors import SlowDown
        from repro.sim import SimEvent

        event = SimEvent(self.sim, name=f"flaky.get:{key}")
        self.calls += 1
        if self.calls <= self.failures:
            event.fail(SlowDown(1.0))
        else:
            event.succeed(self.payload)
        return event


class TestRetryLoopExhaustion:
    """Direct coverage of Storage._retry_loop bookkeeping."""

    def _sim(self, seed=17):
        from repro.sim import Simulator

        return Simulator(seed=seed)

    def test_retries_counter_counts_each_transient_failure(self):
        sim = self._sim()
        backend = _FlakyBackend(sim, failures=3)
        client = Storage(sim, backend, retry=RetryPolicy(max_attempts=6))

        def scenario():
            return (yield client.get_object("bucket", "k"))

        assert sim.run_process(scenario()) == b"payload"
        assert backend.calls == 4  # 3 failures + the success
        assert client.retries == 3

    def test_max_attempts_surfaces_the_underlying_slowdown(self):
        sim = self._sim()
        backend = _FlakyBackend(sim, failures=10**9)
        policy = RetryPolicy(max_attempts=4)
        client = Storage(sim, backend, retry=policy)

        def scenario():
            return (yield client.get_object("bucket", "k"))

        with pytest.raises(StorageError, match="after 4 attempts") as excinfo:
            sim.run_process(scenario())
        # The wrapped message names the throttling error it gave up on.
        assert "request rate exceeded" in str(excinfo.value)
        assert backend.calls == policy.max_attempts
        assert client.retries == policy.max_attempts - 1

    def test_backoff_draws_come_from_the_named_rng_stream(self):
        """The exhaustion run's elapsed time must replay exactly from a
        fresh ``<name>.backoff`` stream with the same root seed — the
        retry loop draws from no other randomness source."""
        policy = RetryPolicy(max_attempts=5)
        sim = self._sim(seed=99)
        backend = _FlakyBackend(sim, failures=10**9)
        client = Storage(sim, backend, retry=policy, name="myclient")

        def scenario():
            try:
                yield client.get_object("bucket", "k")
            except StorageError:
                pass

        sim.run_process(scenario())

        replay = self._sim(seed=99)
        stream = replay.rng.stream("myclient.backoff")
        expected = sum(
            policy.delay(attempt, stream)
            for attempt in range(1, policy.max_attempts)
        )
        assert sim.now == pytest.approx(expected)
        # A different client name seeds a different stream.
        other = self._sim(seed=99).rng.stream("otherclient.backoff")
        different = sum(
            policy.delay(attempt, other)
            for attempt in range(1, policy.max_attempts)
        )
        assert different != pytest.approx(expected)


class TestSerializer:
    def test_roundtrip_plain_data(self):
        value = {"a": [1, 2, 3], "b": b"bytes"}
        assert deserialize(serialize(value)) == value

    def test_roundtrip_lambda(self):
        fn = deserialize(serialize(lambda x: x + 1))
        assert fn(41) == 42

    def test_roundtrip_closure(self):
        offset = 100

        def add_offset(x):
            return x + offset

        fn = deserialize(serialize(add_offset))
        assert fn(1) == 101

    @given(st.binary(max_size=10_000), st.integers(1, 1_000))
    def test_chunk_concat_roundtrip(self, data, chunk_size):
        chunks = list(chunk_bytes(data, chunk_size))
        assert concat_chunks(chunks) == data
        assert all(len(chunk) <= chunk_size for chunk in chunks)

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(Exception):
            list(chunk_bytes(b"xx", 0))
