"""Tests for bit-level I/O, varints and zigzag."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.methcomp.codec import (
    BitReader,
    BitWriter,
    read_varint,
    write_varint,
    zigzag_decode,
    zigzag_encode,
)


class TestBitIO:
    def test_single_bits_roundtrip(self):
        writer = BitWriter()
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1]
        for bit in bits:
            writer.write_bit(bit)
        reader = BitReader(writer.getvalue())
        assert [reader.read_bit() for _ in range(len(bits))] == bits

    def test_write_bits_msb_first(self):
        writer = BitWriter()
        writer.write_bits(0b1011, 4)
        writer.write_bits(0b0001, 4)
        assert writer.getvalue() == bytes([0b10110001])

    def test_unary_roundtrip(self):
        writer = BitWriter()
        for value in (0, 3, 7, 1):
            writer.write_unary(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_unary() for _ in range(4)] == [0, 3, 7, 1]

    def test_reading_past_end_raises(self):
        reader = BitReader(b"")
        with pytest.raises(CodecError):
            reader.read_bit()

    def test_bit_length_tracks_partial_bytes(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        assert writer.bit_length == 3
        assert len(writer.getvalue()) == 1  # zero-padded

    @given(st.lists(st.integers(0, 1), max_size=200))
    def test_property_bit_roundtrip(self, bits):
        writer = BitWriter()
        for bit in bits:
            writer.write_bit(bit)
        reader = BitReader(writer.getvalue())
        assert [reader.read_bit() for _ in range(len(bits))] == bits


class TestVarint:
    def test_known_encodings(self):
        out = bytearray()
        write_varint(out, 0)
        assert bytes(out) == b"\x00"
        out = bytearray()
        write_varint(out, 300)
        assert bytes(out) == b"\xac\x02"

    def test_negative_rejected(self):
        with pytest.raises(CodecError):
            write_varint(bytearray(), -1)

    def test_truncated_raises(self):
        with pytest.raises(CodecError):
            read_varint(b"\x80", 0)

    @given(st.integers(0, 2**62))
    def test_property_roundtrip(self, value):
        out = bytearray()
        write_varint(out, value)
        decoded, offset = read_varint(bytes(out), 0)
        assert decoded == value
        assert offset == len(out)

    @given(st.lists(st.integers(0, 2**40), max_size=50))
    def test_property_sequence_roundtrip(self, values):
        out = bytearray()
        for value in values:
            write_varint(out, value)
        data = bytes(out)
        offset = 0
        decoded = []
        for _ in values:
            value, offset = read_varint(data, offset)
            decoded.append(value)
        assert decoded == values


class TestZigzag:
    def test_known_mapping(self):
        assert [zigzag_encode(v) for v in (0, -1, 1, -2, 2)] == [0, 1, 2, 3, 4]

    @given(st.integers(-(2**40), 2**40))
    def test_property_roundtrip(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value
