"""Tests for the Rice and arithmetic entropy coders."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.methcomp.codec import (
    FrequencyTable,
    arithmetic_decode,
    arithmetic_encode,
    rice_decode_block,
    rice_encode_block,
)
from repro.methcomp.codec.rice import RiceContext


class TestRice:
    def test_roundtrip_small_values(self):
        values = [0, 1, 2, 3, 0, 0, 5, 1]
        data = rice_encode_block(values)
        assert rice_decode_block(data, len(values)) == values

    def test_roundtrip_geometric_values(self):
        rng = random.Random(3)
        values = [int(rng.expovariate(1 / 50)) for _ in range(2000)]
        data = rice_encode_block(values)
        assert rice_decode_block(data, len(values)) == values

    def test_escape_handles_outliers(self):
        values = [1, 2, 10**9, 3]
        data = rice_encode_block(values)
        assert rice_decode_block(data, len(values)) == values

    def test_negative_rejected(self):
        with pytest.raises(CodecError):
            rice_encode_block([-1])

    def test_adaptation_beats_fixed_worst_case(self):
        """After adaptation, large values are not coded at tiny k."""
        rng = random.Random(5)
        values = [int(rng.expovariate(1 / 500)) for _ in range(2000)]
        encoded = rice_encode_block(values, initial_mean=1.0)
        # With k stuck at 0 the unary parts alone would be sum(values) bits.
        assert len(encoded) * 8 < sum(values) / 4

    def test_parameter_tracks_mean(self):
        context = RiceContext(initial_mean=1.0)
        for _ in range(100):
            context.update(1000)
        assert context.parameter() >= 8

    def test_compresses_geometric_close_to_entropy(self):
        rng = random.Random(7)
        mean = 20.0
        values = [int(rng.expovariate(1 / mean)) for _ in range(5000)]
        encoded = rice_encode_block(values)
        bits_per_value = len(encoded) * 8 / len(values)
        # Geometric entropy at mean 20 ≈ 5.7 bits; Rice ≈ entropy + ~0.5.
        assert bits_per_value < 8.0

    @given(st.lists(st.integers(0, 10_000), max_size=300))
    @settings(max_examples=50)
    def test_property_roundtrip(self, values):
        data = rice_encode_block(values)
        assert rice_decode_block(data, len(values)) == values


class TestFrequencyTable:
    def test_rejects_all_zero(self):
        with pytest.raises(CodecError):
            FrequencyTable([0, 0, 0])

    def test_rejects_negative(self):
        with pytest.raises(CodecError):
            FrequencyTable([1, -1])

    def test_cumulative_structure(self):
        table = FrequencyTable([2, 0, 3])
        assert table.total == 5
        assert table.range_of(0) == (0, 2)
        assert table.range_of(2) == (2, 5)

    def test_zero_frequency_symbol_unencodable(self):
        table = FrequencyTable([2, 0, 3])
        with pytest.raises(CodecError):
            table.range_of(1)

    def test_symbol_at_boundaries(self):
        table = FrequencyTable([2, 0, 3])
        assert table.symbol_at(0) == 0
        assert table.symbol_at(1) == 0
        assert table.symbol_at(2) == 2
        assert table.symbol_at(4) == 2

    def test_serialize_roundtrip(self):
        table = FrequencyTable([5, 1, 0, 9])
        restored, offset = FrequencyTable.deserialize(table.serialize(), 0)
        assert restored.counts == table.counts
        assert offset == len(table.serialize())


class TestArithmetic:
    def test_roundtrip_simple(self):
        symbols = [0, 1, 2, 1, 0, 2, 2, 1]
        table = FrequencyTable.from_symbols(symbols, 3)
        data = arithmetic_encode(symbols, table)
        assert arithmetic_decode(data, len(symbols), table) == symbols

    def test_roundtrip_skewed(self):
        rng = random.Random(11)
        symbols = [0 if rng.random() < 0.95 else rng.randrange(1, 101) for _ in range(5000)]
        table = FrequencyTable.from_symbols(symbols, 101)
        data = arithmetic_encode(symbols, table)
        assert arithmetic_decode(data, len(symbols), table) == symbols

    def test_skewed_beats_uniform_coding(self):
        rng = random.Random(13)
        symbols = [0 if rng.random() < 0.9 else 1 for _ in range(10_000)]
        table = FrequencyTable.from_symbols(symbols, 2)
        data = arithmetic_encode(symbols, table)
        bits_per_symbol = len(data) * 8 / len(symbols)
        assert bits_per_symbol < 0.55  # H(0.9) ≈ 0.469 bits

    def test_single_symbol_alphabet(self):
        symbols = [0] * 100
        table = FrequencyTable.from_symbols(symbols, 1)
        data = arithmetic_encode(symbols, table)
        assert arithmetic_decode(data, 100, table) == symbols
        assert len(data) <= 8  # degenerate distribution → almost free

    def test_empty_symbol_list(self):
        table = FrequencyTable([1])
        data = arithmetic_encode([], table)
        assert arithmetic_decode(data, 0, table) == []

    @given(
        symbols=st.lists(st.integers(0, 15), min_size=1, max_size=500),
    )
    @settings(max_examples=50)
    def test_property_roundtrip(self, symbols):
        table = FrequencyTable.from_symbols(symbols, 16)
        data = arithmetic_encode(symbols, table)
        assert arithmetic_decode(data, len(symbols), table) == symbols
