"""Tests for the METHCOMP codec: losslessness, ratios, edge cases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.methcomp import (
    CHROMOSOMES,
    MethylationRecord,
    MethylomeGenerator,
    serialize_records,
)
from repro.methcomp.codec import (
    compress,
    compress_records,
    compression_ratio,
    decode_block,
    decompress,
    decompress_records,
    encode_block,
    gzip_compress,
    gzip_decompress,
    gzip_ratio,
)


def sorted_records_strategy():
    """Genomic-sorted record lists with METHCOMP-ish structure."""

    def build(raw):
        records = []
        position = 0
        for chrom_idx, gap, width, strand, coverage, pct in raw:
            position += gap
            chrom = CHROMOSOMES[chrom_idx % 3]  # few chroms → real runs
            records.append(
                MethylationRecord(
                    chrom=chrom,
                    start=position,
                    end=position + width,
                    strand="+" if strand else "-",
                    coverage=coverage,
                    pct_meth=pct,
                )
            )
        records.sort(key=lambda r: r.sort_key())
        return records

    element = st.tuples(
        st.integers(0, 2),
        st.integers(0, 500),
        st.integers(1, 5),
        st.booleans(),
        st.integers(1, 200),
        st.integers(0, 100),
    )
    return st.lists(element, min_size=0, max_size=120).map(build)


class TestBlockRoundtrip:
    def test_empty_block(self):
        assert decode_block(encode_block([])) == []

    def test_single_record(self):
        records = [MethylationRecord("chr1", 100, 102, "+", 10, 50)]
        assert decode_block(encode_block(records)) == records

    def test_generator_output_roundtrips(self):
        records = MethylomeGenerator(seed=1).records(5000)
        assert decode_block(encode_block(records)) == records

    def test_multiple_chromosomes(self):
        records = [
            MethylationRecord("chr1", 10, 12, "+", 5, 90),
            MethylationRecord("chr1", 11, 13, "-", 5, 88),
            MethylationRecord("chr2", 7, 9, "+", 8, 10),
            MethylationRecord("chrX", 1, 3, "-", 2, 0),
        ]
        assert decode_block(encode_block(records)) == records

    def test_unsorted_input_rejected(self):
        records = [
            MethylationRecord("chr1", 100, 102, "+", 5, 50),
            MethylationRecord("chr1", 50, 52, "+", 5, 50),
        ]
        with pytest.raises(CodecError, match="sort"):
            encode_block(records)

    def test_chromosome_disorder_rejected(self):
        records = [
            MethylationRecord("chr2", 1, 3, "+", 5, 50),
            MethylationRecord("chr1", 1, 3, "+", 5, 50),
        ]
        with pytest.raises(CodecError, match="sort"):
            encode_block(records)

    def test_duplicate_starts_allowed(self):
        records = [
            MethylationRecord("chr1", 100, 102, "+", 5, 50),
            MethylationRecord("chr1", 100, 102, "-", 6, 52),
        ]
        assert decode_block(encode_block(records)) == records

    def test_bad_magic_rejected(self):
        with pytest.raises(CodecError, match="magic"):
            decode_block(b"XXXX\x00")

    def test_extreme_values(self):
        records = [
            MethylationRecord("chr1", 0, 2, "+", 1, 0),
            MethylationRecord("chr1", 10**9, 10**9 + 2, "-", 100_000, 100),
        ]
        assert decode_block(encode_block(records)) == records

    @given(records=sorted_records_strategy())
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip(self, records):
        assert decode_block(encode_block(records)) == records


class TestContainer:
    def test_multi_block_roundtrip(self):
        records = MethylomeGenerator(seed=2).records(3000)
        data = compress_records(records, block_records=500)
        assert decompress_records(data) == records

    def test_buffer_api_roundtrip(self):
        records = MethylomeGenerator(seed=3).records(2000)
        buffer = serialize_records(records)
        assert decompress(compress(buffer)) == buffer

    def test_empty_buffer(self):
        assert decompress(compress(b"")) == b""

    def test_invalid_block_size_rejected(self):
        with pytest.raises(CodecError):
            compress_records([], block_records=0)

    def test_block_boundaries_do_not_change_content(self):
        records = MethylomeGenerator(seed=4).records(1000)
        small = compress_records(records, block_records=100)
        large = compress_records(records, block_records=100_000)
        assert decompress_records(small) == decompress_records(large)


class TestCompressionQuality:
    @pytest.fixture(scope="class")
    def corpus(self):
        return serialize_records(MethylomeGenerator(seed=9).records(30_000))

    def test_beats_gzip_substantially(self, corpus):
        """The paper cites METHCOMP at ~10x better ratio than gzip; our
        synthetic corpus must preserve the shape (several-fold better)."""
        ours = compression_ratio(corpus)
        gzip = gzip_ratio(corpus)
        assert ours > 4.0 * gzip

    def test_absolute_ratio_is_high(self, corpus):
        assert compression_ratio(corpus) > 15.0

    def test_gzip_baseline_sane(self, corpus):
        ratio = gzip_ratio(corpus)
        assert 2.0 < ratio < 10.0

    def test_gzip_roundtrip(self, corpus):
        assert gzip_decompress(gzip_compress(corpus)) == corpus


class TestGeneratorStatistics:
    def test_records_sorted_by_construction(self):
        from repro.methcomp import is_sorted

        records = MethylomeGenerator(seed=5).records(2000)
        assert is_sorted(records)

    def test_shuffled_records_not_sorted(self):
        from repro.methcomp import is_sorted

        generator = MethylomeGenerator(seed=5)
        records = generator.shuffled_records(2000)
        assert not is_sorted(records)

    def test_deterministic_for_seed(self):
        a = MethylomeGenerator(seed=6).records(500)
        b = MethylomeGenerator(seed=6).records(500)
        assert a == b

    def test_different_seeds_differ(self):
        a = MethylomeGenerator(seed=6).records(500)
        b = MethylomeGenerator(seed=7).records(500)
        assert a != b

    def test_count_is_exact(self):
        assert len(MethylomeGenerator(seed=8).records(12345)) == 12345

    def test_bimodal_methylation(self):
        records = MethylomeGenerator(seed=9).records(20_000)
        high = sum(1 for r in records if r.pct_meth >= 70)
        low = sum(1 for r in records if r.pct_meth <= 30)
        middle = len(records) - high - low
        assert high > middle
        assert low > middle / 4

    def test_strand_pairs_present(self):
        records = MethylomeGenerator(seed=10).records(10_000)
        paired = sum(
            1
            for a, b in zip(records, records[1:])
            if a.chrom == b.chrom and b.start - a.start == 1
        )
        assert paired / len(records) > 0.3

    def test_target_bytes_hits_size(self):
        generator = MethylomeGenerator(seed=11)
        payload = generator.generate_bed_bytes(500_000)
        assert 350_000 < len(payload) < 700_000
