"""Tests for the encode/decode pipeline workers on the simulated cloud."""

import pytest

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.executor import FunctionExecutor
from repro.methcomp import (
    MethylomeGenerator,
    decode_worker,
    encode_worker,
    serialize_records,
)


@pytest.fixture
def cloud():
    cloud = Cloud.fresh(seed=41, profile=ibm_us_east(deterministic=True))
    cloud.store.ensure_bucket("data")
    return cloud


@pytest.fixture
def sorted_run(cloud):
    records = MethylomeGenerator(seed=4).records(8000)
    payload = serialize_records(records)

    def upload():
        yield cloud.store.put("data", "run.bed", payload)

    cloud.sim.run_process(upload())
    return payload


class TestEncodeWorker:
    def test_encode_roundtrip_through_storage(self, cloud, sorted_run):
        executor = FunctionExecutor(cloud)

        def driver():
            futures = yield executor.map(
                encode_worker,
                [
                    {
                        "bucket": "data",
                        "key": "run.bed",
                        "out_bucket": "data",
                        "out_key": "run.mcmp",
                    }
                ],
            )
            encode_stats = (yield executor.get_result(futures))[0]
            futures = yield executor.map(
                decode_worker,
                [
                    {
                        "bucket": "data",
                        "key": "run.mcmp",
                        "out_bucket": "data",
                        "out_key": "restored.bed",
                    }
                ],
            )
            decode_stats = (yield executor.get_result(futures))[0]
            return encode_stats, decode_stats

        encode_stats, decode_stats = cloud.sim.run_process(driver())
        assert encode_stats["records"] == 8000
        assert decode_stats["records"] == 8000
        assert encode_stats["compressed_bytes"] < encode_stats["raw_bytes"] / 10
        assert cloud.store.peek("data", "restored.bed") == sorted_run

    def test_encode_charges_modeled_cpu(self, cloud, sorted_run):
        executor = FunctionExecutor(cloud)

        def run_with_throughput(throughput):
            start = cloud.sim.now

            def driver():
                futures = yield executor.map(
                    encode_worker,
                    [
                        {
                            "bucket": "data",
                            "key": "run.bed",
                            "out_bucket": "data",
                            "out_key": f"run-{throughput}.mcmp",
                            "throughput_bps": throughput,
                        }
                    ],
                )
                yield executor.get_result(futures)

            cloud.sim.run_process(driver())
            return cloud.sim.now - start

        run_with_throughput(2e9)  # warm the container (cold start paid here)
        fast = run_with_throughput(1e9)
        slow = run_with_throughput(1e5)
        assert slow > fast + 1.0  # ~5 s of modeled CPU at 100 kB/s
