"""Tests for the bedMethyl record format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.methcomp import (
    CHROMOSOMES,
    MethylationRecord,
    bed_sort_key,
    is_sorted,
    parse_buffer,
    parse_line,
    serialize_record,
    serialize_records,
)


def record_strategy():
    return st.tuples(
        st.sampled_from(CHROMOSOMES),
        st.integers(0, 10**9),
        st.sampled_from(["+", "-"]),
        st.integers(0, 5000),
        st.integers(0, 100),
    ).map(
        lambda raw: MethylationRecord(
            chrom=raw[0],
            start=raw[1],
            end=raw[1] + 2,
            strand=raw[2],
            coverage=raw[3],
            pct_meth=raw[4],
        )
    )


class TestRecordValidation:
    def test_valid_record(self):
        record = MethylationRecord("chr1", 100, 102, "+", 25, 80)
        assert record.score == 25
        assert record.color == "0,255,0"

    def test_unknown_chromosome_rejected(self):
        with pytest.raises(CodecError):
            MethylationRecord("chr99", 0, 2, "+", 1, 0)

    def test_negative_interval_rejected(self):
        with pytest.raises(CodecError):
            MethylationRecord("chr1", 10, 5, "+", 1, 0)

    def test_bad_strand_rejected(self):
        with pytest.raises(CodecError):
            MethylationRecord("chr1", 0, 2, "*", 1, 0)

    def test_pct_out_of_range_rejected(self):
        with pytest.raises(CodecError):
            MethylationRecord("chr1", 0, 2, "+", 1, 101)

    def test_score_caps_at_1000(self):
        record = MethylationRecord("chr1", 0, 2, "+", 4000, 50)
        assert record.score == 1000

    def test_color_buckets(self):
        assert MethylationRecord("chr1", 0, 2, "+", 1, 49).color == "255,0,0"
        assert MethylationRecord("chr1", 0, 2, "+", 1, 50).color == "0,255,0"


class TestSerialization:
    def test_line_has_eleven_columns(self):
        record = MethylationRecord("chr2", 1234, 1236, "-", 30, 75)
        line = serialize_record(record)
        assert line.count(b"\t") == 10

    def test_parse_inverts_serialize(self):
        record = MethylationRecord("chrX", 999, 1001, "-", 42, 3)
        assert parse_line(serialize_record(record)) == record

    def test_parse_accepts_trailing_newline(self):
        record = MethylationRecord("chr1", 5, 7, "+", 1, 0)
        assert parse_line(serialize_record(record) + b"\n") == record

    def test_wrong_column_count_rejected(self):
        with pytest.raises(CodecError):
            parse_line(b"chr1\t1\t3")

    def test_tampered_thick_columns_rejected(self):
        record = MethylationRecord("chr1", 5, 7, "+", 1, 0)
        fields = serialize_record(record).split(b"\t")
        fields[6] = b"999"
        with pytest.raises(CodecError):
            parse_line(b"\t".join(fields))

    def test_tampered_color_rejected(self):
        record = MethylationRecord("chr1", 5, 7, "+", 1, 80)
        fields = serialize_record(record).split(b"\t")
        fields[8] = b"255,0,0"
        with pytest.raises(CodecError):
            parse_line(b"\t".join(fields))

    def test_buffer_roundtrip(self):
        records = [
            MethylationRecord("chr1", 10, 12, "+", 5, 90),
            MethylationRecord("chr1", 11, 13, "-", 6, 88),
        ]
        assert parse_buffer(serialize_records(records)) == records

    @given(record=record_strategy())
    def test_property_line_roundtrip(self, record):
        assert parse_line(serialize_record(record)) == record


class TestSortKey:
    def test_chromosome_order(self):
        early = MethylationRecord("chr2", 999999, 1000001, "+", 1, 0)
        late = MethylationRecord("chr10", 5, 7, "+", 1, 0)
        assert early.sort_key() < late.sort_key()  # chr2 < chr10 genomically

    def test_line_key_matches_record_key(self):
        record = MethylationRecord("chr7", 424242, 424244, "-", 9, 55)
        assert bed_sort_key(serialize_record(record)) == record.sort_key()

    def test_unknown_chrom_in_line_rejected(self):
        with pytest.raises(CodecError):
            bed_sort_key(b"chrZZ\t1\t3\t.\t1\t+\t1\t3\t255,0,0\t1\t0")

    def test_is_sorted(self):
        sorted_records = [
            MethylationRecord("chr1", 1, 3, "+", 1, 0),
            MethylationRecord("chr1", 5, 7, "+", 1, 0),
            MethylationRecord("chr2", 0, 2, "+", 1, 0),
        ]
        assert is_sorted(sorted_records)
        assert not is_sorted(list(reversed(sorted_records)))

    @given(records=st.lists(record_strategy(), min_size=2, max_size=50))
    def test_property_sorting_by_line_key_equals_record_sort(self, records):
        lines = [serialize_record(record) for record in records]
        by_line = sorted(lines, key=bed_sort_key)
        by_record = [
            serialize_record(record)
            for record in sorted(records, key=lambda r: r.sort_key())
        ]
        # Same multiset and same key sequence (ties may permute freely).
        assert sorted(by_line) == sorted(by_record)
        assert [bed_sort_key(l) for l in by_line] == [
            bed_sort_key(l) for l in by_record
        ]
