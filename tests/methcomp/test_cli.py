"""Tests for the METHCOMP file CLI."""

import pytest

from repro.methcomp.cli import main


@pytest.fixture
def bed_file(tmp_path):
    path = tmp_path / "sample.bed"
    assert main(["generate", str(path), "--records", "5000", "--seed", "3"]) == 0
    return path


class TestCli:
    def test_generate_creates_file(self, bed_file):
        assert bed_file.exists()
        assert bed_file.read_bytes().count(b"\n") == 5000

    def test_generated_default_is_shuffled(self, bed_file, tmp_path):
        from repro.methcomp.bed import bed_sort_key

        lines = [l for l in bed_file.read_bytes().split(b"\n") if l]
        keys = [bed_sort_key(line) for line in lines]
        assert keys != sorted(keys)

    def test_sort_then_compress_then_decompress(self, bed_file, tmp_path, capsys):
        sorted_path = tmp_path / "sorted.bed"
        compressed_path = tmp_path / "sorted.mcmp"
        restored_path = tmp_path / "restored.bed"

        assert main(["sort", str(bed_file), str(sorted_path)]) == 0
        assert main(["compress", str(sorted_path), str(compressed_path)]) == 0
        assert main(["decompress", str(compressed_path), str(restored_path)]) == 0

        assert restored_path.read_bytes() == sorted_path.read_bytes()
        assert compressed_path.stat().st_size < sorted_path.stat().st_size / 10

    def test_compress_unsorted_fails(self, bed_file, tmp_path):
        from repro.errors import CodecError

        with pytest.raises(CodecError, match="sort"):
            main(["compress", str(bed_file), str(tmp_path / "out.mcmp")])

    def test_ratio_reports_both_codecs(self, bed_file, tmp_path, capsys):
        sorted_path = tmp_path / "sorted.bed"
        main(["sort", str(bed_file), str(sorted_path)])
        assert main(["ratio", str(sorted_path)]) == 0
        out = capsys.readouterr().out
        assert "methcomp" in out and "gzip" in out

    def test_sorted_flag_generates_sorted(self, tmp_path):
        from repro.methcomp.bed import bed_sort_key

        path = tmp_path / "sorted-gen.bed"
        main(["generate", str(path), "--records", "2000", "--sorted"])
        lines = [l for l in path.read_bytes().split(b"\n") if l]
        keys = [bed_sort_key(line) for line in lines]
        assert keys == sorted(keys)
