"""Metrics registry unit tests (``repro.obs.metrics``)."""

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    publish_exchange_report,
    registry,
    reset_registry,
    sanitize_name,
)


class TestSanitize:
    def test_passthrough_and_replacement(self):
        assert sanitize_name("repro_relay_bytes_total") == "repro_relay_bytes_total"
        assert sanitize_name("map records/sec") == "map_records_sec"
        assert sanitize_name("9lives") == "_9lives"


class TestCounter:
    def test_inc_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        counter = reg.counter("c_total", "help")
        counter.inc(2.0, tenant="a")
        counter.inc(3.0, tenant="a")
        counter.inc(1.0, tenant="b")
        assert counter.value(tenant="a") == 5.0
        assert counter.value(tenant="b") == 1.0
        assert counter.value(tenant="missing") == 0.0

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c_total", "help").inc(-1.0)


class TestGauge:
    def test_set_add_max(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("g", "help")
        gauge.set(4.0)
        gauge.add(1.0)
        assert gauge.value() == 5.0
        gauge.max(3.0)  # lower than current: keeps 5
        assert gauge.value() == 5.0
        gauge.max(9.0)
        assert gauge.value() == 9.0


class TestHistogram:
    def test_quantiles_are_nearest_rank(self):
        reg = MetricsRegistry()
        histogram = reg.histogram("h_seconds", "help")
        for value in range(1, 100):
            histogram.observe(float(value))
        assert histogram.quantile(0.5) == 50.0
        assert histogram.quantile(1.0) == 99.0
        assert histogram.quantile(0.0) == 1.0
        assert histogram.count() == 99

    def test_labelled_observations_are_separate(self):
        reg = MetricsRegistry()
        histogram = reg.histogram("h_seconds", "help")
        histogram.observe(1.0, tenant="a")
        histogram.observe(9.0, tenant="b")
        assert histogram.observations(tenant="a") == [1.0]
        assert histogram.all_observations() == [1.0, 9.0]


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total", "help") is reg.counter("x_total", "h2")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "help")
        with pytest.raises(TypeError):
            reg.gauge("x_total", "help")

    def test_module_registry_reset(self):
        reset_registry()
        registry().counter("y_total", "help").inc()
        assert "y_total" in registry().names()
        reset_registry()
        assert "y_total" not in registry().names()


class TestPublishExchangeReport:
    def test_report_lands_in_the_registry(self):
        from repro.shuffle.exchange import ExchangeReport

        reset_registry()
        # Constructing the report IS the publication (__post_init__).
        ExchangeReport(
            substrate="relay",
            workers=8,
            predicted_s=10.0,
            actual_s=12.0,
            provisioned_usd=0.02,
            extra={"mode": "staged", "relay_peak_fill": 0.7},
        )
        reg = registry()
        labels = {"substrate": "relay", "mode": "staged"}
        assert reg.get("repro_exchange_sorts_total").value(**labels) == 1.0
        assert reg.get("repro_exchange_actual_seconds").value(**labels) == 12.0
        assert reg.get("repro_exchange_predicted_seconds").value(**labels) == 10.0
        assert (
            reg.get("repro_exchange_relay_peak_fill").value(**labels) == 0.7
        )

    def test_non_numeric_extras_are_skipped(self):
        from repro.shuffle.exchange import ExchangeReport

        reset_registry()
        ExchangeReport(
            substrate="cache",
            workers=2,
            predicted_s=None,
            actual_s=1.0,
            provisioned_usd=0.0,
            extra={"mode": "streaming", "node_type": "cache.r5.large",
                   "cleanup": True},
        )
        names = registry().names()
        assert "repro_exchange_node_type" not in names
        assert "repro_exchange_cleanup" not in names
        assert "repro_exchange_predicted_seconds" not in names
