"""Span links between speculative sibling attempts + decision counters.

Two observability follow-ups ride the content-addressed exchange PR:

* spans gained ``links`` — directed span-id references outside the
  parent/child tree.  The FaaS platform wires them bidirectionally
  between the racing attempts of one speculative call, so a Perfetto
  trace exposes which backup raced which primary;
* the Chrome exporter renders a
  :class:`~repro.shuffle.adaptive.DecisionTimeline` as a counter track
  (``ph: "C"``): planner score, predicted latency, workers and the
  cumulative switch count as step series.
"""

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.executor import FunctionExecutor, SpeculationPolicy
from repro.obs.export import chrome_trace_events
from repro.obs.trace import NOOP_SPAN, Tracer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestSpanLinks:
    def test_add_link_dedups_and_rejects_self(self):
        tracer = Tracer(clock=FakeClock(), enabled=True)
        first = tracer.span("a")
        second = tracer.span("b")
        first.add_link(second.span_id)
        first.add_link(second.span_id)  # duplicate dropped
        first.add_link(first.span_id)  # self-link dropped
        first.add_link("")  # empty dropped
        assert first.links == [second.span_id]
        assert second.links == []
        first.end()
        second.end()

    def test_noop_span_accepts_links(self):
        NOOP_SPAN.add_link("s000001")  # must not raise, must not record

    def test_links_survive_span_end(self):
        """A loser's link can land after the winner's span ended."""
        tracer = Tracer(clock=FakeClock(), enabled=True)
        winner = tracer.span("winner")
        winner.end()
        loser = tracer.span("loser")
        loser.add_link(winner.span_id)
        winner.add_link(loser.span_id)
        loser.end()
        assert loser.links == [winner.span_id]
        assert winner.links == [loser.span_id]

    def test_export_carries_links(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock, enabled=True)
        primary = tracer.span("attempt-1", category="attempt")
        backup = tracer.span("attempt-2", category="attempt")
        backup.add_link(primary.span_id)
        primary.add_link(backup.span_id)
        clock.now = 1.0
        primary.end()
        backup.end()
        events = chrome_trace_events(tracer)
        spans = {e["name"]: e for e in events if e["ph"] == "X"}
        assert spans["attempt-1"]["args"]["links"] == backup.span_id
        assert spans["attempt-2"]["args"]["links"] == primary.span_id
        unlinked = tracer.span("attempt-3", category="attempt")
        unlinked.end()
        plain = [
            e for e in chrome_trace_events(tracer)
            if e["ph"] == "X" and e["name"] == "attempt-3"
        ]
        assert "links" not in plain[0]["args"]


def double(x):
    return x * 2


class TestSpeculativeSiblingLinks:
    @staticmethod
    def _heavy_tail_profile():
        profile = ibm_us_east()
        profile.faas.cold_start.mean = 1.5
        profile.faas.cold_start.sigma = 1.4
        return profile

    def test_backup_and_primary_link_to_each_other(self):
        cloud = Cloud.fresh(
            seed=11, profile=self._heavy_tail_profile(), spans=True
        )
        executor = FunctionExecutor(
            cloud,
            speculation=SpeculationPolicy(quantile=0.7, latency_multiplier=1.3),
        )

        def driver():
            futures = yield executor.map(
                double, list(range(48)), cpu_model=lambda x: 5.0
            )
            return (yield executor.get_result(futures))

        results = cloud.sim.run_process(driver())
        assert results == [x * 2 for x in range(48)]
        assert executor.speculative_launches > 0

        tracer = cloud.sim.tracer
        assert tracer.validate() == []
        by_id = {span.span_id: span for span in tracer.spans}
        linked = [span for span in tracer.spans if span.links]
        # Every backup launched got a link, and every link is mutual:
        # the sibling both exists and points back.
        assert len(linked) >= 2
        for span in linked:
            assert span.category == "attempt"
            for sibling_id in span.links:
                sibling = by_id[sibling_id]
                assert sibling.category == "attempt"
                assert span.span_id in sibling.links
                # Siblings race the same call: same parent wave span.
                assert sibling.parent_id == span.parent_id

    def test_no_links_without_speculation(self):
        cloud = Cloud.fresh(
            seed=11, profile=ibm_us_east(deterministic=True), spans=True
        )
        executor = FunctionExecutor(cloud)

        def driver():
            futures = yield executor.map(double, list(range(8)))
            return (yield executor.get_result(futures))

        cloud.sim.run_process(driver())
        assert all(span.links == [] for span in cloud.sim.tracer.spans)


class TestDecisionCounterTrack:
    @staticmethod
    def _timeline():
        from repro.shuffle.adaptive import (
            DecisionPoint,
            DecisionTimeline,
            SubstrateDecision,
            SubstrateEstimate,
        )

        def decision(substrate, score, predicted, workers):
            estimate = SubstrateEstimate(
                substrate=substrate,
                workers=workers,
                predicted_s=predicted,
                provisioned_usd=0.0,
                score_usd=score,
                feasible=True,
            )
            return SubstrateDecision(chosen=estimate, estimates=(estimate,))

        timeline = DecisionTimeline()
        timeline.append(DecisionPoint(
            wave=0, at_s=0.0, trigger="initial",
            decision=decision("objectstore", 0.10, 40.0, 16), switched=False,
        ))
        timeline.append(DecisionPoint(
            wave=2, at_s=12.5, trigger="wave",
            decision=decision("relay", 0.07, 25.0, 24), switched=True,
        ))
        timeline.append(DecisionPoint(
            wave=4, at_s=30.0, trigger="hot-partition",
            decision=decision("relay", 0.06, 20.0, 24), switched=True,
        ))
        return timeline

    def test_counter_events_emitted(self):
        tracer = Tracer(clock=FakeClock(), enabled=True)
        events = chrome_trace_events(
            tracer, decision_timeline=self._timeline()
        )
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == 3
        assert [e["ts"] for e in counters] == [0.0, 12.5e6, 30.0e6]
        for event in counters:
            assert event["name"] == "substrate_decision"
            assert set(event["args"]) == {
                "score_usd", "predicted_s", "workers", "switches"
            }
        # The switch series is cumulative and the track is named.
        assert [e["args"]["switches"] for e in counters] == [0, 1, 2]
        track_ids = {e["tid"] for e in counters}
        assert len(track_ids) == 1
        names = [
            e for e in events
            if e["ph"] == "M" and e["args"]["name"] == "decisions"
        ]
        assert len(names) == 1 and names[0]["tid"] in track_ids

    def test_no_timeline_no_counters(self):
        tracer = Tracer(clock=FakeClock(), enabled=True)
        assert [
            e for e in chrome_trace_events(tracer) if e["ph"] == "C"
        ] == []
