"""Tracer unit tests + hypothesis lifecycle/well-formedness properties.

The tracer's contract (``repro.obs.trace``): spans end exactly once,
events never land on ended spans, the span set always forms proper
trees (single root per trace, parents exist and share the trace), and
the disabled tracer allocates nothing.  The hypothesis properties
drive randomized open/event/end schedules — including abandoned spans
— and assert ``validate()`` reports exactly the right problems.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    TraceError,
    Tracer,
    trace_enabled_from_env,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_tracer():
    clock = FakeClock()
    return Tracer(clock=clock, enabled=True), clock


class TestDisabledTracer:
    def test_disabled_tracer_returns_the_noop_singleton(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", category="attempt")
        assert span is NOOP_SPAN
        assert not span.recording
        assert span.ended
        assert tracer.spans == []

    def test_noop_span_absorbs_the_full_protocol(self):
        with NOOP_SPAN as span:
            span.set(a=1).event("e", x=2)
            span.event_at(5.0, "later")
        NOOP_SPAN.end()
        NOOP_SPAN.end()  # double end is fine on the noop

    def test_attempt_event_is_noop_when_disabled(self):
        tracer = Tracer(enabled=False)
        tracer.attempt_event("act-1", "relay.push")  # no registry, no error

    def test_env_toggle(self, monkeypatch):
        for value, expected in (
            ("1", True), ("true", True), ("YES", True), ("on", True),
            ("0", False), ("", False), ("no", False),
        ):
            monkeypatch.setenv("REPRO_TRACE", value)
            assert trace_enabled_from_env() is expected
        monkeypatch.delenv("REPRO_TRACE")
        assert trace_enabled_from_env() is False


class TestSpanLifecycle:
    def test_double_end_raises(self):
        tracer, _clock = make_tracer()
        span = tracer.span("s")
        span.end()
        with pytest.raises(TraceError):
            span.end()

    def test_event_after_end_raises(self):
        tracer, _clock = make_tracer()
        span = tracer.span("s")
        span.end()
        with pytest.raises(TraceError):
            span.event("late")

    def test_status_defaults_to_outcome_attribute(self):
        tracer, _clock = make_tracer()
        span = tracer.span("attempt")
        span.set(outcome="timeout")
        span.end()
        assert span.status == "timeout"

    def test_context_manager_marks_error_on_exception(self):
        tracer, _clock = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("s") as span:
                raise RuntimeError("boom")
        assert span.ended and span.status == "error"

    def test_sim_clock_stamps(self):
        tracer, clock = make_tracer()
        span = tracer.span("s")
        clock.now = 2.5
        span.event("mid")
        clock.now = 4.0
        span.end()
        assert span.start_s == 0.0
        assert span.events == [(2.5, "mid", {})]
        assert span.end_s == 4.0 and span.duration_s == 4.0

    def test_non_recording_parent_starts_a_new_trace(self):
        tracer, _clock = make_tracer()
        child = tracer.span("child", parent=NOOP_SPAN)
        assert child.parent_id is None

    def test_parenting_shares_the_trace(self):
        tracer, _clock = make_tracer()
        root = tracer.span("root")
        child = tracer.span("child", parent=root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id

    def test_deterministic_ids(self):
        ids = []
        for _ in range(2):
            tracer, _clock = make_tracer()
            spans = [tracer.span(f"s{i}") for i in range(3)]
            ids.append([(s.trace_id, s.span_id) for s in spans])
        assert ids[0] == ids[1]


class TestAttemptRegistry:
    def test_attempt_event_lands_on_the_bound_span(self):
        tracer, clock = make_tracer()
        span = tracer.span("attempt")
        tracer.bind_attempt("act-1", span)
        clock.now = 1.0
        tracer.attempt_event("act-1", "relay.push", bytes=10)
        assert span.events == [(1.0, "relay.push", {"bytes": 10})]

    def test_unknown_or_released_attempts_drop_silently(self):
        tracer, _clock = make_tracer()
        span = tracer.span("attempt")
        tracer.attempt_event("nope", "x")
        tracer.bind_attempt("act-1", span)
        tracer.release_attempt("act-1")
        tracer.attempt_event("act-1", "x")
        assert span.events == []

    def test_events_on_ended_attempt_drop_silently(self):
        tracer, _clock = make_tracer()
        span = tracer.span("attempt")
        tracer.bind_attempt("act-1", span)
        span.end()
        tracer.attempt_event("act-1", "late")  # no TraceError
        assert span.events == []


class TestValidate:
    def test_clean_tree_validates_empty(self):
        tracer, _clock = make_tracer()
        root = tracer.span("root")
        child = tracer.span("child", parent=root)
        child.end()
        root.end()
        assert tracer.validate() == []
        assert tracer.open_span_count == 0

    def test_unended_span_is_reported(self):
        tracer, _clock = make_tracer()
        tracer.span("leak")
        assert any("never ended" in p for p in tracer.validate())

    def test_two_roots_in_one_trace_are_reported(self):
        tracer, _clock = make_tracer()
        root = tracer.span("root")
        # Forge a second root by hand (no public API does this).
        rogue = tracer.span("rogue")
        rogue.trace_id = root.trace_id
        rogue.end()
        root.end()
        assert any("roots" in p for p in tracer.validate())


# ----------------------------------------------------------------------
# hypothesis properties
# ----------------------------------------------------------------------
#: An op schedule: each element opens a span under a random live parent
#: (or as a root), then randomly records events/ends it later.
schedules = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),  # parent choice
        st.integers(min_value=0, max_value=3),  # events to record
        st.booleans(),  # end it?
    ),
    min_size=1,
    max_size=40,
)


@given(schedule=schedules)
@settings(max_examples=200, deadline=None)
def test_property_every_ended_span_ends_exactly_once(schedule):
    """Random open/event/end schedules: double-ends always raise, the
    validator flags exactly the abandoned spans, and trees stay sound."""
    tracer, clock = make_tracer()
    live = []
    abandoned = 0
    for parent_pick, event_count, do_end in schedule:
        clock.now += 0.5
        parent = live[parent_pick % len(live)] if live and parent_pick else None
        span = tracer.span("s", parent=parent)
        for index in range(event_count):
            clock.now += 0.1
            span.event(f"e{index}")
        if do_end:
            clock.now += 0.1
            span.end()
            with pytest.raises(TraceError):
                span.end()
        else:
            live.append(span)
            abandoned += 1
    problems = tracer.validate()
    unended = [p for p in problems if "never ended" in p]
    assert len(unended) == abandoned
    assert tracer.open_span_count == abandoned
    # Everything else about the tree must be sound.
    assert [p for p in problems if "never ended" not in p] == []


@given(schedule=schedules)
@settings(max_examples=200, deadline=None)
def test_property_closed_schedules_validate_clean(schedule):
    """Ending every span (children before parents) yields a well-formed
    forest: single root per trace, no orphans, events in bounds."""
    tracer, clock = make_tracer()
    opened = []
    for parent_pick, event_count, _do_end in schedule:
        clock.now += 0.5
        parent = (
            opened[parent_pick % len(opened)] if opened and parent_pick else None
        )
        span = tracer.span("s", parent=parent)
        for index in range(event_count):
            clock.now += 0.1
            span.event(f"e{index}")
        opened.append(span)
    for span in reversed(opened):
        clock.now += 0.1
        span.end()
    assert tracer.validate() == []
    assert tracer.open_span_count == 0
    # Exactly one root per trace id.
    roots = {}
    for span in tracer.spans:
        if span.parent_id is None:
            roots.setdefault(span.trace_id, 0)
            roots[span.trace_id] += 1
    assert all(count == 1 for count in roots.values())
