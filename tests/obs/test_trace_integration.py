"""Tracing integration: real sorts, chaos, speculation — and parity.

The tentpole invariants pinned here:

* **attempt spans everywhere** — every executed activation gets one
  span, parented under the wave that submitted it, carrying exchange-op
  events, across all four substrates and both execution modes;
* **exactly-once end under chaos** — crash injection and speculative
  backups (whose losers are *cancelled* mid-flight) still end every
  span exactly once: ``tracer.validate()`` returns no problems;
* **zero-cost-off / byte parity** — the sorted artifact is
  byte-identical with tracing enabled and disabled, under chaos and
  under speculation: the tracer is interpreter-side bookkeeping,
  invisible to the simulation.
"""

import random

import pytest

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.cloud.vm.fleet import fleet_ready
from repro.cloud.vm.relay import relay_ready
from repro.executor import FunctionExecutor, SpeculationPolicy
from repro.shuffle import (
    CacheShuffleSort,
    FixedWidthCodec,
    RelayShuffleSort,
    ShardedRelayShuffleSort,
    ShuffleSort,
    StreamConfig,
    StreamingCacheExchange,
    StreamingObjectStoreExchange,
    StreamingRelayExchange,
    StreamingShardedRelayExchange,
    StreamingShuffleSort,
)

CODEC = FixedWidthCodec(record_size=16, key_bytes=8)
RECORDS = 2000
WORKERS = 4
SEED = 13
STREAM = StreamConfig(
    chunk_bytes=4096.0, buffer_bytes=8192.0, poll_interval_s=0.05
)

SUBSTRATES = ("objectstore", "cache", "relay", "sharded-relay")

#: Exchange-op event prefixes each substrate's attempts must carry.
EXPECTED_EVENTS = {
    "objectstore": ("storage.",),
    "cache": ("cache.",),
    "relay": ("relay.",),
    "sharded-relay": ("relay.",),
}


def make_payload(count=RECORDS, seed=SEED, record_size=16):
    rng = random.Random(seed)
    return b"".join(
        rng.getrandbits(64).to_bytes(8, "big") + bytes(record_size - 8)
        for _ in range(count)
    )


def make_operator(cloud, substrate, mode, executor):
    if mode == "staged":
        if substrate == "objectstore":
            return ShuffleSort(executor, CODEC)
        if substrate == "cache":
            cluster = cloud.cache.provision_ready("cache.r5.large", nodes=2)
            return CacheShuffleSort(executor, CODEC, cluster)
        if substrate == "relay":
            return RelayShuffleSort(
                executor, CODEC, relay_ready(cloud.vms, "bx2-8x32")
            )
        return ShardedRelayShuffleSort(
            executor, CODEC, fleet_ready(cloud.vms, "bx2-8x32", shards=2)
        )
    backends = {
        "objectstore": lambda: StreamingObjectStoreExchange(stream=STREAM),
        "cache": lambda: StreamingCacheExchange(
            cloud.cache.provision_ready("cache.r5.large", nodes=2),
            stream=STREAM,
        ),
        "relay": lambda: StreamingRelayExchange(
            relay_ready(cloud.vms, "bx2-8x32"), stream=STREAM
        ),
        "sharded-relay": lambda: StreamingShardedRelayExchange(
            fleet_ready(cloud.vms, "bx2-8x32", shards=2), stream=STREAM
        ),
    }
    return StreamingShuffleSort(executor, CODEC, backend=backends[substrate]())


def run_sort(
    substrate,
    mode,
    payload,
    spans,
    crash_rate=0.0,
    speculation=None,
    seed=SEED,
):
    cloud = Cloud.fresh(
        seed=seed, profile=ibm_us_east(deterministic=True), spans=spans
    )
    cloud.store.ensure_bucket("data")
    if crash_rate:
        cloud.faas.crash_probability = crash_rate
        cloud.faas.crash_latest_s = 0.1
    executor = FunctionExecutor(cloud, retries=6, speculation=speculation)
    operator = make_operator(cloud, substrate, mode, executor)

    def driver():
        yield cloud.store.put("data", "input.bin", payload)
        return (yield operator.sort("data", "input.bin", workers=WORKERS))

    result = cloud.sim.run_process(driver())
    runs = [cloud.store.peek("data", run.key) for run in result.runs]
    return runs, cloud


@pytest.mark.parametrize("mode", ("staged", "streaming"))
@pytest.mark.parametrize("substrate", SUBSTRATES)
class TestSpanTreePerSubstrate:
    def test_attempts_parent_under_waves_with_exchange_events(
        self, substrate, mode
    ):
        payload = make_payload()
        _runs, cloud = run_sort(substrate, mode, payload, spans=True)
        tracer = cloud.sim.tracer
        assert tracer.validate() == []
        by_id = {span.span_id: span for span in tracer.spans}
        sorts = [s for s in tracer.spans if s.category == "sort"]
        waves = [s for s in tracer.spans if s.category == "wave"]
        attempts = [s for s in tracer.spans if s.category == "attempt"]
        assert len(sorts) == 1
        assert len(waves) >= 3  # sample + map + reduce
        assert len(attempts) >= 2 * WORKERS
        for wave in waves:
            assert by_id[wave.parent_id].category == "sort"
        for attempt in attempts:
            assert by_id[attempt.parent_id].category == "wave"
            assert attempt.status == "ok"
            assert attempt.attributes.get("track", "").startswith("worker-")
        # The substrate's exchange ops appear as attempt span events.
        names = {
            name for span in attempts for _at, name, _attrs in span.events
        }
        for prefix in EXPECTED_EVENTS[substrate]:
            assert any(name.startswith(prefix) for name in names), (
                substrate, mode, sorted(names),
            )

    def test_tracing_off_records_nothing(self, substrate, mode):
        payload = make_payload()
        _runs, cloud = run_sort(substrate, mode, payload, spans=False)
        assert cloud.sim.tracer.spans == []
        assert cloud.sim.tracer.open_span_count == 0


@pytest.mark.parametrize("substrate", ("objectstore", "sharded-relay"))
class TestChaosLifecycle:
    def test_crashed_attempts_end_exactly_once(self, substrate):
        payload = make_payload()
        _runs, cloud = run_sort(
            substrate, "streaming", payload, spans=True, crash_rate=0.25
        )
        tracer = cloud.sim.tracer
        assert cloud.faas.stats.crashes > 0, "no crash injected"
        assert tracer.validate() == []
        outcomes = {
            span.status
            for span in tracer.spans
            if span.category == "attempt"
        }
        assert "crashed" in outcomes or "error" in outcomes or "ok" in outcomes
        # Every attempt span ended, whatever its outcome.
        assert tracer.open_span_count == 0

    def test_chaos_parity_traced_vs_untraced(self, substrate):
        payload = make_payload()
        traced, _cloud = run_sort(
            substrate, "streaming", payload, spans=True, crash_rate=0.25
        )
        untraced, _cloud = run_sort(
            substrate, "streaming", payload, spans=False, crash_rate=0.25
        )
        assert traced == untraced


class TestSpeculationLifecycle:
    POLICY = SpeculationPolicy(quantile=0.5, latency_multiplier=1.05)

    def heavy_tailed(self):
        profile = ibm_us_east()
        profile.faas.cold_start.mean = 1.5
        profile.faas.cold_start.sigma = 1.4
        return profile

    def run(self, spans):
        payload = make_payload()
        cloud = Cloud.fresh(seed=SEED, profile=self.heavy_tailed(), spans=spans)
        cloud.store.ensure_bucket("data")
        executor = FunctionExecutor(cloud, retries=6, speculation=self.POLICY)
        operator = ShardedRelayShuffleSort(
            executor, CODEC, fleet_ready(cloud.vms, "bx2-8x32", shards=2)
        )

        def driver():
            yield cloud.store.put("data", "input.bin", payload)
            return (yield operator.sort("data", "input.bin", workers=WORKERS))

        result = cloud.sim.run_process(driver())
        runs = [cloud.store.peek("data", run.key) for run in result.runs]
        return runs, cloud

    def test_cancelled_backups_end_exactly_once(self):
        _runs, cloud = self.run(spans=True)
        tracer = cloud.sim.tracer
        assert cloud.faas.stats.cancellations > 0, "no backup was cancelled"
        assert tracer.validate() == []
        cancelled = [
            span
            for span in tracer.spans
            if span.category == "attempt" and span.status == "cancelled"
        ]
        assert cancelled, "cancelled attempts must keep their spans"
        # Primary and backup attempts of one call share a wave parent
        # and a worker track (the call's Perfetto lane).
        assert all(
            span.attributes.get("track", "").startswith("worker-")
            for span in cancelled
        )

    def test_speculation_parity_traced_vs_untraced(self):
        traced, _cloud = self.run(spans=True)
        untraced, _cloud = self.run(spans=False)
        assert traced == untraced


class TestRelayBackpressureEvent:
    def test_stall_event_lands_on_the_bound_attempt_span(self):
        """The admission-queue branch of ``_begin_push`` must record a
        ``relay.backpressure_stall`` event on the stalled attempt's span
        (regression: this branch evaluated ``fill_fraction`` wrongly and
        killed any push that queued, traced or not)."""
        cloud = Cloud.fresh(
            seed=3, profile=ibm_us_east(deterministic=True), spans=True
        )
        relay = relay_ready(cloud.vms, "bx2-2x8")
        filler = relay.client()
        chunk = relay.capacity_bytes * 0.7

        def fill():
            yield filler.push("resident", b"x", logical_size=chunk)

        cloud.sim.run_process(fill())
        span = cloud.sim.tracer.span("attempt", category="attempt")
        cloud.sim.tracer.bind_attempt("att-9", span)
        client = relay.client(attempt_id="att-9")
        pushed = []

        def pusher():
            yield client.push("new", b"y", logical_size=chunk)
            pushed.append(True)

        def freer():
            yield cloud.sim.timeout(5.0)  # pusher is queued by now
            yield filler.delete("resident")

        cloud.sim.process(pusher())
        cloud.sim.process(freer())
        cloud.sim.run()
        span.end()
        assert pushed == [True]
        names = [name for _at, name, _attrs in span.events]
        assert "relay.backpressure_stall" in names
        stall = next(
            attrs for _at, name, attrs in span.events
            if name == "relay.backpressure_stall"
        )
        assert 0.0 < stall["fill"] <= 1.0


class TestOnlineLifecycle:
    def test_decision_points_fold_into_the_sort_span(self):
        from repro.shuffle import OnlineShuffleSort, SkewSpec, skewed_fixed_payload

        payload = skewed_fixed_payload(
            3000,
            SkewSpec(
                distribution="late-hot",
                late_hot_fraction=0.25,
                late_hot_share=0.8,
            ),
            seed=2021,
        )
        cloud = Cloud.fresh(
            seed=2021, profile=ibm_us_east(deterministic=True), spans=True
        )
        cloud.store.ensure_bucket("data")
        operator = OnlineShuffleSort(
            FunctionExecutor(cloud),
            CODEC,
            stream=STREAM,
            modes=("streaming",),
        )

        def driver():
            yield cloud.store.put("data", "input.bin", payload)
            return (yield operator.sort("data", "input.bin", workers=WORKERS))

        cloud.sim.run_process(driver())
        tracer = cloud.sim.tracer
        assert tracer.validate() == []
        sort_span = next(s for s in tracer.spans if s.category == "sort")
        decisions = [
            (at_s, name, attrs)
            for at_s, name, attrs in sort_span.events
            if name.startswith("decision:")
        ]
        assert len(decisions) == len(operator.timeline.points)
        assert decisions[0][1] == "decision:initial"
        # Decision events carry the chosen configuration.
        assert all("substrate" in attrs for _at, _n, attrs in decisions)
