"""SLO gate tests (``repro.obs.slo``)."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloGate, SloViolation


class TestPredictionEnvelope:
    def test_within_factor_passes(self):
        gate = SloGate()
        assert gate.prediction_envelope("p", 10.0, 19.0, factor=2.0)
        assert gate.prediction_envelope("p2", 10.0, 5.5, factor=2.0)
        assert gate.passed

    def test_outside_factor_fails_both_ways(self):
        gate = SloGate()
        gate.prediction_envelope("slow", 10.0, 21.0, factor=2.0)
        gate.prediction_envelope("fast", 10.0, 4.0, factor=2.0)
        assert [c.name for c in gate.failures] == ["slow", "fast"]

    def test_missing_prediction_is_vacuous(self):
        gate = SloGate()
        assert gate.prediction_envelope("p", None, 12.0)
        assert gate.passed


class TestZeroAndEqual:
    def test_zero(self):
        gate = SloGate()
        gate.zero("residual", 0)
        gate.zero("leaked", 3)
        assert [c.name for c in gate.failures] == ["leaked"]

    def test_equal_digests(self):
        gate = SloGate()
        gate.equal("parity", "abcd", "abcd", "abcd")
        gate.equal("broken", "abcd", "ffff")
        assert [c.name for c in gate.failures] == ["broken"]


class TestP95:
    def test_list_samples(self):
        gate = SloGate()
        gate.p95("waits", [0.1] * 99 + [50.0], threshold_s=1.0)
        assert gate.passed  # p95 of the sample set is 0.1

    def test_registry_histogram_by_name(self):
        reg = MetricsRegistry()
        hist = reg.histogram("repro_wait_seconds", "waits")
        for _ in range(20):
            hist.observe(0.2)
        gate = SloGate(reg=reg)
        gate.p95("queue-wait", "repro_wait_seconds", threshold_s=0.5)
        gate.p95("too-slow", "repro_wait_seconds", threshold_s=0.1)
        assert [c.name for c in gate.failures] == ["too-slow"]

    def test_empty_samples_are_vacuous(self):
        gate = SloGate()
        assert gate.p95("empty", [], threshold_s=1.0)
        assert gate.passed


class TestGateSurface:
    def test_describe_lists_pass_and_fail(self):
        gate = SloGate("demo")
        gate.zero("ok-check", 0)
        gate.zero("bad-check", 1)
        text = gate.describe()
        assert "PASS" in text and "FAIL" in text
        assert "ok-check" in text and "bad-check" in text

    def test_assert_ok_raises_with_all_failures(self):
        gate = SloGate("demo")
        gate.zero("a", 1)
        gate.zero("b", 2)
        with pytest.raises(SloViolation) as excinfo:
            gate.assert_ok()
        assert "a" in str(excinfo.value) and "b" in str(excinfo.value)

    def test_assert_ok_passes_quietly(self):
        gate = SloGate("demo")
        gate.zero("a", 0)
        gate.assert_ok()
