"""Exporter tests: Chrome trace-event JSON and Prometheus text.

The Chrome exporter must emit Perfetto-loadable JSON (``ph:"X"``
complete events in microseconds, metadata thread names, instant
events), fold the legacy :class:`~repro.sim.timeline.Timeline` in as
instants on ``timeline:*`` tracks, and be byte-deterministic for the
same run.  The Prometheus exporter must produce parseable text
exposition with cumulative buckets.
"""

import json

from repro.obs.export import (
    chrome_trace_events,
    chrome_trace_json,
    prometheus_text,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.sim.timeline import Timeline


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def traced_run():
    clock = FakeClock()
    tracer = Tracer(clock=clock, enabled=True)
    root = tracer.span("sort:out", category="sort", substrate="relay")
    clock.now = 1.0
    wave = tracer.span("wave:map", category="wave", parent=root, track="driver")
    clock.now = 1.5
    attempt = tracer.span(
        "mapper", category="attempt", parent=wave, track="worker-000"
    )
    clock.now = 2.0
    attempt.event("relay.push", key="k", bytes=64)
    clock.now = 2.5
    attempt.set(outcome="ok").end()
    clock.now = 3.0
    wave.end()
    clock.now = 4.0
    root.end()
    return tracer, clock


class TestChromeTrace:
    def test_events_are_complete_and_microsecond_scaled(self):
        tracer, _clock = traced_run()
        events = chrome_trace_events(tracer)
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 3
        attempt = next(e for e in complete if e["name"] == "mapper")
        assert attempt["ts"] == 1.5e6
        assert attempt["dur"] == 1.0e6
        assert attempt["args"]["status"] == "ok"

    def test_span_events_become_instants(self):
        tracer, _clock = traced_run()
        events = chrome_trace_events(tracer)
        instants = [e for e in events if e["ph"] == "i"]
        assert any(
            e["name"] == "relay.push" and e["ts"] == 2.0e6 for e in instants
        )

    def test_tracks_become_named_threads(self):
        tracer, _clock = traced_run()
        events = chrome_trace_events(tracer)
        names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "worker-000" in names and "driver" in names
        # Same track -> same tid.
        tids = {
            e["tid"] for e in events if e.get("args", {}).get("track") == "worker-000"
        }
        assert len(tids) <= 1

    def test_timeline_records_fold_in_as_instants(self):
        tracer, _clock = traced_run()
        timeline = Timeline(enabled=True)
        timeline.record(2.25, "service", "scale_up", from_shards=1, to_shards=2)
        events = chrome_trace_events(tracer, timeline=timeline)
        folded = [e for e in events if e.get("cat") == "service"]
        assert len(folded) == 1
        assert folded[0]["name"] == "scale_up"
        assert folded[0]["ts"] == 2.25e6
        assert folded[0]["args"]["to_shards"] == 2
        # ... on their own timeline:* track.
        meta = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "timeline:service" in meta

    def test_json_is_valid_and_deterministic(self, tmp_path):
        first = chrome_trace_json(traced_run()[0])
        second = chrome_trace_json(traced_run()[0])
        assert first == second  # wall_s never leaks into the export
        payload = json.loads(first)
        assert isinstance(payload["traceEvents"], list)
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), traced_run()[0])
        assert json.loads(path.read_text()) == payload

    def test_unended_span_is_flagged_not_dropped(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock, enabled=True)
        tracer.span("leak", category="sort")
        events = chrome_trace_events(tracer)
        leak = next(e for e in events if e["ph"] == "X")
        assert leak["args"]["unfinished"] is True
        assert leak["dur"] == 0


class TestPrometheusText:
    def test_counters_gauges_histograms_render(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "Things counted").inc(3.0, tenant="a")
        reg.gauge("repro_depth", "Queue depth").set(2.0)
        hist = reg.histogram(
            "repro_wait_seconds", "Waits", buckets=(0.1, 1.0)
        )
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        text = prometheus_text(reg)
        assert '# TYPE repro_x_total counter' in text
        assert 'repro_x_total{tenant="a"} 3' in text
        assert "repro_depth 2" in text
        # Cumulative buckets: 1 under 0.1, 2 under 1.0, 3 under +Inf.
        assert 'repro_wait_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_wait_seconds_bucket{le="1"} 2' in text
        assert 'repro_wait_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_wait_seconds_count 3" in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""
