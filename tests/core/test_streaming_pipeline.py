"""The streaming_sort stage kind and the streaming-supported pipeline.

Engine-level coverage of the streaming subsystem: the pipeline runs end
to end on every substrate param, its artifact carries the streaming
observables, the Gantt shows the wave overlap, auto_sort dispatches to
streaming_sort when the priced decision says streaming, and the sorted
output feeds the encode stage exactly like every staged incarnation.
"""

import pytest

from repro.cloud import Cloud
from repro.core import (
    PURE_SERVERLESS,
    STREAMING_SUPPORTED,
    ExperimentConfig,
    run_pipeline,
    streaming_supported_pipeline,
)
from repro.core.experiment import stage_input
from repro.core.pipelines import auto_supported_pipeline
from repro.errors import WorkflowError
from repro.sim import Simulator
from repro.workflows.dag import StageSpec, WorkflowDag
from repro.workflows.engine import WorkflowEngine
from repro.workflows.gantt import spans_from_timeline, workflow_gantt

CONFIG = ExperimentConfig(size_gb=0.5, logical_scale=8192.0)


def run_streaming(config=None, substrate=None, trace=False, **sort_params):
    config = config if config is not None else CONFIG
    cloud = Cloud(Simulator(seed=config.seed, trace=trace), config.make_profile())
    stage_input(cloud, config, "pipeline", "input/methylome.bed")
    dag = streaming_supported_pipeline(config)
    for stage in dag.topological_order():
        if stage.kind == "streaming_sort":
            if substrate is not None:
                stage.params["substrate"] = substrate
                if substrate in ("objectstore", "cache"):
                    stage.params.pop("instance_type", None)
                    stage.params.pop("shards", None)
                if substrate == "cache":
                    stage.params.update(
                        node_type=config.cache_node_type, nodes=0,
                        provisioning="warm",
                    )
            stage.params.update(sort_params)
    engine = WorkflowEngine(cloud, dag)
    engine.workload = config.workload
    return cloud, engine.execute()


class TestStreamingPipeline:
    def test_default_relay_pipeline_end_to_end(self):
        run = run_pipeline(CONFIG, STREAMING_SUPPORTED)
        sort = run.workflow.artifacts["sort"]
        assert sort["substrate"] == "relay"
        assert sort["mode"] == "streaming"
        assert sort["overlap_s"] > 0.0
        assert sort["stream_chunks"] >= sort["workers"]
        # The encode stage consumed the streamed runs like any other's.
        staged = run_pipeline(CONFIG, PURE_SERVERLESS)
        assert (
            run.workflow.artifacts["encode"]["records"]
            == staged.workflow.artifacts["encode"]["records"]
        )

    @pytest.mark.parametrize("substrate", ["objectstore", "cache", "sharded-relay"])
    def test_every_substrate_param_streams(self, substrate):
        _cloud, result = run_streaming(substrate=substrate)
        sort = result.artifacts["sort"]
        assert sort["substrate"] == substrate
        assert sort["mode"] == "streaming"
        assert sort["overlap_s"] > 0.0
        assert sort["records"] == result.artifacts["encode"]["records"]

    def test_bounded_buffer_surfaces_backpressure_in_artifact(self):
        _cloud, result = run_streaming(chunk_mb=2.0, buffer_mb=0.25)
        sort = result.artifacts["sort"]
        assert sort["buffer_backpressure_waits"] > 0
        assert sort["buffer_high_watermark_bytes"] > 0.0

    def test_unknown_substrate_rejected(self):
        with pytest.raises(WorkflowError, match="unknown substrate"):
            run_streaming(substrate="carrier-pigeon")

    def test_bad_provisioning_rejected(self):
        with pytest.raises(WorkflowError, match="provisioning"):
            run_streaming(provisioning="lukewarm")


class TestWaveOverlapInGantt:
    def test_streaming_run_draws_overlapping_wave_spans(self):
        cloud, result = run_streaming(trace=True)
        waves = [
            span for span in spans_from_timeline(cloud.sim.timeline)
            if span.kind == "wave"
        ]
        assert len(waves) == 2
        map_wave = next(span for span in waves if span.label.startswith("map"))
        reduce_wave = next(
            span for span in waves if span.label.startswith("reduce")
        )
        # The reduce wave started before the map wave ended: the overlap
        # is visible directly on the chart.
        assert reduce_wave.start < map_wave.end
        chart = workflow_gantt(result.tracker, cloud.sim.timeline)
        assert "+ wave" in chart
        # The stage bar names substrate *and* mode.
        assert "[sort→relay streaming]" in chart

    def test_staged_run_draws_disjoint_wave_spans(self):
        config = CONFIG
        cloud = Cloud(
            Simulator(seed=config.seed, trace=True), config.make_profile()
        )
        stage_input(cloud, config, "pipeline", "input/methylome.bed")
        engine = WorkflowEngine(
            cloud,
            WorkflowDag(
                "staged-waves",
                [
                    StageSpec("ingest", "dataset_ref",
                              params={"key": "input/methylome.bed"}),
                    StageSpec("sort", "shuffle_sort", after=("ingest",),
                              params={"workers": 4}),
                ],
                bucket="pipeline",
            ),
        )
        engine.workload = config.workload
        engine.execute()
        waves = [
            span for span in spans_from_timeline(cloud.sim.timeline)
            if span.kind == "wave"
        ]
        assert len(waves) == 2
        map_wave = next(span for span in waves if span.label.startswith("map"))
        reduce_wave = next(
            span for span in waves if span.label.startswith("reduce")
        )
        assert reduce_wave.start >= map_wave.end  # the barrier is real


class TestAutoSortStreamingDispatch:
    def test_auto_sort_executes_streaming_when_priced_to_win(self):
        config = ExperimentConfig(
            size_gb=0.5, logical_scale=8192.0, time_value_usd_per_hour=30.0
        )
        cloud = Cloud(Simulator(seed=config.seed), config.make_profile())
        stage_input(cloud, config, "pipeline", "input/methylome.bed")
        dag = auto_supported_pipeline(config)
        for stage in dag.topological_order():
            if stage.kind == "auto_sort":
                stage.params["modes"] = ("staged", "streaming")
        engine = WorkflowEngine(cloud, dag)
        engine.workload = config.workload
        result = engine.execute()
        sort = result.artifacts["sort"]
        assert sort["substrate_mode"] == "streaming"
        # The dispatched stage really ran in streaming mode (not just
        # the decision record): the artifact has the streaming fields.
        assert sort["mode"] == "streaming"
        assert sort["overlap_s"] > 0.0
        assert "[streaming]" in sort["substrate_decision"]

    def test_auto_sort_defaults_stay_staged(self):
        config = ExperimentConfig(size_gb=0.5, logical_scale=8192.0)
        cloud = Cloud(Simulator(seed=config.seed), config.make_profile())
        stage_input(cloud, config, "pipeline", "input/methylome.bed")
        engine = WorkflowEngine(cloud, auto_supported_pipeline(config))
        engine.workload = config.workload
        result = engine.execute()
        assert result.artifacts["sort"]["substrate_mode"] == "staged"
