"""Unit tests for the METHCOMP stage-kind implementations."""

import pytest

from repro.cloud.environment import Cloud
from repro.core import ExperimentConfig
from repro.core.experiment import stage_input
from repro.errors import WorkflowError
from repro.sim import Simulator
from repro.workflows import StageSpec, WorkflowDag, WorkflowEngine, registered_kinds


CONFIG = ExperimentConfig(size_gb=0.25, logical_scale=4096.0)


def fresh_cloud():
    return Cloud(Simulator(seed=19), CONFIG.make_profile())


def run_dag(cloud, stages):
    engine = WorkflowEngine(cloud, WorkflowDag("t", stages, bucket="pipeline"))
    engine.workload = CONFIG.workload
    return engine.execute()


class TestRegistry:
    def test_builtin_kinds_registered(self):
        kinds = registered_kinds()
        for kind in (
            "methylome_dataset",
            "dataset_ref",
            "shuffle_sort",
            "vm_sort",
            "methcomp_encode",
            "methcomp_verify",
        ):
            assert kind in kinds

    def test_reregistration_is_idempotent(self):
        from repro.core import register_builtin_stage_kinds

        register_builtin_stage_kinds()
        register_builtin_stage_kinds()  # must not raise


class TestDatasetStages:
    def test_methylome_dataset_generates_and_uploads(self):
        cloud = fresh_cloud()
        result = run_dag(
            cloud,
            [
                StageSpec(
                    "gen",
                    "methylome_dataset",
                    params={"size_gb": 0.05, "seed": 2, "key": "gen.bed"},
                )
            ],
        )
        artifact = result.artifacts["gen"]
        assert artifact["records"] > 0
        assert cloud.store.peek("pipeline", "gen.bed")

    def test_dataset_size_scales_with_param(self):
        cloud = fresh_cloud()
        result = run_dag(
            cloud,
            [
                StageSpec("small", "methylome_dataset",
                          params={"size_gb": 0.02, "key": "s.bed"}),
                StageSpec("large", "methylome_dataset",
                          params={"size_gb": 0.08, "key": "l.bed"}),
            ],
        )
        assert (
            result.artifacts["large"]["real_bytes"]
            > 2 * result.artifacts["small"]["real_bytes"]
        )

    def test_dataset_ref_requires_key(self):
        cloud = fresh_cloud()
        with pytest.raises(WorkflowError, match="requires parameter"):
            run_dag(cloud, [StageSpec("ref", "dataset_ref")])

    def test_dataset_ref_reports_logical_size(self):
        cloud = fresh_cloud()
        stage_input(cloud, CONFIG, "pipeline", "input/methylome.bed")
        result = run_dag(
            cloud,
            [StageSpec("ref", "dataset_ref", params={"key": "input/methylome.bed"})],
        )
        artifact = result.artifacts["ref"]
        assert artifact["logical_bytes"] == pytest.approx(
            artifact["real_bytes"] * CONFIG.logical_scale
        )


class TestSortStages:
    def test_shuffle_sort_requires_single_upstream(self):
        cloud = fresh_cloud()
        stage_input(cloud, CONFIG, "pipeline", "input/methylome.bed")
        stages = [
            StageSpec("a", "dataset_ref", params={"key": "input/methylome.bed"}),
            StageSpec("b", "dataset_ref", params={"key": "input/methylome.bed"}),
            StageSpec("sort", "shuffle_sort", after=("a", "b"), params={"workers": 2}),
        ]
        with pytest.raises(WorkflowError, match="exactly one upstream"):
            run_dag(cloud, stages)

    def test_vm_sort_produces_requested_partitions(self):
        cloud = fresh_cloud()
        stage_input(cloud, CONFIG, "pipeline", "input/methylome.bed")
        result = run_dag(
            cloud,
            [
                StageSpec("ref", "dataset_ref", params={"key": "input/methylome.bed"}),
                StageSpec(
                    "sort",
                    "vm_sort",
                    after=("ref",),
                    params={"partitions": 3, "instance_type": "bx2-4x16"},
                ),
            ],
        )
        assert len(result.artifacts["sort"]["runs"]) == 3
        assert result.artifacts["sort"]["vm_type"] == "bx2-4x16"

    def test_vm_sort_terminates_instance(self):
        cloud = fresh_cloud()
        stage_input(cloud, CONFIG, "pipeline", "input/methylome.bed")
        run_dag(
            cloud,
            [
                StageSpec("ref", "dataset_ref", params={"key": "input/methylome.bed"}),
                StageSpec("sort", "vm_sort", after=("ref",), params={"partitions": 2}),
            ],
        )
        assert all(vm.state == "terminated" for vm in cloud.vms.instances)

    def test_vm_sort_runs_are_sorted_and_complete(self):
        from repro.methcomp.bed import bed_sort_key

        cloud = fresh_cloud()
        stage_input(cloud, CONFIG, "pipeline", "input/methylome.bed")
        result = run_dag(
            cloud,
            [
                StageSpec("ref", "dataset_ref", params={"key": "input/methylome.bed"}),
                StageSpec("sort", "vm_sort", after=("ref",), params={"partitions": 4}),
            ],
        )
        merged = b"".join(
            cloud.store.peek(run["bucket"], run["key"])
            for run in result.artifacts["sort"]["runs"]
        )
        lines = merged.split(b"\n")[:-1]
        keys = [bed_sort_key(line) for line in lines]
        assert keys == sorted(keys)
        original = cloud.store.peek("pipeline", "input/methylome.bed")
        assert len(merged) == len(original)
