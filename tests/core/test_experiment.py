"""Integration tests: the Table 1 experiment reproduces the paper's shape.

These run the full stack (data generation → shuffle/VM sort → real
METHCOMP compression) at a large ``logical_scale`` so real data stays
small while the performance model sees the paper's 3.5 GB.
"""

import dataclasses

import pytest

from repro.core import (
    ENCODE_STAGE,
    PURE_SERVERLESS,
    SORT_STAGE,
    VM_SUPPORTED,
    ExperimentConfig,
    run_pipeline,
    run_table1,
)

#: Scaled-down config: ~1.7 MB real data modelling 3.5 GB.
SMALL = ExperimentConfig(logical_scale=2048.0)


@pytest.fixture(scope="module")
def table1():
    return run_table1(SMALL)


class TestTable1Shape:
    def test_serverless_beats_vm_on_latency(self, table1):
        assert table1.serverless.latency_s < table1.vm.latency_s

    def test_speedup_in_paper_band(self, table1):
        """Paper: 1.71x. Accept a generous band around it."""
        assert 1.3 < table1.latency_speedup < 2.3

    def test_latencies_near_paper_values(self, table1):
        assert table1.serverless.latency_s == pytest.approx(83.32, rel=0.15)
        assert table1.vm.latency_s == pytest.approx(142.77, rel=0.15)

    def test_costs_are_similar_across_configs(self, table1):
        """Paper: 'both configurations deliver similar costs'."""
        ratio = table1.cost_ratio
        assert 0.5 < ratio < 1.5

    def test_costs_are_sub_cent_scale(self, table1):
        assert table1.serverless.cost_usd < 0.1
        assert table1.vm.cost_usd < 0.1

    def test_to_table_mentions_paper_numbers(self, table1):
        rendered = table1.to_table()
        assert "83.32" in rendered
        assert "142.77" in rendered
        assert "purely-serverless" in rendered

    def test_vm_pays_for_instance(self, table1):
        services = table1.vm.cloud.meter.total_by_service()
        assert services.get("vm", 0) > 0

    def test_serverless_pays_no_vm(self, table1):
        services = table1.serverless.cloud.meter.total_by_service()
        assert services.get("vm", 0) == 0

    def test_sort_dominates_vm_latency(self, table1):
        """The VM variant's penalty is in its sort stage (provisioning)."""
        vm_sort = table1.vm.stage_durations[SORT_STAGE]
        serverless_sort = table1.serverless.stage_durations[SORT_STAGE]
        assert vm_sort > serverless_sort * 1.5

    def test_encode_stage_comparable_across_variants(self, table1):
        """Encode runs on functions in both configs — it should not differ
        much (warm-up effects aside)."""
        vm_encode = table1.vm.stage_durations[ENCODE_STAGE]
        serverless_encode = table1.serverless.stage_durations[ENCODE_STAGE]
        assert vm_encode == pytest.approx(serverless_encode, rel=0.35)


class TestPipelineInternals:
    def test_compression_actually_happened(self, table1):
        encode = table1.serverless.workflow.artifacts[ENCODE_STAGE]
        assert encode["ratio"] > 10.0
        assert encode["compressed_bytes"] < encode["raw_bytes"] / 10

    def test_no_records_lost_in_either_variant(self, table1):
        for run in (table1.serverless, table1.vm):
            sort_records = run.workflow.artifacts[SORT_STAGE]["records"]
            encode_records = run.workflow.artifacts[ENCODE_STAGE]["records"]
            assert sort_records == encode_records > 0

    def test_requested_parallelism_respected(self, table1):
        assert table1.serverless.sort_workers == SMALL.parallelism
        assert len(table1.vm.workflow.artifacts[SORT_STAGE]["runs"]) == SMALL.parallelism

    def test_sorted_runs_are_globally_ordered(self, table1):
        from repro.methcomp.bed import bed_sort_key

        run = table1.serverless
        cloud = run.cloud
        merged = b"".join(
            cloud.store.peek(r["bucket"], r["key"])
            for r in run.workflow.artifacts[SORT_STAGE]["runs"]
        )
        lines = merged.split(b"\n")[:-1]
        keys = [bed_sort_key(line) for line in lines]
        assert keys == sorted(keys)

    def test_vm_variant_output_matches_serverless_output(self, table1):
        """Both sort paths must produce identical sorted content."""
        contents = {}
        for run in (table1.serverless, table1.vm):
            cloud = run.cloud
            merged = b"".join(
                cloud.store.peek(r["bucket"], r["key"])
                for r in run.workflow.artifacts[SORT_STAGE]["runs"]
            )
            contents[run.variant] = sorted(merged.split(b"\n"))
        assert contents[PURE_SERVERLESS] == contents[VM_SUPPORTED]


class TestVerification:
    def test_verify_stage_passes(self):
        config = dataclasses.replace(SMALL, logical_scale=4096.0)
        run = run_pipeline(config, PURE_SERVERLESS, verify=True)
        assert run.workflow.artifacts["verify"]["verified"] is True


class TestDeterminism:
    def test_same_seed_reproduces_exactly(self):
        config = dataclasses.replace(SMALL, logical_scale=4096.0)
        first = run_pipeline(config, PURE_SERVERLESS)
        second = run_pipeline(config, PURE_SERVERLESS)
        assert first.latency_s == second.latency_s
        assert first.cost_usd == second.cost_usd

    def test_different_seed_changes_timing(self):
        config_a = dataclasses.replace(SMALL, logical_scale=4096.0, seed=1)
        config_b = dataclasses.replace(SMALL, logical_scale=4096.0, seed=2)
        run_a = run_pipeline(config_a, PURE_SERVERLESS)
        run_b = run_pipeline(config_b, PURE_SERVERLESS)
        assert run_a.latency_s != run_b.latency_s


class TestAutoWorkers:
    def test_planner_driven_sort_completes(self):
        config = dataclasses.replace(
            SMALL, logical_scale=4096.0, auto_workers=True
        )
        run = run_pipeline(config, PURE_SERVERLESS)
        assert run.sort_workers >= 1
        assert run.workflow.artifacts[SORT_STAGE]["planned_workers"] is not None
