"""Integration tests: the cache-supported pipeline variant (experiment S8)."""

import dataclasses

import pytest

from repro.core import (
    CACHE_SUPPORTED,
    ENCODE_STAGE,
    SORT_STAGE,
    ExperimentConfig,
    cache_supported_pipeline,
    pipeline_for,
    run_exchange_comparison,
    run_pipeline,
)

#: Scaled-down config: ~1.7 MB real data modelling 3.5 GB.
SMALL = ExperimentConfig(logical_scale=2048.0)


@pytest.fixture(scope="module")
def comparison():
    return run_exchange_comparison(SMALL)


class TestCachePipeline:
    def test_pipeline_for_builds_cache_variant(self):
        dag = pipeline_for(CACHE_SUPPORTED, SMALL)
        assert dag.name == CACHE_SUPPORTED
        kinds = {spec.name: spec.kind for spec in dag.topological_order()}
        assert kinds[SORT_STAGE] == "cache_sort"
        assert kinds[ENCODE_STAGE] == "methcomp_encode"

    def test_verify_stage_optional(self):
        with_verify = cache_supported_pipeline(SMALL, verify=True)
        without = cache_supported_pipeline(SMALL, verify=False)
        assert len(list(with_verify.topological_order())) == 4
        assert len(list(without.topological_order())) == 3

    def test_cache_run_compresses_same_records(self, comparison):
        encode = comparison.cache.workflow.artifacts[ENCODE_STAGE]
        baseline = comparison.serverless.workflow.artifacts[ENCODE_STAGE]
        assert encode["records"] == baseline["records"]
        assert encode["ratio"] > 5.0

    def test_cache_sort_reports_cluster_metadata(self, comparison):
        sort = comparison.cache.workflow.artifacts[SORT_STAGE]
        assert sort["cache_nodes"] >= 1
        assert sort["cache_node_type"] == SMALL.cache_node_type
        assert 0 < sort["cache_peak_fill"] <= 1

    def test_cluster_terminated_after_stage(self, comparison):
        clusters = comparison.cache.cloud.cache.clusters
        assert clusters
        assert all(c.state == "terminated" for c in clusters.values())

    def test_cache_cost_includes_node_seconds(self, comparison):
        lines = comparison.cache.cloud.meter.filtered(service="memstore")
        assert lines
        assert sum(line.usd for line in lines) > 0

    def test_cache_sort_is_fastest_sort(self, comparison):
        assert (
            comparison.cache.stage_durations[SORT_STAGE]
            <= comparison.serverless.stage_durations[SORT_STAGE] * 1.05
        )
        assert (
            comparison.cache.stage_durations[SORT_STAGE]
            < comparison.vm.stage_durations[SORT_STAGE]
        )

    def test_cache_sort_is_costliest_sort(self, comparison):
        assert (
            comparison.cache.stage_costs[SORT_STAGE]
            > comparison.serverless.stage_costs[SORT_STAGE]
        )

    def test_cold_provisioning_pays_cluster_creation(self):
        cold = dataclasses.replace(SMALL, cache_provisioning="cold")
        run_cold = run_pipeline(cold, CACHE_SUPPORTED)
        run_warm = run_pipeline(SMALL, CACHE_SUPPORTED)
        provision = run_warm.cloud.profile.memstore.provision.mean
        assert run_cold.latency_s > run_warm.latency_s + 0.5 * provision

    def test_invalid_provisioning_mode_rejected(self):
        from repro.errors import WorkflowError

        bad = dataclasses.replace(SMALL, cache_provisioning="lukewarm")
        with pytest.raises(WorkflowError, match="provisioning"):
            run_pipeline(bad, CACHE_SUPPORTED)

    def test_table_renders_all_variants(self, comparison):
        table = comparison.to_table()
        assert "purely-serverless" in table
        assert "vm-supported" in table
        assert "cache-supported" in table
