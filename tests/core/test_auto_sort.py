"""Tests for the adaptive ``auto_sort`` stage and its pipelines.

The stage calls ``choose_exchange_substrate`` at DAG-execution time,
dispatches to the chosen substrate's sort stage with the priced
configuration injected, and records the decision in the stage artifact
(and thereby the tracker report and Gantt label).
"""

import pytest

from repro.cloud.environment import Cloud
from repro.core import (
    AUTO_SUPPORTED,
    SHARDED_RELAY_SUPPORTED,
    ExperimentConfig,
    auto_supported_pipeline,
    pipeline_for,
    run_pipeline,
    sharded_relay_supported_pipeline,
    stage_input,
)
from repro.shuffle.adaptive import EXCHANGE_SUBSTRATES
from repro.sim import Simulator
from repro.workflows import WorkflowEngine
from repro.workflows.dag import StageSpec, WorkflowDag
from repro.workflows.gantt import spans_from_tracker


@pytest.fixture
def config():
    return ExperimentConfig(logical_scale=4096.0)


def run_auto_dag(config, sort_params):
    """Execute ingest → auto_sort on a fresh region, returning the result."""
    cloud = Cloud(Simulator(seed=7), config.make_profile())
    stage_input(cloud, config, "pipeline", "input/methylome.bed")
    dag = WorkflowDag(
        "auto-test",
        [
            StageSpec("ingest", "dataset_ref",
                      params={"key": "input/methylome.bed"}),
            StageSpec("sort", "auto_sort", after=("ingest",),
                      params=sort_params),
        ],
        bucket="pipeline",
    )
    engine = WorkflowEngine(cloud, dag)
    engine.workload = config.workload
    return engine.execute()


class TestBuilders:
    def test_auto_pipeline_shape(self, config):
        dag = auto_supported_pipeline(config)
        assert dag.stage("sort").kind == "auto_sort"
        assert dag.name == AUTO_SUPPORTED
        assert pipeline_for(AUTO_SUPPORTED, config).name == AUTO_SUPPORTED

    def test_sharded_pipeline_shape(self, config):
        dag = sharded_relay_supported_pipeline(config)
        assert dag.stage("sort").kind == "sharded_relay_sort"
        assert dag.stage("sort").params["shards"] == config.relay_shards
        assert pipeline_for(SHARDED_RELAY_SUPPORTED, config).name == (
            SHARDED_RELAY_SUPPORTED
        )


class TestAutoSortStage:
    def test_records_decision_in_artifact_and_tracker(self, config):
        result = run_auto_dag(config, {"workers": 4, "memory_mb": 2048})
        artifact = result.artifacts["sort"]
        assert artifact["substrate"] in EXCHANGE_SUBSTRATES
        assert artifact["workers"] == 4
        # The full priced comparison is in the report, human-readable.
        assert "->" in artifact["substrate_decision"]
        for substrate in EXCHANGE_SUBSTRATES:
            assert substrate in artifact["substrate_decision"]
        # ...and flows into the tracker's stage detail.
        detail = result.tracker.reports["sort"].detail
        assert detail["substrate"] == artifact["substrate"]
        assert detail["substrate_score_usd"] == pytest.approx(
            artifact["substrate_score_usd"]
        )

    def test_gantt_label_names_the_substrate(self, config):
        result = run_auto_dag(config, {"workers": 4, "memory_mb": 2048})
        substrate = result.artifacts["sort"]["substrate"]
        spans = spans_from_tracker(result.tracker)
        assert any(
            span.label == f"[sort→{substrate}]" for span in spans
        ), [span.label for span in spans]

    def test_zero_time_value_dispatches_to_objectstore(self, config):
        result = run_auto_dag(
            config,
            {"workers": 4, "memory_mb": 2048,
             "time_value_usd_per_hour": 0.0},
        )
        assert result.artifacts["sort"]["substrate"] == "objectstore"

    def test_substrate_restriction_forces_dispatch(self, config):
        """Restricting the candidates steers the dispatch — and proves
        every provisioned sort stage is reachable from auto_sort."""
        for substrate in ("cache", "relay", "sharded-relay"):
            result = run_auto_dag(
                config,
                {"workers": 3, "memory_mb": 2048,
                 "substrates": [substrate]},
            )
            artifact = result.artifacts["sort"]
            assert artifact["substrate"] == substrate
            assert artifact["records"] > 0
            if substrate == "sharded-relay":
                assert artifact["relay_shards"] >= 1

    def test_executes_the_priced_worker_count(self, config):
        """Unpinned workers: the stage must execute with the count the
        winning estimate priced, not a default."""
        result = run_auto_dag(
            config,
            {"workers": None, "memory_mb": 2048, "max_workers": 16},
        )
        artifact = result.artifacts["sort"]
        assert artifact["workers"] == artifact["substrate_workers"]
        assert 1 <= artifact["workers"] <= 16


class TestAutoPipelineEndToEnd:
    def test_auto_supported_pipeline_runs(self, config):
        run = run_pipeline(config, AUTO_SUPPORTED)
        assert run.workflow.artifacts["encode"]["ratio"] > 5.0
        sort_artifact = run.workflow.artifacts["sort"]
        assert sort_artifact["substrate"] in EXCHANGE_SUBSTRATES

    def test_auto_matches_dedicated_pipeline_artifacts(self, config):
        """The adaptive pipeline must produce the same records as the
        substrate-pinned one it dispatched to."""
        auto = run_pipeline(config, AUTO_SUPPORTED)
        pinned = run_pipeline(config, "purely-serverless")
        assert (
            auto.workflow.artifacts["encode"]["records"]
            == pinned.workflow.artifacts["encode"]["records"]
        )

    def test_sharded_relay_pipeline_runs(self, config):
        run = run_pipeline(config, SHARDED_RELAY_SUPPORTED)
        sort_artifact = run.workflow.artifacts["sort"]
        assert sort_artifact["relay_shards"] == config.relay_shards
        assert run.workflow.artifacts["encode"]["ratio"] > 5.0
