"""Tests for pipeline builders and declarative execution of the same."""

import json

import pytest

from repro.cloud.environment import Cloud
from repro.core import (
    ExperimentConfig,
    pipeline_for,
    pure_serverless_pipeline,
    vm_supported_pipeline,
)
from repro.core.experiment import stage_input
from repro.sim import Simulator
from repro.workflows import WorkflowEngine, dump_spec, parse_spec, render_dag


@pytest.fixture
def config():
    return ExperimentConfig(logical_scale=4096.0)


class TestBuilders:
    def test_pure_serverless_shape(self, config):
        dag = pure_serverless_pipeline(config)
        names = [s.name for s in dag.topological_order()]
        assert names == ["ingest", "sort", "encode"]
        assert dag.stage("sort").kind == "shuffle_sort"

    def test_vm_supported_shape(self, config):
        dag = vm_supported_pipeline(config)
        assert dag.stage("sort").kind == "vm_sort"
        assert dag.stage("sort").params["instance_type"] == "bx2-8x32"

    def test_verify_stage_optional(self, config):
        dag = pure_serverless_pipeline(config, verify=True)
        assert [s.name for s in dag.topological_order()][-1] == "verify"

    def test_parallelism_respected_in_params(self, config):
        dag = pure_serverless_pipeline(config)
        assert dag.stage("sort").params["workers"] == config.parallelism

    def test_auto_workers_unpins_count(self, config):
        import dataclasses

        auto = dataclasses.replace(config, auto_workers=True)
        dag = pure_serverless_pipeline(auto)
        assert dag.stage("sort").params["workers"] is None

    def test_pipeline_for_dispatch(self, config):
        assert pipeline_for("purely-serverless", config).name == "purely-serverless"
        assert pipeline_for("vm-supported", config).name == "vm-supported"
        with pytest.raises(ValueError):
            pipeline_for("quantum", config)


class TestDeclarativeRoundtrip:
    def test_pipelines_survive_json_roundtrip(self, config):
        for dag in (
            pure_serverless_pipeline(config),
            vm_supported_pipeline(config),
        ):
            restored = parse_spec(dump_spec(dag))
            assert [s.name for s in restored.stages] == [s.name for s in dag.stages]
            assert [s.kind for s in restored.stages] == [s.kind for s in dag.stages]

    def test_json_defined_pipeline_executes(self, config):
        """A pipeline authored purely as JSON runs end to end."""
        document = json.dumps(
            {
                "name": "json-authored",
                "bucket": "pipeline",
                "stages": [
                    {"name": "ingest", "kind": "dataset_ref",
                     "params": {"key": "input/methylome.bed"}},
                    {"name": "sort", "kind": "shuffle_sort",
                     "after": ["ingest"], "params": {"workers": 2}},
                    {"name": "encode", "kind": "methcomp_encode",
                     "after": ["sort"]},
                ],
            }
        )
        cloud = Cloud(Simulator(seed=3), config.make_profile())
        stage_input(cloud, config, "pipeline", "input/methylome.bed")
        engine = WorkflowEngine(cloud, parse_spec(document))
        result = engine.execute()
        assert result.artifacts["encode"]["ratio"] > 5.0

    def test_render_figure_contains_both_substrates(self, config):
        serverless_art = render_dag(pure_serverless_pipeline(config))
        hybrid_art = render_dag(vm_supported_pipeline(config))
        assert "cloud functions" in serverless_art
        assert "virtual machine" in hybrid_art
