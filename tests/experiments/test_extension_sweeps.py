"""Tests for the extension sweeps S8-S11 (small configurations).

The benchmarks run the full-size versions; these exercise the same code
paths at tiny scale so failures localize quickly.
"""

import pytest

from repro.core import ExperimentConfig
from repro.experiments import (
    sweep_exchange,
    sweep_exchange_pipelines,
    sweep_fault_rate,
    sweep_multicloud,
    sweep_skew,
    sweep_speculation,
    sweep_tuner,
)

TINY = ExperimentConfig(size_gb=0.5, logical_scale=8192.0)


class TestSweepExchange:
    def test_rows_cover_all_strategies(self):
        rows = sweep_exchange(TINY, worker_counts=(2, 4))
        assert len(rows) == 8
        strategies = {(row["workers"], row["strategy"]) for row in rows}
        assert strategies == {
            (2, "objectstore"), (2, "cache"), (2, "relay"),
            (2, "sharded-relay"),
            (4, "objectstore"), (4, "cache"), (4, "relay"),
            (4, "sharded-relay"),
        }

    def test_strategies_subset_respected(self):
        rows = sweep_exchange(
            TINY, worker_counts=(2,), strategies=("objectstore", "relay")
        )
        assert [row["strategy"] for row in rows] == ["objectstore", "relay"]
        with pytest.raises(ValueError, match="unknown exchange strategy"):
            sweep_exchange(TINY, worker_counts=(2,), strategies=("carrier-pigeon",))

    def test_provisioned_substrates_issue_fewer_storage_requests(self):
        rows = sweep_exchange(TINY, worker_counts=(8,))
        by_strategy = {row["strategy"]: row for row in rows}
        for strategy in ("cache", "relay", "sharded-relay"):
            assert (
                by_strategy[strategy]["storage_requests"]
                < by_strategy["objectstore"]["storage_requests"]
            )

    def test_substrates_emit_identical_artifacts(self):
        rows = sweep_exchange(TINY, worker_counts=(3,))
        assert len({row["output_digest"] for row in rows}) == 1

    def test_rows_carry_uniform_provisioned_cost(self):
        """The uniform ExchangeReport replaces per-substrate metadata:
        every row prices its provisioned infrastructure the same way."""
        rows = sweep_exchange(TINY, worker_counts=(2,))
        by_strategy = {row["strategy"]: row for row in rows}
        assert by_strategy["objectstore"]["provisioned_usd"] == 0.0
        for strategy in ("cache", "relay", "sharded-relay"):
            assert by_strategy[strategy]["provisioned_usd"] > 0.0
        assert (
            by_strategy["sharded-relay"]["provisioned_usd"]
            > by_strategy["relay"]["provisioned_usd"]
        )

    def test_pipeline_variant_rows(self):
        rows = sweep_exchange_pipelines(TINY, sizes_gb=(0.5,))
        assert len(rows) == 4
        assert {row["variant"] for row in rows} == {
            "purely-serverless", "vm-supported", "cache-supported",
            "relay-supported",
        }
        assert all(row["latency_s"] > 0 for row in rows)


class TestSweepRelayShards:
    def test_baseline_plus_one_row_per_fleet_size(self):
        from repro.experiments import sweep_relay_shards

        rows = sweep_relay_shards(TINY, shard_counts=(1, 2), workers=4)
        assert [(row["strategy"], row["shards"]) for row in rows] == [
            ("objectstore", 0), ("sharded-relay", 1), ("sharded-relay", 2),
        ]
        # Byte parity across the baseline and every fleet size.
        assert len({row["output_digest"] for row in rows}) == 1
        # N shards bill ~N instances' seconds.
        assert rows[2]["provisioned_usd"] > rows[1]["provisioned_usd"]
        for row in rows[1:]:
            assert row["residual_bytes"] == 0.0


class TestSweepFaults:
    def test_crash_free_baseline_has_no_crashes(self):
        rows = sweep_fault_rate(TINY, crash_rates=(0.0,), calls=6,
                                call_cpu_s=2.0)
        assert rows[0]["crashes"] == 0
        assert rows[0]["invocations"] == 6

    def test_crashes_inflate_invocations(self):
        rows = sweep_fault_rate(TINY, crash_rates=(0.0, 0.4), calls=8,
                                call_cpu_s=4.0)
        healthy, crashy = rows
        assert crashy["crashes"] > 0
        assert crashy["invocations"] == 8 + crashy["crashes"]
        assert crashy["cost_usd"] > healthy["cost_usd"]


class TestSweepSpeculation:
    def test_rows_cover_both_modes(self):
        rows = sweep_speculation(TINY, calls=12, call_cpu_s=2.0)
        assert [row["speculation"] for row in rows] == ["off", "on"]
        off, on = rows
        assert off["backup_tasks"] == 0
        assert on["invocations"] >= off["invocations"]


class TestSweepTuner:
    def test_single_scenario_regret_fields(self):
        def slow_nic(profile):
            profile.faas.instance_bandwidth = 8e6

        rows = sweep_tuner(
            TINY,
            worker_candidates=(4, 8),
            scenarios={"slow-nic": slow_nic},
        )
        assert len(rows) == 1
        row = rows[0]
        assert row["oracle_pick"] in (4, 8)
        assert row["static_regret"] >= 1.0
        assert row["tuned_regret"] > 0
        assert row["probe_s"] > 0


class TestSweepMulticloud:
    def test_conclusion_holds_on_both_providers(self):
        rows = sweep_multicloud(TINY)
        assert [row["provider"] for row in rows] == [
            "ibm-us-east", "aws-us-east",
        ]
        for row in rows:
            assert row["speedup"] > 1.0, row["provider"]
            assert row["serverless_cost_usd"] > 0
        assert rows[0]["vm_type"] == "bx2-8x32"
        assert rows[1]["vm_type"] == "m5.2xlarge"


class TestSweepSkew:
    def test_rows_cover_routings_and_hold_parity(self):
        rows = sweep_skew(
            TINY, distributions=("uniform", "zipf"), workers=4, shards=2
        )
        assert [(row["distribution"], row["routing"]) for row in rows] == [
            ("uniform", "-"), ("uniform", "crc"), ("uniform", "rebalanced"),
            ("zipf", "-"), ("zipf", "crc"), ("zipf", "rebalanced"),
        ]
        by_key = {(row["distribution"], row["routing"]): row for row in rows}
        # Byte parity within each distribution, divergence across them.
        for distribution in ("uniform", "zipf"):
            digests = {
                by_key[(distribution, routing)]["output_digest"]
                for routing in ("-", "crc", "rebalanced")
            }
            assert len(digests) == 1, distribution
        assert (
            by_key[("uniform", "-")]["output_digest"]
            != by_key[("zipf", "-")]["output_digest"]
        )
        # The Zipf rows measure real skew; the uniform rows do not.
        assert by_key[("zipf", "-")]["partition_skew"] > 1.5
        assert by_key[("uniform", "-")]["partition_skew"] < 1.5
        # Fleet rows settle clean and carry the skew-aware prediction.
        for row in rows:
            if row["strategy"] == "sharded-relay":
                assert row["residual_bytes"] == 0.0
                assert row["predicted_s"] > 0
                assert 0.0 < row["hot_shard_share"] <= 1.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="unknown key distribution"):
            sweep_skew(TINY, distributions=("gaussian",))
        with pytest.raises(ValueError, match="workers"):
            sweep_skew(TINY, workers=0)
        with pytest.raises(ValueError, match="shards"):
            sweep_skew(TINY, shards=0)


class TestSweepStreaming:
    def test_rows_cover_modes_and_hold_parity(self):
        from repro.experiments import sweep_streaming

        rows = sweep_streaming(
            TINY, strategies=("objectstore", "relay"), workers=4,
            chunk_mb=8.0, buffer_mb=64.0, bounded_buffer_mb=0.5,
        )
        assert len(rows) == 6
        modes = {(row["strategy"], row["mode"]) for row in rows}
        assert modes == {
            ("objectstore", "staged"), ("objectstore", "streaming"),
            ("objectstore", "streaming-bounded"),
            ("relay", "staged"), ("relay", "streaming"),
            ("relay", "streaming-bounded"),
        }
        # Byte parity across substrates *and* modes.
        assert len({row["output_digest"] for row in rows}) == 1
        by_key = {(row["strategy"], row["mode"]): row for row in rows}
        for strategy in ("objectstore", "relay"):
            assert by_key[(strategy, "streaming")]["overlap_s"] > 0.0
            assert by_key[(strategy, "staged")]["overlap_s"] == 0.0
        # The bounded run recorded backpressure on at least one substrate.
        assert any(
            row["backpressure_waits"] > 0
            for row in rows if row["mode"] == "streaming-bounded"
        )
        # Relay rows settle with zero residual reservations.
        assert all(row["residual_bytes"] == 0.0 for row in rows)

    def test_rejects_bad_arguments(self):
        from repro.experiments import sweep_streaming

        with pytest.raises(ValueError, match="unknown exchange strategy"):
            sweep_streaming(TINY, strategies=("carrier-pigeon",))
        with pytest.raises(ValueError, match="workers"):
            sweep_streaming(TINY, workers=0)
