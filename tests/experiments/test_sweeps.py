"""Tests for the sweep regenerators (small configurations).

The benchmarks run the full-size sweeps; these tests exercise the same
code paths at tiny scale so failures localize quickly.
"""

import pytest

from repro.core import ExperimentConfig
from repro.experiments import (
    format_rows,
    render_figure1,
    sweep_codec,
    sweep_io_ablation,
    sweep_memory,
    sweep_size,
    sweep_storage_ops,
    sweep_workers,
)

TINY = ExperimentConfig(size_gb=0.5, logical_scale=4096.0)


class TestSweepWorkers:
    def test_rows_cover_requested_counts(self):
        rows = sweep_workers(TINY, worker_counts=(2, 4))
        assert [row["workers"] for row in rows] == [2, 4]
        assert all(row["sort_latency_s"] > 0 for row in rows)

    def test_fewer_workers_slower_at_small_counts(self):
        rows = sweep_workers(TINY, worker_counts=(2, 8))
        latency = {row["workers"]: row["sort_latency_s"] for row in rows}
        assert latency[2] > latency[8]


class TestSweepSize:
    def test_latency_grows_with_size(self):
        rows = sweep_size(TINY, sizes_gb=(0.25, 1.0))
        assert rows[1]["serverless_latency_s"] > rows[0]["serverless_latency_s"]
        assert rows[1]["vm_latency_s"] > rows[0]["vm_latency_s"]

    def test_speedup_positive(self):
        rows = sweep_size(TINY, sizes_gb=(0.5,))
        assert rows[0]["speedup"] > 1.0


class TestSweepStorage:
    def test_throttled_store_slower(self):
        rows = sweep_storage_ops(
            TINY, ops_rates=(10, 5000), workers=8, write_combining=False
        )
        latency = {row["ops_per_second"]: row["sort_latency_s"] for row in rows}
        assert latency[10] > latency[5000]

    def test_request_counts_reported(self):
        rows = sweep_storage_ops(
            TINY, ops_rates=(5000,), workers=4, write_combining=False
        )
        assert rows[0]["requests"] > 4 * 4


class TestSweepIoAblation:
    def test_naive_issues_more_puts(self):
        rows = sweep_io_ablation(TINY, worker_counts=(4,))
        by_mode = {row["write_combining"]: row for row in rows}
        assert by_mode[False]["storage_puts"] > by_mode[True]["storage_puts"]


class TestSweepCodec:
    def test_ratios_reported(self):
        rows = sweep_codec(record_counts=(5_000,))
        assert rows[0]["methcomp_ratio"] > rows[0]["gzip_ratio"] > 1.0


class TestSweepMemory:
    def test_small_memory_slower(self):
        rows = sweep_memory(TINY, memory_sizes=(512, 2048))
        latency = {row["memory_mb"]: row["latency_s"] for row in rows}
        assert latency[512] > latency[2048]


class TestFigure1:
    def test_contains_both_variants(self):
        art = render_figure1(TINY)
        assert "(A) VM-supported (hybrid)" in art
        assert "(B) Purely serverless" in art

    def test_substrate_annotations(self):
        art = render_figure1(TINY)
        assert "virtual machine" in art
        assert "cloud functions" in art


class TestFormatRows:
    def test_basic_table(self):
        out = format_rows(["a", "bb"], [[1, 2.5], [10, 0.125]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.5" in out and "0.125" in out

    def test_empty_rows(self):
        out = format_rows(["col"], [])
        assert "col" in out
