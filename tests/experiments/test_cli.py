"""Tests for the repro-experiments CLI."""

import pytest

from repro.experiments.cli import main


class TestCli:
    def test_figure1_runs(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Purely serverless" in out

    def test_sweep_codec_runs(self, capsys):
        assert main(["--seed", "3", "sweep-codec"]) == 0
        out = capsys.readouterr().out
        assert "methcomp_ratio" in out

    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep-everything"])

    def test_scale_flag_parsed(self, capsys):
        # Tiny smoke run of the heaviest command with a huge scale so it
        # finishes fast.
        assert main(["--scale", "16384", "table1"]) == 0
        out = capsys.readouterr().out
        assert "purely-serverless" in out
        assert "Paper" in out

    def test_exchange_runs(self, capsys):
        assert main(["--scale", "16384", "exchange"]) == 0
        out = capsys.readouterr().out
        assert "cache-supported" in out

    def test_sweep_multicloud_runs(self, capsys):
        assert main(["--scale", "16384", "sweep-multicloud"]) == 0
        out = capsys.readouterr().out
        assert "aws-us-east" in out

    def test_every_documented_subcommand_is_registered(self):
        """The module docstring's usage block matches the parser."""
        import re

        import repro.experiments.cli as cli_module

        documented = set(
            re.findall(r"repro-experiments ([a-z0-9-]+)", cli_module.__doc__)
        )
        source = open(cli_module.__file__, encoding="utf-8").read()
        registered = set(re.findall(r'"([a-z0-9][a-z0-9-]*)",\n', source))
        # trace/metrics take --out, so they register via their own
        # add_parser calls instead of the plain-name loop.
        registered |= set(re.findall(r'sub\.add_parser\(\s*\n?\s*"([a-z0-9-]+)"', source))
        assert documented <= registered | {"table1", "figure1", "exchange"}
        # And every documented command is dispatched somewhere.
        for name in documented:
            assert f'"{name}"' in source, name

    def test_sweep_streaming_runs(self, capsys):
        assert main(["--scale", "16384", "sweep-streaming"]) == 0
        out = capsys.readouterr().out
        assert "S10: streaming vs staged exchange" in out
        assert "overlap_s" in out
        assert "backpressure_waits" in out

    def test_sweep_skew_runs(self, capsys):
        assert main(["--scale", "16384", "sweep-skew"]) == 0
        out = capsys.readouterr().out
        assert "S11: skew-aware shuffle" in out
        assert "partition_skew" in out
        assert "hot_shard_share" in out
        assert "rebalanced" in out
