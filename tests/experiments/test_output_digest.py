"""Pin the shared ``output_digest`` helper against the sweeps.

Eight sweeps used to carry their own copy-pasted sha256-over-runs loop;
they now all call :func:`repro.cas.output_digest`.  These tests pin the
helper to the exact historical digest formula (so every sweep's
``output_digest`` column is comparable across commits) and pin the
cross-sweep invariant the dedup work relies on: identical artifacts
report identical digests.
"""

import hashlib

from repro.cas import output_digest
from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.executor import FunctionExecutor
from repro.shuffle import FixedWidthCodec, ShuffleSort


def sorted_result(seed=7, *, count=400):
    cloud = Cloud.fresh(seed=seed, profile=ibm_us_east(deterministic=True))
    cloud.store.ensure_bucket("data")
    executor = FunctionExecutor(cloud)
    codec = FixedWidthCodec(record_size=16, key_bytes=8)
    operator = ShuffleSort(executor, codec)
    rng = __import__("random").Random(seed)
    payload = b"".join(
        rng.randrange(1 << 32).to_bytes(8, "big") + bytes(8)
        for _ in range(count)
    )
    def driver():
        yield cloud.store.put("data", "input.bin", payload)
        return (yield operator.sort("data", "input.bin", workers=2))

    return cloud, cloud.sim.run_process(driver())


class TestOutputDigest:
    def test_matches_the_historical_manual_loop(self):
        """The helper is byte-for-byte the loop the sweeps carried."""
        cloud, result = sorted_result()
        digest = hashlib.sha256()
        for run in result.runs:
            digest.update(cloud.store.peek(run.bucket, run.key))
        assert output_digest(cloud, result, full=True) == digest.hexdigest()

    def test_default_is_the_16_char_prefix_of_full(self):
        cloud, result = sorted_result()
        full = output_digest(cloud, result, full=True)
        short = output_digest(cloud, result)
        assert len(full) == 64
        assert short == full[:16]

    def test_identical_artifacts_identical_digests(self):
        """Same seed on fresh clouds → same artifact → same digest, and
        a different input is actually distinguished."""
        cloud_a, result_a = sorted_result(seed=7)
        cloud_b, result_b = sorted_result(seed=7)
        assert output_digest(cloud_a, result_a) == output_digest(
            cloud_b, result_b
        )
        cloud_c, result_c = sorted_result(seed=8)
        assert output_digest(cloud_a, result_a) != output_digest(
            cloud_c, result_c
        )

    def test_run_order_matters(self):
        """The digest is order-sensitive over runs — it fingerprints the
        sorted sequence, not a bag of chunks."""
        cloud, result = sorted_result()
        digest = hashlib.sha256()
        for run in reversed(result.runs):
            digest.update(cloud.store.peek(run.bucket, run.key))
        assert output_digest(cloud, result, full=True) != digest.hexdigest()
