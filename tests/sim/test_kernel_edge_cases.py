"""Edge-case tests for kernel semantics that the stack relies on."""

import pytest

from repro.errors import DeadlockError, Interrupted, SimulationError
from repro.sim import Simulator, Store


@pytest.fixture
def sim():
    return Simulator(seed=3)


class TestZeroDelaySemantics:
    def test_zero_delay_chains_preserve_order(self, sim):
        """Cascades of zero-delay events run in scheduling order."""
        order = []

        def chain(tag, depth):
            for step in range(depth):
                yield sim.timeout(0.0)
                order.append((tag, step))

        sim.process(chain("a", 3))
        sim.process(chain("b", 3))
        sim.run()
        assert order == [
            ("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2)
        ]
        assert sim.now == 0.0

    def test_process_started_via_heap_not_inline(self, sim):
        """Creating a process does not run its body synchronously."""
        log = []

        def worker():
            log.append("ran")
            yield sim.timeout(0.0)

        sim.process(worker())
        assert log == []  # not started yet
        sim.run()
        assert log == ["ran"]


class TestInterruptEdgeCases:
    def test_interrupt_resumes_with_new_wait(self, sim):
        """A process can catch the interrupt and keep working."""

        def worker():
            try:
                yield sim.timeout(100.0)
            except Interrupted:
                yield sim.timeout(5.0)  # plan B
                return "recovered"

        process = sim.process(worker())

        def interrupter():
            yield sim.timeout(1.0)
            process.interrupt()

        sim.process(interrupter())
        assert sim.run(until=process.completion) == "recovered"
        assert sim.now == pytest.approx(6.0)

    def test_interrupted_event_does_not_resume_twice(self, sim):
        """The originally awaited event firing later must not re-enter."""
        resumed = []

        def worker():
            try:
                yield sim.timeout(2.0)
                resumed.append("timeout")
            except Interrupted:
                resumed.append("interrupt")
                yield sim.timeout(10.0)
            return resumed

        process = sim.process(worker())

        def interrupter():
            yield sim.timeout(1.0)
            process.interrupt()

        sim.process(interrupter())
        sim.run()
        assert resumed == ["interrupt"]


class TestRunSemantics:
    def test_step_returns_false_when_idle(self, sim):
        assert sim.step() is False

    def test_run_until_past_deadline_preserves_pending_events(self, sim):
        timeout = sim.timeout(10.0)
        sim.run(until=5.0)
        assert not timeout.triggered
        sim.run()  # drain the rest
        assert timeout.triggered
        assert sim.now == pytest.approx(10.0)

    def test_failed_process_does_not_deadlock_others(self, sim):
        def failing():
            yield sim.timeout(1.0)
            raise RuntimeError("one bad process")

        def healthy():
            yield sim.timeout(2.0)
            return "fine"

        sim.process(failing())
        healthy_process = sim.process(healthy())
        # Draining the sim does not raise: the failure lives on the
        # failed process's completion event.
        sim.run(until=healthy_process.completion)
        assert healthy_process.result == "fine"

    def test_waiting_on_failed_completion_raises(self, sim):
        def failing():
            yield sim.timeout(1.0)
            raise ValueError("boom")

        process = sim.process(failing())

        def waiter():
            try:
                yield process.completion
            except ValueError as exc:
                return f"saw {exc}"

        waiter_process = sim.process(waiter())
        assert sim.run(until=waiter_process.completion) == "saw boom"


class TestStoreEdgeCases:
    def test_put_before_any_getter_buffers(self, sim):
        store = Store(sim)
        store.put("x")
        store.put("y")

        def consumer():
            first = yield store.get()
            second = yield store.get()
            return (first, second)

        assert sim.run_process(consumer()) == ("x", "y")

    def test_interleaved_producer_consumer(self, sim):
        store = Store(sim)
        received = []

        def producer():
            for index in range(5):
                yield sim.timeout(1.0)
                store.put(index)

        def consumer():
            for _ in range(5):
                item = yield store.get()
                received.append((item, sim.now))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert [item for item, _time in received] == [0, 1, 2, 3, 4]
        assert received[-1][1] == pytest.approx(5.0)
