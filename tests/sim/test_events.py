"""Unit tests for the event primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator
from repro.sim.events import AllOf, AnyOf, ConditionError


@pytest.fixture
def sim():
    return Simulator(seed=7)


class TestSimEvent:
    def test_starts_pending(self, sim):
        event = sim.event("e")
        assert not event.triggered
        assert event.exception is None

    def test_succeed_delivers_value(self, sim):
        event = sim.event("e")
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_fail_stores_exception(self, sim):
        event = sim.event("e")
        error = RuntimeError("boom")
        event.fail(error)
        assert event.triggered
        assert not event.ok
        assert event.exception is error
        with pytest.raises(RuntimeError):
            _ = event.value

    def test_value_before_trigger_raises(self, sim):
        event = sim.event("e")
        with pytest.raises(SimulationError):
            _ = event.value

    def test_double_succeed_raises(self, sim):
        event = sim.event("e")
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_succeed_after_fail_raises(self, sim):
        event = sim.event("e")
        event.fail(ValueError("x"))
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception_instance(self, sim):
        event = sim.event("e")
        with pytest.raises(SimulationError):
            event.fail("not an exception")

    def test_callbacks_run_in_registration_order(self, sim):
        event = sim.event("e")
        order = []
        event.add_callback(lambda _e: order.append("a"))
        event.add_callback(lambda _e: order.append("b"))
        event.succeed()
        assert order == ["a", "b"]

    def test_late_callback_runs_immediately(self, sim):
        event = sim.event("e")
        event.succeed("v")
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == ["v"]


class TestTimeout:
    def test_timeout_advances_clock(self, sim):
        timeout = sim.timeout(1.5)
        sim.run()
        assert timeout.triggered
        assert sim.now == pytest.approx(1.5)

    def test_timeout_carries_value(self, sim):
        timeout = sim.timeout(1.0, value="done")
        sim.run()
        assert timeout.value == "done"

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-0.1)

    def test_zero_delay_allowed(self, sim):
        timeout = sim.timeout(0.0)
        sim.run()
        assert timeout.triggered
        assert sim.now == 0.0

    def test_timeouts_trigger_in_time_order(self, sim):
        order = []
        sim.timeout(2.0).add_callback(lambda _e: order.append(2))
        sim.timeout(1.0).add_callback(lambda _e: order.append(1))
        sim.timeout(3.0).add_callback(lambda _e: order.append(3))
        sim.run()
        assert order == [1, 2, 3]

    def test_same_time_timeouts_trigger_in_schedule_order(self, sim):
        order = []
        for tag in ("first", "second", "third"):
            sim.timeout(1.0).add_callback(lambda _e, t=tag: order.append(t))
        sim.run()
        assert order == ["first", "second", "third"]


class TestAllOf:
    def test_collects_values_in_construction_order(self, sim):
        early = sim.timeout(1.0, value="early")
        late = sim.timeout(2.0, value="late")
        combined = AllOf(sim, [late, early])
        sim.run()
        assert combined.value == ["late", "early"]

    def test_empty_allof_triggers_immediately(self, sim):
        combined = AllOf(sim, [])
        assert combined.triggered
        assert combined.value == []

    def test_child_failure_fails_condition(self, sim):
        good = sim.timeout(1.0)
        bad = sim.event("bad")
        combined = AllOf(sim, [good, bad])
        bad.fail(RuntimeError("child failed"))
        assert combined.triggered
        assert not combined.ok

    def test_rejects_non_events(self, sim):
        with pytest.raises(ConditionError):
            AllOf(sim, [sim.event(), "nope"])


class TestAnyOf:
    def test_first_winner_reported_with_index(self, sim):
        slow = sim.timeout(5.0, value="slow")
        fast = sim.timeout(1.0, value="fast")
        combined = AnyOf(sim, [slow, fast])
        sim.run(until=combined)
        assert combined.value == (1, "fast")

    def test_later_triggers_ignored(self, sim):
        a = sim.timeout(1.0, value="a")
        b = sim.timeout(2.0, value="b")
        combined = AnyOf(sim, [a, b])
        sim.run()
        assert combined.value == (0, "a")

    def test_empty_anyof_rejected(self, sim):
        with pytest.raises(ConditionError):
            AnyOf(sim, [])

    def test_failure_propagates(self, sim):
        never = sim.event("never")
        bad = sim.event("bad")
        combined = AnyOf(sim, [never, bad])
        bad.fail(ValueError("first failure wins"))
        assert combined.triggered
        assert not combined.ok
