"""Tests for RNG streams, the timeline trace and simulator determinism."""

import pytest

from repro.sim import RngRegistry, Simulator, Timeline, derive_seed


class TestRngRegistry:
    def test_streams_are_cached(self):
        registry = RngRegistry(7)
        assert registry.stream("a") is registry.stream("a")

    def test_streams_are_independent(self):
        registry = RngRegistry(7)
        a_values = [registry.stream("a").random() for _ in range(5)]
        registry2 = RngRegistry(7)
        _ = [registry2.stream("b").random() for _ in range(100)]  # drain b
        a_values_again = [registry2.stream("a").random() for _ in range(5)]
        assert a_values == a_values_again  # a is unaffected by b's draws

    def test_same_seed_same_sequences(self):
        first = [RngRegistry(1).stream("x").random() for _ in range(3)]
        second = [RngRegistry(1).stream("x").random() for _ in range(3)]
        assert first == second

    def test_different_seeds_differ(self):
        assert RngRegistry(1).stream("x").random() != RngRegistry(2).stream("x").random()

    def test_derive_seed_stable(self):
        assert derive_seed(42, "component") == derive_seed(42, "component")
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_fork_is_independent(self):
        registry = RngRegistry(7)
        fork = registry.fork("child")
        assert fork.stream("x").random() != registry.stream("x").random()

    def test_contains(self):
        registry = RngRegistry(7)
        assert "x" not in registry
        registry.stream("x")
        assert "x" in registry


class TestTimeline:
    def test_disabled_by_default(self):
        sim = Simulator(seed=1)
        sim.timeline.record(0.0, "storage", "get", key="k")
        assert len(sim.timeline) == 0

    def test_enabled_records(self):
        sim = Simulator(seed=1, trace=True)
        sim.timeline.record(1.5, "storage", "get", key="k", size=10)
        assert len(sim.timeline) == 1
        record = sim.timeline.records[0]
        assert record.time == 1.5
        assert record.fields["size"] == 10

    def test_filter_by_category_and_name(self):
        timeline = Timeline(enabled=True)
        timeline.record(0.0, "storage", "get")
        timeline.record(1.0, "storage", "put")
        timeline.record(2.0, "faas", "cold_start")
        assert len(timeline.filter(category="storage")) == 2
        assert len(timeline.filter(category="storage", name="put")) == 1
        assert len(timeline.filter(name="cold_start")) == 1

    def test_clear(self):
        timeline = Timeline(enabled=True)
        timeline.record(0.0, "a", "b")
        timeline.clear()
        assert len(timeline) == 0

    def test_cloud_traces_when_enabled(self):
        from repro.cloud import Cloud
        from repro.cloud.profiles import ibm_us_east

        cloud = Cloud.fresh(seed=1, profile=ibm_us_east(deterministic=True), trace=True)
        cloud.store.ensure_bucket("b")

        def scenario():
            yield cloud.store.put("b", "k", b"x")
            yield cloud.store.get("b", "k")

        cloud.sim.run_process(scenario())
        assert cloud.sim.timeline.filter(category="storage", name="put")
        assert cloud.sim.timeline.filter(category="storage", name="get")


class TestSimulatorDeterminism:
    def test_full_stack_repeatability(self):
        """Two identical cloud scenarios produce identical traces."""

        def run_once():
            from repro.cloud import Cloud

            cloud = Cloud.fresh(seed=123)
            cloud.store.ensure_bucket("b")
            times = []

            def worker(index):
                yield cloud.store.put("b", f"k{index}", bytes(100 * index))
                yield cloud.store.get("b", f"k{index}")
                times.append(cloud.sim.now)

            for index in range(10):
                cloud.sim.process(worker(index))
            cloud.sim.run()
            return times

        assert run_once() == run_once()

    def test_jittered_latencies_still_deterministic(self):
        from repro.cloud import Cloud
        from repro.cloud.profiles import ibm_us_east

        def run_once():
            cloud = Cloud.fresh(seed=55, profile=ibm_us_east())  # jitter on

            def fn(ctx, x):
                yield ctx.compute(0.1)
                return x

            cloud.faas.register("fn", fn)
            events = [cloud.faas.invoke("fn", i) for i in range(5)]
            cloud.sim.run(until=cloud.sim.all_of(events))
            return cloud.sim.now

        assert run_once() == run_once()
