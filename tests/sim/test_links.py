"""Unit tests for the max-min fair-share bandwidth link."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim import FairShareLink, Simulator


@pytest.fixture
def sim():
    return Simulator(seed=7)


class TestSingleFlow:
    def test_duration_is_bytes_over_capacity(self, sim):
        link = FairShareLink(sim, capacity=100.0)
        event = link.transfer(1000.0)
        sim.run(until=event)
        assert sim.now == pytest.approx(10.0)

    def test_event_value_is_duration(self, sim):
        link = FairShareLink(sim, capacity=100.0)
        event = link.transfer(500.0)
        duration = sim.run(until=event)
        assert duration == pytest.approx(5.0)

    def test_zero_bytes_completes_instantly(self, sim):
        link = FairShareLink(sim, capacity=100.0)
        event = link.transfer(0.0)
        assert event.triggered
        assert event.value == 0.0

    def test_flow_cap_limits_single_flow(self, sim):
        link = FairShareLink(sim, capacity=1000.0)
        event = link.transfer(100.0, flow_cap=10.0)
        sim.run(until=event)
        assert sim.now == pytest.approx(10.0)

    def test_infinite_capacity_with_cap(self, sim):
        link = FairShareLink(sim, capacity=math.inf, default_flow_cap=50.0)
        event = link.transfer(100.0)
        sim.run(until=event)
        assert sim.now == pytest.approx(2.0)

    def test_infinite_capacity_without_cap_rejected(self, sim):
        link = FairShareLink(sim, capacity=math.inf)
        with pytest.raises(SimulationError):
            link.transfer(100.0)

    def test_negative_bytes_rejected(self, sim):
        link = FairShareLink(sim, capacity=10.0)
        with pytest.raises(SimulationError):
            link.transfer(-1.0)


class TestSharing:
    def test_two_equal_flows_halve_bandwidth(self, sim):
        link = FairShareLink(sim, capacity=100.0)
        done = []

        def flow(tag):
            yield link.transfer(1000.0)
            done.append((tag, sim.now))

        sim.process(flow("a"))
        sim.process(flow("b"))
        sim.run()
        # Both share 100 B/s: each gets 50 B/s, finishing at t=20.
        assert done[0][1] == pytest.approx(20.0)
        assert done[1][1] == pytest.approx(20.0)

    def test_short_flow_finishes_then_long_flow_speeds_up(self, sim):
        link = FairShareLink(sim, capacity=100.0)
        done = {}

        def flow(tag, nbytes):
            yield link.transfer(nbytes)
            done[tag] = sim.now

        sim.process(flow("short", 500.0))
        sim.process(flow("long", 1500.0))
        sim.run()
        # Shared at 50 B/s each until short finishes at t=10 (500 B);
        # long then has 1000 B left at 100 B/s → finishes at t=20.
        assert done["short"] == pytest.approx(10.0)
        assert done["long"] == pytest.approx(20.0)

    def test_late_arrival_slows_existing_flow(self, sim):
        link = FairShareLink(sim, capacity=100.0)
        done = {}

        def early():
            yield link.transfer(1000.0)
            done["early"] = sim.now

        def late():
            yield sim.timeout(5.0)
            yield link.transfer(250.0)
            done["late"] = sim.now

        sim.process(early())
        sim.process(late())
        sim.run()
        # early runs alone 0-5 s (500 B done), then shares 50/50.
        # late: 250 B at 50 B/s → finishes t=10. early: 500 B left,
        # 250 B during 5-10 s, then full speed: 250 B at 100 B/s → t=12.5.
        assert done["late"] == pytest.approx(10.0)
        assert done["early"] == pytest.approx(12.5)

    def test_capped_flow_leaves_bandwidth_for_others(self, sim):
        link = FairShareLink(sim, capacity=100.0)
        done = {}

        def capped():
            yield link.transfer(100.0, flow_cap=10.0)
            done["capped"] = sim.now

        def open_flow():
            yield link.transfer(900.0)
            done["open"] = sim.now

        sim.process(capped())
        sim.process(open_flow())
        sim.run()
        # Max-min: capped gets 10 B/s, open gets 90 B/s → both end at t=10.
        assert done["capped"] == pytest.approx(10.0)
        assert done["open"] == pytest.approx(10.0)

    def test_bytes_delivered_accumulates(self, sim):
        link = FairShareLink(sim, capacity=100.0)
        events = [link.transfer(300.0), link.transfer(200.0)]
        sim.run(until=sim.all_of(events))
        assert link.bytes_delivered == pytest.approx(500.0)

    def test_many_flows_aggregate_time(self, sim):
        link = FairShareLink(sim, capacity=100.0)
        events = [link.transfer(100.0) for _ in range(10)]
        sim.run(until=sim.all_of(events))
        # 1000 B total through 100 B/s, all equal → all finish at t=10.
        assert sim.now == pytest.approx(10.0)

    def test_active_flows_counter(self, sim):
        link = FairShareLink(sim, capacity=100.0)
        link.transfer(1000.0)
        link.transfer(1000.0)
        assert link.active_flows == 2
        sim.run()
        assert link.active_flows == 0

    def test_utilization_full_when_uncapped(self, sim):
        link = FairShareLink(sim, capacity=100.0)
        link.transfer(1000.0)
        assert link.utilization() == pytest.approx(1.0)


class TestStaggeredArrivals:
    def test_three_phase_scenario(self, sim):
        """Flows arriving/leaving at different times drain correctly."""
        link = FairShareLink(sim, capacity=120.0)
        done = {}

        def flow(tag, start, nbytes):
            yield sim.timeout(start)
            yield link.transfer(nbytes)
            done[tag] = sim.now

        sim.process(flow("a", 0.0, 1200.0))
        sim.process(flow("b", 0.0, 600.0))
        sim.process(flow("c", 5.0, 200.0))
        sim.run()
        # 0-5 s: a,b at 60 B/s → a:300, b:300 done.
        # 5 s: c joins; all at 40 B/s.
        # b needs 300 more → done at 5 + 7.5 = 12.5.  c needs 200 → t=10.
        # At t=10: c done (200), a has 300+200=500 done, b has 500.
        # 10-?: a,b at 60 B/s. b needs 100 → t=11.67; a needs 700 → ...
        assert done["c"] == pytest.approx(10.0)
        assert done["b"] == pytest.approx(10.0 + 100.0 / 60.0)
        # after b: a alone at 120 B/s with 1200-500-100=600 left
        expected_a = done["b"] + (1200.0 - 500.0 - 100.0) / 120.0
        assert done["a"] == pytest.approx(expected_a)
