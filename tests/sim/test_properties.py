"""Property-based tests of simulation-kernel invariants.

These pin down the conservation and fairness properties everything else
relies on: links deliver exactly what was sent, token buckets never
exceed their configured rate, events fire in time order, and resources
never exceed capacity — across randomized schedules.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import FairShareLink, Resource, Simulator, TokenBucket


class TestLinkConservation:
    @given(
        transfers=st.lists(
            st.tuples(
                st.floats(0.0, 10.0),  # start delay
                st.floats(1.0, 1e6),  # bytes
            ),
            min_size=1,
            max_size=25,
        ),
        capacity=st.floats(1e3, 1e9),
    )
    @settings(max_examples=60, deadline=None)
    def test_all_bytes_delivered_exactly_once(self, transfers, capacity):
        sim = Simulator(seed=1)
        link = FairShareLink(sim, capacity=capacity)

        def sender(delay, nbytes):
            yield sim.timeout(delay)
            yield link.transfer(nbytes)

        for delay, nbytes in transfers:
            sim.process(sender(delay, nbytes))
        sim.run()
        expected = sum(nbytes for _delay, nbytes in transfers)
        assert link.bytes_delivered == pytest.approx(expected, rel=1e-6)
        assert link.active_flows == 0

    @given(
        nbytes=st.floats(1.0, 1e9),
        capacity=st.floats(1.0, 1e9),
        cap=st.floats(1.0, 1e9),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_flow_duration_is_exact(self, nbytes, capacity, cap):
        sim = Simulator(seed=1)
        link = FairShareLink(sim, capacity=capacity)
        event = link.transfer(nbytes, flow_cap=cap)
        sim.run(until=event)
        rate = min(capacity, cap)
        assert sim.now == pytest.approx(nbytes / rate, rel=1e-6, abs=1e-6)

    @given(
        flows=st.lists(st.floats(1e3, 1e7), min_size=2, max_size=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_aggregate_never_beats_capacity(self, flows):
        """Makespan is at least total bytes / capacity."""
        capacity = 1e6
        sim = Simulator(seed=1)
        link = FairShareLink(sim, capacity=capacity)
        events = [link.transfer(nbytes) for nbytes in flows]
        sim.run(until=sim.all_of(events))
        lower_bound = sum(flows) / capacity
        assert sim.now >= lower_bound * (1 - 1e-9)


class TestTokenBucketRate:
    @given(
        rate=st.floats(1.0, 1e4),
        capacity=st.floats(1.0, 100.0),
        demand=st.integers(10, 300),
    )
    @settings(max_examples=40, deadline=None)
    def test_sustained_rate_never_exceeded(self, rate, capacity, demand):
        """Serving N unit-requests takes at least (N - burst) / rate."""
        sim = Simulator(seed=1)
        bucket = TokenBucket(sim, rate=rate, capacity=capacity)

        def consumer():
            for _ in range(demand):
                yield bucket.consume(1.0)

        sim.process(consumer())
        sim.run()
        minimum_time = max(0.0, (demand - capacity) / rate)
        assert sim.now >= minimum_time * (1 - 1e-9)

    @given(
        amounts=st.lists(st.floats(0.1, 5.0), min_size=1, max_size=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_fifo_completion_order(self, amounts):
        sim = Simulator(seed=1)
        bucket = TokenBucket(sim, rate=10.0, capacity=5.0)
        completed = []

        def consumer(index, amount):
            yield bucket.consume(amount)
            completed.append(index)

        for index, amount in enumerate(amounts):
            sim.process(consumer(index, amount))
        sim.run()
        assert completed == sorted(completed)


class TestEventOrdering:
    @given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_callbacks_fire_in_nondecreasing_time(self, delays):
        sim = Simulator(seed=1)
        fired = []
        for delay in delays:
            sim.timeout(delay).add_callback(lambda _e: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(delays=st.lists(st.floats(0.0, 50.0), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_processes_observe_monotone_time(self, delays):
        sim = Simulator(seed=1)
        observations = []

        def worker(delay):
            yield sim.timeout(delay)
            observations.append(sim.now)
            yield sim.timeout(delay)
            observations.append(sim.now)

        for delay in delays:
            sim.process(worker(delay))
        before = sim.now
        sim.run()
        assert sim.now >= before
        # Each process saw its own monotone time; globally the list may
        # interleave, but no observation may precede the sim start.
        assert all(obs >= 0.0 for obs in observations)


class TestResourceInvariant:
    @given(
        capacity=st.integers(1, 8),
        tasks=st.integers(1, 40),
        hold=st.floats(0.01, 2.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_concurrency_never_exceeds_capacity(self, capacity, tasks, hold):
        sim = Simulator(seed=1)
        resource = Resource(sim, capacity=capacity)
        live = {"now": 0, "max": 0}

        def worker():
            yield resource.acquire()
            live["now"] += 1
            live["max"] = max(live["max"], live["now"])
            yield sim.timeout(hold)
            live["now"] -= 1
            resource.release()

        for _ in range(tasks):
            sim.process(worker())
        sim.run()
        assert live["max"] <= capacity
        assert resource.in_use == 0 or resource.queue_length == 0
