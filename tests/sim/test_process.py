"""Unit tests for generator-driven processes."""

import pytest

from repro.errors import DeadlockError, Interrupted, SimulationError
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=7)


class TestProcessBasics:
    def test_process_runs_to_completion(self, sim):
        log = []

        def worker():
            log.append(("start", sim.now))
            yield sim.timeout(1.0)
            log.append(("middle", sim.now))
            yield sim.timeout(2.0)
            log.append(("end", sim.now))
            return "result"

        process = sim.process(worker())
        value = sim.run(until=process.completion)
        assert value == "result"
        assert log == [("start", 0.0), ("middle", 1.0), ("end", 3.0)]

    def test_result_property(self, sim):
        def worker():
            yield sim.timeout(1.0)
            return 99

        process = sim.process(worker())
        sim.run()
        assert process.result == 99
        assert not process.alive

    def test_requires_generator(self, sim):
        def not_a_generator():
            return 1

        with pytest.raises(SimulationError):
            sim.process(not_a_generator())  # type: ignore[arg-type]

    def test_yield_of_non_event_fails_process(self, sim):
        def worker():
            yield 42

        process = sim.process(worker())
        sim.run()
        assert process.completion.triggered
        assert isinstance(process.completion.exception, SimulationError)

    def test_timeout_value_passed_into_generator(self, sim):
        def worker():
            value = yield sim.timeout(1.0, value="payload")
            return value

        process = sim.process(worker())
        assert sim.run(until=process.completion) == "payload"


class TestProcessComposition:
    def test_wait_for_another_process(self, sim):
        def child():
            yield sim.timeout(2.0)
            return "child-result"

        def parent():
            child_process = sim.process(child())
            value = yield child_process.completion
            return ("parent saw", value)

        process = sim.process(parent())
        assert sim.run(until=process.completion) == ("parent saw", "child-result")

    def test_yielding_process_object_waits_for_it(self, sim):
        def child():
            yield sim.timeout(1.0)
            return 5

        def parent():
            value = yield sim.process(child())
            return value * 2

        process = sim.process(parent())
        assert sim.run(until=process.completion) == 10

    def test_yield_from_subgenerator(self, sim):
        def subroutine():
            yield sim.timeout(1.0)
            return "sub"

        def worker():
            value = yield from subroutine()
            yield sim.timeout(1.0)
            return value + "!"

        process = sim.process(worker())
        assert sim.run(until=process.completion) == "sub!"
        assert sim.now == pytest.approx(2.0)

    def test_parallel_processes_interleave(self, sim):
        log = []

        def worker(tag, delay):
            yield sim.timeout(delay)
            log.append((tag, sim.now))

        sim.process(worker("slow", 3.0))
        sim.process(worker("fast", 1.0))
        sim.run()
        assert log == [("fast", 1.0), ("slow", 3.0)]

    def test_all_of_over_process_completions(self, sim):
        def worker(delay, value):
            yield sim.timeout(delay)
            return value

        processes = [sim.process(worker(d, d * 10)) for d in (3.0, 1.0, 2.0)]
        gathered = sim.all_of([p.completion for p in processes])
        assert sim.run(until=gathered) == [30.0, 10.0, 20.0]


class TestProcessFailure:
    def test_exception_fails_completion(self, sim):
        def worker():
            yield sim.timeout(1.0)
            raise RuntimeError("kaput")

        process = sim.process(worker())
        with pytest.raises(RuntimeError, match="kaput"):
            sim.run(until=process.completion)

    def test_failed_event_raises_inside_process(self, sim):
        failing = sim.event("failing")

        def worker():
            try:
                yield failing
            except ValueError as exc:
                return f"caught {exc}"

        process = sim.process(worker())
        sim.timeout(1.0).add_callback(lambda _e: failing.fail(ValueError("inner")))
        assert sim.run(until=process.completion) == "caught inner"


class TestInterrupt:
    def test_interrupt_raises_interrupted(self, sim):
        def worker():
            try:
                yield sim.timeout(100.0)
            except Interrupted as interrupt:
                return ("interrupted", interrupt.cause)

        process = sim.process(worker())

        def interrupter():
            yield sim.timeout(1.0)
            process.interrupt(cause="hurry up")

        sim.process(interrupter())
        assert sim.run(until=process.completion) == ("interrupted", "hurry up")
        assert sim.now == pytest.approx(1.0)

    def test_interrupt_finished_process_is_noop(self, sim):
        def worker():
            yield sim.timeout(1.0)
            return "ok"

        process = sim.process(worker())
        sim.run()
        process.interrupt()  # must not raise
        assert process.result == "ok"

    def test_uncaught_interrupt_fails_process(self, sim):
        def worker():
            yield sim.timeout(100.0)

        process = sim.process(worker())

        def interrupter():
            yield sim.timeout(1.0)
            process.interrupt()

        sim.process(interrupter())
        with pytest.raises(Interrupted):
            sim.run(until=process.completion)


class TestRunSemantics:
    def test_run_until_time_stops_clock_there(self, sim):
        sim.timeout(10.0)
        sim.run(until=5.0)
        assert sim.now == pytest.approx(5.0)

    def test_run_until_event_returns_its_value(self, sim):
        timeout = sim.timeout(2.0, value="v")
        assert sim.run(until=timeout) == "v"
        assert sim.now == pytest.approx(2.0)

    def test_deadlock_detected(self, sim):
        def stuck():
            yield sim.event("never-triggers")

        sim.process(stuck())
        with pytest.raises(DeadlockError):
            sim.run()

    def test_run_until_untriggerable_event_deadlocks(self, sim):
        lonely = sim.event("lonely")
        with pytest.raises(DeadlockError):
            sim.run(until=lonely)

    def test_run_process_convenience(self, sim):
        def worker():
            yield sim.timeout(1.0)
            return "done"

        assert sim.run_process(worker()) == "done"

    def test_active_process_count_tracks_lifecycle(self, sim):
        def worker():
            yield sim.timeout(1.0)

        assert sim.active_process_count == 0
        sim.process(worker())
        sim.process(worker())
        assert sim.active_process_count == 2
        sim.run()
        assert sim.active_process_count == 0
