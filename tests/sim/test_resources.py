"""Unit tests for Resource, TokenBucket and Store."""

import pytest

from repro.errors import SimulationError
from repro.sim import Resource, Simulator, Store, TokenBucket


@pytest.fixture
def sim():
    return Simulator(seed=7)


class TestResource:
    def test_acquire_under_capacity_is_immediate(self, sim):
        resource = Resource(sim, capacity=2)
        assert resource.acquire().triggered
        assert resource.acquire().triggered
        assert resource.available == 0

    def test_acquire_over_capacity_waits_fifo(self, sim):
        resource = Resource(sim, capacity=1)
        order = []

        def worker(tag, hold):
            yield resource.acquire()
            order.append((tag, sim.now))
            yield sim.timeout(hold)
            resource.release()

        sim.process(worker("a", 1.0))
        sim.process(worker("b", 1.0))
        sim.process(worker("c", 1.0))
        sim.run()
        assert order == [("a", 0.0), ("b", 1.0), ("c", 2.0)]

    def test_release_without_acquire_raises(self, sim):
        resource = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_capacity_must_be_positive(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_queue_length_visible(self, sim):
        resource = Resource(sim, capacity=1)
        resource.acquire()
        resource.acquire()
        resource.acquire()
        assert resource.queue_length == 2

    def test_parallelism_respects_capacity(self, sim):
        resource = Resource(sim, capacity=3)
        concurrency = {"now": 0, "max": 0}

        def worker():
            yield resource.acquire()
            concurrency["now"] += 1
            concurrency["max"] = max(concurrency["max"], concurrency["now"])
            yield sim.timeout(1.0)
            concurrency["now"] -= 1
            resource.release()

        for _ in range(10):
            sim.process(worker())
        sim.run()
        assert concurrency["max"] == 3


class TestTokenBucket:
    def test_burst_served_immediately(self, sim):
        bucket = TokenBucket(sim, rate=10.0, capacity=5.0)
        completions = []

        def worker():
            for _ in range(5):
                yield bucket.consume(1.0)
            completions.append(sim.now)

        sim.process(worker())
        sim.run()
        assert completions == [0.0]

    def test_sustained_rate_enforced(self, sim):
        bucket = TokenBucket(sim, rate=2.0, capacity=1.0)
        times = []

        def worker():
            for _ in range(5):
                yield bucket.consume(1.0)
                times.append(sim.now)

        sim.process(worker())
        sim.run()
        # First token is free (full bucket), then one every 0.5 s.
        assert times == pytest.approx([0.0, 0.5, 1.0, 1.5, 2.0])

    def test_fifo_no_starvation_of_large_request(self, sim):
        bucket = TokenBucket(sim, rate=1.0, capacity=10.0)
        order = []

        def big():
            yield bucket.consume(10.0)
            order.append(("big", sim.now))

        def small(tag):
            yield bucket.consume(1.0)
            order.append((tag, sim.now))

        def scenario():
            yield bucket.consume(10.0)  # drain the initial burst
            sim.process(big())
            yield sim.timeout(0.01)
            sim.process(small("s1"))
            sim.process(small("s2"))

        sim.process(scenario())
        sim.run()
        assert [tag for tag, _t in order] == ["big", "s1", "s2"]

    def test_consume_more_than_capacity_rejected(self, sim):
        bucket = TokenBucket(sim, rate=1.0, capacity=2.0)
        with pytest.raises(SimulationError):
            bucket.consume(3.0)

    def test_nonpositive_consume_rejected(self, sim):
        bucket = TokenBucket(sim, rate=1.0)
        with pytest.raises(SimulationError):
            bucket.consume(0.0)

    def test_tokens_cap_at_capacity(self, sim):
        bucket = TokenBucket(sim, rate=100.0, capacity=5.0)

        def worker():
            yield bucket.consume(5.0)
            yield sim.timeout(10.0)  # long idle: bucket must not overfill

        sim.process(worker())
        sim.run()
        assert bucket.tokens == pytest.approx(5.0)

    def test_rate_must_be_positive(self, sim):
        with pytest.raises(SimulationError):
            TokenBucket(sim, rate=0.0)

    def test_measured_throughput_matches_rate(self, sim):
        bucket = TokenBucket(sim, rate=100.0, capacity=1.0)
        served = []

        def worker():
            for _ in range(500):
                yield bucket.consume(1.0)
                served.append(sim.now)

        sim.process(worker())
        sim.run()
        duration = served[-1] - served[0]
        measured_rate = (len(served) - 1) / duration
        assert measured_rate == pytest.approx(100.0, rel=0.01)


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("item")
        event = store.get()
        assert event.triggered
        assert event.value == "item"

    def test_get_waits_for_put(self, sim):
        store = Store(sim)
        received = []

        def consumer():
            item = yield store.get()
            received.append((item, sim.now))

        def producer():
            yield sim.timeout(2.0)
            store.put("late-item")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert received == [("late-item", 2.0)]

    def test_fifo_ordering(self, sim):
        store = Store(sim)
        for index in range(5):
            store.put(index)
        received = []

        def consumer():
            for _ in range(5):
                item = yield store.get()
                received.append(item)

        sim.process(consumer())
        sim.run()
        assert received == [0, 1, 2, 3, 4]

    def test_multiple_getters_served_in_order(self, sim):
        store = Store(sim)
        received = []

        def consumer(tag):
            item = yield store.get()
            received.append((tag, item))

        sim.process(consumer("first"))
        sim.process(consumer("second"))

        def producer():
            yield sim.timeout(1.0)
            store.put("x")
            store.put("y")

        sim.process(producer())
        sim.run()
        assert received == [("first", "x"), ("second", "y")]

    def test_len_reports_buffered_items(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2
