"""Multi-tenant ExchangeService: fairness, fencing, scaling, billing.

The shared-substrate guarantees the service makes:

* no tenant starves under another tenant's saturation (token-bucket
  fair share with FIFO skip-ahead bounds every tenant's queue wait);
* admission is bounded — a full queue rejects at submit time;
* a tenant's cancel storm reclaims only that tenant's reservations and
  other tenants' artifacts stay byte-identical to solo runs;
* the fleet autoscales up under a demand burst and back down when the
  queue drains, on fleet *generations* so in-flight rendezvous never
  breaks;
* per-tenant billed dollars are exact on the function side (billing
  tags) and sum to the fleet total on the instance side.
"""

import random

import pytest

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.cloud.vm.fleet import fleet_ready
from repro.executor import FunctionExecutor
from repro.service import ExchangeService, ServiceSaturated
from repro.shuffle import FixedWidthCodec, ShardedRelayShuffleSort
from repro.shuffle.relayplanner import (
    RelayShuffleCostModel,
    relay_usable_bytes,
    resolve_relay_instance,
)

RECORDS = 2000
WORKERS = 4
INSTANCE = "bx2-2x8"


def make_payload(count, seed, record_size=16):
    rng = random.Random(seed)
    return b"".join(
        rng.getrandbits(64).to_bytes(8, "big") + bytes(record_size - 8)
        for _ in range(count)
    )


def codec():
    return FixedWidthCodec(record_size=16, key_bytes=8)


def fresh_cloud(seed=5):
    return Cloud.fresh(seed=seed, profile=ibm_us_east(deterministic=True))


def make_service(cloud, **kwargs):
    defaults = dict(
        instance_type=INSTANCE,
        min_shards=1,
        max_shards=4,
        tenant_rate_per_s=0.05,
        tenant_burst=2.0,
    )
    defaults.update(kwargs)
    return ExchangeService(cloud, codec(), **defaults)


def solo_digest(payload, cloud_seed, workers=WORKERS):
    """Digest of the same sort run alone on its own region."""
    import hashlib

    cloud = fresh_cloud(cloud_seed)
    cloud.store.ensure_bucket("data")
    fleet = fleet_ready(cloud.vms, INSTANCE, shards=1)
    operator = ShardedRelayShuffleSort(
        FunctionExecutor(cloud), codec(), fleet,
        cost=RelayShuffleCostModel(consume=True),
    )

    def driver():
        yield cloud.store.put("data", "input.bin", payload)
        return (yield operator.sort("data", "input.bin", workers=workers))

    result = cloud.sim.run_process(driver())
    digest = hashlib.sha256()
    for run in result.runs:
        digest.update(cloud.store.peek(run.bucket, run.key))
    return digest.hexdigest()[:16]


class TestFairness:
    def test_quiet_tenant_skips_ahead_of_noisy_backlog(self):
        """A noisy tenant floods the queue; a quiet tenant's job must
        dispatch on its own token, not behind the noise."""
        cloud = fresh_cloud()
        cloud.store.ensure_bucket("data")
        payload = make_payload(RECORDS, 1)
        svc = make_service(
            cloud, tenant_rate_per_s=0.01, tenant_burst=1.0, queue_limit=32
        )

        def driver():
            yield cloud.store.put("data", "in.bin", payload)
            svc.start()
            noisy = [
                svc.submit("noisy", "data", "in.bin", len(payload), workers=WORKERS)
                for _ in range(4)
            ]
            yield cloud.sim.timeout(1.0)
            quiet = svc.submit(
                "quiet", "data", "in.bin", len(payload), workers=WORKERS
            )
            yield svc.drain()
            return noisy, quiet

        noisy, quiet = cloud.sim.run_process(driver())
        svc.shutdown()
        assert quiet.state == "done"
        # The quiet tenant had a token: its wait is dispatch latency,
        # not the noisy tenant's 100-second refill backlog.
        assert quiet.queue_wait_s < 10.0
        # The noisy tenant is throttled, not starved: each job beyond
        # the burst waits roughly its position over the refill rate.
        for index, job in enumerate(noisy):
            assert job.state == "done"
            assert job.queue_wait_s <= (index + 1) / 0.01 + 10.0

    def test_no_unbounded_wait_under_saturation(self):
        """Every admitted job's wait stays under the fair-share bound
        (queue position / tenant refill rate), even with three tenants
        saturating the service at once."""
        cloud = fresh_cloud()
        cloud.store.ensure_bucket("data")
        payload = make_payload(RECORDS, 2)
        rate = 0.02
        svc = make_service(
            cloud, tenant_rate_per_s=rate, tenant_burst=1.0, queue_limit=32
        )

        def driver():
            yield cloud.store.put("data", "in.bin", payload)
            svc.start()
            jobs = []
            for tenant in ("a", "b", "c"):
                for _ in range(3):
                    jobs.append(
                        svc.submit(
                            tenant, "data", "in.bin", len(payload),
                            workers=WORKERS,
                        )
                    )
            yield svc.drain()
            return jobs

        jobs = cloud.sim.run_process(driver())
        svc.shutdown()
        per_tenant_position = {}
        for job in jobs:
            assert job.state == "done", job.error
            position = per_tenant_position.get(job.tenant, 0)
            per_tenant_position[job.tenant] = position + 1
            bound = (position + 1) / rate + 30.0
            assert job.queue_wait_s <= bound, (
                f"{job.job_id} ({job.tenant}) waited {job.queue_wait_s:.0f}s, "
                f"bound {bound:.0f}s"
            )

    def test_full_queue_rejects_at_submit(self):
        cloud = fresh_cloud()
        cloud.store.ensure_bucket("data")
        payload = make_payload(200, 3)
        svc = make_service(cloud, queue_limit=3)

        def driver():
            yield cloud.store.put("data", "in.bin", payload)
            svc.start()
            for _ in range(3):
                svc.submit("t", "data", "in.bin", len(payload))
            with pytest.raises(ServiceSaturated):
                svc.submit("t", "data", "in.bin", len(payload))
            yield svc.drain()

        cloud.sim.run_process(driver())
        svc.shutdown()


class TestTenantFencing:
    def test_cancel_storm_reclaims_only_that_tenant(self):
        """Cancel one tenant's running jobs mid-flight: its scopes are
        fenced and reclaimed, the surviving tenant's artifact is
        byte-identical to a solo run, and nothing leaks."""
        cloud = fresh_cloud(seed=11)
        cloud.store.ensure_bucket("data")
        payload_a = make_payload(RECORDS, 11)
        payload_b = make_payload(RECORDS, 22)
        svc = make_service(cloud, tenant_burst=2.0)

        def driver():
            yield cloud.store.put("data", "a.bin", payload_a)
            yield cloud.store.put("data", "b.bin", payload_b)
            svc.start()
            doomed = [
                svc.submit("alice", "data", "a.bin", len(payload_a), workers=WORKERS)
                for _ in range(2)
            ]
            survivor = svc.submit(
                "bob", "data", "b.bin", len(payload_b), workers=WORKERS
            )
            # Let all three jobs reach mid-flight, then storm alice.
            yield cloud.sim.timeout(0.5)
            summary = svc.cancel_tenant("alice")
            yield svc.drain()
            return doomed, survivor, summary

        doomed, survivor, summary = cloud.sim.run_process(driver())
        assert len(summary["fenced_running"]) == 2
        for job in doomed:
            assert job.state == "cancelled"
        assert survivor.state == "done"
        assert survivor.output_digest == solo_digest(payload_b, 22)

        # Zero cross-tenant residue: every generation's fleet holds no
        # reservation of any cancelled attempt once the dust settles.
        for generation in svc._generations:
            if generation.terminated_at is None:
                assert generation.fleet.residual_reservation_bytes() == 0.0
                generation.fleet.check_memory_accounting()
        svc.shutdown()

    def test_cancelled_queued_jobs_never_bill(self):
        cloud = fresh_cloud()
        cloud.store.ensure_bucket("data")
        payload = make_payload(200, 4)
        svc = make_service(cloud, tenant_rate_per_s=0.001, tenant_burst=1.0)

        def driver():
            yield cloud.store.put("data", "in.bin", payload)
            svc.start()
            first = svc.submit("t", "data", "in.bin", len(payload))
            queued = svc.submit("t", "data", "in.bin", len(payload))
            yield cloud.sim.timeout(0.1)
            svc.cancel_tenant("t")
            yield svc.drain()
            return first, queued

        first, queued = cloud.sim.run_process(driver())
        svc.shutdown()
        assert queued.state == "cancelled"
        assert queued.started_at is None
        # The queued job never became an activation: no faas line
        # carries its job tag.
        assert cloud.meter.filtered(job=queued.job_id) == []


class TestAutoscaling:
    def test_burst_scales_up_then_drain_scales_down(self):
        """Declared demand beyond one shard rotates in a bigger
        generation; the drained queue rotates back down — and every
        job's artifact matches its solo digest across generations."""
        cloud = fresh_cloud(seed=17)
        cloud.store.ensure_bucket("data")
        profile = cloud.profile
        usable = relay_usable_bytes(
            profile, resolve_relay_instance(profile, INSTANCE)
        )
        payloads = {seed: make_payload(RECORDS, seed) for seed in (31, 32, 33)}
        svc = make_service(cloud, tenant_burst=3.0, tenant_rate_per_s=0.5)
        declared = usable * 0.8  # 3 concurrent jobs need > 1 shard

        def driver():
            for seed, payload in payloads.items():
                yield cloud.store.put("data", f"{seed}.bin", payload)
            svc.start()
            jobs = [
                svc.submit(
                    "t", "data", f"{seed}.bin", declared, workers=WORKERS
                )
                for seed in payloads
            ]
            yield svc.drain()
            return jobs

        jobs = cloud.sim.run_process(driver())
        svc.shutdown()
        directions = [event["direction"] for event in svc.scale_events]
        assert "up" in directions, svc.scale_events
        assert "down" in directions, svc.scale_events
        assert svc.current_shards == svc.min_shards
        for seed, job in zip(payloads, jobs):
            assert job.state == "done", job.error
            assert job.output_digest == solo_digest(payloads[seed], seed)

    def test_running_jobs_finish_on_their_generation(self):
        """A scale-up mid-job must not move the running job's shards:
        its generation drains and terminates only after it finishes."""
        cloud = fresh_cloud(seed=19)
        cloud.store.ensure_bucket("data")
        profile = cloud.profile
        usable = relay_usable_bytes(
            profile, resolve_relay_instance(profile, INSTANCE)
        )
        payload = make_payload(RECORDS, 7)
        svc = make_service(cloud, tenant_burst=2.0, tenant_rate_per_s=0.5)

        def driver():
            yield cloud.store.put("data", "in.bin", payload)
            svc.start()
            small = svc.submit("t", "data", "in.bin", len(payload), workers=WORKERS)
            yield cloud.sim.timeout(0.2)  # small is mid-flight on gen 0
            big = svc.submit(
                "t", "data", "in.bin", usable * 1.5, workers=WORKERS
            )
            yield svc.drain()
            return small, big

        small, big = cloud.sim.run_process(driver())
        svc.shutdown()
        assert small.state == "done" and big.state == "done"
        assert small.generation_id != big.generation_id
        gen_small = svc._generation_by_id(small.generation_id)
        # The old generation terminated only after its job drained.
        assert gen_small.terminated_at is not None
        assert gen_small.terminated_at >= small.finished_at


class TestCostAttribution:
    def test_tenant_totals_sum_to_fleet_and_faas_totals(self):
        cloud = fresh_cloud(seed=23)
        cloud.store.ensure_bucket("data")
        payload_a = make_payload(RECORDS, 41)
        payload_b = make_payload(RECORDS, 42)
        svc = make_service(cloud)

        def driver():
            yield cloud.store.put("data", "a.bin", payload_a)
            yield cloud.store.put("data", "b.bin", payload_b)
            svc.start()
            svc.submit("alice", "data", "a.bin", len(payload_a), workers=WORKERS)
            svc.submit("bob", "data", "b.bin", len(payload_b), workers=WORKERS)
            yield svc.drain()

        cloud.sim.run_process(driver())
        svc.shutdown()
        costs = svc.tenant_costs()
        assert set(costs) == {"alice", "bob"}
        for entry in costs.values():
            assert entry["faas_usd"] > 0.0
            assert entry["fleet_usd"] > 0.0
            assert entry["total_usd"] == pytest.approx(
                entry["faas_usd"] + entry["fleet_usd"]
            )
        # Fleet apportioning is conservative: tenant shares sum to the
        # metered fleet total to the cent.
        fleet_total = svc.fleet_cost_usd()
        assert fleet_total > 0.0
        assert sum(e["fleet_usd"] for e in costs.values()) == pytest.approx(
            fleet_total
        )
        # The function side is exact per tenant straight off the meter.
        for tenant in ("alice", "bob"):
            tagged = sum(
                line.usd for line in cloud.meter.filtered(tenant=tenant)
            )
            assert costs[tenant]["faas_usd"] == pytest.approx(tagged)

    def test_fleet_lines_are_generation_tagged(self):
        cloud = fresh_cloud()
        cloud.store.ensure_bucket("data")
        payload = make_payload(200, 5)
        svc = make_service(cloud)

        def driver():
            yield cloud.store.put("data", "in.bin", payload)
            svc.start()
            svc.submit("t", "data", "in.bin", len(payload))
            yield svc.drain()

        cloud.sim.run_process(driver())
        svc.shutdown()
        tagged = cloud.meter.filtered(service="vm", fleet="svc-gen-0")
        assert tagged, "generation 0's instance lines must carry its tag"
        assert svc.fleet_cost_usd() == pytest.approx(
            sum(line.usd for line in tagged)
        )
