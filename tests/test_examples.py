"""Every example script must run clean (examples are executable docs).

Each example is executed in a subprocess with scaled-down parameters
where supported, and its output is sanity-checked.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr}"
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "word counts: [4, 5, 4, 6]" in out
        assert "itemized bill" in out

    def test_methcomp_pipeline(self):
        out = run_example("methcomp_pipeline.py", "8192")
        assert "purely-serverless" in out
        assert "vm-supported" in out
        assert "METHCOMP compressed" in out

    def test_shuffle_sort(self):
        out = run_example("shuffle_sort.py")
        assert "output globally sorted: True" in out
        assert "planner optimum" in out

    def test_declarative_workflow(self):
        out = run_example("declarative_workflow.py")
        assert "verified" in out
        assert "cost breakdown" in out

    def test_groupby_stats(self):
        out = run_example("groupby_stats.py")
        assert "chromosomes with" in out
        assert "chr1\t" in out

    def test_worker_sweep(self):
        out = run_example("worker_sweep.py", "16384")
        assert "measured optimum" in out

    def test_cache_exchange(self):
        out = run_example("cache_exchange.py")
        assert "cache-supported" in out
        assert "node_second" in out
        assert "peak fill" in out

    def test_fault_tolerance(self):
        out = run_example("fault_tolerance.py")
        assert "crashy (p=0.2), speculation" in out
        assert "verified correct" in out

    def test_autotune_probe(self):
        out = run_example("autotune_probe.py")
        assert "static calibration picks" in out
        assert "online tuner picks" in out
        assert "MB/s" in out

    def test_topk_query(self):
        out = run_example("topk_query.py", "20000")
        assert "top 15 sites by read coverage" in out
        assert "partitions pruned" in out

    def test_pipeline_timeline(self):
        out = run_example("pipeline_timeline.py", "8192")
        assert "Workflow timeline: purely-serverless" in out
        assert "Workflow timeline: vm-supported" in out
        assert "%" in out  # the VM bar
        assert "cold start" in out
