"""Unit/integration tests for the Lithops-like FunctionExecutor."""

import pytest

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.errors import ExecutorError
from repro.executor import ALL_COMPLETED, ANY_COMPLETED, CallState, FunctionExecutor


@pytest.fixture
def cloud():
    return Cloud.fresh(seed=11, profile=ibm_us_east(deterministic=True))


@pytest.fixture
def executor(cloud):
    return FunctionExecutor(cloud)


def square(x):
    return x * x


class TestMap:
    def test_map_returns_results_in_order(self, cloud, executor):
        def driver():
            futures = yield executor.map(square, [1, 2, 3, 4, 5])
            return (yield executor.get_result(futures))

        assert cloud.sim.run_process(driver()) == [1, 4, 9, 16, 25]

    def test_map_over_empty_iterdata_rejected(self, cloud, executor):
        def driver():
            yield executor.map(square, [])

        with pytest.raises(ExecutorError):
            cloud.sim.run_process(driver())

    def test_map_futures_carry_job_metadata(self, cloud, executor):
        def driver():
            futures = yield executor.map(square, [1, 2])
            yield executor.wait(futures)
            return futures

        futures = cloud.sim.run_process(driver())
        assert [future.call_id for future in futures] == [0, 1]
        assert len({future.job_id for future in futures}) == 1
        assert all(future.state is CallState.SUCCESS for future in futures)

    def test_map_runs_calls_in_parallel(self, cloud, executor):
        def slow(ctx, x):
            yield ctx.sleep(10.0)
            return x

        def driver():
            futures = yield executor.map(slow, list(range(8)))
            yield executor.wait(futures)
            return cloud.sim.now

        finished_at = cloud.sim.run_process(driver())
        assert finished_at < 20.0  # parallel, not 80 s serial

    def test_cpu_model_charges_time(self, cloud, executor):
        def driver(cpu_model):
            futures = yield executor.map(square, [1], cpu_model=cpu_model)
            yield executor.wait(futures)
            return cloud.sim.now

        fast = cloud.sim.run_process(driver(None))
        cloud2 = Cloud.fresh(seed=11, profile=ibm_us_east(deterministic=True))
        executor2 = FunctionExecutor(cloud2)

        def driver2():
            futures = yield executor2.map(square, [1], cpu_model=lambda x: 30.0)
            yield executor2.wait(futures)
            return cloud2.sim.now

        slow = cloud2.sim.run_process(driver2())
        assert slow - fast == pytest.approx(30.0, abs=1.0)

    def test_each_job_gets_unique_id(self, cloud, executor):
        def driver():
            futures_a = yield executor.map(square, [1])
            futures_b = yield executor.map(square, [2])
            yield executor.wait(futures_a + futures_b)

        cloud.sim.run_process(driver())
        assert len({job.job_id for job in executor.jobs}) == 2


class TestCallAsync:
    def test_single_call_roundtrip(self, cloud, executor):
        def driver():
            future = yield executor.call_async(square, 7)
            return (yield executor.get_result(future))

        assert cloud.sim.run_process(driver()) == 49

    def test_sim_aware_function_gets_context(self, cloud, executor):
        def uses_context(ctx, x):
            yield ctx.compute(0.1)
            data = yield ctx.storage.put("lithops-staging", "side-effect", b"hi")
            return (x, ctx.memory_mb, data.size)

        def driver():
            future = yield executor.call_async(uses_context, 1)
            return (yield executor.get_result(future))

        value, memory_mb, size = cloud.sim.run_process(driver())
        assert value == 1
        assert memory_mb == 2048
        assert size == 2


class TestErrors:
    def test_function_exception_surfaces_at_get_result(self, cloud, executor):
        def bad(x):
            raise ValueError(f"cannot process {x}")

        def driver():
            futures = yield executor.map(bad, [1])
            yield executor.get_result(futures)

        with pytest.raises(ValueError, match="cannot process 1"):
            cloud.sim.run_process(driver())

    def test_wait_absorbs_failures(self, cloud, executor):
        def flaky(x):
            if x % 2 == 0:
                raise RuntimeError("even numbers fail")
            return x

        def driver():
            futures = yield executor.map(flaky, [1, 2, 3, 4])
            done, not_done = yield executor.wait(futures)
            return len(done), len(not_done), [f.error is not None for f in futures]

        done_count, not_done_count, errors = cloud.sim.run_process(driver())
        assert done_count == 4
        assert not_done_count == 0
        assert errors == [False, True, False, True]

    def test_error_state_recorded_on_future(self, cloud, executor):
        def bad(x):
            raise RuntimeError("boom")

        def driver():
            futures = yield executor.map(bad, [1])
            yield executor.wait(futures)
            return futures[0]

        future = cloud.sim.run_process(driver())
        assert future.state is CallState.ERROR
        assert isinstance(future.error, RuntimeError)

    def test_unknown_return_when_rejected(self, cloud, executor):
        with pytest.raises(ExecutorError):
            executor.wait([], return_when="SOME_COMPLETED")


class TestWaitModes:
    def test_any_completed_returns_early(self, cloud, executor):
        def variable(ctx, delay):
            yield ctx.sleep(delay)
            return delay

        def driver():
            futures = yield executor.map(variable, [60.0, 1.0, 60.0])
            done, not_done = yield executor.wait(futures, return_when=ANY_COMPLETED)
            return cloud.sim.now, len(done), len(not_done)

        now, done_count, not_done_count = cloud.sim.run_process(driver())
        assert done_count == 1
        assert not_done_count == 2
        assert now < 30.0

    def test_all_completed_waits_for_stragglers(self, cloud, executor):
        def variable(ctx, delay):
            yield ctx.sleep(delay)
            return delay

        def driver():
            futures = yield executor.map(variable, [1.0, 30.0])
            done, _ = yield executor.wait(futures, return_when=ALL_COMPLETED)
            return cloud.sim.now, len(done)

        now, done_count = cloud.sim.run_process(driver())
        assert done_count == 2
        assert now >= 30.0


class TestMapReduce:
    def test_map_reduce_combines_results(self, cloud, executor):
        def driver():
            future = yield executor.map_reduce(square, [1, 2, 3, 4], sum)
            return (yield executor.get_result(future))

        assert cloud.sim.run_process(driver()) == 30

    def test_map_failure_aborts_reduce(self, cloud, executor):
        def bad(x):
            raise RuntimeError("map failed")

        def driver():
            yield executor.map_reduce(bad, [1], sum)

        with pytest.raises(RuntimeError, match="map failed"):
            cloud.sim.run_process(driver())

    def test_sim_aware_reduce(self, cloud, executor):
        def reduce_gen(ctx, results):
            yield ctx.compute(0.1)
            return max(results)

        def driver():
            future = yield executor.map_reduce(square, [3, 1, 2], reduce_gen)
            return (yield executor.get_result(future))

        assert cloud.sim.run_process(driver()) == 9


class TestStorageTraffic:
    def test_per_call_requests_hit_object_store(self, cloud, executor):
        """Every call must produce worker-side GETs and PUTs (the traffic
        that makes ops/s matter in the paper)."""

        def driver():
            futures = yield executor.map(square, list(range(10)))
            yield executor.get_result(futures)

        cloud.sim.run_process(driver())
        stats = cloud.store.stats
        # ≥ 1 function PUT + 10 input PUTs + 10 output PUTs + 10 status PUTs
        assert stats.puts >= 31
        # ≥ 10 function GETs + 10 input GETs + 10 result GETs
        assert stats.gets >= 30

    def test_billing_attributes_faas_cost(self, cloud, executor):
        def driver():
            futures = yield executor.map(square, [1, 2], cpu_model=lambda x: 1.0)
            yield executor.get_result(futures)

        cloud.sim.run_process(driver())
        assert cloud.meter.total_by_service()["faas"] > 0
        assert cloud.meter.total_by_service()["objectstore"] > 0
