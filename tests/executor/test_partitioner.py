"""Unit and property tests for input partitioning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ExecutorError
from repro.executor import (
    align_start_to_record,
    chunk_ranges,
    extend_end_to_record,
    split_range,
)


class TestSplitRange:
    def test_even_split(self):
        ranges = split_range("b", "k", 100, 4)
        assert [(r.start, r.end) for r in ranges] == [
            (0, 25),
            (25, 50),
            (50, 75),
            (75, 100),
        ]

    def test_uneven_split_spreads_remainder(self):
        ranges = split_range("b", "k", 10, 3)
        assert [(r.start, r.end) for r in ranges] == [(0, 4), (4, 7), (7, 10)]

    def test_zero_parts_rejected(self):
        with pytest.raises(ExecutorError):
            split_range("b", "k", 10, 0)

    def test_negative_size_rejected(self):
        with pytest.raises(ExecutorError):
            split_range("b", "k", -1, 2)

    @given(size=st.integers(0, 10_000), parts=st.integers(1, 64))
    def test_property_covers_exactly_once(self, size, parts):
        ranges = split_range("b", "k", size, parts)
        assert len(ranges) == parts
        assert ranges[0].start == 0
        assert ranges[-1].end == size
        for left, right in zip(ranges, ranges[1:]):
            assert left.end == right.start

    @given(size=st.integers(0, 10_000), parts=st.integers(1, 64))
    def test_property_sizes_balanced(self, size, parts):
        ranges = split_range("b", "k", size, parts)
        sizes = [r.size for r in ranges]
        assert max(sizes) - min(sizes) <= 1


class TestChunkRanges:
    def test_exact_multiple(self):
        ranges = chunk_ranges("b", "k", 100, 25)
        assert len(ranges) == 4
        assert all(r.size == 25 for r in ranges)

    def test_last_chunk_short(self):
        ranges = chunk_ranges("b", "k", 10, 4)
        assert [(r.start, r.end) for r in ranges] == [(0, 4), (4, 8), (8, 10)]

    def test_empty_object_single_empty_range(self):
        ranges = chunk_ranges("b", "k", 0, 10)
        assert len(ranges) == 1
        assert ranges[0].size == 0

    @given(size=st.integers(1, 10_000), chunk=st.integers(1, 500))
    def test_property_contiguous_cover(self, size, chunk):
        ranges = chunk_ranges("b", "k", size, chunk)
        assert ranges[0].start == 0
        assert ranges[-1].end == size
        assert all(r.size <= chunk for r in ranges)


class TestRecordAlignment:
    def test_first_split_starts_at_zero(self):
        assert align_start_to_record(b"abc\ndef\n", is_first=True) == 0

    def test_later_split_skips_torn_record(self):
        assert align_start_to_record(b"torn\nfull\n", is_first=False) == 5

    def test_no_delimiter_means_whole_window_skipped(self):
        assert align_start_to_record(b"no-newline-here", is_first=False) == 15

    def test_extend_consumes_through_next_delimiter(self):
        assert extend_end_to_record(b"tail\nnext\n", at_object_end=False) == 5

    def test_extend_at_object_end_takes_all(self):
        assert extend_end_to_record(b"last-record", at_object_end=True) == 11

    def test_extend_without_delimiter_raises(self):
        with pytest.raises(ExecutorError):
            extend_end_to_record(b"never-ends", at_object_end=False)

    @given(
        records=st.lists(
            st.binary(min_size=1, max_size=20).filter(lambda b: b"\n" not in b),
            min_size=2,
            max_size=20,
        ),
        split_count=st.integers(2, 6),
    )
    def test_property_splits_reassemble_all_records(self, records, split_count):
        """Records recovered across aligned splits equal the original set."""
        payload = b"".join(record + b"\n" for record in records)
        size = len(payload)
        boundaries = [size * i // split_count for i in range(split_count + 1)]
        recovered = []
        for index in range(split_count):
            start, end = boundaries[index], boundaries[index + 1]
            if start == end:
                continue
            window = payload[start:]
            skip = align_start_to_record(window, is_first=(start == 0))
            record_start = start + skip
            tail = payload[end:]
            extend = extend_end_to_record(tail, at_object_end=(end == size))
            record_end = end + extend
            if record_start >= record_end:
                continue
            segment = payload[record_start:record_end]
            recovered.extend(segment.split(b"\n")[:-1])
        assert recovered == records
