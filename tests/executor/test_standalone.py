"""Tests for the VM-backed standalone executor."""

import pytest

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.errors import ExecutorError
from repro.executor import FunctionExecutor, StandaloneExecutor


@pytest.fixture
def cloud():
    return Cloud.fresh(seed=13, profile=ibm_us_east(deterministic=True))


def square(x):
    return x * x


class TestLifecycle:
    def test_map_before_start_rejected(self, cloud):
        executor = StandaloneExecutor(cloud)

        def driver():
            yield executor.map(square, [1])

        with pytest.raises(ExecutorError):
            cloud.sim.run_process(driver())

    def test_double_start_rejected(self, cloud):
        executor = StandaloneExecutor(cloud)

        def driver():
            yield executor.start()
            executor.start()

        with pytest.raises(ExecutorError):
            cloud.sim.run_process(driver())

    def test_shutdown_terminates_vm(self, cloud):
        executor = StandaloneExecutor(cloud)

        def driver():
            yield executor.start()
            executor.shutdown()
            return executor.vm.state

        assert cloud.sim.run_process(driver()) == "terminated"

    def test_shutdown_is_idempotent(self, cloud):
        executor = StandaloneExecutor(cloud)

        def driver():
            yield executor.start()
            executor.shutdown()
            executor.shutdown()

        cloud.sim.run_process(driver())  # must not raise


class TestExecution:
    def test_map_results_in_order(self, cloud):
        executor = StandaloneExecutor(cloud)

        def driver():
            yield executor.start()
            futures = yield executor.map(square, [1, 2, 3])
            results = yield executor.get_result(futures)
            executor.shutdown()
            return results

        assert cloud.sim.run_process(driver()) == [1, 4, 9]

    def test_includes_vm_boot_latency(self, cloud):
        executor = StandaloneExecutor(cloud)

        def driver():
            yield executor.start()
            futures = yield executor.map(square, [1])
            yield executor.get_result(futures)
            executor.shutdown()
            return cloud.sim.now

        elapsed = cloud.sim.run_process(driver())
        assert elapsed >= cloud.profile.vm.boot.mean

    def test_vcpus_bound_compute_parallelism(self, cloud):
        executor = StandaloneExecutor(cloud, instance_type="bx2-2x8")

        def driver():
            yield executor.start()
            start = cloud.sim.now
            futures = yield executor.map(
                square, list(range(4)), cpu_model=lambda x: 10.0
            )
            yield executor.get_result(futures)
            executor.shutdown()
            return cloud.sim.now - start

        elapsed = cloud.sim.run_process(driver())
        # 4 calls x 10 s on 2 vCPUs: at least two serial rounds.
        assert elapsed >= 20.0

    def test_sim_aware_function_runs_on_vm(self, cloud):
        executor = StandaloneExecutor(cloud)

        def probe(ctx, x):
            yield ctx.compute(0.1)
            return (x, ctx.memory_mb)

        def driver():
            yield executor.start()
            future = yield executor.call_async(probe, 9)
            result = yield executor.get_result(future)
            executor.shutdown()
            return result

        value, memory_mb = cloud.sim.run_process(driver())
        assert value == 9
        assert memory_mb == 32 * 1024  # bx2-8x32

    def test_error_propagates(self, cloud):
        executor = StandaloneExecutor(cloud)

        def bad(x):
            raise ValueError("vm call failed")

        def driver():
            yield executor.start()
            futures = yield executor.map(bad, [1])
            try:
                yield executor.get_result(futures)
            finally:
                executor.shutdown()

        with pytest.raises(ValueError, match="vm call failed"):
            cloud.sim.run_process(driver())


class TestCostShape:
    def test_vm_billing_dominates_over_faas(self, cloud):
        """The standalone executor bills VM seconds, not GB-seconds."""
        executor = StandaloneExecutor(cloud)

        def driver():
            yield executor.start()
            futures = yield executor.map(square, [1, 2])
            yield executor.get_result(futures)
            executor.shutdown()

        cloud.sim.run_process(driver())
        totals = cloud.meter.total_by_service()
        assert totals.get("vm", 0.0) > 0.0
        assert totals.get("faas", 0.0) == 0.0

    def test_same_code_runs_on_both_substrates(self, cloud):
        """A sim-aware function is substrate-portable (Lithops parity)."""

        def portable(ctx, x):
            yield ctx.compute(0.05)
            yield ctx.storage.put("lithops-staging", f"out/{x}", bytes([x]))
            return x * 10

        faas_executor = FunctionExecutor(cloud)
        vm_executor = StandaloneExecutor(cloud)

        def driver():
            yield vm_executor.start()
            faas_futures = yield faas_executor.map(portable, [1, 2])
            vm_futures = yield vm_executor.map(portable, [3, 4])
            faas_results = yield faas_executor.get_result(faas_futures)
            vm_results = yield vm_executor.get_result(vm_futures)
            vm_executor.shutdown()
            return faas_results, vm_results

        faas_results, vm_results = cloud.sim.run_process(driver())
        assert faas_results == [10, 20]
        assert vm_results == [30, 40]
