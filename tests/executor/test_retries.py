"""Tests for infrastructure-failure retries in the executor."""

import pytest

from repro.cloud import Cloud
from repro.cloud.faas import FunctionCrashed
from repro.cloud.profiles import ibm_us_east
from repro.executor import FunctionExecutor


@pytest.fixture
def cloud():
    return Cloud.fresh(seed=37, profile=ibm_us_east(deterministic=True))


def steady(ctx, x):
    yield ctx.sleep(5.0)
    return x * 2


class TestCrashRetries:
    def test_occasional_crashes_are_absorbed(self, cloud):
        executor = FunctionExecutor(cloud, retries=3)
        cloud.faas.crash_probability = 0.3
        cloud.faas.crash_latest_s = 0.5  # kills preempt the 5 s body

        def driver():
            futures = yield executor.map(steady, list(range(12)))
            return (yield executor.get_result(futures))

        results = cloud.sim.run_process(driver())
        assert results == [x * 2 for x in range(12)]
        assert cloud.faas.stats.crashes > 0  # something actually crashed

    def test_retries_exhausted_surfaces_crash(self, cloud):
        executor = FunctionExecutor(cloud, retries=1)
        cloud.faas.crash_probability = 1.0  # platform always kills
        cloud.faas.crash_latest_s = 0.5

        def driver():
            futures = yield executor.map(steady, [1])
            yield executor.get_result(futures)

        with pytest.raises(FunctionCrashed):
            cloud.sim.run_process(driver())
        # 1 original + 1 retry
        assert cloud.faas.stats.crashes == 2

    def test_zero_retries_fails_on_first_crash(self, cloud):
        executor = FunctionExecutor(cloud, retries=0)
        cloud.faas.crash_probability = 1.0
        cloud.faas.crash_latest_s = 0.5

        def driver():
            futures = yield executor.map(steady, [1])
            yield executor.get_result(futures)

        with pytest.raises(FunctionCrashed):
            cloud.sim.run_process(driver())
        assert cloud.faas.stats.crashes == 1

    def test_application_errors_never_retried(self, cloud):
        executor = FunctionExecutor(cloud, retries=5)

        def buggy(x):
            raise ValueError("application bug")

        def driver():
            futures = yield executor.map(buggy, [1])
            yield executor.get_result(futures)

        with pytest.raises(ValueError):
            cloud.sim.run_process(driver())
        # Exactly one platform invocation: application bugs never retry.
        assert cloud.faas.stats.invocations == 1

    def test_retried_calls_still_billed(self, cloud):
        executor = FunctionExecutor(cloud, retries=2)
        cloud.faas.crash_probability = 1.0
        cloud.faas.crash_latest_s = 0.5

        def driver():
            futures = yield executor.map(steady, [1])
            done, _ = yield executor.wait(futures)
            return done

        cloud.sim.run_process(driver())
        # Every attempt (3 total) billed some GB-seconds.
        assert cloud.faas.stats.billed_gb_seconds > 0
