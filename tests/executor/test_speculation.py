"""Tests for speculative execution (straggler backup tasks)."""

import pytest

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.errors import ExecutorError
from repro.executor import FunctionExecutor, SpeculationPolicy


def double(x):
    return x * 2


def poison(x):
    if x == 13:
        raise ValueError("unlucky input")
    return x


def run_map(cloud, executor, func, data, **map_kwargs):
    def driver():
        futures = yield executor.map(func, data, **map_kwargs)
        return (yield executor.get_result(futures))

    return cloud.sim.run_process(driver())


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        SpeculationPolicy().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"quantile": 0.0},
            {"quantile": 1.0},
            {"latency_multiplier": 0.9},
            {"max_duplicates": 0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ExecutorError):
            SpeculationPolicy(**kwargs).validate()

    def test_invalid_policy_rejected_at_map_time(self):
        cloud = Cloud.fresh(seed=1, profile=ibm_us_east(deterministic=True))
        executor = FunctionExecutor(cloud)
        with pytest.raises(ExecutorError):
            run_map(
                cloud, executor, double, [1, 2],
                speculation=SpeculationPolicy(quantile=2.0),
            )


class TestCorrectness:
    def test_results_identical_with_and_without_speculation(self):
        data = list(range(30))
        outcomes = []
        for policy in (None, SpeculationPolicy()):
            cloud = Cloud.fresh(seed=17)
            executor = FunctionExecutor(cloud, speculation=policy)
            outcomes.append(
                run_map(cloud, executor, double, data,
                        cpu_model=lambda x: 2.0)
            )
        assert outcomes[0] == outcomes[1] == [x * 2 for x in data]

    def test_no_backups_in_a_deterministic_world(self):
        cloud = Cloud.fresh(seed=17, profile=ibm_us_east(deterministic=True))
        executor = FunctionExecutor(cloud, speculation=SpeculationPolicy())
        results = run_map(cloud, executor, double, list(range(16)),
                          cpu_model=lambda x: 2.0)
        assert results == [x * 2 for x in range(16)]
        assert executor.speculative_launches == 0

    def test_application_errors_surface_and_are_not_speculated(self):
        cloud = Cloud.fresh(seed=17, profile=ibm_us_east(deterministic=True))
        executor = FunctionExecutor(cloud, speculation=SpeculationPolicy())
        with pytest.raises(ValueError, match="unlucky"):
            run_map(cloud, executor, poison, list(range(16)))
        assert executor.speculative_launches == 0

    def test_crash_retries_compose_with_speculation(self):
        cloud = Cloud.fresh(seed=5)
        cloud.faas.crash_probability = 0.25
        cloud.faas.crash_latest_s = 6.0
        executor = FunctionExecutor(cloud, speculation=SpeculationPolicy())
        data = list(range(40))
        results = run_map(cloud, executor, double, data,
                          cpu_model=lambda x: 8.0)
        assert results == [x * 2 for x in data]
        assert cloud.faas.stats.crashes > 0

    def test_map_level_policy_overrides_executor_default(self):
        cloud = Cloud.fresh(seed=5)
        executor = FunctionExecutor(cloud)  # no default policy
        assert executor.speculation is None
        results = run_map(
            cloud, executor, double, list(range(8)),
            speculation=SpeculationPolicy(),
        )
        assert results == [x * 2 for x in range(8)]


class TestStragglerMitigation:
    @staticmethod
    def _heavy_tail_profile():
        profile = ibm_us_east()
        profile.faas.cold_start.mean = 1.5
        profile.faas.cold_start.sigma = 1.4
        return profile

    def test_backups_launch_under_heavy_tail(self):
        cloud = Cloud.fresh(seed=11, profile=self._heavy_tail_profile())
        executor = FunctionExecutor(
            cloud,
            speculation=SpeculationPolicy(quantile=0.7, latency_multiplier=1.3),
        )
        results = run_map(cloud, executor, double, list(range(48)),
                          cpu_model=lambda x: 5.0)
        assert results == [x * 2 for x in range(48)]
        assert executor.speculative_launches > 0

    def test_speculation_does_not_slow_the_job(self):
        latencies = {}
        for label, policy in (
            ("plain", None),
            ("speculative",
             SpeculationPolicy(quantile=0.7, latency_multiplier=1.3)),
        ):
            cloud = Cloud.fresh(seed=11, profile=self._heavy_tail_profile())
            executor = FunctionExecutor(cloud, speculation=policy)
            run_map(cloud, executor, double, list(range(48)),
                    cpu_model=lambda x: 5.0)
            latencies[label] = cloud.sim.now
        assert latencies["speculative"] <= latencies["plain"] * 1.01

    def test_duplicates_cost_extra_invocations(self):
        cloud = Cloud.fresh(seed=11, profile=self._heavy_tail_profile())
        executor = FunctionExecutor(
            cloud,
            speculation=SpeculationPolicy(quantile=0.7, latency_multiplier=1.3),
        )
        run_map(cloud, executor, double, list(range(48)),
                cpu_model=lambda x: 5.0)
        # invocations = samplers-free map of 48 + the backups
        assert (
            cloud.faas.stats.invocations
            == 48 + executor.speculative_launches
        )

    def test_max_duplicates_bounds_backups_per_call(self):
        cloud = Cloud.fresh(seed=11, profile=self._heavy_tail_profile())
        policy = SpeculationPolicy(
            quantile=0.5, latency_multiplier=1.0, max_duplicates=2
        )
        executor = FunctionExecutor(cloud, speculation=policy)
        run_map(cloud, executor, double, list(range(24)),
                cpu_model=lambda x: 5.0)
        assert executor.speculative_launches <= 2 * 24

    def test_counter_accumulates_across_jobs(self):
        cloud = Cloud.fresh(seed=11, profile=self._heavy_tail_profile())
        executor = FunctionExecutor(
            cloud,
            speculation=SpeculationPolicy(quantile=0.7, latency_multiplier=1.3),
        )
        run_map(cloud, executor, double, list(range(48)),
                cpu_model=lambda x: 5.0)
        first = executor.speculative_launches
        run_map(cloud, executor, double, list(range(48)),
                cpu_model=lambda x: 5.0)
        assert executor.speculative_launches >= first


class TestLoserCancellation:
    """Losing attempts are killed, not drained (attempt-scoped cancel)."""

    @staticmethod
    def _heavy_tail_profile():
        profile = ibm_us_east()
        profile.faas.cold_start.mean = 1.5
        profile.faas.cold_start.sigma = 1.4
        return profile

    def _speculative_run(self):
        cloud = Cloud.fresh(seed=11, profile=self._heavy_tail_profile())
        executor = FunctionExecutor(
            cloud,
            speculation=SpeculationPolicy(quantile=0.7, latency_multiplier=1.3),
        )
        results = run_map(cloud, executor, double, list(range(48)),
                          cpu_model=lambda x: 5.0)
        assert results == [x * 2 for x in range(48)]
        return cloud, executor

    def test_losers_are_cancelled_when_a_call_settles(self):
        cloud, executor = self._speculative_run()
        assert executor.speculative_launches > 0
        # Every duplicated call resolves to one winner and cancelled
        # losers; nothing drains to a redundant completion.
        assert cloud.faas.stats.cancellations > 0
        assert (
            cloud.faas.stats.completions
            + cloud.faas.stats.cancellations
            == cloud.faas.stats.invocations
        )

    def test_cancelled_losers_stop_billing_at_the_kill(self):
        cloud, _executor = self._speculative_run()
        cancelled = [
            line for line in cloud.faas.billing_log if line.outcome == "cancelled"
        ]
        completed = [
            line for line in cloud.faas.billing_log if line.outcome == "ok"
        ]
        assert cancelled, "no loser was ever billed — nothing to audit"
        # A loser is killed the moment its rival settles, so its billed
        # window can never exceed the slowest completed call's.
        assert max(c.billed_s for c in cancelled) <= max(
            c.billed_s for c in completed
        )
        billed_ids = [line.activation_id for line in cloud.faas.billing_log]
        assert len(billed_ids) == len(set(billed_ids))

    def test_cancellation_does_not_change_results_or_order(self):
        plain_cloud = Cloud.fresh(seed=11, profile=self._heavy_tail_profile())
        plain = run_map(
            plain_cloud, FunctionExecutor(plain_cloud), double, list(range(48)),
            cpu_model=lambda x: 5.0,
        )
        spec_cloud, _executor = self._speculative_run()
        assert plain == [x * 2 for x in range(48)]
