"""Speculation parity: backup tasks are safe on every exchange substrate.

Pre-cancellation, speculation was only safe on the idempotent
object-storage path — a losing speculative mapper kept draining into
the cache/relay and could race the winner.  With attempt-scoped
cancellation the speculator kills losers the moment a call settles, so
the same seeded job with ``speculation=`` enabled must produce
identical output digests on objectstore, cache, relay and the sharded
relay fleet — and cancelled attempts must be billed exactly once, only
up to the kill.
"""

import hashlib
import random

import pytest

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.cloud.vm.fleet import fleet_ready
from repro.cloud.vm.relay import relay_ready
from repro.executor import FunctionExecutor, SpeculationPolicy
from repro.shuffle import (
    CacheShuffleSort,
    FixedWidthCodec,
    RelayShuffleSort,
    ShardedRelayShuffleSort,
    ShuffleSort,
    SkewSpec,
    StreamConfig,
    StreamingCacheExchange,
    StreamingObjectStoreExchange,
    StreamingRelayExchange,
    StreamingShuffleSort,
    skewed_fixed_payload,
)

#: Both execution modes: a losing speculative attempt must be fenced
#: out of a *stream* it was mid-publish into just as cleanly as out of
#: a staged batch.
SUBSTRATES = (
    "objectstore", "cache", "relay", "sharded-relay",
    "streaming-objectstore", "streaming-cache", "streaming-relay",
)
SEED = 11
RECORDS = 3000
WORKERS = 4

#: Aggressive trigger so backups actually fire at this small scale.
POLICY = SpeculationPolicy(quantile=0.5, latency_multiplier=1.05)


def make_payload(count, seed, record_size=16):
    rng = random.Random(seed)
    return b"".join(
        rng.getrandbits(64).to_bytes(8, "big") + bytes(record_size - 8)
        for _ in range(count)
    )


def heavy_tailed_profile():
    """Lognormal cold starts wide enough to create real stragglers."""
    profile = ibm_us_east()
    profile.faas.cold_start.mean = 1.5
    profile.faas.cold_start.sigma = 1.4
    return profile


def run_speculative_sort(substrate, payload, crash_rate=0.0):
    cloud = Cloud.fresh(seed=SEED, profile=heavy_tailed_profile())
    cloud.store.ensure_bucket("data")
    cloud.faas.crash_probability = crash_rate
    cloud.faas.crash_latest_s = 0.1
    executor = FunctionExecutor(cloud, retries=6, speculation=POLICY)
    codec = FixedWidthCodec(record_size=16, key_bytes=8)
    relay = None
    stream = StreamConfig(
        chunk_bytes=4096.0, buffer_bytes=8192.0, poll_interval_s=0.05
    )
    if substrate == "objectstore":
        operator = ShuffleSort(executor, codec)
    elif substrate == "cache":
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=2)
        operator = CacheShuffleSort(executor, codec, cluster)
    elif substrate == "sharded-relay":
        relay = fleet_ready(cloud.vms, "bx2-8x32", shards=2)
        operator = ShardedRelayShuffleSort(executor, codec, relay)
    elif substrate == "streaming-objectstore":
        operator = StreamingShuffleSort(
            executor, codec, backend=StreamingObjectStoreExchange(stream=stream)
        )
    elif substrate == "streaming-cache":
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=2)
        operator = StreamingShuffleSort(
            executor, codec, backend=StreamingCacheExchange(cluster, stream=stream)
        )
    elif substrate == "streaming-relay":
        relay = relay_ready(cloud.vms, "bx2-8x32")
        operator = StreamingShuffleSort(
            executor, codec, backend=StreamingRelayExchange(relay, stream=stream)
        )
    else:
        relay = relay_ready(cloud.vms, "bx2-8x32")
        operator = RelayShuffleSort(executor, codec, relay)

    def driver():
        yield cloud.store.put("data", "input.bin", payload)
        return (yield operator.sort("data", "input.bin", workers=WORKERS))

    result = cloud.sim.run_process(driver())
    digest = hashlib.sha256()
    for run in result.runs:
        digest.update(cloud.store.peek("data", run.key))
    return digest.hexdigest(), executor, cloud, relay


@pytest.fixture(scope="module")
def speculative_runs():
    payload = make_payload(RECORDS, SEED)
    return {
        substrate: run_speculative_sort(substrate, payload)
        for substrate in SUBSTRATES
    }


class TestSpeculationParity:
    def test_backups_fire_on_every_substrate(self, speculative_runs):
        for substrate, (_digest, executor, _cloud, _relay) in speculative_runs.items():
            assert executor.speculative_launches > 0, (
                f"speculation never triggered on {substrate} — the parity "
                "claim would be vacuous"
            )

    def test_digests_identical_across_substrates(self, speculative_runs):
        digests = {
            substrate: digest
            for substrate, (digest, _ex, _cloud, _relay) in speculative_runs.items()
        }
        assert len(set(digests.values())) == 1, f"diverged: {digests}"

    def test_no_double_billing_of_cancelled_attempts(self, speculative_runs):
        for substrate, (_digest, _ex, cloud, _relay) in speculative_runs.items():
            billed = [line.activation_id for line in cloud.faas.billing_log]
            assert len(billed) == len(set(billed)), (
                f"{substrate}: an activation was billed twice"
            )
            cancelled = [
                line for line in cloud.faas.billing_log if line.outcome == "cancelled"
            ]
            # Every billed cancellation corresponds to a platform
            # cancellation; losers killed while still *queued* never
            # started executing and are (correctly) not billed at all.
            assert len(cancelled) <= cloud.faas.stats.cancellations
            assert cloud.faas.stats.cancellations > 0
            completed = [
                line.billed_s
                for line in cloud.faas.billing_log
                if line.outcome == "ok"
            ]
            for line in cancelled:
                assert line.billed_s <= max(completed) + 1e-9

    def test_relay_reports_zero_residual_after_speculation(self, speculative_runs):
        for substrate in ("relay", "sharded-relay", "streaming-relay"):
            _digest, _ex, _cloud, relay = speculative_runs[substrate]
            assert relay.residual_reservation_bytes() == 0.0
            assert relay.active_flows == 0
            assert relay.used_logical == pytest.approx(relay.entry_bytes)
            relay.check_memory_accounting()

    def test_speculation_composes_with_crash_injection_on_relay(self):
        """The acceptance scenario: crashes + retries + speculation on
        the relay produce byte-identical output to object storage."""
        payload = make_payload(RECORDS, SEED)
        base_digest, _ex, _cloud, _r = run_speculative_sort("objectstore", payload)
        digest, _ex2, cloud, relay = run_speculative_sort(
            "relay", payload, crash_rate=0.2
        )
        assert cloud.faas.stats.crashes > 0
        assert digest == base_digest
        assert relay.residual_reservation_bytes() == 0.0
        relay.check_memory_accounting()


class TestSkewedSpeculationParity:
    """Skewed-seed rows of the parity matrix: the hot partition's big
    segments are exactly what a losing speculative attempt is most
    likely to be caught mid-transfer of."""

    SKEWED_SUBSTRATES = (
        "objectstore", "sharded-relay", "streaming-relay", "streaming-cache",
    )

    @pytest.fixture(scope="class")
    def skewed_runs(self):
        payload = skewed_fixed_payload(
            RECORDS, SkewSpec(distribution="zipf", zipf_s=1.5, distinct_keys=8),
            seed=SEED,
        )
        return {
            substrate: run_speculative_sort(substrate, payload)
            for substrate in self.SKEWED_SUBSTRATES
        }

    def test_digests_identical_and_backups_fired(self, skewed_runs):
        digests = set()
        for substrate, (digest, executor, cloud, _relay) in skewed_runs.items():
            digests.add(digest)
            assert executor.speculative_launches > 0, substrate
            assert cloud.faas.stats.cancellations > 0, substrate
        assert len(digests) == 1, "skewed speculation diverged"

    def test_zero_residual_reservations(self, skewed_runs):
        for substrate in ("sharded-relay", "streaming-relay"):
            _digest, _ex, _cloud, relay = skewed_runs[substrate]
            assert relay.residual_reservation_bytes() == 0.0
            assert relay.active_flows == 0
            relay.check_memory_accounting()


class TestLoserCancellation:
    def test_cancelled_losers_are_fenced_not_drained(self, speculative_runs):
        _digest, _ex, cloud, relay = speculative_runs["relay"]
        # The platform cancelled losing attempts...
        assert cloud.faas.stats.cancellations > 0
        # ...and whatever they still had in flight on the relay was torn
        # down rather than drained (reclaimed bytes or aborted flows, or
        # the loser lost before ever reaching its MPUSH — then nothing
        # needed tearing down and the counters legitimately stay zero).
        assert relay.residual_reservation_bytes() == 0.0

    def test_operator_rejects_unsupported_speculation(self):
        """A backend may declare itself speculation-unsafe; the operator
        then refuses a speculative executor instead of corrupting."""
        from repro.errors import ShuffleError
        from repro.shuffle import ObjectStoreExchange

        class NoSpecExchange(ObjectStoreExchange):
            supports_speculation = False

        cloud = Cloud.fresh(seed=SEED, profile=ibm_us_east(deterministic=True))
        cloud.store.ensure_bucket("data")
        executor = FunctionExecutor(cloud, speculation=POLICY)
        operator = ShuffleSort(
            executor, FixedWidthCodec(record_size=16, key_bytes=8),
            backend=NoSpecExchange(),
        )

        def driver():
            yield cloud.store.put("data", "in.bin", make_payload(200, SEED))
            return (yield operator.sort("data", "in.bin", workers=2))

        with pytest.raises(ShuffleError, match="speculat"):
            cloud.sim.run_process(driver())

    def test_speculator_counts_cancelled_losers(self):
        """Executor-level view: a straggling call's backup wins, the
        primary is cancelled, and the job's duplicate cost is bounded."""
        payload = make_payload(600, SEED)
        _digest, executor, cloud, _relay = run_speculative_sort(
            "objectstore", payload
        )
        # Each backup creates at most one loser to cancel (whichever
        # side loses), so cancellations are bounded by backups launched.
        assert cloud.faas.stats.cancellations <= executor.speculative_launches
