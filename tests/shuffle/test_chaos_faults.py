"""Chaos harness: crash mappers/reducers mid-transfer on every substrate.

Parameterized fault injection over the four exchange substrates
(object storage, cache cluster, single VM relay, sharded relay fleet)
— in both execution modes, staged and streaming: the platform kills
activations at injected rates (often mid-MPUSH/MPULL on the stateful
substrates, and mid-*stream* on the streaming paths, where reducers are
already consuming chunks the crashed mapper published), the executor
re-invokes them, and the final sorted artifact must still be
byte-identical to a crash-free object-storage run — plus the relay
(every shard of it, for the fleet) must report **zero** residual
reservations once the job settles, proving no dead attempt leaked
memory.

The seed matrix is fixed for reproducibility and can be widened via the
``REPRO_CHAOS_SEEDS`` environment variable (comma-separated ints), which
is what ``make test-faults`` uses.
"""

import os
import random

import pytest

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.cloud.vm.fleet import fleet_ready
from repro.cloud.vm.relay import relay_ready
from repro.executor import FunctionExecutor
from repro.shuffle import (
    CacheShuffleSort,
    FixedWidthCodec,
    RelayShuffleCostModel,
    RelayShuffleSort,
    ShardedRelayShuffleSort,
    ShuffleSort,
    SkewSpec,
    StreamConfig,
    StreamingCacheExchange,
    StreamingObjectStoreExchange,
    StreamingRelayExchange,
    StreamingShardedRelayExchange,
    StreamingShuffleSort,
    skewed_fixed_payload,
)

SUBSTRATES = (
    "objectstore", "cache", "relay", "sharded-relay",
    "streaming-objectstore", "streaming-cache", "streaming-relay",
    "relay-consume", "sharded-relay-consume",
)

#: Rows whose reducers delete as they read — crashes land mid-consume,
#: so the read-lease protocol (reinstate on death, remove at commit) is
#: what byte parity and the empty-relay postcondition prove.
CONSUME_SUBSTRATES = frozenset({"relay-consume", "sharded-relay-consume"})

#: Mid-stream chaos wants several chunks per mapper (so kills land
#: between publishes) and a bounded reducer buffer (so the backpressure
#: path is exercised under crash-retry too).
CHAOS_STREAM = dict(chunk_bytes=4096.0, buffer_bytes=8192.0, poll_interval_s=0.05)

#: Fixed default seed matrix; override with REPRO_CHAOS_SEEDS=1,2,3.
CHAOS_SEEDS = tuple(
    int(seed)
    for seed in os.environ.get("REPRO_CHAOS_SEEDS", "13,2021,77").split(",")
)

CRASH_RATES = (0.15, 0.3)

RECORDS = 3000
WORKERS = 4


def make_payload(count, seed, record_size=16):
    rng = random.Random(seed)
    return b"".join(
        rng.getrandbits(64).to_bytes(8, "big") + bytes(record_size - 8)
        for _ in range(count)
    )


def run_chaos_sort(substrate, payload, seed, crash_rate, retries=6):
    """One sort on a fresh region with crash injection; returns
    (runs_bytes, cloud, relay_or_none)."""
    cloud = Cloud.fresh(seed=seed, profile=ibm_us_east(deterministic=True))
    cloud.store.ensure_bucket("data")
    cloud.faas.crash_probability = crash_rate
    # Body durations at this scale are fractions of a second; a short
    # kill window guarantees injected kills land while bodies (and their
    # exchange transfers) are still in flight instead of fizzling.
    cloud.faas.crash_latest_s = 0.1
    executor = FunctionExecutor(cloud, retries=retries)
    codec = FixedWidthCodec(record_size=16, key_bytes=8)
    relay = None
    stream = StreamConfig(**CHAOS_STREAM)
    if substrate == "objectstore":
        operator = ShuffleSort(executor, codec)
    elif substrate == "cache":
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=2)
        operator = CacheShuffleSort(executor, codec, cluster)
    elif substrate == "sharded-relay":
        relay = fleet_ready(cloud.vms, "bx2-8x32", shards=2)
        operator = ShardedRelayShuffleSort(executor, codec, relay)
    elif substrate == "relay-consume":
        relay = relay_ready(cloud.vms, "bx2-8x32")
        operator = RelayShuffleSort(
            executor, codec, relay, cost=RelayShuffleCostModel(consume=True)
        )
    elif substrate == "sharded-relay-consume":
        relay = fleet_ready(cloud.vms, "bx2-8x32", shards=2)
        operator = ShardedRelayShuffleSort(
            executor, codec, relay, cost=RelayShuffleCostModel(consume=True)
        )
    elif substrate == "streaming-objectstore":
        operator = StreamingShuffleSort(
            executor, codec, backend=StreamingObjectStoreExchange(stream=stream)
        )
    elif substrate == "streaming-cache":
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=2)
        operator = StreamingShuffleSort(
            executor, codec, backend=StreamingCacheExchange(cluster, stream=stream)
        )
    elif substrate == "streaming-relay":
        relay = relay_ready(cloud.vms, "bx2-8x32")
        operator = StreamingShuffleSort(
            executor, codec, backend=StreamingRelayExchange(relay, stream=stream)
        )
    elif substrate == "streaming-sharded-relay":
        relay = fleet_ready(cloud.vms, "bx2-8x32", shards=2)
        operator = StreamingShuffleSort(
            executor, codec,
            backend=StreamingShardedRelayExchange(relay, stream=stream),
        )
    else:
        relay = relay_ready(cloud.vms, "bx2-8x32")
        operator = RelayShuffleSort(executor, codec, relay)

    def driver():
        yield cloud.store.put("data", "input.bin", payload)
        return (yield operator.sort("data", "input.bin", workers=WORKERS))

    result = cloud.sim.run_process(driver())
    runs = [cloud.store.peek("data", run.key) for run in result.runs]
    return runs, cloud, relay


@pytest.fixture(scope="module")
def baselines():
    """Crash-free object-storage artifacts, one per seed."""
    artifacts = {}
    for seed in CHAOS_SEEDS:
        payload = make_payload(RECORDS, seed)
        runs, _cloud, _relay = run_chaos_sort("objectstore", payload, seed, 0.0)
        artifacts[seed] = runs
    return artifacts


@pytest.mark.parametrize("crash_rate", CRASH_RATES)
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
@pytest.mark.parametrize("substrate", SUBSTRATES)
class TestChaosParity:
    def test_crashes_preserve_byte_parity_and_leak_nothing(
        self, baselines, substrate, seed, crash_rate
    ):
        payload = make_payload(RECORDS, seed)
        runs, cloud, relay = run_chaos_sort(substrate, payload, seed, crash_rate)

        # The chaos must actually bite for the run to prove anything;
        # with ~3x WORKERS invocations at >= 10% rate every fixed seed
        # here injects at least one kill.
        assert cloud.faas.stats.crashes > 0, "no crash injected — raise the rate"

        # Byte parity with the crash-free object-storage artifact.
        assert runs == baselines[seed], (
            f"{substrate} diverged under crash injection "
            f"(seed={seed}, rate={crash_rate})"
        )

        if relay is not None:
            # Zero leaked relay memory: every reservation a dead attempt
            # held was reclaimed, every surviving byte is a committed
            # partition, and no orphaned flow is still draining any NIC
            # (the fleet aggregates these checks across its shards).
            assert relay.residual_reservation_bytes() == 0.0
            assert relay.active_flows == 0
            assert relay.used_logical == pytest.approx(relay.entry_bytes)
            relay.check_memory_accounting()

        if substrate in CONSUME_SUBSTRATES:
            # Consume mode under crashes: every committed reducer's
            # leases removed its partitions (empty relay afterwards).
            # A reducer killed mid-consume has its leases reinstated,
            # which is what keeps the byte-parity assertion above alive
            # — the pre-lease immediate delete would have lost those
            # partitions for the retry.
            stats = relay.stats.as_dict()
            assert relay.key_count == 0
            assert stats["consume_leases"] > 0
            assert stats["lease_commits"] > 0


#: Zipf duplicate keys: one hot partition owns most of the bytes, so
#: injected kills land mid-transfer of *large* segments, the hot
#: partition's stream far exceeds the bounded reducer buffer
#: (CHAOS_STREAM's 8 KiB vs tens of KiB of hot-partition data), and the
#: fleet's rebalance map is live while attempts die and retry.
SKEWED_SPEC = SkewSpec(distribution="zipf", zipf_s=1.5, distinct_keys=8)

#: Staged + streaming substrates of the skewed matrix (the stateful
#: ones, where routing and reservations can leak; the objectstore rows
#: anchor the baseline).
SKEWED_SUBSTRATES = (
    "sharded-relay", "streaming-relay", "streaming-sharded-relay",
    "streaming-cache",
)


@pytest.fixture(scope="module")
def skewed_baselines():
    """Crash-free object-storage artifacts of the Zipf payloads."""
    artifacts = {}
    for seed in CHAOS_SEEDS:
        payload = skewed_fixed_payload(RECORDS, SKEWED_SPEC, seed=seed)
        runs, _cloud, _relay = run_chaos_sort("objectstore", payload, seed, 0.0)
        artifacts[seed] = runs
    return artifacts


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
@pytest.mark.parametrize("substrate", SKEWED_SUBSTRATES)
class TestSkewedChaosParity:
    def test_skewed_crashes_preserve_parity_and_leak_nothing(
        self, skewed_baselines, substrate, seed
    ):
        """Crash-retry under a hot partition: byte parity with the
        crash-free baseline, zero residual reservations, and — on the
        streaming rows — completion itself proves the bounded buffer
        absorbed a hot-partition burst far beyond its size without
        deadlocking."""
        payload = skewed_fixed_payload(RECORDS, SKEWED_SPEC, seed=seed)
        runs, cloud, relay = run_chaos_sort(substrate, payload, seed, 0.3)
        assert cloud.faas.stats.crashes > 0, "no crash injected — raise the rate"
        assert runs == skewed_baselines[seed], (
            f"{substrate} diverged under crash injection on a Zipf "
            f"workload (seed={seed})"
        )
        # The workload genuinely concentrated bytes: the hot partition
        # holds several times its fair share.
        sizes = [len(run) for run in runs]
        assert max(sizes) > 1.8 * (sum(sizes) / len(sizes))
        if relay is not None:
            assert relay.residual_reservation_bytes() == 0.0
            assert relay.active_flows == 0
            assert relay.used_logical == pytest.approx(relay.entry_bytes)
            relay.check_memory_accounting()


class TestStreamingFleetChaos:
    def test_streaming_fleet_crash_retry_preserves_parity(self, baselines):
        """The fleet flavour of the streaming path, once per seed matrix:
        rendezvous pulls route across shards while mappers crash
        mid-stream, and the artifact still matches the staged baseline
        with zero residual reservations on every shard."""
        seed = CHAOS_SEEDS[0]
        payload = make_payload(RECORDS, seed)
        runs, cloud, fleet = run_chaos_sort(
            "streaming-sharded-relay", payload, seed, 0.3
        )
        assert cloud.faas.stats.crashes > 0
        assert runs == baselines[seed]
        assert fleet.residual_reservation_bytes() == 0.0
        assert fleet.active_flows == 0
        fleet.check_memory_accounting()
        for shard in fleet.shards:
            assert shard.residual_reservation_bytes() == 0.0


class TestChaosAccounting:
    def test_every_crash_is_retried_and_billed_once(self):
        seed = CHAOS_SEEDS[0]
        payload = make_payload(RECORDS, seed)
        _runs, cloud, relay = run_chaos_sort("relay", payload, seed, 0.3)
        assert cloud.faas.stats.crashes > 0
        # No activation is ever billed twice, crashed ones included.
        billed_ids = [line.activation_id for line in cloud.faas.billing_log]
        assert len(billed_ids) == len(set(billed_ids))
        crash_lines = [
            line for line in cloud.faas.billing_log if line.outcome == "crash"
        ]
        assert len(crash_lines) == cloud.faas.stats.crashes
        # Dead attempts were actively reclaimed or fenced on the relay.
        assert (
            relay.stats.cancelled_transfers > 0
            or relay.stats.reclaimed_bytes >= 0.0
        )

    def test_retry_exhaustion_still_reclaims_the_relay(self):
        """Even when the job *fails* (crash rate beyond the retry
        budget), dead attempts must not leak relay memory."""
        seed = CHAOS_SEEDS[0]
        payload = make_payload(600, seed)
        with pytest.raises(Exception):
            run_chaos_sort("relay", payload, seed, 0.95, retries=1)
        # The relay object is gone with the region here; re-run with a
        # handle we keep to inspect post-failure state.
        cloud = Cloud.fresh(seed=seed, profile=ibm_us_east(deterministic=True))
        cloud.store.ensure_bucket("data")
        cloud.faas.crash_probability = 0.95
        cloud.faas.crash_latest_s = 2.0
        executor = FunctionExecutor(cloud, retries=1)
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        relay = relay_ready(cloud.vms, "bx2-8x32")
        operator = RelayShuffleSort(executor, codec, relay)

        def driver():
            yield cloud.store.put("data", "input.bin", payload)
            return (yield operator.sort("data", "input.bin", workers=WORKERS))

        with pytest.raises(Exception):
            cloud.sim.run_process(driver())
        assert relay.residual_reservation_bytes() == 0.0
        assert relay.active_flows == 0
        relay.check_memory_accounting()

    def test_retry_exhaustion_still_reclaims_the_fleet(self):
        """Same invariant, shard by shard: a failed job must leave zero
        residual reservations on every member of the fleet."""
        seed = CHAOS_SEEDS[0]
        payload = make_payload(600, seed)
        cloud = Cloud.fresh(seed=seed, profile=ibm_us_east(deterministic=True))
        cloud.store.ensure_bucket("data")
        cloud.faas.crash_probability = 0.95
        cloud.faas.crash_latest_s = 2.0
        executor = FunctionExecutor(cloud, retries=1)
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        fleet = fleet_ready(cloud.vms, "bx2-8x32", shards=3)
        operator = ShardedRelayShuffleSort(executor, codec, fleet)

        def driver():
            yield cloud.store.put("data", "input.bin", payload)
            return (yield operator.sort("data", "input.bin", workers=WORKERS))

        with pytest.raises(Exception):
            cloud.sim.run_process(driver())
        assert fleet.residual_reservation_bytes() == 0.0
        assert fleet.active_flows == 0
        fleet.check_memory_accounting()
        for shard in fleet.shards:
            assert shard.residual_reservation_bytes() == 0.0
