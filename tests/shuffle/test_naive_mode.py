"""Tests for the naive (non-write-combined) shuffle mode."""

import random

import pytest

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.executor import FunctionExecutor
from repro.shuffle import FixedWidthCodec, ShuffleCostModel, ShuffleSort


def make_payload(count, seed=3):
    rng = random.Random(seed)
    return b"".join(
        rng.getrandbits(64).to_bytes(8, "big") + bytes(8) for _ in range(count)
    )


def run_sort(write_combining, workers=4, count=3000):
    cloud = Cloud.fresh(seed=29, profile=ibm_us_east(deterministic=True))
    cloud.store.ensure_bucket("data")
    executor = FunctionExecutor(cloud)
    cost = ShuffleCostModel(write_combining=write_combining)
    codec = FixedWidthCodec(record_size=16, key_bytes=8)
    operator = ShuffleSort(executor, codec, cost=cost)
    payload = make_payload(count)

    def driver():
        yield cloud.store.put("data", "input.bin", payload)
        return (yield operator.sort("data", "input.bin", workers=workers))

    result = cloud.sim.run_process(driver())
    merged = b"".join(cloud.store.peek("data", run.key) for run in result.runs)
    return cloud, result, codec, merged


class TestNaiveCorrectness:
    def test_output_identical_to_combined_mode(self):
        _, _, codec, merged_combined = run_sort(write_combining=True)
        _, _, _, merged_naive = run_sort(write_combining=False)
        assert merged_combined == merged_naive

    def test_naive_output_sorted(self):
        _, result, codec, merged = run_sort(write_combining=False)
        keys = [codec.key(record) for record in codec.split(merged)]
        assert keys == sorted(keys)
        assert result.total_records == 3000

    def test_single_worker_naive(self):
        _, result, codec, merged = run_sort(write_combining=False, workers=1)
        assert result.total_records == 3000


class TestRequestCounts:
    def test_naive_mode_issues_quadratic_puts(self):
        workers = 4
        cloud_combined, _, _, _ = run_sort(write_combining=True, workers=workers)
        cloud_naive, _, _, _ = run_sort(write_combining=False, workers=workers)
        extra_puts = cloud_naive.store.stats.puts - cloud_combined.store.stats.puts
        # W mappers x W partitions instead of W combined objects.
        assert extra_puts == workers * workers - workers

    def test_naive_mode_is_not_faster(self):
        _, combined, _, _ = run_sort(write_combining=True)
        _, naive, _, _ = run_sort(write_combining=False)
        assert naive.duration_s >= combined.duration_s * 0.98
