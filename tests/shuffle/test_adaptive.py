"""Tests for the online (probe-based) shuffle tuner and the adaptive
exchange-substrate selector."""

import pytest

from repro.cloud import Cloud, MB
from repro.cloud.profiles import GB, ibm_us_east
from repro.errors import ShuffleError
from repro.executor import FunctionExecutor
from repro.shuffle.adaptive import (
    OnlineTuner,
    ProbeReport,
    choose_exchange_substrate,
)
from repro.shuffle.planner import plan_shuffle
from repro.sim import Simulator

CANDIDATES = (4, 8, 16, 32, 64, 128)


def make_cloud(mutate=None, logical_scale=1024.0):
    profile = ibm_us_east(logical_scale=logical_scale, deterministic=True)
    if mutate is not None:
        mutate(profile)
    cloud = Cloud(Simulator(seed=3), profile)
    cloud.store.ensure_bucket("bucket")
    return cloud


def run_probe(cloud, **tuner_kwargs):
    executor = FunctionExecutor(cloud, bucket="bucket")
    tuner = OnlineTuner(executor, **tuner_kwargs)

    def driver():
        return (yield tuner.probe("bucket"))

    return tuner, cloud.sim.run_process(driver())


class TestProbe:
    def test_measures_request_latencies(self):
        cloud = make_cloud()
        _tuner, report = run_probe(cloud)
        assert report.read_latency_s == pytest.approx(
            cloud.profile.objectstore.read_latency.mean, rel=0.05
        )
        assert report.write_latency_s == pytest.approx(
            cloud.profile.objectstore.write_latency.mean, rel=0.05
        )

    def test_measures_effective_bandwidth(self):
        cloud = make_cloud()
        _tuner, report = run_probe(cloud)
        expected = min(
            cloud.profile.faas.instance_bandwidth,
            cloud.profile.objectstore.per_connection_bandwidth,
        )
        assert report.connection_bandwidth_bps == pytest.approx(expected, rel=0.1)

    def test_detects_degraded_nic(self):
        def throttle(profile):
            profile.faas.instance_bandwidth = 8 * MB

        cloud = make_cloud(mutate=throttle)
        _tuner, report = run_probe(cloud)
        assert report.connection_bandwidth_bps == pytest.approx(8 * MB, rel=0.1)

    def test_detects_inflated_latency(self):
        def slow(profile):
            profile.objectstore.read_latency.mean = 0.25

        cloud = make_cloud(mutate=slow)
        _tuner, report = run_probe(cloud)
        assert report.read_latency_s == pytest.approx(0.25, rel=0.05)

    def test_probe_counts_its_requests(self):
        cloud = make_cloud()
        _tuner, report = run_probe(cloud, requests=4)
        assert report.requests == 2 * 4 + 2

    def test_probe_cleans_up_its_objects(self):
        cloud = make_cloud()
        run_probe(cloud)
        def listing():
            return (yield cloud.store.list_keys("bucket", "primula-probe"))

        assert cloud.sim.run_process(listing()) == []

    def test_probe_reports_startup(self):
        cloud = make_cloud()
        _tuner, report = run_probe(cloud)
        faas = cloud.profile.faas
        assert report.startup_s >= faas.cold_start.mean * 0.5
        assert report.duration_s > report.startup_s

    def test_describe_is_human_readable(self):
        report = ProbeReport(0.025, 0.045, 44e6, 0.9, 3.2, 14)
        text = report.describe()
        assert "25.0 ms" in text
        assert "44.0 MB/s" in text

    def test_too_few_requests_rejected(self):
        cloud = make_cloud()
        executor = FunctionExecutor(cloud, bucket="bucket")
        with pytest.raises(ShuffleError):
            OnlineTuner(executor, requests=1)


class TestFittingAndPlanning:
    def test_fitted_profile_does_not_mutate_original(self):
        cloud = make_cloud()
        tuner, report = run_probe(cloud)
        before = cloud.profile.faas.instance_bandwidth
        fitted = tuner.fitted_profile(report)
        assert cloud.profile.faas.instance_bandwidth == before
        assert fitted is not cloud.profile

    def test_fitted_profile_carries_measurements(self):
        cloud = make_cloud()
        tuner, report = run_probe(cloud)
        fitted = tuner.fitted_profile(report)
        assert fitted.objectstore.read_latency.mean == report.read_latency_s
        assert fitted.faas.instance_bandwidth == report.connection_bandwidth_bps
        assert fitted.objectstore.read_latency.sigma == 0.0

    def test_degraded_nic_shifts_plan_to_more_workers(self):
        def throttle(profile):
            profile.faas.instance_bandwidth = 8 * MB

        cloud = make_cloud(mutate=throttle)
        tuner, report = run_probe(cloud)
        size = 3.5 * (1 << 30)
        tuned = tuner.plan(size, report, candidates=CANDIDATES)
        static = plan_shuffle(
            size, ibm_us_east(deterministic=True), candidates=CANDIDATES
        )
        # Less bandwidth per function → spread over more functions.
        assert tuned.workers > static.workers

    def test_tune_returns_report_and_plan(self):
        cloud = make_cloud()
        executor = FunctionExecutor(cloud, bucket="bucket")
        tuner = OnlineTuner(executor)

        def driver():
            return (
                yield tuner.tune("bucket", 3.5 * (1 << 30),
                                 candidates=CANDIDATES)
            )

        report, plan = cloud.sim.run_process(driver())
        assert isinstance(report, ProbeReport)
        assert plan.workers in CANDIDATES

    def test_calibrated_region_matches_static_plan(self):
        """On a healthy region the tuner must agree with the calibration
        (the probe should not invent a different world)."""
        cloud = make_cloud()
        tuner, report = run_probe(cloud)
        size = 3.5 * (1 << 30)
        tuned = tuner.plan(size, report, candidates=CANDIDATES)
        static = plan_shuffle(
            size, ibm_us_east(deterministic=True), candidates=CANDIDATES
        )
        assert tuned.workers == static.workers


class TestSubstrateSelector:
    PROFILE = ibm_us_east(deterministic=True)
    SIZE = 3.5 * GB

    def test_zero_time_value_always_picks_objectstore(self):
        """With latency worth nothing, the only rational substrate is
        the one without provisioned infrastructure."""
        for workers in (8, 64, 256):
            decision = choose_exchange_substrate(
                self.SIZE, self.PROFILE, workers=workers,
                time_value_usd_per_hour=0.0,
            )
            assert decision.substrate == "objectstore"
            assert decision.chosen.provisioned_usd == 0.0

    def test_high_worker_count_buys_provisioned_exchange(self):
        """At W=256 the COS all-to-all degrades; once latency has value,
        a provisioned substrate wins despite its infrastructure cost."""
        decision = choose_exchange_substrate(
            self.SIZE, self.PROFILE, workers=256, time_value_usd_per_hour=1.0
        )
        assert decision.substrate in ("cache", "relay", "sharded-relay")
        assert decision.chosen.provisioned_usd > 0

    def test_estimates_cover_all_substrates(self):
        decision = choose_exchange_substrate(self.SIZE, self.PROFILE, workers=16)
        assert [e.substrate for e in decision.estimates] == [
            "objectstore", "cache", "relay", "sharded-relay",
        ]
        for estimate in decision.estimates:
            assert estimate.feasible
            assert estimate.predicted_s > 0

    def test_auto_workers_lets_each_substrate_plan_its_own(self):
        decision = choose_exchange_substrate(self.SIZE, self.PROFILE)
        by_name = {e.substrate: e for e in decision.estimates}
        assert all(e.workers >= 1 for e in decision.estimates)
        # Each substrate plans with its own cost model: the COS optimum
        # genuinely differs from the provisioned substrates' (their W²
        # request floor is far lower, so they tolerate more functions
        # before the right flank bites).
        assert by_name["objectstore"].workers != by_name["cache"].workers

    def test_oversized_data_marks_relay_infeasible(self):
        decision = choose_exchange_substrate(
            1000 * GB, self.PROFILE, workers=64, time_value_usd_per_hour=50.0
        )
        by_name = {e.substrate: e for e in decision.estimates}
        assert not by_name["relay"].feasible
        assert "scale-up" in by_name["relay"].detail
        assert decision.substrate in ("objectstore", "cache", "sharded-relay")

    def test_sharding_extends_relay_feasibility(self):
        """Data beyond the fattest single flavour is exactly what the
        fleet exists for: the single relay is infeasible, the sharded
        one is not."""
        decision = choose_exchange_substrate(1000 * GB, self.PROFILE, workers=64)
        by_name = {e.substrate: e for e in decision.estimates}
        assert not by_name["relay"].feasible
        assert by_name["sharded-relay"].feasible
        assert by_name["sharded-relay"].shards > 1

    def test_sharding_beats_single_relay_at_saturating_worker_counts(self):
        """Once W worker NICs outrun one instance NIC and latency is
        worth real money, the fleet's aggregate bandwidth must make its
        estimate strictly faster (at strictly higher provisioned
        cost)."""
        decision = choose_exchange_substrate(
            self.SIZE, self.PROFILE, workers=256,
            relay_instance_type="bx2-8x32",
            time_value_usd_per_hour=50.0,
        )
        by_name = {e.substrate: e for e in decision.estimates}
        assert by_name["sharded-relay"].shards > 1
        assert (
            by_name["sharded-relay"].predicted_s < by_name["relay"].predicted_s
        )
        assert (
            by_name["sharded-relay"].provisioned_usd
            > by_name["relay"].provisioned_usd
        )

    def test_cheap_latency_keeps_the_fleet_at_one_shard(self):
        """The same configuration with latency worth almost nothing must
        not buy extra shards: the fleet search is monetized, not
        time-greedy."""
        decision = choose_exchange_substrate(
            self.SIZE, self.PROFILE, workers=256,
            relay_instance_type="bx2-8x32",
            time_value_usd_per_hour=0.01,
        )
        by_name = {e.substrate: e for e in decision.estimates}
        assert by_name["sharded-relay"].shards == 1

    def test_pinned_relay_instance_is_used(self):
        pinned = choose_exchange_substrate(
            self.SIZE, self.PROFILE, workers=64,
            relay_instance_type="bx2-48x192",
        )
        auto = choose_exchange_substrate(self.SIZE, self.PROFILE, workers=64)
        relay_pinned = [e for e in pinned.estimates if e.substrate == "relay"][0]
        relay_auto = [e for e in auto.estimates if e.substrate == "relay"][0]
        # The fat flavour's NIC makes the relay faster but costlier.
        assert relay_pinned.predicted_s < relay_auto.predicted_s
        assert relay_pinned.provisioned_usd > relay_auto.provisioned_usd

    def test_probe_report_shifts_objectstore_estimate(self):
        """A probed region with inflated COS latency must worsen the
        object-storage estimate (the selector plans on measurements)."""
        report = ProbeReport(
            read_latency_s=0.30, write_latency_s=0.50,
            connection_bandwidth_bps=44e6, startup_s=0.9,
            duration_s=3.0, requests=14,
        )
        plain = choose_exchange_substrate(self.SIZE, self.PROFILE, workers=64)
        probed = choose_exchange_substrate(
            self.SIZE, self.PROFILE, workers=64, report=report
        )
        cos_plain = [e for e in plain.estimates if e.substrate == "objectstore"][0]
        cos_probed = [e for e in probed.estimates if e.substrate == "objectstore"][0]
        assert cos_probed.predicted_s > cos_plain.predicted_s

    def test_describe_is_human_readable(self):
        decision = choose_exchange_substrate(self.SIZE, self.PROFILE, workers=32)
        text = decision.describe()
        assert "->" in text
        for substrate in ("objectstore", "cache", "relay", "sharded-relay"):
            assert substrate in text

    def test_bad_inputs_rejected(self):
        with pytest.raises(ShuffleError):
            choose_exchange_substrate(0, self.PROFILE)
        with pytest.raises(ShuffleError):
            choose_exchange_substrate(
                self.SIZE, self.PROFILE, time_value_usd_per_hour=-1.0
            )
        with pytest.raises(ShuffleError, match="unknown exchange substrate"):
            choose_exchange_substrate(
                self.SIZE, self.PROFILE, substrates=("carrier-pigeon",)
            )
        with pytest.raises(ShuffleError, match="empty candidate substrate"):
            choose_exchange_substrate(self.SIZE, self.PROFILE, substrates=())
        with pytest.raises(ShuffleError, match="max_relay_shards"):
            choose_exchange_substrate(
                self.SIZE, self.PROFILE, max_relay_shards=0
            )

    def test_substrate_filter_restricts_candidates(self):
        decision = choose_exchange_substrate(
            self.SIZE, self.PROFILE, workers=16,
            substrates=("cache", "objectstore"),
        )
        assert [e.substrate for e in decision.estimates] == [
            "objectstore", "cache",
        ]

    def test_all_substrates_infeasible_raises(self):
        """When every candidate is infeasible there is nothing sane to
        return — the caller must hear about it loudly."""
        with pytest.raises(ShuffleError, match="no feasible exchange substrate"):
            choose_exchange_substrate(
                1000 * GB, self.PROFILE, workers=8,
                substrates=("relay",),
            )
        with pytest.raises(ShuffleError, match="no feasible exchange substrate"):
            choose_exchange_substrate(
                100_000 * GB, self.PROFILE, workers=8,
                substrates=("relay", "sharded-relay"),
            )

    def test_equal_scores_break_toward_simpler_substrate(self):
        """A one-shard fleet prices identically to the single relay;
        the tie must go to the earlier (simpler) substrate, never
        nondeterministically."""
        decision = choose_exchange_substrate(
            self.SIZE, self.PROFILE, workers=16,
            substrates=("relay", "sharded-relay"),
            max_relay_shards=1,
        )
        by_name = {e.substrate: e for e in decision.estimates}
        assert (
            by_name["relay"].score_usd == by_name["sharded-relay"].score_usd
        )
        assert decision.substrate == "relay"

    def test_feasibility_is_monotone_in_workers(self):
        """More workers must never flip a feasible substrate to
        infeasible: feasibility is a memory question, not a parallelism
        one."""
        baseline = None
        for workers in (1, 4, 16, 64, 256):
            decision = choose_exchange_substrate(
                self.SIZE, self.PROFILE, workers=workers
            )
            feasibility = {
                e.substrate: e.feasible for e in decision.estimates
            }
            assert all(feasibility.values())
            if baseline is None:
                baseline = feasibility
            assert feasibility == baseline

    def test_pinned_undersized_relay_instance_marked_infeasible(self):
        """Pinning a real flavour that cannot hold the data must mark
        the relay infeasible (never chosen), matching what
        RelayExchange.validate would reject at run time."""
        decision = choose_exchange_substrate(
            1000 * GB, self.PROFILE, workers=64,
            relay_instance_type="bx2-2x8",
            time_value_usd_per_hour=1000.0,
        )
        by_name = {e.substrate: e for e in decision.estimates}
        assert not by_name["relay"].feasible
        assert "bx2-2x8" in by_name["relay"].detail
        assert decision.substrate in ("objectstore", "cache")

    def test_typoed_pinned_relay_instance_raises(self):
        """An explicitly pinned flavour that does not exist is a caller
        error, not relay infeasibility."""
        with pytest.raises(ShuffleError, match="unknown relay instance type"):
            choose_exchange_substrate(
                self.SIZE, self.PROFILE, workers=8,
                relay_instance_type="bx2_48x192",  # typo: _ for -
            )
