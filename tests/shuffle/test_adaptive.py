"""Tests for the online (probe-based) shuffle tuner."""

import pytest

from repro.cloud import Cloud, MB
from repro.cloud.profiles import ibm_us_east
from repro.errors import ShuffleError
from repro.executor import FunctionExecutor
from repro.shuffle.adaptive import OnlineTuner, ProbeReport
from repro.shuffle.planner import plan_shuffle
from repro.sim import Simulator

CANDIDATES = (4, 8, 16, 32, 64, 128)


def make_cloud(mutate=None, logical_scale=1024.0):
    profile = ibm_us_east(logical_scale=logical_scale, deterministic=True)
    if mutate is not None:
        mutate(profile)
    cloud = Cloud(Simulator(seed=3), profile)
    cloud.store.ensure_bucket("bucket")
    return cloud


def run_probe(cloud, **tuner_kwargs):
    executor = FunctionExecutor(cloud, bucket="bucket")
    tuner = OnlineTuner(executor, **tuner_kwargs)

    def driver():
        return (yield tuner.probe("bucket"))

    return tuner, cloud.sim.run_process(driver())


class TestProbe:
    def test_measures_request_latencies(self):
        cloud = make_cloud()
        _tuner, report = run_probe(cloud)
        assert report.read_latency_s == pytest.approx(
            cloud.profile.objectstore.read_latency.mean, rel=0.05
        )
        assert report.write_latency_s == pytest.approx(
            cloud.profile.objectstore.write_latency.mean, rel=0.05
        )

    def test_measures_effective_bandwidth(self):
        cloud = make_cloud()
        _tuner, report = run_probe(cloud)
        expected = min(
            cloud.profile.faas.instance_bandwidth,
            cloud.profile.objectstore.per_connection_bandwidth,
        )
        assert report.connection_bandwidth_bps == pytest.approx(expected, rel=0.1)

    def test_detects_degraded_nic(self):
        def throttle(profile):
            profile.faas.instance_bandwidth = 8 * MB

        cloud = make_cloud(mutate=throttle)
        _tuner, report = run_probe(cloud)
        assert report.connection_bandwidth_bps == pytest.approx(8 * MB, rel=0.1)

    def test_detects_inflated_latency(self):
        def slow(profile):
            profile.objectstore.read_latency.mean = 0.25

        cloud = make_cloud(mutate=slow)
        _tuner, report = run_probe(cloud)
        assert report.read_latency_s == pytest.approx(0.25, rel=0.05)

    def test_probe_counts_its_requests(self):
        cloud = make_cloud()
        _tuner, report = run_probe(cloud, requests=4)
        assert report.requests == 2 * 4 + 2

    def test_probe_cleans_up_its_objects(self):
        cloud = make_cloud()
        run_probe(cloud)
        def listing():
            return (yield cloud.store.list_keys("bucket", "primula-probe"))

        assert cloud.sim.run_process(listing()) == []

    def test_probe_reports_startup(self):
        cloud = make_cloud()
        _tuner, report = run_probe(cloud)
        faas = cloud.profile.faas
        assert report.startup_s >= faas.cold_start.mean * 0.5
        assert report.duration_s > report.startup_s

    def test_describe_is_human_readable(self):
        report = ProbeReport(0.025, 0.045, 44e6, 0.9, 3.2, 14)
        text = report.describe()
        assert "25.0 ms" in text
        assert "44.0 MB/s" in text

    def test_too_few_requests_rejected(self):
        cloud = make_cloud()
        executor = FunctionExecutor(cloud, bucket="bucket")
        with pytest.raises(ShuffleError):
            OnlineTuner(executor, requests=1)


class TestFittingAndPlanning:
    def test_fitted_profile_does_not_mutate_original(self):
        cloud = make_cloud()
        tuner, report = run_probe(cloud)
        before = cloud.profile.faas.instance_bandwidth
        fitted = tuner.fitted_profile(report)
        assert cloud.profile.faas.instance_bandwidth == before
        assert fitted is not cloud.profile

    def test_fitted_profile_carries_measurements(self):
        cloud = make_cloud()
        tuner, report = run_probe(cloud)
        fitted = tuner.fitted_profile(report)
        assert fitted.objectstore.read_latency.mean == report.read_latency_s
        assert fitted.faas.instance_bandwidth == report.connection_bandwidth_bps
        assert fitted.objectstore.read_latency.sigma == 0.0

    def test_degraded_nic_shifts_plan_to_more_workers(self):
        def throttle(profile):
            profile.faas.instance_bandwidth = 8 * MB

        cloud = make_cloud(mutate=throttle)
        tuner, report = run_probe(cloud)
        size = 3.5 * (1 << 30)
        tuned = tuner.plan(size, report, candidates=CANDIDATES)
        static = plan_shuffle(
            size, ibm_us_east(deterministic=True), candidates=CANDIDATES
        )
        # Less bandwidth per function → spread over more functions.
        assert tuned.workers > static.workers

    def test_tune_returns_report_and_plan(self):
        cloud = make_cloud()
        executor = FunctionExecutor(cloud, bucket="bucket")
        tuner = OnlineTuner(executor)

        def driver():
            return (
                yield tuner.tune("bucket", 3.5 * (1 << 30),
                                 candidates=CANDIDATES)
            )

        report, plan = cloud.sim.run_process(driver())
        assert isinstance(report, ProbeReport)
        assert plan.workers in CANDIDATES

    def test_calibrated_region_matches_static_plan(self):
        """On a healthy region the tuner must agree with the calibration
        (the probe should not invent a different world)."""
        cloud = make_cloud()
        tuner, report = run_probe(cloud)
        size = 3.5 * (1 << 30)
        tuned = tuner.plan(size, report, candidates=CANDIDATES)
        static = plan_shuffle(
            size, ibm_us_east(deterministic=True), candidates=CANDIDATES
        )
        assert tuned.workers == static.workers
