"""Tests for the OrderBy/top-k operator and its limit pushdown."""

import pickle
import random

import pytest

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.errors import ShuffleError
from repro.executor import FunctionExecutor
from repro.shuffle import FixedWidthCodec, ReversedKey, ShuffleOrderBy


@pytest.fixture
def cloud():
    cloud = Cloud.fresh(seed=9, profile=ibm_us_east(deterministic=True))
    cloud.store.ensure_bucket("data")
    return cloud


@pytest.fixture
def executor(cloud):
    return FunctionExecutor(cloud, bucket="data")


CODEC = FixedWidthCodec(record_size=16, key_bytes=8)


def make_payload(count, seed=1):
    rng = random.Random(seed)
    return b"".join(
        rng.getrandbits(64).to_bytes(8, "big") + bytes(8) for _ in range(count)
    )


def run_order(cloud, executor, payload, **kwargs):
    descending = kwargs.pop("descending", False)
    operator = ShuffleOrderBy(executor, CODEC, descending=descending)

    def driver():
        yield cloud.store.put("data", "in.bin", payload)
        return (yield operator.order("data", "in.bin", **kwargs))

    result = cloud.sim.run_process(driver())
    merged = b"".join(cloud.store.peek("data", run.key) for run in result.runs)
    keys = [CODEC.key(record) for record in CODEC.split(merged)]
    return result, keys


class TestOrdering:
    def test_ascending_full_order(self, cloud, executor):
        payload = make_payload(3000)
        result, keys = run_order(cloud, executor, payload, workers=6)
        want = sorted(CODEC.key(r) for r in CODEC.split(payload))
        assert keys == want
        assert result.emitted_records == result.input_records == 3000
        assert result.pruned_partitions == 0

    def test_descending_full_order(self, cloud, executor):
        payload = make_payload(3000)
        _result, keys = run_order(
            cloud, executor, payload, workers=6, descending=True
        )
        want = sorted(
            (CODEC.key(r) for r in CODEC.split(payload)), reverse=True
        )
        assert keys == want

    def test_top_k_matches_global_ranking(self, cloud, executor):
        payload = make_payload(3000)
        _result, keys = run_order(
            cloud, executor, payload, workers=8, descending=True, limit=50
        )
        want = sorted(
            (CODEC.key(r) for r in CODEC.split(payload)), reverse=True
        )[:50]
        assert keys == want

    def test_limit_one(self, cloud, executor):
        payload = make_payload(500)
        result, keys = run_order(cloud, executor, payload, workers=4, limit=1)
        assert keys == [min(CODEC.key(r) for r in CODEC.split(payload))]
        assert result.emitted_records == 1

    def test_limit_beyond_input_emits_everything(self, cloud, executor):
        payload = make_payload(400)
        result, keys = run_order(
            cloud, executor, payload, workers=4, limit=10_000
        )
        assert result.emitted_records == 400
        assert result.pruned_partitions == 0
        assert keys == sorted(CODEC.key(r) for r in CODEC.split(payload))


class TestLimitPushdown:
    def test_small_limit_prunes_most_partitions(self, cloud, executor):
        payload = make_payload(4000)
        result, _keys = run_order(
            cloud, executor, payload, workers=8, limit=20
        )
        assert result.pruned_partitions >= 6
        assert len(result.runs) == 8 - result.pruned_partitions

    def test_pruning_skips_reduce_work(self):
        """The pruned query must issue fewer storage requests."""
        requests = {}
        for label, limit in (("full", None), ("topk", 20)):
            cloud = Cloud.fresh(seed=9, profile=ibm_us_east(deterministic=True))
            cloud.store.ensure_bucket("data")
            executor = FunctionExecutor(cloud, bucket="data")
            run_order(cloud, executor, make_payload(4000), workers=8,
                      limit=limit)
            requests[label] = cloud.store.stats.total_requests
        assert requests["topk"] < requests["full"]

    def test_invalid_limit_rejected(self, cloud, executor):
        operator = ShuffleOrderBy(executor, CODEC)
        with pytest.raises(ShuffleError):
            operator.order("data", "in.bin", limit=0)

    def test_empty_object_rejected(self, cloud, executor):
        operator = ShuffleOrderBy(executor, CODEC)

        def driver():
            yield cloud.store.put("data", "empty.bin", b"")
            return (yield operator.order("data", "empty.bin"))

        with pytest.raises(ShuffleError, match="empty"):
            cloud.sim.run_process(driver())

    def test_top_k_convenience_equals_order_with_limit(self, cloud, executor):
        payload = make_payload(1000)
        operator = ShuffleOrderBy(executor, CODEC, descending=True)

        def driver():
            yield cloud.store.put("data", "in.bin", payload)
            return (yield operator.top_k("data", "in.bin", k=10, workers=4))

        result = cloud.sim.run_process(driver())
        assert result.emitted_records == 10


class TestReversedKey:
    def test_comparisons_are_reversed(self):
        assert ReversedKey(5) < ReversedKey(3)
        assert ReversedKey(3) > ReversedKey(5)
        assert ReversedKey(4) == ReversedKey(4)

    def test_total_ordering_sorts_descending(self):
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        ranked = sorted(values, key=ReversedKey)
        assert ranked == sorted(values, reverse=True)

    def test_hash_consistency(self):
        assert hash(ReversedKey("x")) == hash(ReversedKey("x"))
        assert ReversedKey("x") != ReversedKey("y")

    def test_pickle_roundtrip(self):
        key = ReversedKey((2, "chr1"))
        clone = pickle.loads(pickle.dumps(key))
        assert clone == key
        assert clone.inner == (2, "chr1")

    def test_works_with_tuple_keys(self):
        a, b = ReversedKey((1, 2)), ReversedKey((1, 3))
        assert b < a
