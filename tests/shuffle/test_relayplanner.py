"""Tests for the relay planner's shard dimension and fleet sizing."""

import pytest

from repro.cloud.profiles import GB, ibm_us_east
from repro.errors import ShuffleError
from repro.shuffle.relayplanner import (
    RelayShuffleCostModel,
    RelayShufflePlan,
    plan_relay_shuffle,
    predict_relay_shuffle_time,
    required_relay_fleet,
)

PROFILE = ibm_us_east(deterministic=True)
SIZE = 3.5 * GB


class TestShardPrediction:
    def test_more_shards_never_predict_slower(self):
        for workers in (16, 64, 256):
            times = [
                predict_relay_shuffle_time(
                    SIZE, workers, PROFILE,
                    PROFILE.vm.catalog["bx2-8x32"],
                    RelayShuffleCostModel(),
                    shards=n,
                ).total_s
                for n in (1, 2, 4)
            ]
            assert times[0] >= times[1] >= times[2]

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ShuffleError, match="shards"):
            predict_relay_shuffle_time(
                SIZE, 8, PROFILE, PROFILE.vm.catalog["bx2-8x32"],
                RelayShuffleCostModel(), shards=0,
            )


class TestJointShardSearch:
    def test_pinned_shards_round_trip_in_the_plan(self):
        plan = plan_relay_shuffle(SIZE, PROFILE, "bx2-8x32", shards=3)
        assert isinstance(plan, RelayShufflePlan)
        assert plan.shards == 3
        assert plan.instance_type == "bx2-8x32"

    def test_auto_search_buys_shards_only_when_the_nic_binds(self):
        """shards=None searches jointly with the worker count and keeps
        the smallest fleet within the convergence tolerance of the
        optimum — at NIC-saturating worker counts that is >1 shard,
        and it must never be slower than the single relay's plan."""
        auto = plan_relay_shuffle(
            SIZE, PROFILE, "bx2-8x32", shards=None, max_shards=4,
            candidates=(256,),
        )
        single = plan_relay_shuffle(
            SIZE, PROFILE, "bx2-8x32", shards=1, candidates=(256,),
        )
        assert auto.shards > 1
        assert auto.predicted_s < single.predicted_s

    def test_auto_search_stays_at_one_shard_when_workers_bind(self):
        """At low worker counts the workers' own NICs are the bottleneck
        and extra shards are within tolerance of useless — the search
        must collapse to the single relay."""
        plan = plan_relay_shuffle(
            SIZE, PROFILE, "bx2-8x32", shards=None, max_shards=4,
            candidates=(4,),
        )
        assert plan.shards == 1

    def test_bad_shard_bounds_rejected(self):
        with pytest.raises(ShuffleError, match="min_shards"):
            plan_relay_shuffle(
                SIZE, PROFILE, "bx2-8x32", shards=None,
                min_shards=5, max_shards=4,
            )


class TestRequiredRelayFleet:
    def test_small_data_fits_one_cheap_instance(self):
        name, shards = required_relay_fleet(SIZE, PROFILE)
        assert shards == 1
        assert name in PROFILE.vm.catalog

    def test_oversized_data_needs_a_fleet(self):
        name, shards = required_relay_fleet(1000 * GB, PROFILE, max_shards=8)
        assert shards > 1
        usable = PROFILE.vm.relay_usable_bytes(PROFILE.vm.catalog[name])
        assert shards * usable >= 1000 * GB * 1.3

    def test_pinned_flavour_sizes_its_own_shard_count(self):
        name, shards = required_relay_fleet(
            100 * GB, PROFILE, instance_type_name="bx2-8x32", max_shards=8,
        )
        assert name == "bx2-8x32"
        usable = PROFILE.vm.relay_usable_bytes(PROFILE.vm.catalog[name])
        assert shards == -(-int(100 * GB * 1.3) // int(usable))

    def test_beyond_max_shards_raises(self):
        with pytest.raises(ShuffleError, match="max_shards"):
            required_relay_fleet(
                1000 * GB, PROFILE, instance_type_name="bx2-2x8", max_shards=8,
            )
        with pytest.raises(ShuffleError, match="no fleet"):
            required_relay_fleet(100_000 * GB, PROFILE, max_shards=8)
