"""Streaming exchange subsystem: parity, overlap, backpressure, pricing.

The contract under test: the streaming execution mode changes *when*
bytes move — the reduce wave overlaps the map wave — but never the
bytes (artifacts stay identical to the staged runs on every substrate),
bounded reducer buffers exert measurable backpressure, the uniform
report carries the streaming observables, and the planner/selector
price the mode as a decision variable.
"""

import random

import pytest

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.cloud.vm.fleet import fleet_ready
from repro.cloud.vm.relay import relay_ready
from repro.errors import ShuffleError
from repro.executor import FunctionExecutor
from repro.shuffle import (
    EXCHANGE_MODES,
    CacheShuffleSort,
    FixedWidthCodec,
    ObjectStoreExchange,
    RelayShuffleSort,
    ShuffleSort,
    StreamConfig,
    StreamingCacheExchange,
    StreamingObjectStoreExchange,
    StreamingRelayExchange,
    StreamingShardedRelayExchange,
    StreamingShuffleSort,
    choose_exchange_substrate,
    predict_shuffle_time,
    predict_streaming_shuffle_time,
    streaming_chunk_count,
)
from repro.shuffle.planner import ShuffleCostModel

SEED = 13
RECORDS = 3000
WORKERS = 4
SUBSTRATES = ("objectstore", "cache", "relay", "sharded-relay")


def make_payload(count, seed, record_size=16):
    rng = random.Random(seed)
    return b"".join(
        rng.getrandbits(64).to_bytes(8, "big") + bytes(record_size - 8)
        for _ in range(count)
    )


def run_sort(substrate, payload, streaming, buffer_bytes=None, chunk_bytes=4096.0):
    """One seeded sort on a fresh region; returns (runs, result, op, relay)."""
    cloud = Cloud.fresh(seed=SEED, profile=ibm_us_east(deterministic=True))
    cloud.store.ensure_bucket("data")
    executor = FunctionExecutor(cloud)
    codec = FixedWidthCodec(record_size=16, key_bytes=8)
    stream = StreamConfig(
        chunk_bytes=chunk_bytes, buffer_bytes=buffer_bytes, poll_interval_s=0.05
    )
    relay = None
    if substrate == "objectstore":
        operator = (
            StreamingShuffleSort(
                executor, codec, backend=StreamingObjectStoreExchange(stream=stream)
            )
            if streaming
            else ShuffleSort(executor, codec)
        )
    elif substrate == "cache":
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=2)
        operator = (
            StreamingShuffleSort(
                executor, codec,
                backend=StreamingCacheExchange(cluster, stream=stream),
            )
            if streaming
            else CacheShuffleSort(executor, codec, cluster)
        )
    elif substrate == "sharded-relay":
        relay = fleet_ready(cloud.vms, "bx2-8x32", shards=2)
        operator = StreamingShuffleSort(
            executor, codec,
            backend=StreamingShardedRelayExchange(relay, stream=stream),
        )
    else:
        relay = relay_ready(cloud.vms, "bx2-8x32")
        operator = (
            StreamingShuffleSort(
                executor, codec, backend=StreamingRelayExchange(relay, stream=stream)
            )
            if streaming
            else RelayShuffleSort(executor, codec, relay)
        )

    def driver():
        yield cloud.store.put("data", "input.bin", payload)
        return (yield operator.sort("data", "input.bin", workers=WORKERS))

    result = cloud.sim.run_process(driver())
    runs = [cloud.store.peek("data", run.key) for run in result.runs]
    return runs, result, operator, relay


@pytest.fixture(scope="module")
def staged_baseline():
    payload = make_payload(RECORDS, SEED)
    runs, result, operator, _relay = run_sort("objectstore", payload, streaming=False)
    return payload, runs, result


class TestStreamingParity:
    @pytest.mark.parametrize("substrate", SUBSTRATES)
    def test_streaming_artifact_is_byte_identical_to_staged(
        self, staged_baseline, substrate
    ):
        payload, baseline, _ = staged_baseline
        runs, result, operator, relay = run_sort(substrate, payload, streaming=True)
        assert runs == baseline, f"streaming {substrate} diverged from staged"
        assert result.total_records == RECORDS
        if relay is not None:
            assert relay.residual_reservation_bytes() == 0.0
            assert relay.active_flows == 0
            relay.check_memory_accounting()

    # objectstore is excluded: at this toy scale its short map wave
    # genuinely finishes inside the reducers' startup window, so the
    # (honestly measured, execution-window) overlap is zero — the
    # at-scale COS overlap is S10's assertion.  The notify substrates
    # overlap even here because their map waves are paced by rendezvous
    # round trips.
    @pytest.mark.parametrize("substrate", ["cache", "relay", "sharded-relay"])
    def test_waves_overlap_and_report_says_so(self, staged_baseline, substrate):
        payload, _baseline, _ = staged_baseline
        _runs, _result, operator, _relay = run_sort(
            substrate, payload, streaming=True
        )
        report = operator.report
        assert report.mode == "streaming"
        assert report.overlap_s > 0.0
        assert report.stream_chunks > WORKERS  # multiple chunks per mapper

    def test_staged_report_shows_no_overlap(self, staged_baseline):
        _payload, _runs, result = staged_baseline
        # Re-run to grab the operator (module fixture only kept results).
        payload = make_payload(RECORDS, SEED)
        _r, _res, operator, _relay = run_sort("relay", payload, streaming=False)
        report = operator.report
        assert report.mode == "staged"
        assert report.overlap_s == 0.0
        assert report.buffer_high_watermark_bytes == 0.0


class TestBackpressure:
    def test_bounded_buffer_records_waits_and_preserves_parity(
        self, staged_baseline
    ):
        payload, baseline, _ = staged_baseline
        runs, _result, operator, relay = run_sort(
            "relay", payload, streaming=True, buffer_bytes=2048.0
        )
        report = operator.report
        assert runs == baseline
        assert report.buffer_backpressure_waits > 0
        assert report.buffer_wait_s >= 0.0
        assert report.buffer_high_watermark_bytes > 0.0
        assert relay.residual_reservation_bytes() == 0.0

    def test_unbounded_buffer_never_waits(self, staged_baseline):
        payload, _baseline, _ = staged_baseline
        _runs, _result, operator, _relay = run_sort(
            "relay", payload, streaming=True, buffer_bytes=None
        )
        assert operator.report.buffer_backpressure_waits == 0

    def test_relay_rendezvous_pull_parks_until_publish(self):
        """The primitive under the streaming reducer: a pull_wait issued
        before the key exists parks (counted) and resolves with the
        pushed bytes once the producer commits."""
        cloud = Cloud.fresh(seed=SEED, profile=ibm_us_east(deterministic=True))
        relay = relay_ready(cloud.vms, "bx2-8x32")
        client = relay.client()

        def consumer():
            return (yield client.pull_wait("late-key"))

        def producer():
            yield cloud.sim.timeout(5.0)
            yield client.push("late-key", b"payload")

        consume = cloud.sim.process(consumer(), name="consumer")
        cloud.sim.process(producer(), name="producer")
        value = cloud.sim.run(until=consume.completion)
        assert value == b"payload"
        assert cloud.sim.now >= 5.0  # genuinely waited for the producer
        assert relay.stats.rendezvous_waits == 1
        assert relay.stats.pulls == 1


class TestStreamingOperatorGuards:
    def test_rejects_staged_backend(self):
        cloud = Cloud.fresh(seed=SEED, profile=ibm_us_east(deterministic=True))
        executor = FunctionExecutor(cloud)
        with pytest.raises(ShuffleError, match="streaming backend"):
            StreamingShuffleSort(
                executor, FixedWidthCodec(record_size=16, key_bytes=8),
                backend=ObjectStoreExchange(),
            )

    def test_report_as_dict_carries_streaming_fields(self, staged_baseline):
        payload, _baseline, _ = staged_baseline
        _runs, _result, operator, _relay = run_sort(
            "relay", payload, streaming=True
        )
        flat = operator.report.as_dict()
        assert flat["overlap_s"] > 0.0
        assert "buffer_high_watermark_bytes" in flat
        assert flat["mode"] == "streaming"


class TestExchangeReportFields:
    """Unit tests of the uniform report's streaming observables."""

    def test_defaults_are_staged_shaped(self):
        from repro.shuffle import ExchangeReport

        report = ExchangeReport(
            substrate="objectstore", workers=4, predicted_s=None, actual_s=1.0,
            provisioned_usd=0.0,
        )
        assert report.overlap_s == 0.0
        assert report.buffer_high_watermark_bytes == 0.0
        flat = report.as_dict()
        assert flat["overlap_s"] == 0.0
        assert flat["buffer_high_watermark_bytes"] == 0.0

    def test_backend_report_threads_observations_and_extras(self):
        backend = ObjectStoreExchange()
        report = backend.report(
            4, None, 2.5,
            overlap_s=1.25,
            buffer_high_watermark_bytes=4096.0,
            extra={"buffer_backpressure_waits": 3},
        )
        assert report.overlap_s == 1.25
        assert report.buffer_high_watermark_bytes == 4096.0
        assert report.buffer_backpressure_waits == 3  # extras passthrough
        assert report.mode == "staged"  # the backend's mode, always set
        flat = report.as_dict()
        assert flat["overlap_s"] == 1.25
        assert flat["mode"] == "staged"

    def test_extras_never_shadow_the_common_fields(self):
        # Shadowing used to be silently dropped in as_dict(); it is now
        # rejected at construction so the attribute passthrough and the
        # flattened dict can never disagree.
        backend = ObjectStoreExchange()
        with pytest.raises(ValueError, match="shadow"):
            backend.report(4, None, 2.5, extra={"overlap_s": 99.0})

    def test_streaming_backend_reports_streaming_mode(self):
        backend = StreamingObjectStoreExchange()
        assert backend.report(4, None, 1.0).mode == "streaming"

    def test_streaming_backend_plans_with_the_streaming_model(self):
        """An auto-planned streaming sort must size its wave for the
        mode it runs: the plan comes from the transformed (pipelined)
        curve, so predicted_s is comparable to the streaming actual_s."""
        profile = ibm_us_east()
        size = 3.5 * (1 << 30)
        staged_plan = ObjectStoreExchange().plan(size, profile, 64)
        streaming_plan = StreamingObjectStoreExchange().plan(size, profile, 64)
        assert streaming_plan.predicted_s < staged_plan.predicted_s
        chosen = streaming_plan.point(streaming_plan.workers)
        assert "pipelined_exchange" in chosen.breakdown


class TestStreamingPlanner:
    PROFILE = ibm_us_east()
    COST = ShuffleCostModel()
    SIZE = 3.5 * (1 << 30)

    def test_degenerates_to_staged_at_one_chunk_and_zero_overhead(self):
        staged = predict_shuffle_time(self.SIZE, 16, self.PROFILE, self.COST)
        streaming = predict_streaming_shuffle_time(staged, chunks=1)
        assert streaming.total_s == pytest.approx(staged.total_s)

    def test_more_chunks_overlap_more_until_overhead_bites(self):
        staged = predict_shuffle_time(self.SIZE, 16, self.PROFILE, self.COST)
        free = [
            predict_streaming_shuffle_time(staged, chunks).total_s
            for chunks in (1, 2, 8, 64)
        ]
        assert free == sorted(free, reverse=True)  # monotone improvement
        # With a per-chunk overhead, very fine chunking loses again.
        costly = predict_streaming_shuffle_time(
            staged, chunks=10_000, per_chunk_overhead_s=0.01
        )
        assert costly.total_s > staged.total_s

    def test_streaming_never_beats_the_slower_side(self):
        staged = predict_shuffle_time(self.SIZE, 16, self.PROFILE, self.COST)
        streaming = predict_streaming_shuffle_time(staged, chunks=1000)
        b = staged.breakdown
        floor = (
            b["startup"] + b["map_read"]
            + max(b["partition_cpu"] + b["map_write"],
                  b["reduce_fetch"] + b["sort_cpu"])
            + b["reduce_write"] + b["driver"]
        )
        assert streaming.total_s >= floor - 1e-9

    def test_chunk_count_and_validation(self):
        assert streaming_chunk_count(64 * (1 << 20), 4, 16 * (1 << 20)) == 1
        assert streaming_chunk_count(512 * (1 << 20), 4, 16 * (1 << 20)) == 8
        staged = predict_shuffle_time(self.SIZE, 4, self.PROFILE, self.COST)
        with pytest.raises(ShuffleError):
            predict_streaming_shuffle_time(staged, chunks=0)
        with pytest.raises(ShuffleError):
            predict_streaming_shuffle_time(staged, 4, per_chunk_overhead_s=-1.0)


class TestStreamingAsDecisionVariable:
    PROFILE = ibm_us_east()
    SIZE = 3.5 * (1 << 30)

    def test_default_stays_staged_only(self):
        decision = choose_exchange_substrate(self.SIZE, self.PROFILE, workers=16)
        assert all(e.mode == "staged" for e in decision.estimates)
        assert len(decision.estimates) == 4

    def test_both_modes_price_every_substrate(self):
        decision = choose_exchange_substrate(
            self.SIZE, self.PROFILE, workers=16,
            modes=("staged", "streaming"),
        )
        pairs = {(e.substrate, e.mode) for e in decision.estimates}
        assert len(pairs) == 8
        for substrate in ("objectstore", "cache", "relay", "sharded-relay"):
            assert (substrate, "staged") in pairs
            assert (substrate, "streaming") in pairs

    def test_streaming_with_latency_value_wins(self):
        decision = choose_exchange_substrate(
            self.SIZE, self.PROFILE, workers=16,
            modes=("staged", "streaming"), time_value_usd_per_hour=30.0,
        )
        assert decision.chosen.mode == "streaming"
        assert "[streaming]" in decision.describe()

    def test_streaming_only_mode_is_allowed(self):
        decision = choose_exchange_substrate(
            self.SIZE, self.PROFILE, workers=16, modes=("streaming",),
        )
        assert all(e.mode == "streaming" for e in decision.estimates)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ShuffleError, match="unknown execution mode"):
            choose_exchange_substrate(
                self.SIZE, self.PROFILE, modes=("pipelined",)
            )
        with pytest.raises(ShuffleError, match="empty candidate mode"):
            choose_exchange_substrate(self.SIZE, self.PROFILE, modes=())

    def test_modes_are_defined_in_tiebreak_order(self):
        assert EXCHANGE_MODES == ("staged", "streaming")
