"""Tests for the GroupBy operator."""

import random

import pytest

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.errors import ShuffleError
from repro.executor import FunctionExecutor
from repro.methcomp import MethylomeGenerator, serialize_records
from repro.shuffle import FixedWidthCodec, LineRecordCodec, ShuffleGroupBy


# -- top-level (picklable) key and aggregation functions -----------------

def first_byte_key(record: bytes) -> int:
    return record[0]


def count_aggregate(group_key, records):
    """One output record per group: key byte + big-endian count."""
    return [bytes([group_key]) + len(records).to_bytes(7, "big") + bytes(8)]


def identity_aggregate(group_key, records):
    return records


def chrom_of_line(line: bytes) -> bytes:
    return line.split(b"\t", 1)[0]


def chrom_count_aggregate(chrom, records):
    # Line records carry their trailing newline through the codec.
    return [chrom + b"\t" + str(len(records)).encode() + b"\n"]


@pytest.fixture
def cloud():
    cloud = Cloud.fresh(seed=43, profile=ibm_us_east(deterministic=True))
    cloud.store.ensure_bucket("data")
    return cloud


def make_payload(count, distinct_keys=10, seed=5):
    rng = random.Random(seed)
    return b"".join(
        bytes([rng.randrange(distinct_keys)]) + bytes(15) for _ in range(count)
    )


class TestGroupByFixedWidth:
    def test_counts_per_group_are_exact(self, cloud):
        payload = make_payload(4000, distinct_keys=10)
        expected = {}
        for start in range(0, len(payload), 16):
            expected[payload[start]] = expected.get(payload[start], 0) + 1

        executor = FunctionExecutor(cloud)
        codec = FixedWidthCodec(record_size=16, key_bytes=1)
        operator = ShuffleGroupBy(executor, codec, first_byte_key)

        def driver():
            yield cloud.store.put("data", "input.bin", payload)
            return (
                yield operator.group_by(
                    "data", "input.bin", count_aggregate, workers=4
                )
            )

        result = cloud.sim.run_process(driver())
        assert result.total_groups == 10
        assert result.records_in == 4000

        merged = b"".join(
            cloud.store.peek("data", out["output_key"]) for out in result.outputs
        )
        counts = {
            merged[start]: int.from_bytes(merged[start + 1 : start + 8], "big")
            for start in range(0, len(merged), 16)
        }
        assert counts == expected

    def test_groups_never_split_across_reducers(self, cloud):
        """Each group key appears in exactly one reducer output."""
        payload = make_payload(3000, distinct_keys=24)
        executor = FunctionExecutor(cloud)
        codec = FixedWidthCodec(record_size=16, key_bytes=1)
        operator = ShuffleGroupBy(executor, codec, first_byte_key)

        def driver():
            yield cloud.store.put("data", "input.bin", payload)
            return (
                yield operator.group_by(
                    "data", "input.bin", count_aggregate, workers=6
                )
            )

        result = cloud.sim.run_process(driver())
        seen: dict[int, int] = {}
        for reducer_index, out in enumerate(result.outputs):
            data = cloud.store.peek("data", out["output_key"])
            for start in range(0, len(data), 16):
                key = data[start]
                assert key not in seen, f"group {key} split across reducers"
                seen[key] = reducer_index
        assert len(seen) == result.total_groups

    def test_identity_aggregate_preserves_records(self, cloud):
        payload = make_payload(2000, distinct_keys=5)
        executor = FunctionExecutor(cloud)
        codec = FixedWidthCodec(record_size=16, key_bytes=1)
        operator = ShuffleGroupBy(executor, codec, first_byte_key)

        def driver():
            yield cloud.store.put("data", "input.bin", payload)
            return (
                yield operator.group_by(
                    "data", "input.bin", identity_aggregate, workers=3
                )
            )

        result = cloud.sim.run_process(driver())
        assert result.records_out == result.records_in == 2000

    def test_empty_object_rejected(self, cloud):
        executor = FunctionExecutor(cloud)
        codec = FixedWidthCodec(record_size=16, key_bytes=1)
        operator = ShuffleGroupBy(executor, codec, first_byte_key)

        def driver():
            yield cloud.store.put("data", "empty.bin", b"")
            yield operator.group_by("data", "empty.bin", count_aggregate, workers=2)

        with pytest.raises(ShuffleError):
            cloud.sim.run_process(driver())


class TestGroupByGenomics:
    def test_per_chromosome_record_counts(self, cloud):
        """Domain scenario: records per chromosome via serverless GroupBy."""
        records = MethylomeGenerator(seed=6).shuffled_records(6000)
        payload = serialize_records(records)
        expected = {}
        for record in records:
            expected[record.chrom.encode()] = expected.get(record.chrom.encode(), 0) + 1

        executor = FunctionExecutor(cloud)
        codec = LineRecordCodec(key_fn=chrom_of_line)
        operator = ShuffleGroupBy(executor, codec, chrom_of_line)

        def driver():
            yield cloud.store.put("data", "methylome.bed", payload)
            return (
                yield operator.group_by(
                    "data", "methylome.bed", chrom_count_aggregate, workers=4
                )
            )

        result = cloud.sim.run_process(driver())
        merged = b"".join(
            cloud.store.peek("data", out["output_key"]) for out in result.outputs
        )
        counts = {}
        for line in merged.split(b"\n"):
            if line:
                chrom, count = line.split(b"\t")
                counts[chrom] = int(count)
        assert counts == expected
        assert result.total_groups == len(expected)
