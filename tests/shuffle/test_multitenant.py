"""Concurrent sorts on one shared relay fleet: routing, peaks, parity.

Before namespaced routers, two sharded sorts sharing a fleet would
clobber each other's rebalance maps (``set_router`` was fleet-global)
and reset each other's peak watermark (``reset_peak`` was relay-global).
These tests pin the fix: concurrent sorts each keep their own routing
and peak epoch, produce byte-identical artifacts to solo runs, and in
consume mode leave the shared fleet empty for the next job.
"""

import random

import pytest

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.cloud.vm.fleet import fleet_ready
from repro.executor import FunctionExecutor
from repro.shuffle import (
    FixedWidthCodec,
    ShardedRelayShuffleSort,
    SkewSpec,
    skewed_fixed_payload,
)
from repro.shuffle.relayplanner import RelayShuffleCostModel

RECORDS = 2000
WORKERS = 4
SPEC = SkewSpec(distribution="zipf", zipf_s=1.3, distinct_keys=16)


def payload_for(seed):
    return skewed_fixed_payload(RECORDS, SPEC, seed)


def codec():
    return FixedWidthCodec(record_size=16, key_bytes=8)


def solo_runs(payload, seed, consume=False):
    """One sort alone on its own fresh region; returns run bytes."""
    cloud = Cloud.fresh(seed=seed, profile=ibm_us_east(deterministic=True))
    cloud.store.ensure_bucket("data")
    fleet = fleet_ready(cloud.vms, "bx2-8x32", shards=2)
    executor = FunctionExecutor(cloud)
    cost = RelayShuffleCostModel(consume=consume)
    operator = ShardedRelayShuffleSort(executor, codec(), fleet, cost=cost)

    def driver():
        yield cloud.store.put("data", "input.bin", payload)
        return (
            yield operator.sort(
                "data", "input.bin", out_prefix="solo", workers=WORKERS
            )
        )

    result = cloud.sim.run_process(driver())
    return [cloud.store.peek(run.bucket, run.key) for run in result.runs]


@pytest.mark.parametrize("consume", [False, True])
def test_two_concurrent_sorts_keep_router_and_byte_parity(consume):
    """Two sorts race on one fleet; each must match its solo artifact."""
    payload_a = payload_for(101)
    payload_b = payload_for(202)
    cloud = Cloud.fresh(seed=9, profile=ibm_us_east(deterministic=True))
    cloud.store.ensure_bucket("data")
    fleet = fleet_ready(cloud.vms, "bx2-8x32", shards=2)
    cost_a = RelayShuffleCostModel(consume=consume)
    cost_b = RelayShuffleCostModel(consume=consume)
    op_a = ShardedRelayShuffleSort(
        FunctionExecutor(cloud), codec(), fleet, cost=cost_a
    )
    op_b = ShardedRelayShuffleSort(
        FunctionExecutor(cloud), codec(), fleet, cost=cost_b
    )

    def driver():
        yield cloud.store.put("data", "a.bin", payload_a)
        yield cloud.store.put("data", "b.bin", payload_b)
        sort_a = op_a.sort("data", "a.bin", out_prefix="job-a", workers=WORKERS)
        sort_b = op_b.sort("data", "b.bin", out_prefix="job-b", workers=WORKERS)
        results = yield cloud.sim.all_of([sort_a, sort_b])
        return results

    result_a, result_b = cloud.sim.run_process(driver())
    runs_a = [cloud.store.peek(r.bucket, r.key) for r in result_a.runs]
    runs_b = [cloud.store.peek(r.bucket, r.key) for r in result_b.runs]

    # Byte parity with the solo artifacts: neither sort's rebalance map
    # nor peak epoch disturbed the other's.
    assert runs_a == solo_runs(payload_a, 101, consume=consume)
    assert runs_b == solo_runs(payload_b, 202, consume=consume)

    # Both sorts rebalanced (zipf data, 2 shards) under their own
    # namespaces, and both retired their routers on completion.
    assert op_a.backend.rebalance_assignments is not None
    assert op_b.backend.rebalance_assignments is not None
    assert fleet._routers == {}

    # Clean substrate for the next job.
    assert fleet.residual_reservation_bytes() == 0.0
    fleet.check_memory_accounting()
    if consume:
        # Consume mode: committed reducers drained every partition.
        assert fleet.key_count == 0


def test_concurrent_sorts_report_their_own_peaks():
    """Each sort's reported peak fill reflects its own epoch, not a
    relay-global watermark another job reset mid-flight."""
    payload_a = payload_for(11)
    payload_b = payload_for(22)
    cloud = Cloud.fresh(seed=3, profile=ibm_us_east(deterministic=True))
    cloud.store.ensure_bucket("data")
    fleet = fleet_ready(cloud.vms, "bx2-8x32", shards=2)
    op_a = ShardedRelayShuffleSort(FunctionExecutor(cloud), codec(), fleet)
    op_b = ShardedRelayShuffleSort(FunctionExecutor(cloud), codec(), fleet)

    def driver():
        yield cloud.store.put("data", "a.bin", payload_a)
        yield cloud.store.put("data", "b.bin", payload_b)
        sort_a = op_a.sort("data", "a.bin", out_prefix="job-a", workers=WORKERS)
        # Stagger the second sort so it begins its epoch mid-first-sort;
        # pre-fix, its validate would have reset the global peak.
        yield cloud.sim.timeout(0.2)
        sort_b = op_b.sort("data", "b.bin", out_prefix="job-b", workers=WORKERS)
        yield cloud.sim.all_of([sort_a, sort_b])

    cloud.sim.run_process(driver())
    peak_a = op_a.report.extra["peak_fill_fraction"]
    peak_b = op_b.report.extra["peak_fill_fraction"]
    assert peak_a > 0.0
    assert peak_b > 0.0
    # The fleet-lifetime peak bounds both epochs from above.
    lifetime = max(
        shard.peak_used_logical / shard.capacity_bytes
        for shard in fleet.shards
    )
    assert peak_a <= lifetime + 1e-12
    assert peak_b <= lifetime + 1e-12
