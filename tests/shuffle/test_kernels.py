"""Property suite for the vectorized record kernels (PR 8 tentpole).

Every kernel must be **byte-identical** to the scalar codec path on
arbitrary inputs: random buffers, random/duplicated boundaries, skewed
key distributions, torn-record ``extract_split`` edges, and
``global_start`` alignment cases.  The scalar reference is the same
public entry point with ``force_scalar=True`` — the exact per-record
loop the stages ran before this layer existed.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShuffleError
from repro.methcomp.datagen import generate_skewed_bed_bytes
from repro.methcomp.pipeline import BedKeySpec, bed_record_codec
from repro.shuffle import (
    DecimalFieldKeySpec,
    FixedWidthCodec,
    GroupKeyCodec,
    LineRecordCodec,
    PrefixKeySpec,
    ReversedKey,
    ReversedKeySpec,
    SkewSpec,
    grouped_records,
    partition_buffer,
    record_view,
    skewed_fixed_payload,
    sort_buffer,
    window_keys,
)
from repro.shuffle import kernels
from repro.shuffle.orderby import _DescendingCodec
from repro.shuffle.sampler import partition_index


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
def fixed_codec_and_buffer(draw):
    record_size = draw(st.integers(2, 24))
    key_bytes = draw(st.integers(1, min(8, record_size)))
    count = draw(st.integers(0, 200))
    payload = draw(st.binary(min_size=count * record_size, max_size=count * record_size))
    return FixedWidthCodec(record_size, key_bytes), payload


def line_buffer(draw):
    lines = draw(
        st.lists(
            st.tuples(st.integers(0, 10**9), st.binary(max_size=12)),
            max_size=120,
        )
    )
    payload = b"".join(
        b"%d\t" % value + extra.replace(b"\n", b"x").replace(b"\t", b"y") + b"\n"
        for value, extra in lines
    )
    return payload


def decimal_line_codec() -> LineRecordCodec:
    return LineRecordCodec(
        key_fn=lambda line: int(line.split(b"\t")[0]),
        key_spec=DecimalFieldKeySpec(field=0),
    )


def boundaries_from(keys, draw):
    if not keys:
        return draw(st.lists(st.integers(0, 2**63), max_size=4).map(sorted))
    picks = draw(st.lists(st.sampled_from(keys), max_size=9))
    return sorted(picks)


def assert_partition_parity(codec, payload, boundaries):
    vec = partition_buffer(codec, payload, boundaries)
    ref = partition_buffer(codec, payload, boundaries, force_scalar=True)
    assert ref.kernel == "scalar"
    assert vec.combined == ref.combined
    assert vec.offsets == ref.offsets
    assert vec.partition_records == ref.partition_records
    assert vec.partition_sizes == ref.partition_sizes
    assert vec.records == ref.records
    assert vec.segments() == ref.segments()
    return vec


def assert_sort_parity(codec, payload, record_limit=None):
    vec = sort_buffer(codec, payload, record_limit)
    ref = sort_buffer(codec, payload, record_limit, force_scalar=True)
    assert vec.output == ref.output
    assert vec.records == ref.records
    return vec


# ----------------------------------------------------------------------
# fixed-width parity
# ----------------------------------------------------------------------
class TestFixedWidthParity:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_partition_byte_identical(self, data):
        codec, payload = fixed_codec_and_buffer(data.draw)
        keys = [codec.key(r) for r in codec.split(payload)]
        boundaries = boundaries_from(keys, data.draw)
        vec = assert_partition_parity(codec, payload, boundaries)
        if payload:
            assert vec.kernel == "vectorized"

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_merge_byte_identical(self, data):
        codec, payload = fixed_codec_and_buffer(data.draw)
        limit = data.draw(st.one_of(st.none(), st.integers(0, 50)))
        assert_sort_parity(codec, payload, limit)

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_key_extraction_matches_scalar(self, data):
        codec, payload = fixed_codec_and_buffer(data.draw)
        view = record_view(codec, payload)
        assert view is not None
        assert view.key_objects() == [codec.key(r) for r in codec.split(payload)]

    def test_wide_keys_fall_back_to_scalar(self):
        codec = FixedWidthCodec(16, key_bytes=12)  # key exceeds uint64
        payload = bytes(range(16)) * 8
        assert codec.vector_spec() is None
        outcome = partition_buffer(codec, payload, [codec.key(payload[:16])])
        assert outcome.kernel == "scalar"
        assert_partition_parity(codec, payload, [codec.key(payload[:16])])

    def test_misaligned_buffer_raises_same_error_on_both_paths(self):
        codec = FixedWidthCodec(8)
        with pytest.raises(ShuffleError, match="not a multiple"):
            partition_buffer(codec, b"x" * 11, [])
        with pytest.raises(ShuffleError, match="not a multiple"):
            partition_buffer(codec, b"x" * 11, [], force_scalar=True)


class TestSkewedParity:
    @pytest.mark.parametrize("distribution", ["zipf", "heavy-dup", "sorted-runs"])
    def test_partition_and_merge_on_skewed_payloads(self, distribution):
        codec = FixedWidthCodec(16, key_bytes=8)
        payload = skewed_fixed_payload(
            4000, SkewSpec(distribution=distribution), seed=11
        )
        keys = [codec.key(r) for r in codec.split(payload)]
        boundaries = sorted(random.Random(5).sample(keys, 31))
        vec = assert_partition_parity(codec, payload, boundaries)
        assert vec.kernel == "vectorized"
        assert_sort_parity(codec, payload)

    def test_duplicate_boundaries_agree_with_bisect(self):
        # Duplicate boundaries (weighted chooser under key starvation)
        # must split identically: equal keys go *after* the boundary.
        codec = FixedWidthCodec(4, key_bytes=2)
        payload = b"".join(
            int(v).to_bytes(2, "big") + b"xy" for v in [5, 5, 5, 7, 7, 9]
        )
        boundaries = [5, 5, 7]
        vec = assert_partition_parity(codec, payload, boundaries)
        keys = [codec.key(r) for r in codec.split(payload)]
        counts = [0] * (len(boundaries) + 1)
        for key in keys:
            counts[partition_index(key, boundaries)] += 1
        assert vec.partition_records == counts


# ----------------------------------------------------------------------
# line-record parity
# ----------------------------------------------------------------------
class TestLineRecordParity:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_partition_byte_identical(self, data):
        codec = decimal_line_codec()
        payload = line_buffer(data.draw)
        keys = [codec.key(r) for r in codec.split(payload)]
        boundaries = boundaries_from(keys, data.draw)
        vec = assert_partition_parity(codec, payload, boundaries)
        if payload:
            assert vec.kernel == "vectorized"

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_merge_byte_identical(self, data):
        codec = decimal_line_codec()
        payload = line_buffer(data.draw)
        limit = data.draw(st.one_of(st.none(), st.integers(0, 40)))
        assert_sort_parity(codec, payload, limit)

    def test_opaque_key_fn_falls_back_to_scalar(self):
        codec = LineRecordCodec(key_fn=len)  # no key_spec: not vectorizable
        payload = b"aa\nb\nccc\n"
        assert record_view(codec, payload) is None
        outcome = partition_buffer(codec, payload, [2])
        assert outcome.kernel == "scalar"

    def test_non_decimal_field_falls_back(self):
        codec = LineRecordCodec(
            key_fn=lambda line: int(line.split(b"\t")[0]),
            key_spec=DecimalFieldKeySpec(field=0),
        )
        assert record_view(codec, b"-3\tx\n") is None  # sign byte: scalar path
        assert record_view(codec, b"12345678901234567890\t\n") is None  # >18 digits

    def test_missing_trailing_newline_raises_same_error_on_both_paths(self):
        codec = decimal_line_codec()
        for force in (False, True):
            with pytest.raises(ShuffleError, match="does not end with a newline"):
                partition_buffer(codec, b"1\ttorn", [], force_scalar=force)

    def test_boundary_outside_encoding_falls_back(self):
        # Integer boundaries outside the uint64 domain cannot ride the
        # encoded kernels; the scalar comparison handles them fine.
        codec = decimal_line_codec()
        payload = b"1\ta\n2\tb\n"
        for boundary in (-1, 2**64):
            outcome = partition_buffer(codec, payload, [boundary])
            assert outcome.kernel == "scalar"
            assert_partition_parity(codec, payload, [boundary])


class TestBedParity:
    def test_bed_partition_and_merge_byte_identical(self):
        codec = bed_record_codec()
        payload = generate_skewed_bed_bytes(200_000, seed=4)
        keys = [codec.key(r) for r in codec.split(payload)]
        boundaries = sorted(set(random.Random(9).sample(keys, 40)))
        vec = assert_partition_parity(codec, payload, boundaries)
        assert vec.kernel == "vectorized"
        merged = assert_sort_parity(codec, payload)
        assert merged.kernel == "vectorized"

    def test_bed_keys_round_trip(self):
        codec = bed_record_codec()
        payload = generate_skewed_bed_bytes(50_000, seed=6)
        view = record_view(codec, payload)
        assert view is not None
        assert view.key_objects() == [codec.key(r) for r in codec.split(payload)]

    def test_unknown_chromosome_falls_back(self):
        codec = bed_record_codec()
        assert record_view(codec, b"chrZZZ\t5\t6\tx\n") is None

    def test_spec_encoding_is_order_preserving(self):
        spec = BedKeySpec()
        keys = [(0, 0), (0, 1), (3, 0), (24, 2**32 - 1)]
        encoded = [spec.to_u64(k) for k in keys]
        assert encoded == sorted(encoded) and len(set(encoded)) == len(keys)
        assert [spec.from_u64(v) for v in encoded] == keys
        assert spec.to_u64((0, 2**32)) is None  # out of packed domain


# ----------------------------------------------------------------------
# descending (ReversedKeySpec)
# ----------------------------------------------------------------------
class TestDescendingParity:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_descending_partition_and_merge(self, data):
        inner, payload = fixed_codec_and_buffer(data.draw)
        codec = _DescendingCodec(inner)
        keys = [codec.key(r) for r in codec.split(payload)]
        boundaries = sorted(data.draw(st.lists(st.sampled_from(keys), max_size=6))) if keys else []
        assert_partition_parity(codec, payload, boundaries)
        assert_sort_parity(codec, payload, data.draw(st.one_of(st.none(), st.integers(0, 30))))

    def test_reversed_spec_inverts_order(self):
        spec = ReversedKeySpec(PrefixKeySpec(8))
        small, big = ReversedKey(1), ReversedKey(2)
        assert big < small  # ReversedKey semantics
        assert spec.to_u64(big) < spec.to_u64(small)
        assert spec.from_u64(spec.to_u64(big)) == big


# ----------------------------------------------------------------------
# sampling-window alignment (torn records, global_start)
# ----------------------------------------------------------------------
class TestWindowAlignment:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_fixed_width_window_keys_match_sample_window(self, data):
        codec, payload = fixed_codec_and_buffer(data.draw)
        if not payload:
            return
        start = data.draw(st.integers(0, len(payload) - 1))
        length = data.draw(st.integers(0, len(payload)))
        window = payload[start : start + length]
        keys, seen, _kernel = window_keys(
            codec, window, is_first=(start == 0), global_start=start
        )
        reference = codec.sample_window(
            window, is_first=(start == 0), global_start=start
        )
        assert keys == [codec.key(r) for r in reference]
        assert seen == len(reference)

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_line_window_keys_match_sample_window(self, data):
        codec = decimal_line_codec()
        payload = line_buffer(data.draw)
        if not payload:
            return
        start = data.draw(st.integers(0, len(payload) - 1))
        length = data.draw(st.integers(0, len(payload)))
        window = payload[start : start + length]
        keys, seen, _kernel = window_keys(
            codec, window, is_first=(start == 0), global_start=start
        )
        reference = codec.sample_window(
            window, is_first=(start == 0), global_start=start
        )
        assert keys == [codec.key(r) for r in reference]
        assert seen == len(reference)


class TestExtractSplitEdges:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_torn_split_edges_partition_identically(self, data):
        """Splits cut mid-record: extract_split realigns, kernels agree."""
        codec, payload = fixed_codec_and_buffer(data.draw)
        if len(payload) < 2:
            return
        parts = data.draw(st.integers(1, 5))
        cuts = sorted(
            data.draw(
                st.lists(
                    st.integers(1, len(payload) - 1),
                    min_size=parts - 1,
                    max_size=parts - 1,
                )
            )
        )
        edges = [0, *cuts, len(payload)]
        keys = [codec.key(r) for r in codec.split(payload)]
        boundaries = boundaries_from(keys, data.draw)
        reassembled = []
        for start, end in zip(edges, edges[1:]):
            owned = codec.extract_split(
                payload[start:end],
                payload[end : end + 64],
                is_first=(start == 0),
                at_end=(end >= len(payload)),
                global_start=start,
            )
            vec = assert_partition_parity(codec, owned, boundaries)
            reassembled.append(vec.records)
        assert sum(reassembled) == len(keys)


# ----------------------------------------------------------------------
# grouping, counts, env gating
# ----------------------------------------------------------------------
class TestGroupedRecords:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_groups_match_scalar_dict_grouping(self, data):
        base, payload = fixed_codec_and_buffer(data.draw)
        codec = GroupKeyCodec(base, base.key, key_spec=base.vector_spec())
        vec_groups, vec_count, vec_kernel = grouped_records(codec, payload)
        ref_groups, ref_count, ref_kernel = grouped_records(
            codec, payload, force_scalar=True
        )
        assert ref_kernel == "scalar"
        assert vec_groups == ref_groups
        assert vec_count == ref_count
        if payload and base.key_bytes <= 8:
            assert vec_kernel == "vectorized"


class TestPartitionCounts:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=200),
        st.lists(st.integers(0, 2**64 - 1), max_size=8),
    )
    def test_counts_match_bisect(self, keys, raw_boundaries):
        boundaries = sorted(raw_boundaries)
        counts = kernels.partition_counts(keys, boundaries)
        reference = [0] * (len(boundaries) + 1)
        for key in keys:
            reference[partition_index(key, boundaries)] += 1
        assert counts == reference

    def test_non_integer_keys_opt_out(self):
        assert kernels.partition_counts([(1, 2)], [(0, 0)]) is None
        assert kernels.partition_counts([ReversedKey(3)], [ReversedKey(5)]) is None
        assert kernels.partition_counts([1, 2], [2**64]) is None  # overflow


class TestEnvironmentGate:
    def test_scalar_mode_disables_kernels(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "scalar")
        codec = FixedWidthCodec(8)
        payload = bytes(range(8)) * 4
        assert not kernels.kernels_enabled()
        assert record_view(codec, payload) is None
        assert partition_buffer(codec, payload, []).kernel == "scalar"
        assert kernels.partition_counts([1, 2], [1]) is None

    def test_auto_mode_enables_kernels(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        assert kernels.kernels_enabled()


# ----------------------------------------------------------------------
# chunk spans (streaming/online chunking grain)
# ----------------------------------------------------------------------
class TestChunkSpans:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_spans_match_greedy_scalar_chunking(self, data):
        codec = decimal_line_codec()
        payload = line_buffer(data.draw)
        if not payload:
            return
        chunk_bytes = data.draw(st.integers(1, len(payload) + 8))
        view = record_view(codec, payload)
        assert view is not None
        spans = view.chunk_spans(chunk_bytes)
        records = codec.split(payload)
        chunks, current, size = [], 0, 0
        for index, record in enumerate(records):
            size += len(record)
            if size >= chunk_bytes:
                chunks.append((current, index + 1))
                current, size = index + 1, 0
        if current < len(records):
            chunks.append((current, len(records)))
        assert spans == chunks
        # Partitioning span by span reproduces the whole-buffer segments.
        keys = [codec.key(r) for r in records]
        boundaries = boundaries_from(keys, data.draw)
        whole = partition_buffer(codec, payload, boundaries, force_scalar=True)
        by_span = [b""] * (len(boundaries) + 1)
        for span_lo, span_hi in spans:
            outcome = view.partition(boundaries, span_lo, span_hi)
            for reducer_id, segment in enumerate(outcome.segments()):
                by_span[reducer_id] += segment
        assert by_span == whole.segments()


# ----------------------------------------------------------------------
# report extras folding
# ----------------------------------------------------------------------
class TestKernelReportExtras:
    def test_uniform_kind_and_throughput(self):
        maps = [
            {"kernel": "vectorized", "kernel_records": 100, "kernel_s": 0.5},
            {"kernel": "vectorized", "kernel_records": 300, "kernel_s": 0.5},
        ]
        reduces = [{"kernel": "vectorized", "kernel_records": 400, "kernel_s": 1.0}]
        extras = kernels.kernel_report_extras(maps, reduces)
        assert extras["kernel"] == "vectorized"
        assert extras["map_kernel"] == "vectorized"
        assert extras["map_records_per_sec"] == pytest.approx(400.0)
        assert extras["reduce_records_per_sec"] == pytest.approx(400.0)
        assert extras["records_per_sec"] == pytest.approx(800 / 2.0)

    def test_mixed_kinds_flagged(self):
        maps = [{"kernel": "vectorized", "kernel_records": 1, "kernel_s": 0.1}]
        reduces = [{"kernel": "scalar", "kernel_records": 1, "kernel_s": 0.1}]
        assert kernels.kernel_report_extras(maps, reduces)["kernel"] == "mixed"

    def test_untagged_results_produce_no_extras(self):
        assert kernels.kernel_report_extras([{"records": 1}], []) == {}
