"""Cross-substrate parity: the exchange moves bytes, never changes them.

For seeded random inputs, all four substrates (object storage, cache
cluster, VM relay, sharded relay fleet) must produce byte-identical
sorted runs — only
latency and cost may differ.  This is the invariant the S8 comparison
rests on: if the substrates disagreed on the artifact, their latency
numbers would not be comparable.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.cloud.vm.fleet import fleet_ready
from repro.cloud.vm.relay import relay_ready
from repro.executor import FunctionExecutor
from repro.shuffle import (
    CacheShuffleSort,
    FixedWidthCodec,
    LineRecordCodec,
    RelayShuffleSort,
    ShardedRelayShuffleSort,
    ShuffleSort,
)

SUBSTRATES = ("objectstore", "cache", "relay", "sharded-relay")


def make_fixed_payload(count, seed, record_size=16):
    rng = random.Random(seed)
    return b"".join(
        rng.getrandbits(64).to_bytes(8, "big") + bytes(record_size - 8)
        for _ in range(count)
    )


def make_line_payload(count, seed):
    rng = random.Random(seed)
    return b"".join(
        b"%016x\t%d\n" % (rng.getrandbits(64), rng.randrange(10**6))
        for _ in range(count)
    )


def run_substrate(substrate, codec, payload, workers, seed):
    """Run one sort on a fresh region; returns (runs_bytes, result)."""
    cloud = Cloud.fresh(seed=seed, profile=ibm_us_east(deterministic=True))
    cloud.store.ensure_bucket("data")
    executor = FunctionExecutor(cloud)
    if substrate == "objectstore":
        operator = ShuffleSort(executor, codec)
    elif substrate == "cache":
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=2)
        operator = CacheShuffleSort(executor, codec, cluster)
    elif substrate == "sharded-relay":
        fleet = fleet_ready(cloud.vms, "bx2-8x32", shards=2)
        operator = ShardedRelayShuffleSort(executor, codec, fleet)
    else:
        relay = relay_ready(cloud.vms, "bx2-8x32")
        operator = RelayShuffleSort(executor, codec, relay)

    def driver():
        yield cloud.store.put("data", "input.bin", payload)
        return (yield operator.sort("data", "input.bin", workers=workers))

    result = cloud.sim.run_process(driver())
    runs = [cloud.store.peek("data", run.key) for run in result.runs]
    return runs, result


def test_conflicting_cost_and_backend_rejected():
    """cost belongs to the default substrate; a backend carries its own."""
    from repro.errors import ShuffleError
    from repro.shuffle import ObjectStoreExchange, ShuffleCostModel

    cloud = Cloud.fresh(seed=1, profile=ibm_us_east(deterministic=True))
    executor = FunctionExecutor(cloud)
    codec = FixedWidthCodec(record_size=16, key_bytes=8)
    with pytest.raises(ShuffleError, match="not both"):
        ShuffleSort(executor, codec, cost=ShuffleCostModel(),
                    backend=ObjectStoreExchange())


class TestExchangeParity:
    @given(
        seed=st.integers(0, 2**16),
        workers=st.sampled_from([1, 2, 3, 5, 8]),
        count=st.integers(200, 1200),
    )
    @settings(max_examples=8, deadline=None)
    def test_fixed_width_runs_byte_identical(self, seed, workers, count):
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        payload = make_fixed_payload(count, seed)
        per_substrate = {
            substrate: run_substrate(substrate, codec, payload, workers, seed)
            for substrate in SUBSTRATES
        }
        baseline_runs, baseline = per_substrate["objectstore"]
        merged = b"".join(baseline_runs)
        keys = [codec.key(record) for record in codec.split(merged)]
        assert keys == sorted(keys)
        assert baseline.total_records == count
        for substrate in ("cache", "relay", "sharded-relay"):
            runs, result = per_substrate[substrate]
            # Same partitioning, same per-run payloads, byte for byte.
            assert runs == baseline_runs, f"{substrate} diverged"
            assert result.total_records == baseline.total_records

    @given(seed=st.integers(0, 2**16), workers=st.sampled_from([2, 4]))
    @settings(max_examples=4, deadline=None)
    def test_line_records_runs_byte_identical(self, seed, workers):
        codec = LineRecordCodec(key_fn=lambda record: record.split(b"\t")[0])
        payload = make_line_payload(600, seed)
        outputs = {
            substrate: run_substrate(substrate, codec, payload, workers, seed)[0]
            for substrate in SUBSTRATES
        }
        assert outputs["cache"] == outputs["objectstore"]
        assert outputs["relay"] == outputs["objectstore"]
        assert outputs["sharded-relay"] == outputs["objectstore"]

    def test_relay_shuffle_survives_injected_crashes(self):
        """Retried/speculative attempts must find their relay partitions
        still resident: with the default (no reducer-side consumption)
        the sort is idempotent under executor re-invocations."""
        cloud = Cloud.fresh(seed=13, profile=ibm_us_east(deterministic=True))
        cloud.store.ensure_bucket("data")
        cloud.faas.crash_probability = 0.25
        cloud.faas.crash_latest_s = 2.0
        relay = relay_ready(cloud.vms, "bx2-8x32")
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        payload = make_fixed_payload(4000, seed=7)
        operator = RelayShuffleSort(
            FunctionExecutor(cloud, retries=4), codec, relay
        )

        def driver():
            yield cloud.store.put("data", "input.bin", payload)
            return (yield operator.sort("data", "input.bin", workers=4))

        result = cloud.sim.run_process(driver())
        assert cloud.faas.stats.crashes > 0  # the injection actually bit
        merged = b"".join(cloud.store.peek("data", run.key) for run in result.runs)
        keys = [codec.key(record) for record in codec.split(merged)]
        assert keys == sorted(keys)
        assert result.total_records == 4000

    def test_reused_relay_reports_per_sort_deltas(self):
        """A caller-owned relay may serve several sorts; each report
        must cover only its own sort, not the relay's lifetime."""
        cloud = Cloud.fresh(seed=21, profile=ibm_us_east(deterministic=True))
        cloud.store.ensure_bucket("data")
        relay = relay_ready(cloud.vms, "bx2-8x32")
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        operator = RelayShuffleSort(FunctionExecutor(cloud), codec, relay)

        def run_once(key, prefix):
            def driver():
                yield cloud.store.put("data", key, make_fixed_payload(1000, 5))
                return (yield operator.sort("data", key, out_prefix=prefix,
                                            workers=3))

            cloud.sim.run_process(driver())
            return operator.report

        first = run_once("in1.bin", "sort1")
        second = run_once("in2.bin", "sort2")
        # 3 mappers x 3 partitions each, per sort — not cumulative.
        assert first.pushes == 9
        assert second.pushes == 9
        assert second.pulls == 9

    def test_latency_and_cost_may_differ_but_bytes_do_not(self):
        """The comparison's contract in one example: different timing
        and billing, identical artifact."""
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        payload = make_fixed_payload(3000, seed=11)
        runs = {}
        durations = {}
        for substrate in SUBSTRATES:
            substrate_runs, result = run_substrate(
                substrate, codec, payload, workers=4, seed=11
            )
            runs[substrate] = substrate_runs
            durations[substrate] = result.duration_s
        assert (
            runs["objectstore"] == runs["cache"] == runs["relay"]
            == runs["sharded-relay"]
        )
        # Substrate timings genuinely differ (they model different
        # hardware) — parity is about bytes, not clocks.
        assert len(set(durations.values())) > 1
