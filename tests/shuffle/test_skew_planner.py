"""Skew-priced planners and the adaptive selector (PR 5).

Every substrate's analytic model gained a straggler term: the reduce
side is paced by the reducer owning the hottest partition, whose fetch
transfer, sort CPU and output write scale with the workload's
max-over-mean partition bytes.  The acceptance case: the *same
total-bytes* workload picks a different exchange configuration when its
keys are Zipf instead of uniform.
"""

import pytest

from repro.cloud.profiles import GB, ibm_us_east
from repro.errors import ShuffleError
from repro.shuffle import (
    CacheShuffleCostModel,
    RelayShuffleCostModel,
    ShuffleCostModel,
    choose_exchange_substrate,
    plan_shuffle,
    predict_shuffle_time,
    predict_streaming_shuffle_time,
)
from repro.shuffle.cacheplanner import predict_cache_shuffle_time
from repro.shuffle.relayplanner import (
    plan_relay_shuffle,
    predict_relay_shuffle_time,
    resolve_relay_instance,
)

PROFILE = ibm_us_east(deterministic=True)
SIZE = 3.5 * GB


def predict_all(workers, skew):
    """One PlanPoint per substrate model at the given skew."""
    node_type = PROFILE.memstore.catalog["cache.r5.large"]
    instance = resolve_relay_instance(PROFILE, "bx2-8x32")
    return {
        "objectstore": predict_shuffle_time(
            SIZE, workers, PROFILE, ShuffleCostModel(), skew=skew
        ),
        "cache": predict_cache_shuffle_time(
            SIZE, workers, PROFILE, node_type, 2, CacheShuffleCostModel(),
            skew=skew,
        ),
        "relay": predict_relay_shuffle_time(
            SIZE, workers, PROFILE, instance, RelayShuffleCostModel(),
            skew=skew,
        ),
    }


class TestStragglerTerm:
    def test_skew_one_is_the_identity(self):
        for substrate, point in predict_all(32, 1.0).items():
            baseline = predict_all(32, None)[substrate]
            assert point.total_s == pytest.approx(baseline.total_s), substrate

    @pytest.mark.parametrize("workers", [8, 32, 128])
    def test_predictions_increase_monotonically_with_skew(self, workers):
        for substrate in ("objectstore", "cache", "relay"):
            times = [
                predict_all(workers, skew)[substrate].total_s
                for skew in (1.0, 2.0, 4.0, 8.0)
            ]
            assert times == sorted(times), substrate
            assert times[-1] > times[0], substrate

    def test_skew_touches_only_the_reduce_side(self):
        flat = predict_all(32, 1.0)["objectstore"].breakdown
        hot = predict_all(32, 6.0)["objectstore"].breakdown
        # Input splits stay byte-even: the map side must not move.
        for term in ("startup", "map_read", "partition_cpu", "map_write",
                     "driver"):
            assert hot[term] == pytest.approx(flat[term]), term
        for term in ("reduce_fetch", "sort_cpu", "reduce_write"):
            assert hot[term] > flat[term], term

    def test_cost_model_default_skew_is_used(self):
        cost = ShuffleCostModel(expected_skew=4.0)
        implicit = predict_shuffle_time(SIZE, 32, PROFILE, cost)
        explicit = predict_shuffle_time(
            SIZE, 32, PROFILE, ShuffleCostModel(), skew=4.0
        )
        assert implicit.total_s == pytest.approx(explicit.total_s)

    def test_invalid_skew_rejected(self):
        with pytest.raises(ShuffleError, match="skew"):
            predict_shuffle_time(SIZE, 8, PROFILE, ShuffleCostModel(), skew=0.5)
        with pytest.raises(ShuffleError, match="skew"):
            predict_relay_shuffle_time(
                SIZE, 8, PROFILE,
                resolve_relay_instance(PROFILE, "bx2-8x32"),
                RelayShuffleCostModel(), skew=0.0,
            )

    def test_streaming_transform_composes_with_skew(self):
        """The pipelined transform consumes the skewed staged point: a
        hotter consumer side grows the pipelined exchange term."""
        flat = predict_streaming_shuffle_time(
            predict_all(32, 1.0)["relay"], chunks=8
        )
        hot = predict_streaming_shuffle_time(
            predict_all(32, 6.0)["relay"], chunks=8
        )
        assert hot.total_s > flat.total_s

    def test_plan_shuffle_reoptimizes_workers_under_skew(self):
        """Skew inflates per-worker reduce terms, so the U-curve's
        minimum moves right: the planner buys more workers to shrink
        the straggler's base."""
        flat = plan_shuffle(SIZE, PROFILE, max_workers=128)
        hot = plan_shuffle(SIZE, PROFILE, max_workers=128, skew=6.0)
        assert hot.workers > flat.workers

    def test_plan_relay_shuffle_threads_skew(self):
        flat = plan_relay_shuffle(SIZE, PROFILE, "bx2-8x32", max_workers=64)
        hot = plan_relay_shuffle(
            SIZE, PROFILE, "bx2-8x32", max_workers=64, skew=6.0
        )
        assert hot.predicted_s > flat.predicted_s


class TestSkewAwareSelector:
    def test_decision_changes_between_uniform_and_skewed(self):
        """The acceptance case: same bytes, same candidates, same time
        value — only the key distribution differs, and the selector
        changes its substrate.  At W=256 the uniform workload's
        all-to-all is worth provisioned relay NICs; under 6x skew the
        hot reducer (which no exchange hardware can shrink) dominates,
        the fleet's latency edge collapses, and pay-as-you-go object
        storage wins the monetized score."""
        uniform = choose_exchange_substrate(
            SIZE, PROFILE, workers=256, time_value_usd_per_hour=0.95
        )
        skewed = choose_exchange_substrate(
            SIZE, PROFILE, workers=256, time_value_usd_per_hour=0.95,
            partition_skew=6.0,
        )
        assert uniform.substrate == "sharded-relay"
        assert skewed.substrate == "objectstore"
        assert skewed.partition_skew == 6.0
        assert "partition skew 6.00x" in skewed.describe()

    def test_auto_worker_decision_changes_too(self):
        """With per-substrate planning the skewed variant sizes a
        different wave (more workers shrink the straggler's base)."""
        uniform = choose_exchange_substrate(SIZE, PROFILE)
        skewed = choose_exchange_substrate(SIZE, PROFILE, partition_skew=6.0)
        assert skewed.chosen.workers > uniform.chosen.workers

    def test_every_estimate_is_priced_at_the_skew(self):
        decision = choose_exchange_substrate(
            SIZE, PROFILE, workers=32, partition_skew=4.0
        )
        flat = choose_exchange_substrate(SIZE, PROFILE, workers=32)
        for hot, cold in zip(decision.estimates, flat.estimates):
            assert hot.predicted_s > cold.predicted_s, hot.substrate

    def test_invalid_partition_skew_rejected(self):
        with pytest.raises(ShuffleError, match="partition_skew"):
            choose_exchange_substrate(SIZE, PROFILE, partition_skew=0.9)

    def test_uniform_skew_default_matches_legacy_behaviour(self):
        default = choose_exchange_substrate(SIZE, PROFILE, workers=64)
        explicit = choose_exchange_substrate(
            SIZE, PROFILE, workers=64, partition_skew=1.0
        )
        assert default.substrate == explicit.substrate
        assert default.chosen.score_usd == pytest.approx(
            explicit.chosen.score_usd
        )
