"""Skew-priced planners and the adaptive selector (PR 5).

Every substrate's analytic model gained a straggler term: the reduce
side is paced by the reducer owning the hottest partition, whose fetch
transfer, sort CPU and output write scale with the workload's
max-over-mean partition bytes.  The acceptance case: the *same
total-bytes* workload picks a different exchange configuration when its
keys are Zipf instead of uniform.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.profiles import GB, ibm_us_east
from repro.errors import ShuffleError
from repro.shuffle import (
    CacheShuffleCostModel,
    RelayShuffleCostModel,
    ShuffleCostModel,
    SkewSpec,
    choose_exchange_substrate,
    choose_weighted_boundaries,
    estimate_partition_weights,
    partition_skew_of,
    plan_shuffle,
    predict_shuffle_time,
    predict_streaming_shuffle_time,
    skewed_keys,
)
from repro.shuffle.cacheplanner import predict_cache_shuffle_time
from repro.shuffle.relayplanner import (
    SHARD_IMBALANCE_HEADROOM,
    hot_shard_bytes,
    plan_relay_shuffle,
    predict_relay_shuffle_time,
    relay_usable_bytes,
    required_relay_fleet,
    resolve_relay_instance,
)

PROFILE = ibm_us_east(deterministic=True)
SIZE = 3.5 * GB


def predict_all(workers, skew):
    """One PlanPoint per substrate model at the given skew."""
    node_type = PROFILE.memstore.catalog["cache.r5.large"]
    instance = resolve_relay_instance(PROFILE, "bx2-8x32")
    return {
        "objectstore": predict_shuffle_time(
            SIZE, workers, PROFILE, ShuffleCostModel(), skew=skew
        ),
        "cache": predict_cache_shuffle_time(
            SIZE, workers, PROFILE, node_type, 2, CacheShuffleCostModel(),
            skew=skew,
        ),
        "relay": predict_relay_shuffle_time(
            SIZE, workers, PROFILE, instance, RelayShuffleCostModel(),
            skew=skew,
        ),
    }


class TestStragglerTerm:
    def test_skew_one_is_the_identity(self):
        for substrate, point in predict_all(32, 1.0).items():
            baseline = predict_all(32, None)[substrate]
            assert point.total_s == pytest.approx(baseline.total_s), substrate

    @pytest.mark.parametrize("workers", [8, 32, 128])
    def test_predictions_increase_monotonically_with_skew(self, workers):
        for substrate in ("objectstore", "cache", "relay"):
            times = [
                predict_all(workers, skew)[substrate].total_s
                for skew in (1.0, 2.0, 4.0, 8.0)
            ]
            assert times == sorted(times), substrate
            assert times[-1] > times[0], substrate

    def test_skew_touches_only_the_reduce_side(self):
        flat = predict_all(32, 1.0)["objectstore"].breakdown
        hot = predict_all(32, 6.0)["objectstore"].breakdown
        # Input splits stay byte-even: the map side must not move.
        for term in ("startup", "map_read", "partition_cpu", "map_write",
                     "driver"):
            assert hot[term] == pytest.approx(flat[term]), term
        for term in ("reduce_fetch", "sort_cpu", "reduce_write"):
            assert hot[term] > flat[term], term

    def test_cost_model_default_skew_is_used(self):
        cost = ShuffleCostModel(expected_skew=4.0)
        implicit = predict_shuffle_time(SIZE, 32, PROFILE, cost)
        explicit = predict_shuffle_time(
            SIZE, 32, PROFILE, ShuffleCostModel(), skew=4.0
        )
        assert implicit.total_s == pytest.approx(explicit.total_s)

    def test_invalid_skew_rejected(self):
        with pytest.raises(ShuffleError, match="skew"):
            predict_shuffle_time(SIZE, 8, PROFILE, ShuffleCostModel(), skew=0.5)
        with pytest.raises(ShuffleError, match="skew"):
            predict_relay_shuffle_time(
                SIZE, 8, PROFILE,
                resolve_relay_instance(PROFILE, "bx2-8x32"),
                RelayShuffleCostModel(), skew=0.0,
            )

    def test_streaming_transform_composes_with_skew(self):
        """The pipelined transform consumes the skewed staged point: a
        hotter consumer side grows the pipelined exchange term."""
        flat = predict_streaming_shuffle_time(
            predict_all(32, 1.0)["relay"], chunks=8
        )
        hot = predict_streaming_shuffle_time(
            predict_all(32, 6.0)["relay"], chunks=8
        )
        assert hot.total_s > flat.total_s

    def test_plan_shuffle_reoptimizes_workers_under_skew(self):
        """Skew inflates per-worker reduce terms, so the U-curve's
        minimum moves right: the planner buys more workers to shrink
        the straggler's base."""
        flat = plan_shuffle(SIZE, PROFILE, max_workers=128)
        hot = plan_shuffle(SIZE, PROFILE, max_workers=128, skew=6.0)
        assert hot.workers > flat.workers

    def test_plan_relay_shuffle_threads_skew(self):
        flat = plan_relay_shuffle(SIZE, PROFILE, "bx2-8x32", max_workers=64)
        hot = plan_relay_shuffle(
            SIZE, PROFILE, "bx2-8x32", max_workers=64, skew=6.0
        )
        assert hot.predicted_s > flat.predicted_s


class TestSkewAwareSelector:
    def test_decision_changes_between_uniform_and_skewed(self):
        """The acceptance case: same bytes, same candidates, same time
        value — only the key distribution differs, and the selector
        changes its substrate.  At W=256 the uniform workload's
        all-to-all is worth provisioned relay NICs; under 6x skew the
        hot reducer (which no exchange hardware can shrink) dominates,
        the fleet's latency edge collapses, and pay-as-you-go object
        storage wins the monetized score."""
        uniform = choose_exchange_substrate(
            SIZE, PROFILE, workers=256, time_value_usd_per_hour=0.95
        )
        skewed = choose_exchange_substrate(
            SIZE, PROFILE, workers=256, time_value_usd_per_hour=0.95,
            partition_skew=6.0,
        )
        assert uniform.substrate == "sharded-relay"
        assert skewed.substrate == "objectstore"
        assert skewed.partition_skew == 6.0
        assert "partition skew 6.00x" in skewed.describe()

    def test_auto_worker_decision_changes_too(self):
        """With per-substrate planning the skewed variant sizes a
        different wave (more workers shrink the straggler's base)."""
        uniform = choose_exchange_substrate(SIZE, PROFILE)
        skewed = choose_exchange_substrate(SIZE, PROFILE, partition_skew=6.0)
        assert skewed.chosen.workers > uniform.chosen.workers

    def test_every_estimate_is_priced_at_the_skew(self):
        decision = choose_exchange_substrate(
            SIZE, PROFILE, workers=32, partition_skew=4.0
        )
        flat = choose_exchange_substrate(SIZE, PROFILE, workers=32)
        for hot, cold in zip(decision.estimates, flat.estimates):
            assert hot.predicted_s > cold.predicted_s, hot.substrate

    def test_invalid_partition_skew_rejected(self):
        with pytest.raises(ShuffleError, match="partition_skew"):
            choose_exchange_substrate(SIZE, PROFILE, partition_skew=0.9)

    def test_uniform_skew_default_matches_legacy_behaviour(self):
        default = choose_exchange_substrate(SIZE, PROFILE, workers=64)
        explicit = choose_exchange_substrate(
            SIZE, PROFILE, workers=64, partition_skew=1.0
        )
        assert default.substrate == explicit.substrate
        assert default.chosen.score_usd == pytest.approx(
            explicit.chosen.score_usd
        )


class TestSkewAwareFleetSizing:
    """The skew-sizing bugfix (PR 6 satellite): ``required_relay_fleet``
    sizes the fleet for the *hot shard's* expected bytes, not the mean.

    The regression: CRC routing parks a hot partition entirely on one
    shard, so the old mean-based ``ceil(headroom * logical / usable)``
    under-provisions any Zipf workload whenever load-aware rebalancing
    is off — the hot shard overflows its usable relay memory while the
    planner believes the fleet fits.
    """

    INSTANCE = "bx2-8x32"

    def usable(self):
        return relay_usable_bytes(
            PROFILE, resolve_relay_instance(PROFILE, self.INSTANCE)
        )

    def test_hot_shard_bytes_is_the_skewed_mean_capped_at_everything(self):
        assert hot_shard_bytes(1000.0, 4) == pytest.approx(250.0)
        assert hot_shard_bytes(1000.0, 4, 3.0) == pytest.approx(750.0)
        # One shard can never receive more than the whole dataset.
        assert hot_shard_bytes(1000.0, 2, 8.0) == pytest.approx(1000.0)
        assert hot_shard_bytes(1000.0, 1, 5.0) == pytest.approx(1000.0)

    def test_mean_based_sizing_under_provisions_a_zipf_workload(self):
        """The pinned regression, with the skew *measured* from a Zipf
        key stream the way the operator measures it (partition weights
        at the planned boundaries) rather than assumed."""
        keys = skewed_keys(
            20_000,
            SkewSpec(distribution="zipf", zipf_s=1.2, distinct_keys=64),
            random.Random(5),
        )
        weights = estimate_partition_weights(
            keys, choose_weighted_boundaries(keys, 16)
        )
        skew = partition_skew_of(weights)
        assert skew > 1.5  # the workload genuinely concentrates mass

        usable = self.usable()
        logical = 3.0 * usable
        _, lean = required_relay_fleet(
            logical, PROFILE, self.INSTANCE, max_shards=64
        )
        _, sized = required_relay_fleet(
            logical, PROFILE, self.INSTANCE, max_shards=64,
            partition_skew=skew,
        )
        assert sized > lean
        # The old mean-based fleet cannot hold its hot shard (this is
        # the bug: rebalance=False leaves the hot partition where CRC
        # routing put it)...
        assert SHARD_IMBALANCE_HEADROOM * hot_shard_bytes(
            logical, lean, skew
        ) > usable
        # ...while the skew-sized fleet can.
        assert SHARD_IMBALANCE_HEADROOM * hot_shard_bytes(
            logical, sized, skew
        ) <= usable

    def test_default_skew_matches_legacy_sizing(self):
        logical = 2.5 * self.usable()
        default = required_relay_fleet(logical, PROFILE, self.INSTANCE)
        explicit = required_relay_fleet(
            logical, PROFILE, self.INSTANCE, partition_skew=1.0
        )
        assert default == explicit

    def test_invalid_partition_skew_rejected(self):
        with pytest.raises(ShuffleError, match="partition_skew"):
            required_relay_fleet(
                GB, PROFILE, self.INSTANCE, partition_skew=0.5
            )

    @given(
        mult=st.floats(0.1, 6.0),
        skew=st.floats(1.0, 8.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_pinned_fleet_hot_shard_always_fits(self, mult, skew):
        """The chaos-matrix invariant: whatever the workload's measured
        skew, a fleet the planner accepts never exceeds per-shard usable
        relay bytes on its hottest shard (headroom included)."""
        usable = self.usable()
        logical = mult * usable
        try:
            _, shards = required_relay_fleet(
                logical, PROFILE, self.INSTANCE, max_shards=64,
                partition_skew=skew,
            )
        except ShuffleError:
            return  # declared infeasible, not silently under-sized
        assert SHARD_IMBALANCE_HEADROOM * hot_shard_bytes(
            logical, shards, skew
        ) <= usable * (1 + 1e-9)

    @given(
        logical_gb=st.floats(0.5, 400.0),
        skew=st.floats(1.0, 8.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_catalog_search_hot_shard_always_fits(self, logical_gb, skew):
        """Same invariant over the whole-catalog search path."""
        logical = logical_gb * GB
        try:
            name, shards = required_relay_fleet(
                logical, PROFILE, max_shards=8, partition_skew=skew
            )
        except ShuffleError:
            return
        usable = relay_usable_bytes(
            PROFILE, resolve_relay_instance(PROFILE, name)
        )
        assert SHARD_IMBALANCE_HEADROOM * hot_shard_bytes(
            logical, shards, skew
        ) <= usable * (1 + 1e-9)
