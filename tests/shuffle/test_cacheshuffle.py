"""Tests for the cache-mediated shuffle: operator, planner, workers."""

import random

import pytest

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.errors import ShuffleError
from repro.executor import FunctionExecutor
from repro.shuffle import (
    CacheShuffleCostModel,
    CacheShuffleSort,
    FixedWidthCodec,
    cache_partition_key,
    plan_cache_shuffle,
    predict_cache_shuffle_time,
    required_cache_nodes,
)


@pytest.fixture
def cloud():
    cloud = Cloud.fresh(seed=31, profile=ibm_us_east(deterministic=True))
    cloud.store.ensure_bucket("data")
    return cloud


@pytest.fixture
def executor(cloud):
    return FunctionExecutor(cloud)


@pytest.fixture
def cluster(cloud):
    return cloud.cache.provision_ready("cache.r5.large", nodes=2)


def make_fixed_payload(count, seed=7, record_size=16):
    rng = random.Random(seed)
    return b"".join(
        rng.getrandbits(64).to_bytes(8, "big") + bytes(record_size - 8)
        for _ in range(count)
    )


def sort_and_collect(cloud, executor, cluster, codec, payload, **kwargs):
    op = CacheShuffleSort(executor, codec, cluster)

    def driver():
        yield cloud.store.put("data", "input.bin", payload)
        return (yield op.sort("data", "input.bin", **kwargs))

    result = cloud.sim.run_process(driver())
    merged = b"".join(cloud.store.peek("data", run.key) for run in result.runs)
    return op, result, merged


class TestCacheSort:
    def test_output_globally_sorted(self, cloud, executor, cluster):
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        payload = make_fixed_payload(5000)
        _op, result, merged = sort_and_collect(
            cloud, executor, cluster, codec, payload, workers=4
        )
        keys = [codec.key(record) for record in codec.split(merged)]
        assert keys == sorted(keys)
        assert result.total_records == 5000

    def test_no_bytes_lost(self, cloud, executor, cluster):
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        payload = make_fixed_payload(3000)
        _op, _result, merged = sort_and_collect(
            cloud, executor, cluster, codec, payload, workers=3
        )
        assert len(merged) == len(payload)
        assert sorted(codec.split(merged)) == sorted(codec.split(payload))

    def test_single_worker_degenerate_case(self, cloud, executor, cluster):
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        payload = make_fixed_payload(400)
        _op, result, merged = sort_and_collect(
            cloud, executor, cluster, codec, payload, workers=1
        )
        assert result.workers == 1
        keys = [codec.key(record) for record in codec.split(merged)]
        assert keys == sorted(keys)

    def test_report_counts_cache_traffic(self, cloud, executor, cluster):
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        payload = make_fixed_payload(2000)
        op, result, _merged = sort_and_collect(
            cloud, executor, cluster, codec, payload, workers=4
        )
        # W mappers x W partitions each, then W reducers reading W each.
        assert op.report.cache_sets == 16
        assert op.report.cache_gets == 16
        assert op.report.nodes == 2
        assert 0 < op.report.peak_fill_fraction < 1

    def test_intermediates_stay_in_cache_not_cos(self, cloud, executor, cluster):
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        payload = make_fixed_payload(2000)
        sort_and_collect(cloud, executor, cluster, codec, payload, workers=4)
        # No combined/partition shuffle objects must exist in COS — only
        # the executor's job state, the input and the sorted runs.
        def listing():
            return (yield cloud.store.list_keys("data", ""))

        keys = cloud.sim.run_process(listing())
        assert not [key for key in keys if "/shuffle/" in key]
        assert [key for key in keys if "/sorted/" in key]

    def test_cleanup_deletes_partitions(self, cloud, executor, cluster):
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        payload = make_fixed_payload(1000)
        cost = CacheShuffleCostModel(cleanup=True)
        op = CacheShuffleSort(executor, codec, cluster, cost=cost)

        def driver():
            yield cloud.store.put("data", "input.bin", payload)
            return (yield op.sort("data", "input.bin", workers=3))

        cloud.sim.run_process(driver())
        assert cluster.key_count == 0

    def test_without_cleanup_partitions_remain(self, cloud, executor, cluster):
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        payload = make_fixed_payload(1000)
        sort_and_collect(cloud, executor, cluster, codec, payload, workers=3)
        assert cluster.key_count == 9

    def test_empty_object_rejected(self, cloud, executor, cluster):
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        op = CacheShuffleSort(executor, codec, cluster)

        def driver():
            yield cloud.store.put("data", "empty.bin", b"")
            return (yield op.sort("data", "empty.bin", workers=2))

        with pytest.raises(ShuffleError, match="empty"):
            cloud.sim.run_process(driver())

    def test_data_exceeding_cluster_capacity_rejected(self, executor):
        profile = ibm_us_east(logical_scale=1e9, deterministic=True)
        cloud = Cloud.fresh(seed=31, profile=profile)
        cloud.store.ensure_bucket("data")
        executor = FunctionExecutor(cloud)
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=1)
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        op = CacheShuffleSort(executor, codec, cluster)
        payload = make_fixed_payload(2000)  # 32 KB real = 32 TB logical

        def driver():
            yield cloud.store.put("data", "input.bin", payload)
            return (yield op.sort("data", "input.bin", workers=2))

        with pytest.raises(ShuffleError, match="capacity"):
            cloud.sim.run_process(driver())

    def test_terminated_cluster_rejected(self, cloud, executor, cluster):
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        cluster.terminate()
        op = CacheShuffleSort(executor, codec, cluster)
        payload = make_fixed_payload(100)

        def driver():
            yield cloud.store.put("data", "input.bin", payload)
            return (yield op.sort("data", "input.bin", workers=2))

        from repro.cloud.memstore import ClusterNotRunning

        with pytest.raises(ClusterNotRunning):
            cloud.sim.run_process(driver())

    def test_reused_cluster_reports_per_sort_deltas(self, cloud, executor, cluster):
        """A caller-owned cluster may serve several sorts; each report
        must cover only its own sort, not cluster-lifetime totals."""
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        payload = make_fixed_payload(1000)
        op = CacheShuffleSort(executor, codec, cluster)

        def run_once(key, prefix):
            def driver():
                yield cloud.store.put("data", key, payload)
                return (yield op.sort("data", key, out_prefix=prefix, workers=3))

            cloud.sim.run_process(driver())
            return op.report

        first = run_once("in1.bin", "sort1")
        second = run_once("in2.bin", "sort2")
        assert first.cache_sets == 9  # 3 mappers x 3 partitions, per sort
        assert second.cache_sets == 9
        assert second.cache_gets == 9

    def test_planner_used_when_workers_not_pinned(self, cloud, executor, cluster):
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        payload = make_fixed_payload(2000)
        _op, result, merged = sort_and_collect(
            cloud, executor, cluster, codec, payload, max_workers=16
        )
        assert result.planned is not None
        assert result.workers == result.planned.workers
        keys = [codec.key(record) for record in codec.split(merged)]
        assert keys == sorted(keys)


class TestCachePlanner:
    def test_predict_rejects_bad_inputs(self):
        profile = ibm_us_east()
        node_type = profile.memstore.catalog["cache.r5.large"]
        cost = CacheShuffleCostModel()
        with pytest.raises(ShuffleError):
            predict_cache_shuffle_time(1e9, 0, profile, node_type, 1, cost)
        with pytest.raises(ShuffleError):
            predict_cache_shuffle_time(1e9, 4, profile, node_type, 0, cost)

    def test_plan_rejects_unknown_node_type(self):
        with pytest.raises(ShuffleError, match="unknown cache node type"):
            plan_cache_shuffle(1e9, ibm_us_east(), "cache.r9.mega", 1)

    def test_breakdown_sums_to_total(self):
        profile = ibm_us_east()
        node_type = profile.memstore.catalog["cache.r5.large"]
        point = predict_cache_shuffle_time(
            3.5e9, 16, profile, node_type, 2, CacheShuffleCostModel()
        )
        assert point.total_s == pytest.approx(sum(point.breakdown.values()))

    def test_cache_flatter_than_cos_at_high_worker_counts(self):
        """The substrate difference the model must capture: the cache's
        W² request floor is ~30x lower than object storage's."""
        from repro.shuffle import ShuffleCostModel, predict_shuffle_time

        profile = ibm_us_east()
        node_type = profile.memstore.catalog["cache.r5.large"]
        size = 3.5e9
        cos_lo = predict_shuffle_time(size, 16, profile, ShuffleCostModel())
        cos_hi = predict_shuffle_time(size, 128, profile, ShuffleCostModel())
        cache_lo = predict_cache_shuffle_time(
            size, 16, profile, node_type, 2, CacheShuffleCostModel()
        )
        cache_hi = predict_cache_shuffle_time(
            size, 128, profile, node_type, 2, CacheShuffleCostModel()
        )
        cos_penalty = cos_hi.total_s / cos_lo.total_s
        cache_penalty = cache_hi.total_s / cache_lo.total_s
        assert cache_penalty < cos_penalty

    def test_more_nodes_raise_ops_floor_capacity(self):
        profile = ibm_us_east()
        node_type = profile.memstore.catalog["cache.r5.large"]
        one = predict_cache_shuffle_time(
            3.5e9, 256, profile, node_type, 1, CacheShuffleCostModel()
        )
        four = predict_cache_shuffle_time(
            3.5e9, 256, profile, node_type, 4, CacheShuffleCostModel()
        )
        assert four.total_s <= one.total_s

    def test_required_cache_nodes_scales_with_data(self):
        profile = ibm_us_east()
        small = required_cache_nodes(1e9, profile, "cache.r5.large")
        large = required_cache_nodes(50e9, profile, "cache.r5.large")
        assert small == 1
        assert large > small
        # Capacity actually suffices, headroom included.
        node = profile.memstore.catalog["cache.r5.large"]
        usable = node.memory_gb * (1 << 30) * profile.memstore.usable_memory_fraction
        assert large * usable >= 50e9

    def test_required_cache_nodes_validates(self):
        profile = ibm_us_east()
        with pytest.raises(ShuffleError):
            required_cache_nodes(0, profile, "cache.r5.large")
        with pytest.raises(ShuffleError):
            required_cache_nodes(1e9, profile, "cache.r5.large", headroom=0.5)
        with pytest.raises(ShuffleError):
            required_cache_nodes(1e9, profile, "cache.r9.mega")


class TestPartitionKeys:
    def test_key_layout_is_unique_and_prefixed(self):
        keys = {
            cache_partition_key("sort", m, r)
            for m in range(8)
            for r in range(8)
        }
        assert len(keys) == 64
        assert all(key.startswith("sort/") for key in keys)
