"""Mid-stream re-selection (OnlineTuner v2, PR 6 tentpole).

:class:`~repro.shuffle.online.OnlineShuffleSort` runs the substrate
decision *inside* the shuffle: chunked map-side input reads execute in
waves, the driver refits calibration from observed chunk rates between
waves and may switch the exchange configuration at a chunk boundary.
The properties pinned here:

* **byte parity** — the online artifact is byte-identical to every
  static substrate's, in both execution modes, at the same worker
  count: re-deciding mid-stream moves bytes differently, never changes
  them;
* **timeline determinism** — the same seed reproduces the same
  :class:`~repro.shuffle.adaptive.DecisionTimeline`, decision for
  decision, and the same artifact;
* **mid-stream switching** — a storage brownout in effect at the
  initial decision that clears once the sort is underway makes the
  control loop actually switch substrates, and the artifact still
  matches the static baseline;
* **chaos** — crash injection during the wave loop (attempts die and
  retry *across* re-selection points) preserves parity with the
  crash-free baseline and never overfills a relay stint.
"""

import random

import pytest

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.cloud.vm.fleet import fleet_ready
from repro.cloud.vm.relay import relay_ready
from repro.executor import FunctionExecutor
from repro.shuffle import (
    CacheShuffleSort,
    FixedWidthCodec,
    OnlineShuffleSort,
    RelayShuffleSort,
    ShardedRelayShuffleSort,
    ShuffleSort,
    SkewSpec,
    StreamConfig,
    StreamingCacheExchange,
    StreamingObjectStoreExchange,
    StreamingRelayExchange,
    StreamingShardedRelayExchange,
    StreamingShuffleSort,
    skewed_fixed_payload,
)

CODEC = FixedWidthCodec(record_size=16, key_bytes=8)
RECORDS = 3000
WORKERS = 4
SEED = 2021

#: Several chunks per mapper so the control loop sees multiple waves.
STREAM = StreamConfig(
    chunk_bytes=4096.0, buffer_bytes=16384.0, poll_interval_s=0.05
)

#: The S12 workload shape: uniform head, hot key hiding in the tail.
LATE_HOT = SkewSpec(
    distribution="late-hot", late_hot_fraction=0.25, late_hot_share=0.8
)

STATIC_SUBSTRATES = ("objectstore", "cache", "relay", "sharded-relay")
MODES = ("staged", "streaming")


def make_payload(seed):
    return skewed_fixed_payload(RECORDS, LATE_HOT, seed=seed)


def run_sort(cloud, operator, payload, workers=WORKERS):
    def driver():
        yield cloud.store.put("data", "input.bin", payload)
        return (yield operator.sort("data", "input.bin", workers=workers))

    result = cloud.sim.run_process(driver())
    runs = [cloud.store.peek("data", run.key) for run in result.runs]
    return runs, result


def run_static(substrate, mode, payload, seed):
    """One static (substrate, mode) sort on a fresh region."""
    cloud = Cloud.fresh(seed=seed, profile=ibm_us_east(deterministic=True))
    cloud.store.ensure_bucket("data")
    executor = FunctionExecutor(cloud)
    if mode == "staged":
        if substrate == "objectstore":
            operator = ShuffleSort(executor, CODEC)
        elif substrate == "cache":
            cluster = cloud.cache.provision_ready("cache.r5.large", nodes=2)
            operator = CacheShuffleSort(executor, CODEC, cluster)
        elif substrate == "relay":
            operator = RelayShuffleSort(
                executor, CODEC, relay_ready(cloud.vms, "bx2-8x32")
            )
        else:
            operator = ShardedRelayShuffleSort(
                executor, CODEC, fleet_ready(cloud.vms, "bx2-8x32", shards=2)
            )
    else:
        if substrate == "objectstore":
            backend = StreamingObjectStoreExchange(stream=STREAM)
        elif substrate == "cache":
            cluster = cloud.cache.provision_ready("cache.r5.large", nodes=2)
            backend = StreamingCacheExchange(cluster, stream=STREAM)
        elif substrate == "relay":
            backend = StreamingRelayExchange(
                relay_ready(cloud.vms, "bx2-8x32"), stream=STREAM
            )
        else:
            backend = StreamingShardedRelayExchange(
                fleet_ready(cloud.vms, "bx2-8x32", shards=2), stream=STREAM
            )
        operator = StreamingShuffleSort(executor, CODEC, backend=backend)
    return run_sort(cloud, operator, payload)[0]


def run_online(payload, seed, crash_rate=0.0, retries=1, **kwargs):
    """One online sort on a fresh region; returns (runs, operator)."""
    cloud = Cloud.fresh(seed=seed, profile=ibm_us_east(deterministic=True))
    cloud.store.ensure_bucket("data")
    if crash_rate:
        cloud.faas.crash_probability = crash_rate
        cloud.faas.crash_latest_s = 0.1
    operator = OnlineShuffleSort(
        FunctionExecutor(cloud, retries=retries), CODEC,
        stream=STREAM, **kwargs,
    )
    runs, _result = run_sort(cloud, operator, payload)
    return runs, operator, cloud


class TestOnlineParity:
    """The online artifact is every static artifact, byte for byte."""

    def test_parity_across_all_substrates_and_modes(self):
        payload = make_payload(SEED)
        # Pin streaming mode: a staged winner batches the remaining
        # waves without control points, while streaming re-decides at
        # every wave boundary — the path parity must survive.
        online_runs, operator, _cloud = run_online(
            payload, SEED, modes=("streaming",)
        )
        assert len(operator.timeline) >= 2  # the loop really re-decided
        merged = b"".join(online_runs)
        keys = [CODEC.key(record) for record in CODEC.split(merged)]
        assert keys == sorted(keys)
        assert len(merged) == len(payload)
        for substrate in STATIC_SUBSTRATES:
            for mode in MODES:
                static_runs = run_static(substrate, mode, payload, SEED)
                assert static_runs == online_runs, (substrate, mode)


class TestTimelineDeterminism:
    def test_same_seed_reproduces_timeline_and_artifact(self):
        payload = make_payload(7)
        first_runs, first, _ = run_online(payload, 7, modes=("streaming",))
        second_runs, second, _ = run_online(payload, 7, modes=("streaming",))
        assert first.timeline.describe() == second.timeline.describe()
        assert [p.trigger for p in first.timeline] == [
            p.trigger for p in second.timeline
        ]
        assert first.timeline.switches == second.timeline.switches
        assert first.chunk_reroutes == second.chunk_reroutes
        assert first_runs == second_runs

    def test_timeline_shape(self):
        payload = make_payload(SEED)
        _runs, operator, _ = run_online(payload, SEED, modes=("streaming",))
        points = list(operator.timeline)
        assert points[0].trigger == "initial"
        assert points[0].wave == 0
        # Wave triggers arrive in wave order, one per boundary.
        waves = [p.wave for p in points if p.trigger == "wave"]
        assert waves == sorted(waves)
        assert operator.report.extra["decision_points"] == len(points)
        assert operator.report.extra["mode"] == "online"

    def test_rejects_bad_knobs(self):
        from repro.errors import ShuffleError

        cloud = Cloud.fresh(seed=1, profile=ibm_us_east(deterministic=True))
        executor = FunctionExecutor(cloud)
        with pytest.raises(ShuffleError, match="switch_margin"):
            OnlineShuffleSort(executor, CODEC, switch_margin=-0.1)
        with pytest.raises(ShuffleError, match="reroute_threshold"):
            OnlineShuffleSort(executor, CODEC, reroute_threshold=-0.5)


class TestMidStreamSwitch:
    """A brownout at decision time that clears mid-sort forces a switch."""

    #: Scaled region: 48 KB real payload ~ 3 GB logical, so substrate
    #: economics (provisioned relays vs pay-as-you-go storage) are real.
    SCALE = 65536.0
    #: ~6 logical chunks per mapper at W=4.
    CHUNK = 128 * (1 << 20)

    def run_brownout_online(self, seed):
        payload = make_payload(seed)
        cloud = Cloud.fresh(
            seed=seed,
            profile=ibm_us_east(deterministic=True, logical_scale=self.SCALE),
        )
        cloud.store.ensure_bucket("data")
        store = cloud.profile.objectstore
        healthy = (
            store.read_latency.mean,
            store.write_latency.mean,
            store.per_connection_bandwidth,
        )
        # Brownout in effect when the initial decision is priced.
        store.read_latency.mean = 0.45
        store.write_latency.mean = 0.45
        store.per_connection_bandwidth = 2e6
        operator = OnlineShuffleSort(
            FunctionExecutor(cloud), CODEC,
            stream=StreamConfig(
                chunk_bytes=self.CHUNK,
                buffer_bytes=4 * self.CHUNK,
                poll_interval_s=0.05,
            ),
        )

        def recovery():
            # Clear the brownout once the initial decision is recorded:
            # every wave then runs healthy, and the refit must notice.
            while len(operator.timeline) < 1:
                yield cloud.sim.timeout(0.5)
            (
                store.read_latency.mean,
                store.write_latency.mean,
                store.per_connection_bandwidth,
            ) = healthy

        def driver():
            yield cloud.store.put("data", "input.bin", payload)
            cloud.sim.process(recovery(), name="brownout-recovery")
            return (
                yield operator.sort("data", "input.bin", workers=WORKERS)
            )

        result = cloud.sim.run_process(driver())
        runs = [cloud.store.peek("data", run.key) for run in result.runs]
        return runs, operator

    def test_brownout_recovery_triggers_a_switch_at_parity(self):
        runs, operator = self.run_brownout_online(SEED)
        # The initial decision avoided the browned-out store; the refit
        # moved off the provisioned substrate once the store recovered.
        assert operator.timeline.points[0].decision.chosen.substrate != (
            "objectstore"
        )
        assert operator.timeline.switches >= 1
        switch = next(p for p in operator.timeline if p.switched)
        assert switch.trigger == "wave"
        assert switch.wave >= 1
        assert "SWITCH" in switch.describe()
        assert operator.report.extra["substrate_switches"] >= 1
        assert operator.report.extra["stints"] >= 2
        # Parity: the mid-stream switch never touches the bytes (the
        # static baseline runs on an unscaled healthy region — logical
        # scaling and the brownout shape timing, not artifacts).
        payload = make_payload(SEED)
        assert runs == run_static("objectstore", "staged", payload, SEED)


class TestOnlineChaos:
    """Crash injection across re-selection points preserves parity."""

    @pytest.mark.parametrize("crash_rate", (0.15, 0.3))
    def test_crashes_across_reselections_preserve_parity(self, crash_rate):
        payload = make_payload(SEED)
        baseline = run_static("objectstore", "staged", payload, SEED)
        runs, operator, cloud = run_online(
            payload, SEED, crash_rate=crash_rate, retries=6,
            modes=("streaming",),
        )
        assert cloud.faas.stats.crashes > 0, "no crash injected"
        # Decisions kept happening while attempts died and retried.
        assert len(operator.timeline) >= 2
        assert runs == baseline
        # No relay stint ever exceeded its usable memory, crashes and
        # retried publishes included.
        assert operator.report.extra["relay_peak_fill"] <= 1.0

    def test_crash_during_pinned_fleet_run_keeps_fill_bounded(self):
        """The skew-sized fleet invariant under chaos: pin the online
        sort to the sharded fleet so every stint is a fleet, crash
        attempts mid-wave, and the hottest shard must stay within its
        usable bytes while the artifact stays byte-identical."""
        payload = make_payload(SEED)
        baseline = run_static("objectstore", "staged", payload, SEED)
        runs, operator, cloud = run_online(
            payload, SEED, crash_rate=0.25, retries=6,
            substrates=("sharded-relay",), modes=("streaming",),
        )
        assert cloud.faas.stats.crashes > 0
        assert runs == baseline
        fill = operator.report.extra["relay_peak_fill"]
        assert 0.0 < fill <= 1.0
