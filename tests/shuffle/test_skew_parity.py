"""Skewed-workload parity across substrates and routing modes (PR 5).

The exchange contract under skew: a Zipf dataset produces *byte
identical* sorted artifacts on all four substrates, in both execution
modes, with either fleet routing — and every backend reports the same
measured ``partition_skew``, because skew is a property of the data and
the boundaries, not of where the bytes travelled.
"""

import random

import pytest

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.cloud.vm.fleet import fleet_ready
from repro.cloud.vm.relay import relay_ready
from repro.executor import FunctionExecutor
from repro.shuffle import (
    CacheShuffleSort,
    FixedWidthCodec,
    PartitionLoadRouter,
    RelayShuffleSort,
    ShardedRelayShuffleSort,
    ShuffleSort,
    SkewSpec,
    StreamConfig,
    StreamingCacheExchange,
    StreamingObjectStoreExchange,
    StreamingRelayExchange,
    StreamingShardedRelayExchange,
    StreamingShuffleSort,
    build_rebalance_assignments,
    RelayShuffleCostModel,
    skewed_fixed_payload,
)

SEED = 29
WORKERS = 6
RECORDS = 2500
ZIPF = SkewSpec(distribution="zipf", zipf_s=1.5, distinct_keys=8)

STAGED = ("objectstore", "cache", "relay", "sharded-relay")
STREAMING = (
    "streaming-objectstore", "streaming-cache", "streaming-relay",
    "streaming-sharded-relay",
)

#: Several chunks per mapper and a reducer buffer far below the hot
#: partition's bytes: the bounded buffer must absorb the burst by
#: pacing fetchers, never by deadlocking.
TINY_STREAM = StreamConfig(
    chunk_bytes=4096.0, buffer_bytes=8192.0, poll_interval_s=0.05
)


def run_substrate(substrate, payload, rebalance=True):
    """One skewed sort on a fresh region; returns (runs, report, relay)."""
    cloud = Cloud.fresh(seed=SEED, profile=ibm_us_east(deterministic=True))
    cloud.store.ensure_bucket("data")
    executor = FunctionExecutor(cloud)
    codec = FixedWidthCodec(record_size=16, key_bytes=8)
    relay = None
    cost = RelayShuffleCostModel()
    cost.rebalance = rebalance
    if substrate == "objectstore":
        operator = ShuffleSort(executor, codec)
    elif substrate == "cache":
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=2)
        operator = CacheShuffleSort(executor, codec, cluster)
    elif substrate == "relay":
        relay = relay_ready(cloud.vms, "bx2-8x32")
        operator = RelayShuffleSort(executor, codec, relay)
    elif substrate == "sharded-relay":
        relay = fleet_ready(cloud.vms, "bx2-8x32", shards=2)
        operator = ShardedRelayShuffleSort(executor, codec, relay, cost=cost)
    elif substrate == "streaming-objectstore":
        operator = StreamingShuffleSort(
            executor, codec, backend=StreamingObjectStoreExchange(stream=TINY_STREAM)
        )
    elif substrate == "streaming-cache":
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=2)
        operator = StreamingShuffleSort(
            executor, codec, backend=StreamingCacheExchange(cluster, stream=TINY_STREAM)
        )
    elif substrate == "streaming-relay":
        relay = relay_ready(cloud.vms, "bx2-8x32")
        operator = StreamingShuffleSort(
            executor, codec, backend=StreamingRelayExchange(relay, stream=TINY_STREAM)
        )
    else:  # streaming-sharded-relay
        relay = fleet_ready(cloud.vms, "bx2-8x32", shards=2)
        operator = StreamingShuffleSort(
            executor, codec,
            backend=StreamingShardedRelayExchange(
                relay, cost=cost, stream=TINY_STREAM
            ),
        )

    def driver():
        yield cloud.store.put("data", "input.bin", payload)
        return (yield operator.sort("data", "input.bin", workers=WORKERS))

    result = cloud.sim.run_process(driver())
    runs = [cloud.store.peek("data", run.key) for run in result.runs]
    return runs, operator.report, relay


@pytest.fixture(scope="module")
def zipf_payload():
    return skewed_fixed_payload(RECORDS, ZIPF, seed=SEED)


@pytest.fixture(scope="module")
def per_substrate(zipf_payload):
    return {
        substrate: run_substrate(substrate, zipf_payload)
        for substrate in STAGED + STREAMING
    }


class TestZipfCrossSubstrateParity:
    def test_all_substrates_and_modes_byte_identical(self, per_substrate):
        baseline, _report, _relay = per_substrate["objectstore"]
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        merged = b"".join(baseline)
        keys = [codec.key(record) for record in codec.split(merged)]
        assert keys == sorted(keys)
        assert len(keys) == RECORDS
        for substrate in STAGED + STREAMING:
            runs, _report, _relay = per_substrate[substrate]
            assert runs == baseline, f"{substrate} diverged under Zipf keys"

    def test_partition_skew_agrees_across_backends(self, per_substrate):
        """Skew is measured on the artifact, which is identical — every
        backend must therefore report the same number."""
        skews = {
            substrate: report.partition_skew
            for substrate, (_runs, report, _relay) in per_substrate.items()
        }
        baseline = skews["objectstore"]
        assert baseline > 1.5  # the workload is genuinely skewed
        for substrate, skew in skews.items():
            assert skew == pytest.approx(baseline), substrate

    def test_sampling_estimate_tracks_measured_skew(self, per_substrate):
        _runs, report, _relay = per_substrate["objectstore"]
        assert report.predicted_partition_skew == pytest.approx(
            report.partition_skew, rel=0.35
        )

    def test_hot_partition_burst_respects_bounded_buffers(self, per_substrate):
        """The hot partition's reducer receives far more than its buffer
        bound; the run completing at byte parity (above) proves no
        deadlock, and the watermark shows the buffer actually filled."""
        for substrate in STREAMING:
            _runs, report, _relay = per_substrate[substrate]
            assert report.buffer_high_watermark_bytes > 0.0
            assert report.mode == "streaming"

    def test_zero_residual_relay_reservations(self, per_substrate):
        for substrate in (
            "relay", "sharded-relay", "streaming-relay",
            "streaming-sharded-relay",
        ):
            _runs, _report, relay = per_substrate[substrate]
            assert relay.residual_reservation_bytes() == 0.0
            assert relay.active_flows == 0
            relay.check_memory_accounting()


class TestLoadAwareRouting:
    def test_crc_and_rebalanced_routing_byte_identical(self, zipf_payload):
        rebalanced, report_on, fleet_on = run_substrate(
            "sharded-relay", zipf_payload, rebalance=True
        )
        crc, report_off, fleet_off = run_substrate(
            "sharded-relay", zipf_payload, rebalance=False
        )
        assert rebalanced == crc
        assert report_on.rebalanced is True
        assert report_off.rebalanced is False
        # Routing moved bytes between shards, not out of the fleet.
        assert sum(report_on.shard_bytes) == pytest.approx(
            sum(report_off.shard_bytes)
        )
        assert fleet_on.residual_reservation_bytes() == 0.0
        assert fleet_off.residual_reservation_bytes() == 0.0

    def test_streaming_fleet_rebalances_too(self, zipf_payload):
        _runs, report, fleet = run_substrate(
            "streaming-sharded-relay", zipf_payload, rebalance=True
        )
        assert report.rebalanced is True
        assert fleet.residual_reservation_bytes() == 0.0

    def test_router_is_a_pure_function_of_the_key(self):
        assignments = build_rebalance_assignments([100.0, 50.0, 25.0], 3, 2)
        router = PartitionLoadRouter(assignments)
        staged_key = "prefix/m00001.r00002"
        stream_key = "prefix/m00001.r00002.c00007"
        assert router(staged_key) == router(staged_key)
        # Streaming chunk keys of the same (mapper, reducer) route to
        # the same shard as the staged key — the layout token is shared.
        assert router(stream_key) == router(staged_key)
        # Header keys carry no partition token: CRC fallback.
        assert router("prefix/m00001.hdr") is None
        # Out-of-matrix ids (another sort's wider grid): CRC fallback.
        assert router("prefix/m00009.r00000") is None
        assert router("prefix/m00000.r00009") is None
        # A prefix that *contains* an m.r token must not hijack the
        # routing: only the key's trailing layout token counts.
        assert router("job-m1.r2/m00002.r00001") == router(
            "other/m00002.r00001"
        )
        assert router("job-m1.r2/m00001.hdr") is None

    def test_rebalance_assignments_balance_planned_bytes(self):
        workers, shards = 4, 2
        predicted = [900.0, 60.0, 30.0, 10.0]
        assignments = build_rebalance_assignments(predicted, workers, shards)
        loads = [0.0] * shards
        for mapper_row in assignments:
            for reducer, shard in enumerate(mapper_row):
                loads[shard] += predicted[reducer] / workers
        assert max(loads) / sum(loads) == pytest.approx(0.5, abs=0.05)

    def test_rebalance_assignments_validate_input(self):
        from repro.errors import ShuffleError

        with pytest.raises(ShuffleError):
            build_rebalance_assignments([1.0, 2.0], 3, 2)
        with pytest.raises(ShuffleError):
            build_rebalance_assignments([1.0], 1, 0)
        with pytest.raises(ShuffleError):
            PartitionLoadRouter(())

    def test_reused_fleet_drops_previous_rebalance_map(self, zipf_payload):
        """A caller-owned fleet may serve several sorts; each sort's
        routing state must be its own (a W=6 map must not leak into a
        uniform follow-up sort)."""
        cloud = Cloud.fresh(seed=SEED, profile=ibm_us_east(deterministic=True))
        cloud.store.ensure_bucket("data")
        executor = FunctionExecutor(cloud)
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        fleet = fleet_ready(cloud.vms, "bx2-8x32", shards=2)
        operator = ShardedRelayShuffleSort(executor, codec, fleet)

        def run_once(key, payload, prefix):
            def driver():
                yield cloud.store.put("data", key, payload)
                return (
                    yield operator.sort("data", key, out_prefix=prefix,
                                        workers=WORKERS)
                )

            cloud.sim.run_process(driver())
            return operator.report

        first = run_once("in1.bin", zipf_payload, "sort1")
        assert first.rebalanced is True
        uniform = random.Random(3).randbytes(16 * 500)
        second = run_once("in2.bin", uniform, "sort2")
        assert second.rebalanced is True  # fresh map for the new sort
        assert fleet.residual_reservation_bytes() == 0.0
        fleet.check_memory_accounting()
