"""Integration tests: the full shuffle/sort on the simulated cloud."""

import random

import pytest

from repro.cloud import Cloud, MB
from repro.cloud.profiles import ibm_us_east
from repro.errors import ShuffleError
from repro.executor import FunctionExecutor
from repro.shuffle import (
    FixedWidthCodec,
    LineRecordCodec,
    ShuffleCostModel,
    ShuffleSort,
)


@pytest.fixture
def cloud():
    cloud = Cloud.fresh(seed=23, profile=ibm_us_east(deterministic=True))
    cloud.store.ensure_bucket("data")
    return cloud


@pytest.fixture
def executor(cloud):
    return FunctionExecutor(cloud)


def make_fixed_payload(count, seed=7, record_size=16):
    rng = random.Random(seed)
    return b"".join(
        rng.getrandbits(64).to_bytes(8, "big") + bytes(record_size - 8)
        for _ in range(count)
    )


def sort_and_collect(cloud, executor, codec, payload, **kwargs):
    op = ShuffleSort(executor, codec)

    def driver():
        yield cloud.store.put("data", "input.bin", payload)
        return (yield op.sort("data", "input.bin", **kwargs))

    result = cloud.sim.run_process(driver())
    merged = b"".join(cloud.store.peek("data", run.key) for run in result.runs)
    return result, merged


class TestFixedWidthSort:
    def test_output_globally_sorted(self, cloud, executor):
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        payload = make_fixed_payload(5000)
        result, merged = sort_and_collect(cloud, executor, codec, payload, workers=4)
        keys = [codec.key(record) for record in codec.split(merged)]
        assert keys == sorted(keys)
        assert result.total_records == 5000

    def test_no_bytes_lost(self, cloud, executor):
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        payload = make_fixed_payload(3000)
        result, merged = sort_and_collect(cloud, executor, codec, payload, workers=3)
        assert len(merged) == len(payload)
        assert sorted(codec.split(merged)) == sorted(codec.split(payload))

    def test_single_worker_degenerate_case(self, cloud, executor):
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        payload = make_fixed_payload(500)
        result, merged = sort_and_collect(cloud, executor, codec, payload, workers=1)
        assert result.workers == 1
        keys = [codec.key(record) for record in codec.split(merged)]
        assert keys == sorted(keys)

    def test_more_workers_than_distinct_keys(self, cloud, executor):
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        payload = b"".join(
            (index % 3).to_bytes(8, "big") + bytes(8) for index in range(300)
        )
        result, merged = sort_and_collect(cloud, executor, codec, payload, workers=8)
        keys = [codec.key(record) for record in codec.split(merged)]
        assert keys == sorted(keys)
        assert result.total_records == 300

    def test_duplicate_keys_preserved(self, cloud, executor):
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        payload = b"".join(
            (7).to_bytes(8, "big") + index.to_bytes(8, "big") for index in range(100)
        )
        result, merged = sort_and_collect(cloud, executor, codec, payload, workers=4)
        assert result.total_records == 100
        assert len(merged) == len(payload)


class TestLineSort:
    def test_text_records_sorted_by_key(self, cloud, executor):
        codec = LineRecordCodec(key_fn=lambda record: record)
        rng = random.Random(11)
        lines = [
            ("%08d-payload" % rng.randrange(10**8)).encode() for _ in range(2000)
        ]
        payload = b"".join(line + b"\n" for line in lines)
        result, merged = sort_and_collect(cloud, executor, codec, payload, workers=4)
        out_lines = merged.split(b"\n")[:-1]
        assert out_lines == sorted(lines)
        assert result.total_records == 2000

    def test_variable_length_records(self, cloud, executor):
        codec = LineRecordCodec(key_fn=lambda record: record)
        rng = random.Random(13)
        lines = [
            bytes([rng.randrange(97, 123)]) * rng.randrange(1, 40)
            for _ in range(1500)
        ]
        payload = b"".join(line + b"\n" for line in lines)
        result, merged = sort_and_collect(cloud, executor, codec, payload, workers=5)
        assert merged.split(b"\n")[:-1] == sorted(lines)


class TestPlannerIntegration:
    def test_auto_worker_selection_used(self, cloud, executor):
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        payload = make_fixed_payload(2000)
        result, merged = sort_and_collect(
            cloud, executor, codec, payload, max_workers=16
        )
        assert result.planned is not None
        assert result.workers == result.planned.workers
        assert 1 <= result.workers <= 16
        keys = [codec.key(record) for record in codec.split(merged)]
        assert keys == sorted(keys)

    def test_pinned_workers_bypass_planner(self, cloud, executor):
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        payload = make_fixed_payload(1000)
        result, _merged = sort_and_collect(cloud, executor, codec, payload, workers=6)
        assert result.planned is None
        assert result.workers == 6

    def test_empty_object_rejected(self, cloud, executor):
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        op = ShuffleSort(executor, codec)

        def driver():
            yield cloud.store.put("data", "empty.bin", b"")
            yield op.sort("data", "empty.bin", workers=2)

        with pytest.raises(ShuffleError):
            cloud.sim.run_process(driver())


class TestWriteCombiningTraffic:
    def test_map_phase_writes_one_object_per_mapper(self, cloud, executor):
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        payload = make_fixed_payload(2000)
        workers = 4
        before = cloud.store.stats.puts
        sort_and_collect(cloud, executor, codec, payload, workers=workers)
        shuffle_objects = [
            key
            for key in cloud.sim.run_process(
                iter_keys(cloud, "data", "shuffle-out/shuffle/")
            )
        ]
        # Write-combining: W combined map outputs, not W*W partitions.
        assert len(shuffle_objects) == workers

    def test_reducers_use_range_reads(self, cloud, executor):
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        payload = make_fixed_payload(2000)
        sort_and_collect(cloud, executor, codec, payload, workers=4)
        # 4 reducers x 4 mappers = 16 range GETs at least must have happened.
        assert cloud.store.stats.gets >= 16


def iter_keys(cloud, bucket, prefix):
    keys = yield cloud.store.list_keys(bucket, prefix)
    return keys


class TestDeterminism:
    def test_same_seed_same_timings(self):
        def run_once():
            cloud = Cloud.fresh(seed=99, profile=ibm_us_east())
            cloud.store.ensure_bucket("data")
            executor = FunctionExecutor(cloud)
            codec = FixedWidthCodec(record_size=16, key_bytes=8)
            payload = make_fixed_payload(1500)
            op = ShuffleSort(executor, codec)

            def driver():
                yield cloud.store.put("data", "input.bin", payload)
                return (yield op.sort("data", "input.bin", workers=4))

            result = cloud.sim.run_process(driver())
            return result.duration_s, cloud.meter.total_usd

        first = run_once()
        second = run_once()
        assert first == second

    def test_different_seeds_differ_in_timing(self):
        def run_once(seed):
            cloud = Cloud.fresh(seed=seed, profile=ibm_us_east())
            cloud.store.ensure_bucket("data")
            executor = FunctionExecutor(cloud)
            codec = FixedWidthCodec(record_size=16, key_bytes=8)
            payload = make_fixed_payload(800)
            op = ShuffleSort(executor, codec)

            def driver():
                yield cloud.store.put("data", "input.bin", payload)
                return (yield op.sort("data", "input.bin", workers=2))

            return cloud.sim.run_process(driver()).duration_s

        assert run_once(1) != run_once(2)
