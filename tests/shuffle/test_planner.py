"""Tests for the analytic shuffle planner."""

import pytest

from repro.cloud import GB, MB
from repro.cloud.profiles import ibm_us_east
from repro.errors import ShuffleError
from repro.shuffle import ShuffleCostModel, plan_shuffle, predict_shuffle_time


@pytest.fixture
def profile():
    return ibm_us_east()


class TestPredict:
    def test_breakdown_sums_to_total(self, profile):
        point = predict_shuffle_time(1 * GB, 8, profile, ShuffleCostModel())
        assert point.total_s == pytest.approx(sum(point.breakdown.values()))

    def test_invalid_workers_rejected(self, profile):
        with pytest.raises(ShuffleError):
            predict_shuffle_time(1 * GB, 0, profile, ShuffleCostModel())

    def test_bandwidth_phase_shrinks_with_workers(self, profile):
        cost = ShuffleCostModel()
        few = predict_shuffle_time(1 * GB, 2, profile, cost)
        many = predict_shuffle_time(1 * GB, 32, profile, cost)
        assert many.breakdown["map_read"] < few.breakdown["map_read"]

    def test_request_phase_grows_with_workers(self, profile):
        cost = ShuffleCostModel()
        few = predict_shuffle_time(1 * GB, 8, profile, cost)
        many = predict_shuffle_time(1 * GB, 200, profile, cost)
        assert many.breakdown["reduce_fetch"] > few.breakdown["reduce_fetch"]


class TestPlan:
    def test_interior_optimum_for_paper_size(self, profile):
        """At 3.5 GB the optimum is strictly inside (1, max): the paper's
        'appropriate number of functions' exists."""
        plan = plan_shuffle(3.5 * GB, profile, max_workers=256)
        assert 1 < plan.workers < 256

    def test_curve_is_u_shaped_around_optimum(self, profile):
        plan = plan_shuffle(3.5 * GB, profile, max_workers=256)
        by_workers = {point.workers: point.total_s for point in plan.curve}
        best = plan.workers
        assert by_workers[1] > by_workers[best]
        assert by_workers[256] > by_workers[best]

    def test_bigger_data_wants_more_workers(self, profile):
        small = plan_shuffle(256 * MB, profile, max_workers=256)
        large = plan_shuffle(14 * GB, profile, max_workers=256)
        assert large.workers > small.workers

    def test_candidates_restrict_search(self, profile):
        plan = plan_shuffle(3.5 * GB, profile, candidates=[2, 8, 32])
        assert plan.workers in (2, 8, 32)

    def test_empty_candidates_rejected(self, profile):
        with pytest.raises(ShuffleError):
            plan_shuffle(1 * GB, profile, candidates=[])

    def test_nonpositive_size_rejected(self, profile):
        with pytest.raises(ShuffleError):
            plan_shuffle(0, profile)

    def test_point_lookup(self, profile):
        plan = plan_shuffle(1 * GB, profile, candidates=[4, 8])
        assert plan.point(4).workers == 4
        with pytest.raises(ShuffleError):
            plan.point(5)

    def test_slower_store_ops_shift_optimum_down(self, profile):
        """With a lower ops/s ceiling, the W² term bites earlier, so the
        optimal worker count must not increase."""
        fast = plan_shuffle(3.5 * GB, profile, max_workers=256)
        slow_profile = ibm_us_east()
        slow_profile.objectstore.ops_per_second = 300.0
        slow = plan_shuffle(3.5 * GB, slow_profile, max_workers=256)
        assert slow.workers <= fast.workers

    def test_prediction_deterministic(self, profile):
        a = plan_shuffle(2 * GB, profile, max_workers=128)
        b = plan_shuffle(2 * GB, profile, max_workers=128)
        assert a.workers == b.workers
        assert a.predicted_s == b.predicted_s
