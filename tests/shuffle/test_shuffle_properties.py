"""Property-based tests of shuffle planners and ordering invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.profiles import ibm_us_east
from repro.shuffle import (
    CacheShuffleCostModel,
    ReversedKey,
    ShuffleCostModel,
    plan_cache_shuffle,
    plan_shuffle,
    predict_cache_shuffle_time,
    predict_shuffle_time,
    required_cache_nodes,
)

PROFILE = ibm_us_east()
NODE_TYPE = PROFILE.memstore.catalog["cache.r5.large"]


class TestPlannerProperties:
    @given(
        size=st.floats(1e6, 1e11),
        workers=st.integers(1, 512),
    )
    @settings(max_examples=80, deadline=None)
    def test_cos_breakdown_sums_to_total(self, size, workers):
        point = predict_shuffle_time(size, workers, PROFILE, ShuffleCostModel())
        assert point.total_s == pytest.approx(sum(point.breakdown.values()))
        assert point.total_s > 0

    @given(
        size=st.floats(1e6, 1e11),
        workers=st.integers(1, 512),
        nodes=st.integers(1, 8),
    )
    @settings(max_examples=80, deadline=None)
    def test_cache_breakdown_sums_to_total(self, size, workers, nodes):
        point = predict_cache_shuffle_time(
            size, workers, PROFILE, NODE_TYPE, nodes, CacheShuffleCostModel()
        )
        assert point.total_s == pytest.approx(sum(point.breakdown.values()))
        assert point.total_s > 0

    @given(
        sizes=st.tuples(st.floats(1e6, 1e10), st.floats(1e6, 1e10)),
        workers=st.integers(1, 256),
    )
    @settings(max_examples=60, deadline=None)
    def test_predictions_monotone_in_size(self, sizes, workers):
        small, large = sorted(sizes)
        cos_small = predict_shuffle_time(small, workers, PROFILE, ShuffleCostModel())
        cos_large = predict_shuffle_time(large, workers, PROFILE, ShuffleCostModel())
        assert cos_small.total_s <= cos_large.total_s * (1 + 1e-9)
        cache_small = predict_cache_shuffle_time(
            small, workers, PROFILE, NODE_TYPE, 2, CacheShuffleCostModel()
        )
        cache_large = predict_cache_shuffle_time(
            large, workers, PROFILE, NODE_TYPE, 2, CacheShuffleCostModel()
        )
        assert cache_small.total_s <= cache_large.total_s * (1 + 1e-9)

    @given(
        size=st.floats(1e8, 1e10),
        candidates=st.lists(st.integers(1, 256), min_size=1, max_size=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_plan_picks_the_curve_minimum(self, size, candidates):
        plan = plan_shuffle(size, PROFILE, candidates=candidates)
        assert plan.workers in set(candidates)
        assert plan.predicted_s == min(point.total_s for point in plan.curve)
        plan_cache = plan_cache_shuffle(
            size, PROFILE, "cache.r5.large", 2, candidates=candidates
        )
        assert plan_cache.predicted_s == min(
            point.total_s for point in plan_cache.curve
        )

    @given(size=st.floats(1e6, 1e12), headroom=st.floats(1.0, 3.0))
    @settings(max_examples=60, deadline=None)
    def test_required_nodes_actually_fit_the_data(self, size, headroom):
        nodes = required_cache_nodes(
            size, PROFILE, "cache.r5.large", headroom=headroom
        )
        usable_per_node = (
            NODE_TYPE.memory_gb * (1 << 30)
            * PROFILE.memstore.usable_memory_fraction
        )
        assert nodes >= 1
        assert nodes * usable_per_node >= size
        # Minimality: one fewer node would not fit (with headroom).
        if nodes > 1:
            assert (nodes - 1) * usable_per_node < size * headroom


class TestReversedKeyProperties:
    @given(values=st.lists(st.integers()))
    @settings(max_examples=100, deadline=None)
    def test_sorting_by_reversed_key_reverses_order(self, values):
        assert sorted(values, key=ReversedKey) == sorted(values, reverse=True)

    @given(values=st.lists(st.text()))
    @settings(max_examples=60, deadline=None)
    def test_works_for_any_comparable_type(self, values):
        assert sorted(values, key=ReversedKey) == sorted(values, reverse=True)

    @given(a=st.integers(), b=st.integers())
    @settings(max_examples=100, deadline=None)
    def test_trichotomy(self, a, b):
        ra, rb = ReversedKey(a), ReversedKey(b)
        assert (ra < rb) + (rb < ra) + (ra == rb) == 1
