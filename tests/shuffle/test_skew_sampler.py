"""Sampling and boundary selection under skew (PR 5 satellite 1).

Property-based coverage of ``reservoir_sample`` / ``choose_boundaries``
/ ``choose_weighted_boundaries`` on the inputs the uniform suite never
stressed — duplicate-heavy, constant-key, and
fewer-distinct-keys-than-partitions samples — plus the regression the
weighted mode exists for: positional quantiles on duplicate-heavy
samples emit *duplicate* boundaries, creating guaranteed-empty
partitions while the duplicated key's whole neighbourhood collapses
onto one reducer.
"""

import collections
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutorError, ShuffleError
from repro.executor.partitioner import assign_balanced
from repro.shuffle.stages import _sample_windows
from repro.shuffle import (
    SkewSpec,
    choose_boundaries,
    choose_weighted_boundaries,
    estimate_partition_weights,
    partition_index,
    partition_skew_of,
    reservoir_sample,
    skewed_fixed_payload,
    skewed_keys,
    zipf_weights,
)

#: Duplicate-heavy key pools: few distinct values, many samples.
dup_heavy_samples = st.lists(
    st.integers(0, 7), min_size=1, max_size=400
)
#: Generic pools mixing hot values with a uniform tail.
mixed_samples = st.one_of(
    dup_heavy_samples,
    st.lists(st.integers(-1000, 1000), min_size=1, max_size=400),
    st.lists(st.just(42), min_size=1, max_size=100),  # constant key
)


def spread(keys, boundaries):
    """Partition a key multiset; returns per-partition key lists."""
    buckets = [[] for _ in range(len(boundaries) + 1)]
    for key in keys:
        buckets[partition_index(key, boundaries)].append(key)
    return buckets


class TestWeightedBoundariesProperties:
    @given(keys=mixed_samples, partitions=st.integers(1, 16))
    @settings(max_examples=200)
    def test_boundaries_ascending_and_sized(self, keys, partitions):
        boundaries = choose_weighted_boundaries(keys, partitions)
        assert len(boundaries) == partitions - 1
        assert boundaries == sorted(boundaries)

    @given(keys=mixed_samples, partitions=st.integers(1, 16))
    @settings(max_examples=200)
    def test_partitions_cover_the_key_space_and_lose_nothing(
        self, keys, partitions
    ):
        """Every key lands in exactly one in-range partition and the
        reassembled partitions are the original multiset, in global
        order."""
        boundaries = choose_weighted_boundaries(keys, partitions)
        buckets = spread(keys, boundaries)
        reassembled = [key for bucket in buckets for key in sorted(bucket)]
        assert reassembled == sorted(keys)  # nothing lost, order holds
        assert collections.Counter(reassembled) == collections.Counter(keys)

    @given(keys=mixed_samples, partitions=st.integers(2, 16))
    @settings(max_examples=200)
    def test_cross_partition_order_holds(self, keys, partitions):
        boundaries = choose_weighted_boundaries(keys, partitions)
        buckets = [b for b in spread(keys, boundaries) if b]
        for left, right in zip(buckets, buckets[1:]):
            assert max(left) < min(right) or max(left) <= min(right)

    @given(keys=mixed_samples, partitions=st.integers(2, 16))
    @settings(max_examples=200)
    def test_distinct_boundaries_whenever_possible(self, keys, partitions):
        """With >= ``partitions`` distinct keys the boundaries are
        strictly ascending — no guaranteed-empty partitions."""
        distinct = len(set(keys))
        boundaries = choose_weighted_boundaries(keys, partitions)
        if distinct >= partitions:
            assert len(set(boundaries)) == len(boundaries)

    def test_constant_key_sample_degrades_gracefully(self):
        """One distinct key can fill only one partition; the weighted
        mode parks the surplus partitions empty instead of raising."""
        boundaries = choose_weighted_boundaries([7] * 50, 4)
        assert len(boundaries) == 3
        buckets = spread([7] * 50, boundaries)
        assert sum(len(b) for b in buckets) == 50
        assert sum(1 for b in buckets if b) == 1

    def test_fewer_distinct_keys_than_partitions(self):
        keys = [1] * 10 + [2] * 10
        boundaries = choose_weighted_boundaries(keys, 5)
        buckets = spread(keys, boundaries)
        assert sum(1 for b in buckets if b) == 2
        assert sorted(key for b in buckets for key in b) == sorted(keys)

    def test_rejects_empty_sample_and_bad_partitions(self):
        with pytest.raises(ShuffleError):
            choose_weighted_boundaries([], 4)
        with pytest.raises(ShuffleError):
            choose_weighted_boundaries([1], 0)
        assert choose_weighted_boundaries([1, 2], 1) == []


class TestWeightedModeRegression:
    """The edge case the weighted mode fixes, pinned as a regression."""

    # 80% of the sample is the key 5; the rest spreads around it.
    HOT = [5] * 80 + list(range(10)) + list(range(20, 30))

    def test_positional_quantiles_emit_duplicate_boundaries(self):
        """The failure mode: classic quantiles cut *positions*, so the
        hot key occupies several quantile positions and the boundary
        list repeats it — partitions between equal boundaries can never
        receive a record."""
        positional = choose_boundaries(self.HOT, 4)
        assert len(set(positional)) < len(positional)  # duplicates
        buckets = spread(self.HOT, positional)
        assert any(not b for b in buckets)  # guaranteed-empty partition

    def test_weighted_mode_fixes_it(self):
        """Weighted boundaries are distinct, no partition is empty, and
        the hot reducer's share is capped at the hot key's own mass
        instead of absorbing its neighbours too."""
        weighted = choose_weighted_boundaries(self.HOT, 4)
        assert len(set(weighted)) == len(weighted)
        buckets = spread(self.HOT, weighted)
        assert all(b for b in buckets)
        positional_max = max(
            len(b) for b in spread(self.HOT, choose_boundaries(self.HOT, 4))
        )
        weighted_max = max(len(b) for b in buckets)
        assert weighted_max <= positional_max
        assert weighted_max == self.HOT.count(5)  # the indivisible hot key

    @given(keys=dup_heavy_samples, partitions=st.integers(2, 12))
    @settings(max_examples=150)
    def test_weighted_wastes_no_partition(self, keys, partitions):
        """The defect the mode fixes, as an invariant: weighted
        boundaries leave exactly the *unavoidable* number of empty
        partitions (`max(0, partitions - distinct)`) — positional
        quantiles can park arbitrarily many extra reducers idle next to
        a mega-partition."""
        weighted_empty = sum(
            1
            for b in spread(keys, choose_weighted_boundaries(keys, partitions))
            if not b
        )
        positional_empty = sum(
            1 for b in spread(keys, choose_boundaries(keys, partitions)) if not b
        )
        assert weighted_empty == max(0, partitions - len(set(keys)))
        assert weighted_empty <= positional_empty


class TestPartitionWeightEstimates:
    @given(keys=mixed_samples, partitions=st.integers(1, 16))
    @settings(max_examples=100)
    def test_weights_are_a_distribution_matching_the_split(
        self, keys, partitions
    ):
        boundaries = choose_weighted_boundaries(keys, partitions)
        weights = estimate_partition_weights(keys, boundaries)
        assert len(weights) == partitions
        assert sum(weights) == pytest.approx(1.0)
        buckets = spread(keys, boundaries)
        for weight, bucket in zip(weights, buckets):
            assert weight == pytest.approx(len(bucket) / len(keys))

    def test_empty_sample_rejected(self):
        with pytest.raises(ShuffleError):
            estimate_partition_weights([], [1, 2])

    def test_partition_skew_of(self):
        assert partition_skew_of([]) == 1.0
        assert partition_skew_of([0.0, 0.0]) == 1.0
        assert partition_skew_of([10, 10, 10]) == pytest.approx(1.0)
        assert partition_skew_of([30, 10, 20]) == pytest.approx(1.5)


class TestSkewedWorkloadGenerator:
    def test_zipf_weights_normalized_and_ranked(self):
        weights = zipf_weights(16, 1.2)
        assert sum(weights) == pytest.approx(1.0)
        assert weights == sorted(weights, reverse=True)
        with pytest.raises(ShuffleError):
            zipf_weights(0, 1.2)
        with pytest.raises(ShuffleError):
            zipf_weights(4, 0.0)

    def test_zipf_keys_are_duplicates_with_skewed_frequencies(self):
        spec = SkewSpec(distribution="zipf", zipf_s=1.5, distinct_keys=8)
        keys = skewed_keys(5000, spec, random.Random(3))
        counts = collections.Counter(keys)
        assert len(counts) <= 8
        top = counts.most_common()[0][1] / 5000
        assert top > 2.0 / 8  # far above the uniform share

    def test_heavy_dup_keys_are_uniform_duplicates(self):
        spec = SkewSpec(distribution="heavy-dup", distinct_keys=4)
        keys = skewed_keys(4000, spec, random.Random(3))
        counts = collections.Counter(keys)
        assert len(counts) == 4
        for count in counts.values():
            assert count == pytest.approx(1000, rel=0.25)

    def test_sorted_runs_are_locally_ascending(self):
        spec = SkewSpec(distribution="sorted-runs", run_length=64)
        keys = skewed_keys(1000, spec, random.Random(3))
        for start in range(0, 1000, 64):
            run = keys[start : start + 64]
            assert run == sorted(run)
        assert keys != sorted(keys)  # but not globally sorted

    def test_deterministic_and_validated(self):
        spec = SkewSpec(distribution="zipf")
        a = skewed_keys(100, spec, random.Random(9))
        b = skewed_keys(100, spec, random.Random(9))
        assert a == b
        with pytest.raises(ShuffleError):
            skewed_keys(10, SkewSpec(distribution="gaussian"), random.Random(1))
        with pytest.raises(ShuffleError):
            skewed_keys(10, SkewSpec(distinct_keys=0), random.Random(1))
        with pytest.raises(ShuffleError):
            skewed_keys(-1, spec, random.Random(1))

    def test_fixed_payload_shape(self):
        payload = skewed_fixed_payload(100, SkewSpec(), seed=5)
        assert len(payload) == 100 * 16
        with pytest.raises(ShuffleError):
            skewed_fixed_payload(10, SkewSpec(), seed=5, record_size=4)


class TestStridedSamplingWindows:
    """The head-of-split sampling-window bugfix (PR 6 satellite).

    A single head window per sampler split only ever sees the low-key
    head of each locally-ascending run on ``sorted-runs`` inputs, so
    every boundary lands in the bottom quantiles and the last partition
    swallows most of the data.  Spreading the same sampling budget over
    ``strides`` windows restores uniform positional coverage.
    """

    @given(
        span=st.integers(1, 100_000),
        start=st.integers(0, 50_000),
        sample_bytes=st.integers(1, 20_000),
        strides=st.integers(1, 16),
    )
    @settings(max_examples=200)
    def test_windows_are_ordered_disjoint_and_budgeted(
        self, span, start, sample_bytes, strides
    ):
        end = start + span
        windows = _sample_windows(start, end, sample_bytes, strides)
        assert windows
        cursor = start
        total = 0
        for window_start, window_end in windows:
            assert start <= window_start < window_end <= end
            assert window_start >= cursor  # ordered, non-overlapping
            cursor = window_end
            total += window_end - window_start
        # The budget is respected up to the 1-byte-per-window floor.
        assert total <= max(sample_bytes, strides)

    @given(
        span=st.integers(1, 100_000),
        start=st.integers(0, 50_000),
        sample_bytes=st.integers(1, 20_000),
    )
    @settings(max_examples=100)
    def test_one_stride_is_the_old_head_window(
        self, span, start, sample_bytes
    ):
        end = start + span
        assert _sample_windows(start, end, sample_bytes, 1) == [
            (start, min(end, start + sample_bytes))
        ]

    def test_small_split_collapses_to_a_single_window(self):
        # A split no larger than the budget needs no striding at all.
        assert _sample_windows(0, 100, 200, 4) == [(0, 100)]

    # -- the boundary-mass property the fix exists for -----------------
    RECORD = 16
    COUNT = 4096
    RUN = 512
    SAMPLERS = 8
    PARTITIONS = 8
    SAMPLE_BYTES = 64 * RECORD

    def max_partition_share(self, keys, strides):
        """Max partition mass share after sampling with ``strides``
        windows per (run-aligned) sampler split — the sampler's byte
        windows replayed over an in-memory key list."""
        total = len(keys) * self.RECORD
        per_split = total // self.SAMPLERS
        sampled = []
        for sampler in range(self.SAMPLERS):
            start = sampler * per_split
            for window_start, window_end in _sample_windows(
                start, start + per_split, self.SAMPLE_BYTES, strides
            ):
                sampled.extend(
                    keys[window_start // self.RECORD : window_end // self.RECORD]
                )
        boundaries = choose_weighted_boundaries(sampled, self.PARTITIONS)
        buckets = spread(keys, boundaries)
        return max(len(bucket) for bucket in buckets) / len(keys)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_strided_windows_fix_sorted_runs_boundary_bias(self, seed):
        """On run-aligned splits the head window samples only each run's
        lowest keys: boundaries collapse into the bottom quantiles and
        one partition takes ~90% of the mass.  Four strides over the
        *same* budget keep the heaviest partition near its fair share."""
        spec = SkewSpec(distribution="sorted-runs", run_length=self.RUN)
        keys = skewed_keys(self.COUNT, spec, random.Random(seed))
        head_share = self.max_partition_share(keys, strides=1)
        strided_share = self.max_partition_share(keys, strides=4)
        assert strided_share <= head_share
        assert head_share > 0.75  # the bias is catastrophic...
        assert strided_share < 0.40  # ...and striding removes it


class TestAssignBalanced:
    def test_balances_skewed_weights(self):
        weights = [8.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.0]
        assignment = assign_balanced(weights, 2)
        loads = [0.0, 0.0]
        for weight, bin_index in zip(weights, assignment):
            loads[bin_index] += weight
        assert max(loads) == 8.0  # the indivisible hot item alone

    def test_deterministic(self):
        weights = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        assert assign_balanced(weights, 3) == assign_balanced(weights, 3)

    @given(
        weights=st.lists(st.floats(0, 100), min_size=0, max_size=64),
        bins=st.integers(1, 8),
    )
    @settings(max_examples=100)
    def test_property_within_lpt_bound(self, weights, bins):
        """LPT's classic guarantee: max load <= ideal * 4/3 + max item."""
        assignment = assign_balanced(weights, bins)
        assert len(assignment) == len(weights)
        assert all(0 <= b < bins for b in assignment)
        loads = [0.0] * bins
        for weight, bin_index in zip(weights, assignment):
            loads[bin_index] += weight
        ideal = sum(weights) / bins
        biggest = max(weights, default=0.0)
        assert max(loads, default=0.0) <= ideal * 4 / 3 + biggest + 1e-9

    def test_rejects_bad_input(self):
        with pytest.raises(ExecutorError):
            assign_balanced([1.0], 0)
        with pytest.raises(ExecutorError):
            assign_balanced([-1.0], 2)
