"""Content-addressed exchange: CAS core, dedup, manifests, lineage.

The invariant under test throughout: content addressing only ever
changes *timing and billing* — never artifact bytes.  Dedup'd runs stay
byte-identical to legacy runs, lineage hits return the exact prior
manifest, and the hash-chained :class:`RunManifest` re-derives offline
and fails loudly on any tampered section or mutated stored artifact.
"""

import pytest

from repro.cas import (
    cas_enabled,
    content_hash,
    output_digest,
    sha256_hex,
    stable_serialize,
)
from repro.cloud import Cloud, MB
from repro.cloud.profiles import ALLKEYS_LRU, ibm_us_east
from repro.cloud.vm.fleet import fleet_ready
from repro.cloud.vm.relay import relay_ready
from repro.executor import FunctionExecutor
from repro.shuffle import (
    CacheShuffleSort,
    FixedWidthCodec,
    RelayShuffleSort,
    ShardedRelayShuffleSort,
    ShuffleSort,
)
from repro.shuffle.content import (
    LineageCache,
    RunManifest,
    build_run_manifest,
    derive_chain,
    lineage_cache_for,
    verify_manifest,
    verify_manifest_file,
)

RECORD_A = (1).to_bytes(8, "big") + bytes(8)
RECORD_B = (2).to_bytes(8, "big") + bytes(8)


def make_dup_payload(pairs=100):
    """Alternating two-key payload: every equal input split is identical,
    so mapper outputs and per-reducer chunks duplicate across mappers."""
    return (RECORD_A + RECORD_B) * pairs


def run_sort(substrate, payload, *, workers=2, seed=7):
    """One staged sort on a fresh region; returns (runs_bytes, operator, cloud)."""
    cloud = Cloud.fresh(seed=seed, profile=ibm_us_east(deterministic=True))
    cloud.store.ensure_bucket("data")
    executor = FunctionExecutor(cloud)
    codec = FixedWidthCodec(record_size=16, key_bytes=8)
    if substrate == "objectstore":
        operator = ShuffleSort(executor, codec)
    elif substrate == "cache":
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=2)
        operator = CacheShuffleSort(executor, codec, cluster)
    elif substrate == "sharded-relay":
        fleet = fleet_ready(cloud.vms, "bx2-8x32", shards=2)
        operator = ShardedRelayShuffleSort(executor, codec, fleet)
    else:
        relay = relay_ready(cloud.vms, "bx2-8x32")
        operator = RelayShuffleSort(executor, codec, relay)

    def driver():
        yield cloud.store.put("data", "input.bin", payload)
        return (yield operator.sort("data", "input.bin", workers=workers))

    result = cloud.sim.run_process(driver())
    runs = [cloud.store.peek("data", run.key) for run in result.runs]
    return runs, operator, cloud, result


SUBSTRATES = ("objectstore", "cache", "relay", "sharded-relay")


class TestStableSerialize:
    def test_type_tags_disambiguate(self):
        assert stable_serialize("1") != stable_serialize(1)
        assert stable_serialize(b"1") != stable_serialize("1")
        assert stable_serialize(True) != stable_serialize(1)
        assert stable_serialize(1.0) != stable_serialize(1)
        assert stable_serialize(None) != stable_serialize("")

    def test_length_prefixes_prevent_concatenation_collisions(self):
        assert content_hash(["ab", "c"]) != content_hash(["a", "bc"])
        assert content_hash([["a"], "b"]) != content_hash(["a", ["b"]])
        assert content_hash({"ab": "c"}) != content_hash({"a": "bc"})

    def test_dict_order_insensitive(self):
        assert content_hash({"a": 1, "b": 2}) == content_hash({"b": 2, "a": 1})

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            stable_serialize(object())
        with pytest.raises(TypeError):
            content_hash({"x": {1, 2}})

    def test_cas_enabled_gate(self, monkeypatch):
        monkeypatch.delenv("REPRO_CAS", raising=False)
        assert cas_enabled()
        for value in ("0", "false", "no", "off", " OFF "):
            monkeypatch.setenv("REPRO_CAS", value)
            assert not cas_enabled()
        monkeypatch.setenv("REPRO_CAS", "1")
        assert cas_enabled()


class TestCosDedup:
    @pytest.fixture
    def cloud(self):
        cloud = Cloud.fresh(seed=3, profile=ibm_us_east(deterministic=True))
        cloud.store.ensure_bucket("data")
        cloud.store.ensure_bucket("other")
        return cloud

    def run(self, cloud, generator):
        return cloud.sim.run_process(generator)

    def test_second_identical_put_short_circuits(self, cloud):
        payload = b"x" * 4096

        def scenario():
            yield cloud.store.put("data", "k1", payload, dedup=True)
            yield cloud.store.put("data", "k2", payload, dedup=True)

        self.run(cloud, scenario())
        assert cloud.store.stats.dedup_ops == 1
        assert cloud.store.stats.dedup_bytes == pytest.approx(len(payload))
        # The dedup'd PUT still stores real bytes under its own key.
        assert cloud.store.peek("data", "k2") == payload
        assert cloud.store.peek("data", "k1") == payload

    def test_dedup_is_opt_in(self, cloud):
        payload = b"y" * 1024

        def scenario():
            yield cloud.store.put("data", "k1", payload, dedup=True)
            yield cloud.store.put("data", "k2", payload)  # legacy path

        self.run(cloud, scenario())
        assert cloud.store.stats.dedup_ops == 0

    def test_bucket_scopes_the_index(self, cloud):
        """Same bytes in another bucket are a different dedup domain —
        collision-shaped sharing across buckets must not alias."""
        payload = b"z" * 2048

        def scenario():
            yield cloud.store.put("data", "k", payload, dedup=True)
            yield cloud.store.put("other", "k", payload, dedup=True)

        self.run(cloud, scenario())
        assert cloud.store.stats.dedup_ops == 0

    def test_overwritten_referent_degrades_to_normal_put(self, cloud):
        """Byte-equality guard: if the indexed referent no longer holds
        the bytes, the PUT transfers instead of aliasing."""
        payload = b"a" * 1000

        def scenario():
            yield cloud.store.put("data", "k1", payload, dedup=True)
            yield cloud.store.put("data", "k1", b"b" * 1000)  # overwrite
            yield cloud.store.put("data", "k2", payload, dedup=True)

        self.run(cloud, scenario())
        assert cloud.store.stats.dedup_ops == 0
        assert cloud.store.peek("data", "k2") == payload

    def test_empty_payload_never_dedups(self, cloud):
        def scenario():
            yield cloud.store.put("data", "e1", b"", dedup=True)
            yield cloud.store.put("data", "e2", b"", dedup=True)

        self.run(cloud, scenario())
        assert cloud.store.stats.dedup_ops == 0

    def test_env_off_disables_dedup(self, cloud, monkeypatch):
        monkeypatch.setenv("REPRO_CAS", "off")
        payload = b"q" * 512

        def scenario():
            yield cloud.store.put("data", "k1", payload, dedup=True)
            yield cloud.store.put("data", "k2", payload, dedup=True)

        self.run(cloud, scenario())
        assert cloud.store.stats.dedup_ops == 0
        assert cloud.store.cas_entries("k") == []

    def test_cas_entries_prefix_filtering(self, cloud):
        """Prefix-sharing keys (``out/`` vs ``outlier/``) must separate
        under the slash-terminated prefixes the operators use."""

        def scenario():
            yield cloud.store.put("data", "out/a", b"1" * 64, dedup=True)
            yield cloud.store.put("data", "outlier/b", b"2" * 64, dedup=True)

        self.run(cloud, scenario())
        keys = [key for key, _sha, _logical in cloud.store.cas_entries("out/")]
        assert keys == ["out/a"]
        shas = dict(
            (key, sha) for key, sha, _logical in cloud.store.cas_entries("out")
        )
        assert shas == {
            "out/a": sha256_hex(b"1" * 64),
            "outlier/b": sha256_hex(b"2" * 64),
        }


class TestCacheDedupEviction:
    """Satellite: dedup refcounts vs LRU eviction.

    An evicting node tombstones content keys; a dedup'd write whose
    referent vanished between the residency check and the store must
    transparently re-send the bytes instead of raising, and the final
    values must be byte-correct.
    """

    @staticmethod
    def _tiny_cluster():
        profile = ibm_us_east(deterministic=True)
        profile.memstore.usable_memory_fraction = 1.0
        profile.memstore.catalog = {
            "tiny": type(next(iter(profile.memstore.catalog.values())))(
                name="tiny",
                memory_gb=1024 / (1 << 30),
                nic_bandwidth=100 * MB,
                hourly_usd=0.1,
            )
        }
        profile.memstore.eviction_policy = ALLKEYS_LRU
        cloud = Cloud.fresh(seed=5, profile=profile)
        return cloud, cloud.cache.provision_ready("tiny")

    def test_mset_dedups_resident_values(self):
        cloud, cluster = self._tiny_cluster()
        client = cluster.client()
        value = b"v" * 200

        def scenario():
            # Residency is checked against what the shard held *before*
            # the batch, so seed the content in its own batch first.
            yield client.mset([("seed", value)])
            yield client.mset([("a", value), ("b", value)])
            return (yield client.mget(["a", "b"]))

        assert cloud.sim.run_process(scenario()) == [value, value]
        totals = cluster.stats_totals()
        assert totals["dedup_hits"] == 2
        assert totals["dedup_bytes"] == pytest.approx(400.0)

    def test_evicted_referent_mid_batch_restores_and_keeps_bytes(self):
        """The race itself: the batch marks a value dedup'd while its
        referent is resident, fillers in the same batch evict it, and
        the store-time recheck re-sends the bytes."""
        cloud, cluster = self._tiny_cluster()
        client = cluster.client()
        dup = b"x" * 300
        filler_one = b"f" * 500
        filler_two = b"g" * 500

        def scenario():
            yield client.mset([("seed", dup)])
            # One batch on the single node: "a" and "b" pass the
            # residency check, then the fillers evict both referents
            # before "b" stores.
            yield client.mset(
                [("a", dup), ("f1", filler_one), ("f2", filler_two), ("b", dup)]
            )
            return (yield client.mget(["b"]))

        assert cloud.sim.run_process(scenario()) == [dup]
        totals = cluster.stats_totals()
        assert totals["dedup_hits"] == 1  # "a" rode as a reference
        assert totals["dedup_restores"] == 1  # "b" was re-sent
        assert totals["evictions"] >= 2
        # The evicted referents are tombstoned, not silently absent.
        assert cluster.nodes[0].was_evicted("seed")

    def test_dedup_respects_env_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAS", "0")
        cloud, cluster = self._tiny_cluster()
        client = cluster.client()
        value = b"v" * 100

        def scenario():
            yield client.mset([("a", value), ("b", value)])
            return (yield client.mget(["a", "b"]))

        assert cloud.sim.run_process(scenario()) == [value, value]
        assert cluster.stats_totals()["dedup_hits"] == 0
        assert cluster.cas_entries("") == []


def run_cold_warm(substrate, payload, *, seed=7):
    """The same sort twice on one cloud (distinct output prefixes).

    Returns ``(cold_runs, warm_runs, warm_dedup_bytes)``; the report is
    a per-sort delta, so the reused operator's second report covers the
    warm run alone.
    """
    cloud = Cloud.fresh(seed=seed, profile=ibm_us_east(deterministic=True))
    cloud.store.ensure_bucket("data")
    executor = FunctionExecutor(cloud)
    codec = FixedWidthCodec(record_size=16, key_bytes=8)
    if substrate == "objectstore":
        operator = ShuffleSort(executor, codec)
    elif substrate == "cache":
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=2)
        operator = CacheShuffleSort(executor, codec, cluster)
    elif substrate == "sharded-relay":
        fleet = fleet_ready(cloud.vms, "bx2-8x32", shards=2)
        operator = ShardedRelayShuffleSort(executor, codec, fleet)
    else:
        relay = relay_ready(cloud.vms, "bx2-8x32")
        operator = RelayShuffleSort(executor, codec, relay)

    def driver():
        yield cloud.store.put("data", "input.bin", payload)
        cold = yield operator.sort(
            "data", "input.bin", workers=2, out_prefix="cold"
        )
        warm = yield operator.sort(
            "data", "input.bin", workers=2, out_prefix="warm"
        )
        return cold, warm

    cold, warm = cloud.sim.run_process(driver())
    cold_runs = [cloud.store.peek("data", run.key) for run in cold.runs]
    warm_runs = [cloud.store.peek("data", run.key) for run in warm.runs]
    return cold_runs, warm_runs, operator.report.extra.get("dedup_bytes", 0)


class TestSortDedupParity:
    @pytest.mark.parametrize("substrate", SUBSTRATES)
    def test_warm_rerun_dedups_at_byte_parity(self, substrate, monkeypatch):
        payload = make_dup_payload(pairs=200)
        cold_on, warm_on, warm_dedup = run_cold_warm(substrate, payload)
        assert warm_dedup > 0
        assert cold_on == warm_on

        monkeypatch.setenv("REPRO_CAS", "off")
        cold_off, warm_off, off_dedup = run_cold_warm(substrate, payload)
        assert off_dedup == 0
        # The gate changes billing/wire accounting, never bytes.
        assert cold_on == cold_off
        assert warm_on == warm_off

    def test_dedup_counter_published(self):
        from repro.obs.metrics import reset_registry, registry

        reset_registry()
        run_cold_warm("objectstore", make_dup_payload(pairs=100))
        counter = registry().get("repro_dedup_bytes_total")
        assert counter is not None
        samples = dict(counter.samples())
        total = sum(
            value
            for key, value in samples.items()
            if ("substrate", "objectstore") in key
        )
        assert total > 0


class TestRunManifest:
    def test_chain_links_cover_prior_sections(self):
        chain = derive_chain({"k": 1}, {"d": 2}, [], [])
        assert chain["h0"] == content_hash({"k": 1})
        assert chain["h1"] == content_hash([chain["h0"], {"d": 2}])
        assert chain["manifest"] == content_hash(
            [chain["h0"], chain["h1"], chain["h2"], chain["h3"]]
        )

    @pytest.mark.parametrize("substrate", SUBSTRATES)
    def test_sort_emits_verifiable_manifest(self, substrate):
        payload = make_dup_payload(pairs=150)
        runs, operator, cloud, result = run_sort(substrate, payload)
        manifest = operator.run_manifest
        assert manifest is not None
        assert verify_manifest(manifest) == []
        assert verify_manifest(manifest, store=cloud.store) == []
        assert manifest.chunks, "exchange chunks must be content-logged"
        assert [entry["key"] for entry in manifest.outputs] == [
            run.key for run in result.runs
        ]
        for entry, data in zip(manifest.outputs, runs):
            assert entry["sha256"] == sha256_hex(data)

    def test_tampered_sections_fail_loudly(self):
        _runs, operator, cloud, _result = run_sort(
            "objectstore", make_dup_payload(pairs=100)
        )
        manifest = operator.run_manifest
        payload = manifest.to_dict()
        payload["chunks"][0]["sha256"] = "0" * 64
        problems = verify_manifest(payload)
        assert any("h2" in problem for problem in problems)

        payload = manifest.to_dict()
        payload["outputs"][0]["sha256"] = "f" * 64
        problems = verify_manifest(payload)
        assert any("h3" in problem for problem in problems)

        payload = manifest.to_dict()
        payload["chain"]["manifest"] = "0" * 64
        assert verify_manifest(payload)

    def test_mutated_stored_artifact_fails_store_verify(self):
        _runs, operator, cloud, result = run_sort(
            "objectstore", make_dup_payload(pairs=100)
        )
        manifest = operator.run_manifest
        victim = result.runs[0]

        def tamper():
            yield cloud.store.put(victim.bucket, victim.key, b"\x00" * 64)

        cloud.sim.run_process(tamper())
        # Offline chain still verifies — the manifest was not touched...
        assert verify_manifest(manifest) == []
        # ...but the store-backed check catches the mutated artifact.
        problems = verify_manifest(manifest, store=cloud.store)
        assert any("tampered" in problem for problem in problems)

    def test_json_round_trip_and_cli(self, tmp_path, capsys):
        from repro.experiments.cli import main

        _runs, operator, _cloud, _result = run_sort(
            "objectstore", make_dup_payload(pairs=100)
        )
        manifest = operator.run_manifest
        restored = RunManifest.from_json(manifest.to_json())
        assert verify_manifest(restored) == []

        path = tmp_path / "manifest.json"
        path.write_text(manifest.to_json(), encoding="utf-8")
        assert verify_manifest_file(str(path)) == []
        assert main(["replay-verify", "--manifest", str(path)]) == 0
        assert "PASS" in capsys.readouterr().out

        tampered = manifest.to_dict()
        tampered["decision"]["substrate"] = "tampered"
        bad = tmp_path / "tampered.json"
        import json

        bad.write_text(json.dumps(tampered), encoding="utf-8")
        assert main(["replay-verify", "--manifest", str(bad)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_env_off_skips_manifest(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAS", "no")
        _runs, operator, _cloud, _result = run_sort(
            "objectstore", make_dup_payload(pairs=100)
        )
        assert operator.run_manifest is None


class TestLineageCache:
    @staticmethod
    def _run_auto(cloud, config, sort_params, name):
        from repro.workflows import WorkflowEngine
        from repro.workflows.dag import StageSpec, WorkflowDag

        dag = WorkflowDag(
            name,
            [
                StageSpec("ingest", "dataset_ref",
                          params={"key": "input/methylome.bed"}),
                StageSpec("sort", "auto_sort", after=("ingest",),
                          params=sort_params),
            ],
            bucket="pipeline",
        )
        engine = WorkflowEngine(cloud, dag)
        engine.workload = config.workload
        return engine.execute()

    @staticmethod
    def _fresh(config):
        from repro.core import stage_input
        from repro.sim import Simulator

        cloud = Cloud(Simulator(seed=7), config.make_profile())
        stage_input(cloud, config, "pipeline", "input/methylome.bed")
        return cloud

    def test_warm_rerun_hits_and_is_cheaper(self):
        from repro.core import ExperimentConfig

        config = ExperimentConfig(logical_scale=4096.0)
        cloud = self._fresh(config)
        params = {"workers": 4, "memory_mb": 2048}

        cold_marker = cloud.meter.snapshot()
        cold_start = cloud.sim.now
        cold = self._run_auto(cloud, config, params, "lineage-cold")
        cold_cost = cloud.meter.since(cold_marker).total_usd
        cold_latency = cloud.sim.now - cold_start
        assert cold.artifacts["sort"]["lineage"] == "miss"
        assert "lineage_key" in cold.artifacts["sort"]

        warm_marker = cloud.meter.snapshot()
        warm_start = cloud.sim.now
        warm = self._run_auto(cloud, config, params, "lineage-warm")
        warm_cost = cloud.meter.since(warm_marker).total_usd
        warm_latency = cloud.sim.now - warm_start

        artifact = warm.artifacts["sort"]
        assert artifact["lineage"] == "hit"
        assert artifact["lineage_hits"] == 1
        assert artifact["runs"] == cold.artifacts["sort"]["runs"]
        # The hit is priced at control-plane cost: one HEAD, no sort.
        assert warm_cost < cold_cost / 10
        assert warm_latency < cold_latency / 10

    def test_changed_plan_misses(self):
        from repro.core import ExperimentConfig

        config = ExperimentConfig(logical_scale=4096.0)
        cloud = self._fresh(config)
        first = self._run_auto(
            cloud, config, {"workers": 4, "memory_mb": 2048}, "plan-a"
        )
        second = self._run_auto(
            cloud, config, {"workers": 3, "memory_mb": 2048}, "plan-b"
        )
        assert first.artifacts["sort"]["lineage"] == "miss"
        assert second.artifacts["sort"]["lineage"] == "miss"
        assert len(lineage_cache_for(cloud.store)) == 2

    def test_deleted_output_degrades_to_miss(self):
        from repro.core import ExperimentConfig

        config = ExperimentConfig(logical_scale=4096.0)
        cloud = self._fresh(config)
        params = {"workers": 4, "memory_mb": 2048}
        cold = self._run_auto(cloud, config, params, "degrade-cold")
        victim = cold.artifacts["sort"]["runs"][0]

        def wipe():
            yield cloud.store.delete(victim["bucket"], victim["key"])

        cloud.sim.run_process(wipe())
        rerun = self._run_auto(cloud, config, params, "degrade-rerun")
        assert rerun.artifacts["sort"]["lineage"] == "miss"

    def test_env_off_skips_lineage(self, monkeypatch):
        from repro.core import ExperimentConfig

        monkeypatch.setenv("REPRO_CAS", "false")
        config = ExperimentConfig(logical_scale=4096.0)
        cloud = self._fresh(config)
        params = {"workers": 4, "memory_mb": 2048}
        first = self._run_auto(cloud, config, params, "off-a")
        second = self._run_auto(cloud, config, params, "off-b")
        assert "lineage" not in first.artifacts["sort"]
        assert "lineage" not in second.artifacts["sort"]

    def test_fingerprint_is_stable_data(self):
        fingerprint = LineageCache.fingerprint(
            {"bucket": "b", "key": "k", "etag": "e", "logical_size": 1.0},
            {"workers": 4},
        )
        assert len(fingerprint) == 64
        assert fingerprint == LineageCache.fingerprint(
            {"logical_size": 1.0, "etag": "e", "key": "k", "bucket": "b"},
            {"workers": 4},
        )
