"""Unit and property tests for record codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ShuffleError
from repro.shuffle import FixedWidthCodec, LineRecordCodec


def line_codec():
    return LineRecordCodec(key_fn=lambda record: record)


class TestLineRecordCodec:
    def test_split_join_roundtrip(self):
        codec = line_codec()
        buffer = b"b\na\nc\n"
        records = codec.split(buffer)
        assert records == [b"b\n", b"a\n", b"c\n"]
        assert codec.join(records) == buffer

    def test_split_requires_trailing_newline(self):
        with pytest.raises(ShuffleError):
            line_codec().split(b"torn-record")

    def test_split_empty_buffer(self):
        assert line_codec().split(b"") == []

    def test_key_strips_newline(self):
        codec = LineRecordCodec(key_fn=lambda record: record.decode())
        assert codec.key(b"hello\n") == "hello"

    def test_extract_split_first(self):
        codec = line_codec()
        owned = codec.extract_split(
            b"aa\nbb\ncc", b"c-end\nddd\n", is_first=True, at_end=False, global_start=0
        )
        assert owned == b"aa\nbb\ncc" + b"c-end\n"

    def test_extract_split_middle_skips_torn_head(self):
        codec = line_codec()
        owned = codec.extract_split(
            b"torn\nfull\npart", b"ial\nnext\n", is_first=False, at_end=False,
            global_start=100,
        )
        assert owned == b"full\npartial\n"

    def test_extract_split_at_end_takes_tail(self):
        codec = line_codec()
        owned = codec.extract_split(
            b"torn\nlast\n", b"", is_first=False, at_end=True, global_start=50
        )
        assert owned == b"last\n"

    def test_extract_split_swallowed_by_previous(self):
        codec = line_codec()
        owned = codec.extract_split(
            b"no-newline-at-all", b"tail\n", is_first=False, at_end=False,
            global_start=10,
        )
        assert owned == b""

    def test_peek_window_too_small_raises(self):
        codec = line_codec()
        with pytest.raises(ShuffleError):
            codec.extract_split(
                b"a\nbbb", b"no-newline", is_first=True, at_end=False, global_start=0
            )

    def test_sample_window_drops_torn_edges(self):
        codec = line_codec()
        records = codec.sample_window(
            b"torn\nfull1\nfull2\npartia", is_first=False, global_start=10
        )
        assert records == [b"full1\n", b"full2\n"]

    def test_sample_window_first_keeps_head(self):
        codec = line_codec()
        records = codec.sample_window(b"full0\nfull1\npar", is_first=True, global_start=0)
        assert records == [b"full0\n", b"full1\n"]

    @given(
        records=st.lists(
            st.binary(min_size=1, max_size=12).filter(lambda b: b"\n" not in b),
            min_size=1,
            max_size=40,
        ),
        parts=st.integers(1, 8),
    )
    def test_property_splits_preserve_all_records(self, records, parts):
        codec = line_codec()
        payload = codec.join(r + b"\n" for r in records)
        size = len(payload)
        boundaries = [size * i // parts for i in range(parts + 1)]
        recovered = []
        for index in range(parts):
            start, end = boundaries[index], boundaries[index + 1]
            if start == end:
                continue
            base = payload[start:end]
            tail = payload[end:]
            owned = codec.extract_split(
                base,
                tail,
                is_first=(start == 0),
                at_end=(end == size),
                global_start=start,
            )
            recovered.extend(codec.split(owned))
        assert codec.join(recovered) == payload


class TestFixedWidthCodec:
    def test_split_join_roundtrip(self):
        codec = FixedWidthCodec(record_size=4, key_bytes=2)
        buffer = b"aaaabbbbcccc"
        records = codec.split(buffer)
        assert records == [b"aaaa", b"bbbb", b"cccc"]
        assert codec.join(records) == buffer

    def test_split_rejects_misaligned_buffer(self):
        with pytest.raises(ShuffleError):
            FixedWidthCodec(4).split(b"aaaabb")

    def test_key_is_big_endian_prefix(self):
        codec = FixedWidthCodec(record_size=4, key_bytes=2)
        assert codec.key(b"\x01\x02xx") == 0x0102

    def test_invalid_construction(self):
        with pytest.raises(ShuffleError):
            FixedWidthCodec(0)
        with pytest.raises(ShuffleError):
            FixedWidthCodec(4, key_bytes=5)

    def test_extract_split_aligns_to_record_grid(self):
        codec = FixedWidthCodec(record_size=4)
        # Split [6, 14) of a stream of 4-byte records: the record at 4-7
        # belongs to the previous split, the first owned record starts at
        # 8, and the record at 12-15 needs 2 peek bytes beyond the split.
        base = b"67" + b"89ab" + b"cd"  # bytes at positions 6..13
        tail = b"ef"  # bytes at positions 14..15
        owned = codec.extract_split(
            base, tail, is_first=False, at_end=False, global_start=6
        )
        assert owned == b"89ab" + b"cdef"

    def test_extract_split_exact_alignment_needs_no_tail(self):
        codec = FixedWidthCodec(record_size=4)
        owned = codec.extract_split(
            b"aaaabbbb", b"ignored", is_first=True, at_end=False, global_start=0
        )
        assert owned == b"aaaabbbb"

    def test_torn_object_end_raises(self):
        codec = FixedWidthCodec(record_size=4)
        with pytest.raises(ShuffleError):
            codec.extract_split(b"aaaab", b"", is_first=True, at_end=True, global_start=0)

    def test_sample_window_truncates(self):
        codec = FixedWidthCodec(record_size=4)
        records = codec.sample_window(b"xaaaabbbbcc", is_first=False, global_start=3)
        assert records == [b"aaaa", b"bbbb"]

    @given(
        count=st.integers(1, 50),
        parts=st.integers(1, 8),
        record_size=st.integers(2, 9),
    )
    def test_property_splits_preserve_all_records(self, count, parts, record_size):
        codec = FixedWidthCodec(record_size=record_size, key_bytes=1)
        payload = bytes(
            (index * 7 + offset) % 256
            for index in range(count)
            for offset in range(record_size)
        )
        size = len(payload)
        boundaries = [size * i // parts for i in range(parts + 1)]
        recovered = []
        for index in range(parts):
            start, end = boundaries[index], boundaries[index + 1]
            if start == end:
                continue
            owned = codec.extract_split(
                payload[start:end],
                payload[end:],
                is_first=(start == 0),
                at_end=(end == size),
                global_start=start,
            )
            recovered.extend(codec.split(owned))
        assert codec.join(recovered) == payload


class TestLineSplitOffsets:
    """PR 8 satellite: ``LineRecordCodec.split`` slices by newline
    offsets instead of splitting then re-concatenating ``+ b"\\n"`` per
    line.  The regression pins byte-identical output — including the
    final record — against the old double-materializing implementation.
    """

    @staticmethod
    def _old_split(buffer):
        return [line + b"\n" for line in buffer.split(b"\n")[:-1]]

    @given(
        lines=st.lists(
            st.binary(max_size=20).map(lambda b: b.replace(b"\n", b"x")),
            max_size=60,
        )
    )
    def test_property_matches_old_split(self, lines):
        codec = line_codec()
        payload = b"".join(line + b"\n" for line in lines)
        assert codec.split(payload) == self._old_split(payload)

    def test_no_trailing_record_loss(self):
        codec = line_codec()
        records = codec.split(b"first\nsecond\nlast\n")
        assert records == [b"first\n", b"second\n", b"last\n"]
        assert records[-1] == b"last\n"

    def test_empty_lines_preserved(self):
        codec = line_codec()
        assert codec.split(b"\n\na\n\n") == [b"\n", b"\n", b"a\n", b"\n"]

    def test_records_are_buffer_slices_not_rebuilt(self):
        codec = line_codec()
        payload = b"abc\ndef\n"
        assert b"".join(codec.split(payload)) == payload
