"""Unit and property tests for sampling and boundary selection."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ShuffleError
from repro.shuffle import choose_boundaries, partition_index, reservoir_sample


class TestReservoirSample:
    def test_short_input_kept_entirely(self):
        rng = random.Random(1)
        assert sorted(reservoir_sample(range(5), 10, rng)) == [0, 1, 2, 3, 4]

    def test_capacity_respected(self):
        rng = random.Random(1)
        sample = reservoir_sample(range(1000), 32, rng)
        assert len(sample) == 32
        assert all(0 <= item < 1000 for item in sample)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ShuffleError):
            reservoir_sample(range(5), 0, random.Random(1))

    def test_deterministic_for_seed(self):
        a = reservoir_sample(range(1000), 16, random.Random(7))
        b = reservoir_sample(range(1000), 16, random.Random(7))
        assert a == b

    def test_roughly_uniform(self):
        """Mean of many samples approaches the population mean."""
        rng = random.Random(3)
        means = []
        for _ in range(200):
            sample = reservoir_sample(range(1000), 20, rng)
            means.append(sum(sample) / len(sample))
        grand_mean = sum(means) / len(means)
        assert grand_mean == pytest.approx(499.5, abs=25)


class TestChooseBoundaries:
    def test_single_partition_no_boundaries(self):
        assert choose_boundaries([5, 1, 3], 1) == []

    def test_boundaries_are_ascending_quantiles(self):
        keys = list(range(100))
        boundaries = choose_boundaries(keys, 4)
        assert boundaries == [25, 50, 75]

    def test_empty_sample_rejected(self):
        with pytest.raises(ShuffleError):
            choose_boundaries([], 4)

    def test_invalid_partitions_rejected(self):
        with pytest.raises(ShuffleError):
            choose_boundaries([1], 0)

    def test_few_distinct_keys_degrade_gracefully(self):
        boundaries = choose_boundaries([7, 7, 7], 4)
        assert len(boundaries) == 3  # duplicates allowed; partitions may be empty

    @given(
        keys=st.lists(st.integers(-1000, 1000), min_size=1, max_size=500),
        partitions=st.integers(1, 16),
    )
    def test_property_boundaries_sorted_and_sized(self, keys, partitions):
        boundaries = choose_boundaries(keys, partitions)
        assert len(boundaries) == partitions - 1
        assert boundaries == sorted(boundaries)


class TestPartitionIndex:
    def test_no_boundaries_single_partition(self):
        assert partition_index(42, []) == 0

    def test_standard_ranges(self):
        boundaries = [10, 20, 30]
        assert partition_index(5, boundaries) == 0
        assert partition_index(10, boundaries) == 1  # boundary goes right
        assert partition_index(15, boundaries) == 1
        assert partition_index(29, boundaries) == 2
        assert partition_index(30, boundaries) == 3
        assert partition_index(99, boundaries) == 3

    @given(
        keys=st.lists(st.integers(-10_000, 10_000), min_size=1, max_size=300),
        partitions=st.integers(1, 12),
    )
    def test_property_partitioning_preserves_order(self, keys, partitions):
        """Records in partition i all sort before records in partition i+1
        (ties at boundaries go right, so cross-partition order holds)."""
        boundaries = choose_boundaries(keys, partitions)
        buckets = {}
        for key in keys:
            buckets.setdefault(partition_index(key, boundaries), []).append(key)
        indices = sorted(buckets)
        for left, right in zip(indices, indices[1:]):
            assert max(buckets[left]) <= min(buckets[right])

    @given(keys=st.lists(st.integers(), min_size=1, max_size=200))
    def test_property_concatenated_partitions_sort_globally(self, keys):
        boundaries = choose_boundaries(keys, 4)
        buckets = [[] for _ in range(4)]
        for key in keys:
            buckets[partition_index(key, boundaries)].append(key)
        concatenated = [k for bucket in buckets for k in sorted(bucket)]
        assert concatenated == sorted(keys)


class TestPartitionIndexBisect:
    """PR 8 satellite: ``partition_index`` is now ``bisect_right``.

    The reference below is the O(P) linear scan the original
    implementation was defined against — the property pins exact
    equivalence on every (key, boundaries) pair, including duplicated
    boundaries and keys outside the boundary range.
    """

    @staticmethod
    def _linear_scan(key, boundaries):
        for index, boundary in enumerate(boundaries):
            if key < boundary:
                return index
        return len(boundaries)

    @given(
        key=st.integers(-(10**9), 10**9),
        boundaries=st.lists(st.integers(-(10**6), 10**6), max_size=32).map(sorted),
    )
    def test_property_matches_linear_scan(self, key, boundaries):
        assert partition_index(key, boundaries) == self._linear_scan(
            key, boundaries
        )

    @given(
        boundaries=st.lists(
            st.integers(0, 50), min_size=1, max_size=16
        ).map(sorted),
    )
    def test_property_boundary_keys_go_right(self, boundaries):
        for boundary in boundaries:
            index = partition_index(boundary, boundaries)
            assert index == self._linear_scan(boundary, boundaries)
            # bisect_right semantics: the key equal to a boundary lands
            # strictly after every copy of that boundary.
            assert boundaries[index - 1] == boundary

    def test_works_with_reverse_ordered_keys(self):
        from repro.shuffle import ReversedKey

        boundaries = [ReversedKey(30), ReversedKey(20), ReversedKey(10)]
        assert partition_index(ReversedKey(40), boundaries) == 0
        assert partition_index(ReversedKey(30), boundaries) == 1
        assert partition_index(ReversedKey(25), boundaries) == 1
        assert partition_index(ReversedKey(5), boundaries) == 3
