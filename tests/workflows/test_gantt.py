"""Tests for the ASCII Gantt renderer and its span extraction."""

import pytest

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.executor import FunctionExecutor
from repro.sim import Simulator
from repro.workflows.gantt import (
    GanttSpan,
    render_gantt,
    spans_from_timeline,
    spans_from_tracker,
    workflow_gantt,
)
from repro.workflows.tracker import JobTracker


def traced_cloud(seed=4):
    return Cloud(
        Simulator(seed=seed, trace=True), ibm_us_east(deterministic=True)
    )


def run_small_map(cloud, calls=4):
    executor = FunctionExecutor(cloud)

    def work(x):
        return x + 1

    def driver():
        futures = yield executor.map(work, list(range(calls)),
                                     cpu_model=lambda _x: 1.0)
        return (yield executor.get_result(futures))

    return cloud.sim.run_process(driver())


class TestSpanExtraction:
    def test_one_span_per_activation(self):
        cloud = traced_cloud()
        run_small_map(cloud, calls=5)
        spans = spans_from_timeline(cloud.sim.timeline)
        function_spans = [s for s in spans if s.kind.startswith("function")]
        assert len(function_spans) == 5

    def test_cold_starts_flagged(self):
        cloud = traced_cloud()
        executor = FunctionExecutor(cloud)

        def work(x):
            return x + 1

        def driver():
            # Two consecutive jobs on one executor: the second reuses the
            # first's warm containers.
            for _round in range(2):
                futures = yield executor.map(work, [1, 2, 3],
                                             cpu_model=lambda _x: 1.0)
                yield executor.get_result(futures)

        cloud.sim.run_process(driver())
        spans = spans_from_timeline(cloud.sim.timeline)
        cold = [s for s in spans if s.kind == "function-cold"]
        warm = [s for s in spans if s.kind == "function"]
        assert len(cold) == 3
        assert len(warm) == 3

    def test_spans_ordered_by_start(self):
        cloud = traced_cloud()
        run_small_map(cloud, calls=6)
        spans = spans_from_timeline(cloud.sim.timeline)
        starts = [span.start for span in spans]
        assert starts == sorted(starts)

    def test_vm_spans(self):
        cloud = traced_cloud()

        def scenario():
            vm = yield cloud.vms.provision("bx2-8x32")

            def task(ctx):
                yield ctx.compute(5.0)

            yield vm.run(task)
            vm.terminate()

        cloud.sim.run_process(scenario())
        spans = spans_from_timeline(cloud.sim.timeline)
        vm_spans = [s for s in spans if s.kind == "vm"]
        assert len(vm_spans) == 1
        assert "bx2-8x32" in vm_spans[0].label
        assert vm_spans[0].duration > 5.0  # boot + task

    def test_cache_spans(self):
        cloud = traced_cloud()

        def scenario():
            cluster = yield cloud.cache.provision("cache.r5.large")
            yield cloud.sim.timeout(10.0)
            cluster.terminate()

        cloud.sim.run_process(scenario())
        spans = spans_from_timeline(cloud.sim.timeline)
        cache_spans = [s for s in spans if s.kind == "cache"]
        assert len(cache_spans) == 1
        # The span covers what is billed: creation delay plus usage.
        expected = cloud.profile.memstore.provision.mean + 10.0
        assert cache_spans[0].duration == pytest.approx(expected)

    def test_tracing_disabled_yields_no_spans(self):
        cloud = Cloud.fresh(seed=4, profile=ibm_us_east(deterministic=True))
        run_small_map(cloud)
        assert spans_from_timeline(cloud.sim.timeline) == []

    def test_tracker_spans(self):
        tracker = JobTracker("wf")
        tracker.stage_registered("a", "kind")
        tracker.stage_registered("b", "kind")
        tracker.stage_started("a", 0.0)
        tracker.stage_finished("a", 5.0, 0.01)
        tracker.stage_started("b", 5.0)
        # stage b never finishes: it must not produce a span
        spans = spans_from_tracker(tracker)
        assert [span.label for span in spans] == ["[a]"]
        assert spans[0].duration == 5.0


class TestRendering:
    def test_empty_input(self):
        assert "no spans" in render_gantt([])

    def test_bars_scale_with_duration(self):
        spans = [
            GanttSpan("short", 0.0, 1.0, "function"),
            GanttSpan("long", 0.0, 10.0, "function"),
        ]
        text = render_gantt(spans, width=50)
        short_row = next(line for line in text.splitlines() if "short" in line)
        long_row = next(line for line in text.splitlines() if "long" in line)
        assert long_row.count("#") > short_row.count("#") * 5

    def test_cold_start_marker(self):
        spans = [GanttSpan("fn.act-1", 0.0, 2.0, "function-cold")]
        text = render_gantt(spans)
        assert "*" in next(
            line for line in text.splitlines() if "fn.act-1" in line
        )

    def test_row_elision(self):
        spans = [
            GanttSpan(f"fn.act-{index}", float(index), float(index + 1),
                      "function")
            for index in range(100)
        ]
        text = render_gantt(spans, max_rows=10)
        assert "more spans elided" in text
        assert "90" in text  # 100 spans, 10 rows kept

    def test_long_labels_keep_their_tail(self):
        spans = [
            GanttSpan("averyveryverylongruntime-name.act-42", 0.0, 1.0,
                      "function")
        ]
        text = render_gantt(spans, label_width=16)
        assert "act-42" in text

    def test_instant_span_still_visible(self):
        spans = [
            GanttSpan("instant", 5.0, 5.0, "stage"),
            GanttSpan("context", 0.0, 10.0, "stage"),
        ]
        text = render_gantt(spans)
        instant_row = next(
            line for line in text.splitlines() if "instant" in line
        )
        assert "=" in instant_row


class TestWorkflowGantt:
    def test_end_to_end_chart(self):
        from repro.core import ExperimentConfig, PURE_SERVERLESS, run_pipeline

        config = ExperimentConfig(logical_scale=8192.0, parallelism=2)
        cloud = Cloud(
            Simulator(seed=config.seed, trace=True), config.make_profile()
        )
        run = run_pipeline(config, PURE_SERVERLESS, cloud=cloud)
        text = workflow_gantt(run.workflow.tracker, cloud.sim.timeline)
        # Every sort stage now reports its substrate (PR 9), so even the
        # pinned pure-serverless sort names where the exchange ran.
        assert "[sort→objectstore]" in text
        assert "[encode]" in text
        assert "#" in text
        assert "Workflow timeline: purely-serverless" in text
