"""Declarative (JSON) pipelines exercising the new stage kinds end to end."""

import json

import pytest

from repro.cloud.environment import Cloud
from repro.core import ExperimentConfig, stage_input
from repro.sim import Simulator
from repro.workflows import WorkflowEngine, parse_spec, render_dag


def build_cloud(scale=4096.0):
    config = ExperimentConfig(logical_scale=scale)
    cloud = Cloud(Simulator(seed=config.seed), config.make_profile())
    stage_input(cloud, config, "pipeline", "input/methylome.bed")
    return cloud


CACHE_WORKFLOW = {
    "name": "methcomp-cache-json",
    "bucket": "pipeline",
    "stages": [
        {
            "name": "ingest",
            "kind": "dataset_ref",
            "params": {"key": "input/methylome.bed"},
        },
        {
            "name": "sort",
            "kind": "cache_sort",
            "after": ["ingest"],
            "params": {"workers": 4, "nodes": 1, "cleanup": True},
        },
        {
            "name": "encode",
            "kind": "methcomp_encode",
            "after": ["sort"],
        },
        {
            "name": "verify",
            "kind": "methcomp_verify",
            "after": ["encode"],
        },
    ],
}


class TestCacheSortFromJson:
    def test_full_pipeline_runs_and_verifies(self):
        cloud = build_cloud()
        dag = parse_spec(json.dumps(CACHE_WORKFLOW))
        result = WorkflowEngine(cloud, dag).execute()
        assert result.artifacts["verify"]["verified"] is True
        assert result.artifacts["sort"]["cache_nodes"] == 1
        # cleanup=True: the cluster drained before termination.
        cluster = next(iter(cloud.cache.clusters.values()))
        assert cluster.key_count == 0
        assert cluster.state == "terminated"

    def test_cost_breakdown_includes_cache_stage(self):
        cloud = build_cloud()
        dag = parse_spec(json.dumps(CACHE_WORKFLOW))
        result = WorkflowEngine(cloud, dag).execute()
        breakdown = result.tracker.cost_breakdown()
        assert breakdown["sort"] > 0
        # The sort stage's bill carries the cache node-seconds.
        memstore_lines = cloud.meter.filtered(service="memstore", stage="sort")
        assert memstore_lines

    def test_render_annotates_cache_substrate(self):
        dag = parse_spec(json.dumps(CACHE_WORKFLOW))
        text = render_dag(dag, title="cache pipeline")
        assert "cloud functions + cache cluster" in text

    def test_unknown_stage_kind_fails_fast(self):
        cloud = build_cloud()
        broken = dict(CACHE_WORKFLOW, stages=[
            {"name": "sort", "kind": "quantum_sort"},
        ])
        from repro.errors import WorkflowError

        with pytest.raises(WorkflowError, match="quantum_sort"):
            WorkflowEngine(cloud, parse_spec(json.dumps(broken)))
