"""Tests for the declarative JSON workflow specifications."""

import json

import pytest

from repro.errors import ConfigError
from repro.workflows import dump_spec, parse_spec

VALID = {
    "name": "demo",
    "bucket": "pipeline",
    "stages": [
        {"name": "ingest", "kind": "dataset_ref", "params": {"key": "in.bed"}},
        {"name": "sort", "kind": "shuffle_sort", "after": ["ingest"],
         "params": {"workers": 8}},
    ],
}


class TestParsing:
    def test_valid_document_parses(self):
        dag = parse_spec(VALID)
        assert dag.name == "demo"
        assert dag.bucket == "pipeline"
        assert [s.name for s in dag.stages] == ["ingest", "sort"]
        assert dag.stage("sort").params == {"workers": 8}

    def test_json_string_accepted(self):
        dag = parse_spec(json.dumps(VALID))
        assert dag.name == "demo"

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigError, match="invalid workflow JSON"):
            parse_spec("{not json")

    def test_non_object_rejected(self):
        with pytest.raises(ConfigError):
            parse_spec("[1, 2]")

    def test_missing_name_rejected(self):
        document = dict(VALID)
        del document["name"]
        with pytest.raises(ConfigError, match="name"):
            parse_spec(document)

    def test_unknown_top_level_key_rejected(self):
        document = dict(VALID)
        document["extra"] = 1
        with pytest.raises(ConfigError, match="unknown workflow keys"):
            parse_spec(document)

    def test_empty_stages_rejected(self):
        document = dict(VALID)
        document["stages"] = []
        with pytest.raises(ConfigError, match="stages"):
            parse_spec(document)

    def test_stage_without_kind_rejected(self):
        document = json.loads(json.dumps(VALID))
        del document["stages"][0]["kind"]
        with pytest.raises(ConfigError, match="kind"):
            parse_spec(document)

    def test_stage_unknown_key_rejected(self):
        document = json.loads(json.dumps(VALID))
        document["stages"][0]["workers"] = 8  # belongs in params
        with pytest.raises(ConfigError, match="unknown keys"):
            parse_spec(document)

    def test_bad_after_type_rejected(self):
        document = json.loads(json.dumps(VALID))
        document["stages"][1]["after"] = "ingest"
        with pytest.raises(ConfigError, match="after"):
            parse_spec(document)

    def test_dag_validation_applies(self):
        document = json.loads(json.dumps(VALID))
        document["stages"][1]["after"] = ["ghost"]
        with pytest.raises(Exception, match="unknown stage"):
            parse_spec(document)

    def test_default_bucket(self):
        document = dict(VALID)
        del document["bucket"]
        assert parse_spec(document).bucket == "pipeline"


class TestRoundtrip:
    def test_dump_then_parse_is_stable(self):
        dag = parse_spec(VALID)
        dumped = dump_spec(dag)
        dag2 = parse_spec(dumped)
        assert dump_spec(dag2) == dumped

    def test_dump_preserves_params(self):
        dag = parse_spec(VALID)
        payload = json.loads(dump_spec(dag))
        assert payload["stages"][1]["params"] == {"workers": 8}
