"""Tests for the workflow DAG model."""

import pytest

from repro.errors import WorkflowError
from repro.workflows import StageSpec, WorkflowDag


def spec(name, after=(), kind="noop"):
    return StageSpec(name=name, kind=kind, after=tuple(after))


class TestValidation:
    def test_empty_workflow_rejected(self):
        with pytest.raises(WorkflowError):
            WorkflowDag("empty", [])

    def test_duplicate_names_rejected(self):
        with pytest.raises(WorkflowError, match="duplicate"):
            WorkflowDag("dup", [spec("a"), spec("a")])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(WorkflowError, match="unknown"):
            WorkflowDag("bad", [spec("a", after=["ghost"])])

    def test_self_dependency_rejected(self):
        with pytest.raises(WorkflowError, match="itself"):
            WorkflowDag("selfish", [spec("a", after=["a"])])

    def test_cycle_rejected(self):
        stages = [
            spec("a", after=["c"]),
            spec("b", after=["a"]),
            spec("c", after=["b"]),
        ]
        with pytest.raises(WorkflowError, match="cycle"):
            WorkflowDag("cyclic", stages)

    def test_valid_diamond_accepted(self):
        dag = WorkflowDag(
            "diamond",
            [
                spec("src"),
                spec("left", after=["src"]),
                spec("right", after=["src"]),
                spec("join", after=["left", "right"]),
            ],
        )
        assert len(dag) == 4


class TestTopology:
    def test_linear_order(self):
        dag = WorkflowDag(
            "linear", [spec("a"), spec("b", after=["a"]), spec("c", after=["b"])]
        )
        assert [s.name for s in dag.topological_order()] == ["a", "b", "c"]

    def test_order_respects_dependencies(self):
        dag = WorkflowDag(
            "diamond",
            [
                spec("join", after=["left", "right"]),
                spec("left", after=["src"]),
                spec("right", after=["src"]),
                spec("src"),
            ],
        )
        order = [s.name for s in dag.topological_order()]
        assert order.index("src") < order.index("left")
        assert order.index("src") < order.index("right")
        assert order.index("left") < order.index("join")
        assert order.index("right") < order.index("join")

    def test_order_is_deterministic(self):
        stages = [
            spec("z"),
            spec("a"),
            spec("m", after=["z", "a"]),
        ]
        first = [s.name for s in WorkflowDag("d", stages).topological_order()]
        second = [s.name for s in WorkflowDag("d", stages).topological_order()]
        assert first == second

    def test_roots_and_leaves(self):
        dag = WorkflowDag(
            "rl",
            [
                spec("src"),
                spec("mid", after=["src"]),
                spec("out1", after=["mid"]),
                spec("out2", after=["mid"]),
            ],
        )
        assert [s.name for s in dag.roots()] == ["src"]
        assert sorted(s.name for s in dag.leaves()) == ["out1", "out2"]

    def test_stage_lookup(self):
        dag = WorkflowDag("lk", [spec("a")])
        assert dag.stage("a").name == "a"
        with pytest.raises(WorkflowError):
            dag.stage("nope")
