"""Tests for the workflow engine, tracker and renderer."""

import pytest

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.errors import WorkflowError
from repro.workflows import (
    StageSpec,
    WorkflowDag,
    WorkflowEngine,
    register_stage_kind,
    render_dag,
    render_side_by_side,
)

# -- toy stage kinds used only by these tests ---------------------------


def _noop_stage(context, inputs):
    yield context.sim.timeout(1.0)
    return {"stage": context.spec.name, "inputs": sorted(inputs)}


def _paid_stage(context, inputs):
    yield context.sim.timeout(2.0)
    context.cloud.meter.charge(
        context.sim.now, "faas", "gb_second", 1.0, 0.5
    )
    return {"cost": "recorded"}


def _failing_stage(context, inputs):
    yield context.sim.timeout(0.5)
    raise RuntimeError("stage exploded")


def _param_stage(context, inputs):
    yield context.sim.timeout(0.0)
    return {"value": context.param("value", required=True)}


for kind, impl in (
    ("test_noop", _noop_stage),
    ("test_paid", _paid_stage),
    ("test_failing", _failing_stage),
    ("test_param", _param_stage),
):
    try:
        register_stage_kind(kind, impl)
    except WorkflowError:
        pass  # already registered by a previous test session import


@pytest.fixture
def cloud():
    return Cloud.fresh(seed=31, profile=ibm_us_east(deterministic=True))


class TestEngine:
    def test_linear_workflow_runs(self, cloud):
        dag = WorkflowDag(
            "lin",
            [
                StageSpec("a", "test_noop"),
                StageSpec("b", "test_noop", after=("a",)),
            ],
        )
        result = WorkflowEngine(cloud, dag).execute()
        assert result.makespan_s == pytest.approx(2.0)
        assert result.artifacts["b"]["inputs"] == ["a"]

    def test_unknown_kind_fails_fast(self, cloud):
        dag = WorkflowDag("bad", [StageSpec("a", "no_such_kind")])
        with pytest.raises(WorkflowError, match="unknown stage kind"):
            WorkflowEngine(cloud, dag)

    def test_artifacts_flow_to_dependents(self, cloud):
        dag = WorkflowDag(
            "flow",
            [
                StageSpec("src1", "test_noop"),
                StageSpec("src2", "test_noop"),
                StageSpec("sink", "test_noop", after=("src1", "src2")),
            ],
        )
        result = WorkflowEngine(cloud, dag).execute()
        assert result.artifacts["sink"]["inputs"] == ["src1", "src2"]

    def test_stage_failure_propagates_and_is_tracked(self, cloud):
        dag = WorkflowDag(
            "boom",
            [
                StageSpec("ok", "test_noop"),
                StageSpec("bad", "test_failing", after=("ok",)),
            ],
        )
        engine = WorkflowEngine(cloud, dag)
        with pytest.raises(RuntimeError, match="stage exploded"):
            engine.execute()
        assert engine.tracker.reports["bad"].status == "failed"
        assert engine.tracker.reports["ok"].status == "done"

    def test_cost_attributed_to_stage(self, cloud):
        dag = WorkflowDag(
            "costly",
            [
                StageSpec("free", "test_noop"),
                StageSpec("paid", "test_paid", after=("free",)),
            ],
        )
        result = WorkflowEngine(cloud, dag).execute()
        breakdown = result.tracker.cost_breakdown()
        assert breakdown["paid"] == pytest.approx(0.5)
        assert breakdown["free"] == pytest.approx(0.0)
        assert result.cost_usd == pytest.approx(0.5)

    def test_meter_lines_tagged_with_stage(self, cloud):
        dag = WorkflowDag("tagged", [StageSpec("paid", "test_paid")])
        WorkflowEngine(cloud, dag).execute()
        by_stage = cloud.meter.total_by_tag("stage")
        assert by_stage["paid"] == pytest.approx(0.5)

    def test_required_param_missing_raises(self, cloud):
        dag = WorkflowDag("p", [StageSpec("s", "test_param")])
        with pytest.raises(WorkflowError, match="requires parameter"):
            WorkflowEngine(cloud, dag).execute()

    def test_param_passed_through(self, cloud):
        dag = WorkflowDag(
            "p", [StageSpec("s", "test_param", params={"value": 42})]
        )
        result = WorkflowEngine(cloud, dag).execute()
        assert result.artifacts["s"]["value"] == 42

    def test_stage_durations_recorded(self, cloud):
        dag = WorkflowDag(
            "durations",
            [
                StageSpec("a", "test_noop"),
                StageSpec("b", "test_paid", after=("a",)),
            ],
        )
        result = WorkflowEngine(cloud, dag).execute()
        assert result.stage_duration("a") == pytest.approx(1.0)
        assert result.stage_duration("b") == pytest.approx(2.0)


class TestTracker:
    def test_render_contains_stages_and_total(self, cloud):
        dag = WorkflowDag(
            "render",
            [
                StageSpec("a", "test_noop"),
                StageSpec("b", "test_paid", after=("a",)),
            ],
        )
        engine = WorkflowEngine(cloud, dag)
        engine.execute()
        rendered = engine.tracker.render()
        assert "a" in rendered and "b" in rendered
        assert "TOTAL" in rendered
        assert "done" in rendered

    def test_log_records_lifecycle(self, cloud):
        dag = WorkflowDag("log", [StageSpec("a", "test_noop")])
        engine = WorkflowEngine(cloud, dag)
        engine.execute()
        assert any("started" in line for line in engine.tracker.log)
        assert any("done" in line for line in engine.tracker.log)

    def test_tracker_done_flag(self, cloud):
        dag = WorkflowDag("done", [StageSpec("a", "test_noop")])
        engine = WorkflowEngine(cloud, dag)
        assert not engine.tracker.done
        engine.execute()
        assert engine.tracker.done

    def test_breakdown_reads_stage_tags_off_the_meter(self, cloud):
        dag = WorkflowDag(
            "metered",
            [
                StageSpec("free", "test_noop"),
                StageSpec("paid", "test_paid", after=("free",)),
            ],
        )
        engine = WorkflowEngine(cloud, dag)
        engine.execute()
        tracker = engine.tracker
        assert tracker.meter is cloud.meter
        by_tag = cloud.meter.total_by_tag("stage")
        assert tracker.cost_breakdown() == {
            "free": by_tag.get("free", 0.0),
            "paid": by_tag.get("paid", 0.0),
        }
        # A charge recorded after the stage exited but still carrying
        # the stage tag (terminate-time billing) reaches its stage.
        cloud.meter.push_tag("stage", "paid")
        cloud.meter.charge(cloud.sim.now, "vm", "instance_hour", 1.0, 0.25)
        cloud.meter.pop_tag("stage")
        assert engine.tracker.cost_breakdown()["paid"] == pytest.approx(0.75)
        assert engine.tracker.total_cost_usd == pytest.approx(0.75)

    def test_render_shows_prediction_drift_for_sort_stages(self):
        from repro.workflows.tracker import JobTracker

        tracker = JobTracker("drifty")
        tracker.stage_registered("ingest", "test_noop")
        tracker.stage_registered("sort", "test_noop")
        tracker.stage_started("ingest", 0.0)
        tracker.stage_finished("ingest", 1.0, 0.0)
        tracker.stage_started("sort", 1.0)
        tracker.stage_finished(
            "sort", 14.0, 0.1,
            detail={"predicted_s": 10.0, "actual_s": 13.0},
        )
        assert tracker.reports["sort"].drift == pytest.approx(1.3)
        assert tracker.reports["ingest"].drift is None
        rendered = tracker.render()
        sort_row = next(l for l in rendered.splitlines() if l.startswith("sort"))
        ingest_row = next(
            l for l in rendered.splitlines() if l.startswith("ingest")
        )
        assert "1.30x" in sort_row
        assert ingest_row.rstrip().endswith("-")


class TestRenderer:
    def test_render_dag_shows_all_stages(self):
        dag = WorkflowDag(
            "draw",
            [
                StageSpec("first", "test_noop"),
                StageSpec("second", "test_paid", after=("first",)),
            ],
        )
        art = render_dag(dag, title="My Pipeline")
        assert "My Pipeline" in art
        assert "first" in art and "second" in art
        assert "object storage" in art  # edge annotation

    def test_side_by_side_merges_columns(self):
        merged = render_side_by_side("aa\nbb", "XX\nYY\nZZ")
        lines = merged.splitlines()
        assert len(lines) == 3
        assert "aa" in lines[0] and "XX" in lines[0]
        assert "ZZ" in lines[2]
