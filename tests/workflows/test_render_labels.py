"""Regression tests for the Figure 1 substrate labels.

The renderer annotates each stage box with the substrate it runs on;
a sort kind falling back to the generic "cloud" label hides exactly
the substrate distinction the figure exists to show (this happened to
``relay_sort`` once — hence the blanket check over the registry).
"""

import repro.core.stages  # noqa: F401 - registers the built-in kinds
from repro.core import ExperimentConfig
from repro.core.pipelines import (
    auto_supported_pipeline,
    relay_supported_pipeline,
    sharded_relay_supported_pipeline,
    streaming_supported_pipeline,
)
from repro.workflows.engine import registered_kinds
from repro.workflows.render import render_dag, substrate_label

FALLBACK = "cloud"


class TestSubstrateLabels:
    def test_every_registered_sort_kind_has_a_specific_label(self):
        sort_kinds = [kind for kind in registered_kinds() if "sort" in kind]
        assert sort_kinds, "no sort kinds registered — registry broken?"
        for kind in sort_kinds:
            assert substrate_label(kind) != FALLBACK, (
                f"sort kind {kind!r} renders with the generic {FALLBACK!r} "
                "fallback; add it to workflows.render._SUBSTRATE_LABELS"
            )

    def test_every_builtin_kind_has_a_specific_label(self):
        builtin = (
            "methylome_dataset", "dataset_ref", "shuffle_sort", "cache_sort",
            "relay_sort", "sharded_relay_sort", "streaming_sort", "auto_sort",
            "vm_sort", "methcomp_encode", "methcomp_verify",
        )
        for kind in builtin:
            assert kind in registered_kinds()
            assert substrate_label(kind) != FALLBACK, kind

    def test_relay_sort_renders_vm_relay(self):
        assert substrate_label("relay_sort") == "cloud functions + VM relay"
        art = render_dag(relay_supported_pipeline(ExperimentConfig()))
        assert "cloud functions + VM relay" in art

    def test_new_sort_kinds_render_their_substrates(self):
        config = ExperimentConfig()
        sharded_art = render_dag(sharded_relay_supported_pipeline(config))
        assert "VM relay fleet" in sharded_art
        auto_art = render_dag(auto_supported_pipeline(config))
        assert "adaptive exchange substrate" in auto_art

    def test_streaming_sort_renders_pipelined_waves(self):
        assert (
            substrate_label("streaming_sort")
            == "cloud functions + streaming exchange (pipelined waves)"
        )
        art = render_dag(streaming_supported_pipeline(ExperimentConfig()))
        assert "streaming exchange" in art
        # The substrate the stream rides is visible in the stage params.
        assert "substrate=relay" in art

    def test_unknown_kinds_still_fall_back(self):
        assert substrate_label("somebody-elses-kind") == FALLBACK
