"""Unit tests for the simulated VM service."""

import pytest

from repro.cloud import Cloud, MB
from repro.cloud.profiles import ibm_us_east
from repro.cloud.vm import UnknownInstanceType, VmAlreadyTerminated, VmNotRunning


@pytest.fixture
def cloud():
    cloud = Cloud.fresh(seed=9, profile=ibm_us_east(deterministic=True))
    cloud.store.ensure_bucket("bucket")
    return cloud


class TestProvisioning:
    def test_provision_takes_boot_time(self, cloud):
        def scenario():
            vm = yield cloud.vms.provision("bx2-8x32")
            return vm, cloud.sim.now

        vm, ready_time = cloud.sim.run_process(scenario())
        assert vm.state == "running"
        assert ready_time == pytest.approx(cloud.profile.vm.boot.mean)

    def test_unknown_type_rejected(self, cloud):
        with pytest.raises(UnknownInstanceType):
            cloud.vms.provision("bx2-9000x1")

    def test_catalog_has_paper_instance(self, cloud):
        instance_type = cloud.vms.instance_type("bx2-8x32")
        assert instance_type.vcpus == 8
        assert instance_type.memory_gb == 32

    def test_run_before_ready_rejected(self, cloud):
        vm_event = cloud.vms.provision("bx2-2x8")
        vm = cloud.vms.instances[0]

        def task(ctx):
            yield ctx.sleep(0.0)

        with pytest.raises(VmNotRunning):
            vm.run(task)
        cloud.sim.run(until=vm_event)  # cleanup: let boot finish


class TestTasks:
    def test_task_runs_and_returns(self, cloud):
        def scenario():
            vm = yield cloud.vms.provision("bx2-8x32")

            def task(ctx):
                yield ctx.compute(1.0)
                return "task-done"

            result = yield vm.run(task)
            vm.terminate()
            return result

        assert cloud.sim.run_process(scenario()) == "task-done"

    def test_vcpus_limit_parallel_compute(self, cloud):
        def scenario():
            vm = yield cloud.vms.provision("bx2-2x8")  # 2 vCPUs
            start = cloud.sim.now

            def task(ctx):
                events = [ctx.compute(10.0) for _ in range(4)]
                yield ctx.sim.all_of(events)

            yield vm.run(task)
            vm.terminate()
            return cloud.sim.now - start

        elapsed = cloud.sim.run_process(scenario())
        # 4 x 10 s of single-core work on 2 cores: 20 s, not 10 s.
        assert elapsed == pytest.approx(20.0, abs=0.5)

    def test_task_storage_roundtrip(self, cloud):
        def scenario():
            vm = yield cloud.vms.provision("bx2-8x32")

            def task(ctx):
                yield ctx.storage.put("bucket", "from-vm", b"vm-data")
                return (yield ctx.storage.get("bucket", "from-vm"))

            result = yield vm.run(task)
            vm.terminate()
            return result

        assert cloud.sim.run_process(scenario()) == b"vm-data"

    def test_parallel_get_preserves_order(self, cloud):
        def scenario():
            vm = yield cloud.vms.provision("bx2-8x32")
            for index in range(6):
                yield cloud.store.put("bucket", f"k{index}", bytes([index]))

            def task(ctx):
                return (
                    yield ctx.parallel_get(
                        [("bucket", f"k{index}") for index in range(6)]
                    )
                )

            result = yield vm.run(task)
            vm.terminate()
            return result

        payloads = cloud.sim.run_process(scenario())
        assert payloads == [bytes([index]) for index in range(6)]

    def test_io_slots_cap_concurrent_connections(self, cloud):
        vm_type = cloud.vms.instance_type("bx2-2x8")
        per_connection = cloud.profile.objectstore.per_connection_bandwidth
        expected_slots = max(1, int(vm_type.nic_bandwidth // per_connection))

        def scenario():
            vm = yield cloud.vms.provision("bx2-2x8")
            result = vm.io_slots.capacity
            vm.terminate()
            return result

        assert cloud.sim.run_process(scenario()) == expected_slots


class TestLifecycleAndBilling:
    def test_terminate_twice_rejected(self, cloud):
        def scenario():
            vm = yield cloud.vms.provision("bx2-2x8")
            vm.terminate()
            vm.terminate()

        with pytest.raises(VmAlreadyTerminated):
            cloud.sim.run_process(scenario())

    def test_billing_covers_boot_plus_run(self, cloud):
        def scenario():
            vm = yield cloud.vms.provision("bx2-8x32")
            yield cloud.sim.timeout(100.0)
            vm.terminate()

        cloud.sim.run_process(scenario())
        lines = [line for line in cloud.meter.lines if line.item == "instance_second"]
        assert len(lines) == 1
        expected_runtime = cloud.profile.vm.boot.mean + 100.0
        assert lines[0].quantity == pytest.approx(expected_runtime, rel=0.01)

    def test_minimum_billing_applies(self, cloud):
        profile = ibm_us_east(deterministic=True)
        profile.vm.boot.mean = 1.0
        profile.vm.minimum_billed_s = 60.0
        cloud = Cloud.fresh(seed=9, profile=profile)

        def scenario():
            vm = yield cloud.vms.provision("bx2-2x8")
            vm.terminate()

        cloud.sim.run_process(scenario())
        lines = [line for line in cloud.meter.lines if line.item == "instance_second"]
        assert lines[0].quantity == pytest.approx(60.0)

    def test_volume_charged_alongside_instance(self, cloud):
        def scenario():
            vm = yield cloud.vms.provision("bx2-8x32")
            vm.terminate()

        cloud.sim.run_process(scenario())
        items = {line.item for line in cloud.meter.lines if line.service == "vm"}
        assert items == {"instance_second", "volume_gb_hour"}

    def test_terminate_all_sweeps_running_instances(self, cloud):
        def scenario():
            yield cloud.vms.provision("bx2-2x8")
            yield cloud.vms.provision("bx2-4x16")

        cloud.sim.run_process(scenario())
        cloud.finalize()
        assert all(vm.state == "terminated" for vm in cloud.vms.instances)

    def test_hourly_price_matches_catalog(self, cloud):
        def scenario():
            vm = yield cloud.vms.provision("bx2-8x32")
            yield cloud.sim.timeout(3600.0 - cloud.profile.vm.boot.mean)
            vm.terminate()

        cloud.sim.run_process(scenario())
        instance_usd = sum(
            line.usd for line in cloud.meter.lines if line.item == "instance_second"
        )
        assert instance_usd == pytest.approx(0.384, rel=0.01)
