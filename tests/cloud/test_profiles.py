"""Tests for cloud profiles, latency models and the instance catalog."""

import random

import pytest

from repro.cloud.profiles import (
    BX2_CATALOG,
    GB,
    CloudProfile,
    LatencyModel,
    ibm_us_east,
)
from repro.errors import ConfigError


class TestLatencyModel:
    def test_zero_sigma_is_deterministic(self):
        model = LatencyModel(0.05, sigma=0.0)
        rng = random.Random(1)
        assert all(model.sample(rng) == 0.05 for _ in range(10))

    def test_jittered_mean_approximates_target(self):
        model = LatencyModel(0.1, sigma=0.4)
        rng = random.Random(2)
        samples = [model.sample(rng) for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(0.1, rel=0.05)

    def test_samples_are_positive(self):
        model = LatencyModel(0.02, sigma=0.5)
        rng = random.Random(3)
        assert all(model.sample(rng) > 0 for _ in range(1000))

    def test_negative_mean_rejected(self):
        model = LatencyModel(-1.0)
        with pytest.raises(ConfigError):
            model.sample(random.Random(1))


class TestCatalog:
    def test_paper_instance_present(self):
        instance = BX2_CATALOG["bx2-8x32"]
        assert instance.vcpus == 8
        assert instance.memory_gb == 32
        assert instance.hourly_usd == pytest.approx(0.384)

    def test_nic_scales_with_vcpus_capped(self):
        assert BX2_CATALOG["bx2-2x8"].nic_bandwidth == pytest.approx(4 * GB / 8)
        assert BX2_CATALOG["bx2-16x64"].nic_bandwidth == pytest.approx(16 * GB / 8)
        # The cap: 48 vCPUs do not get 96 Gbps.
        assert BX2_CATALOG["bx2-48x192"].nic_bandwidth == pytest.approx(16 * GB / 8)

    def test_per_second_price(self):
        instance = BX2_CATALOG["bx2-8x32"]
        assert instance.per_second_usd == pytest.approx(0.384 / 3600)

    def test_memory_scales_linearly_in_family(self):
        assert BX2_CATALOG["bx2-4x16"].memory_gb == 2 * BX2_CATALOG["bx2-2x8"].memory_gb


class TestProfiles:
    def test_default_profile_validates(self):
        ibm_us_east().validate()

    def test_deterministic_flag_zeroes_sigmas(self):
        profile = ibm_us_east(deterministic=True)
        assert profile.objectstore.read_latency.sigma == 0.0
        assert profile.faas.cold_start.sigma == 0.0
        assert profile.vm.boot.sigma == 0.0

    def test_bad_logical_scale_rejected(self):
        profile = CloudProfile(logical_scale=0.0)
        with pytest.raises(ConfigError):
            profile.validate()

    def test_bad_ops_rate_rejected(self):
        profile = ibm_us_east()
        profile.objectstore.ops_per_second = -1
        with pytest.raises(ConfigError):
            profile.validate()

    def test_empty_catalog_rejected(self):
        profile = ibm_us_east()
        profile.vm.catalog = {}
        with pytest.raises(ConfigError):
            profile.validate()

    def test_bad_relay_knobs_rejected(self):
        for mutate in (
            lambda vm: setattr(vm, "relay_ops_per_second", 0.0),
            lambda vm: setattr(vm, "relay_ops_burst", 0.5),
            lambda vm: setattr(vm, "relay_usable_memory_fraction", 1.5),
        ):
            profile = ibm_us_east()
            mutate(profile.vm)
            with pytest.raises(ConfigError):
                profile.validate()

    def test_relay_usable_bytes_is_the_shared_capacity_formula(self):
        profile = ibm_us_east()
        instance = profile.vm.catalog["bx2-8x32"]
        expected = 32 * (1 << 30) * profile.vm.relay_usable_memory_fraction
        assert profile.vm.relay_usable_bytes(instance) == pytest.approx(expected)

    def test_experiment_profile_carries_calibration(self):
        from repro.core import ExperimentConfig

        profile = ExperimentConfig().make_profile()
        assert profile.faas.instance_bandwidth == pytest.approx(44e6)
        assert profile.vm.boot.mean == pytest.approx(99.0)

    def test_profile_mutator_applied(self):
        from repro.core import ExperimentConfig

        def mutate(profile):
            profile.vm.boot.mean = 1.0

        config = ExperimentConfig(profile_mutator=mutate)
        assert config.make_profile().vm.boot.mean == 1.0
