"""Attempt-scoped cancellation at the FaaS platform layer.

Every activation is one *attempt*; killing it — explicit cancel, crash
injection, or timeout — must fire its context's cancellation scope:
tracked sub-processes are interrupted, reclamation callbacks run, and
billing stops at the kill.  These are the platform-level guarantees the
exchange substrates build their fault handling on.
"""

import pytest

from repro.cloud import Cloud
from repro.cloud.faas.errors import (
    FunctionCancelled,
    FunctionCrashed,
    FunctionTimeout,
)
from repro.cloud.profiles import ibm_us_east


@pytest.fixture
def cloud():
    return Cloud.fresh(seed=9, profile=ibm_us_east(deterministic=True))


def slow_handler(ctx, payload):
    yield ctx.sleep(100.0)
    return "finished"


def instant_handler(ctx, payload):
    yield ctx.sleep(0.0)
    return None


class TestCancelApi:
    def test_cancel_fails_the_invocation_event(self, cloud):
        cloud.faas.register("fn", slow_handler)

        def driver():
            handle = cloud.faas.launch("fn")
            yield cloud.sim.timeout(5.0)
            assert handle.cancel("test teardown") is True
            yield handle.completion

        with pytest.raises(FunctionCancelled, match="test teardown"):
            cloud.sim.run_process(driver())
        assert cloud.faas.stats.cancellations == 1
        assert cloud.faas.stats.completions == 0

    def test_cancel_finished_activation_is_a_noop(self, cloud):
        cloud.faas.register("fn", instant_handler)

        def driver():
            handle = cloud.faas.launch("fn")
            yield handle.completion
            return handle

        handle = cloud.sim.run_process(driver())
        assert handle.finished
        assert handle.cancel() is False
        assert cloud.faas.stats.cancellations == 0

    def test_cancel_unknown_activation_is_a_noop(self, cloud):
        assert cloud.faas.cancel("act-999") is False

    def test_cancel_is_idempotent(self, cloud):
        cloud.faas.register("fn", slow_handler)

        def driver():
            handle = cloud.faas.launch("fn")
            yield cloud.sim.timeout(2.0)
            assert handle.cancel() is True
            assert handle.cancel() is False  # second cancel: no-op
            try:
                yield handle.completion
            except FunctionCancelled:
                pass

        cloud.sim.run_process(driver())
        assert cloud.faas.stats.cancellations == 1

    def test_cancel_while_queued_runs_nothing_and_bills_nothing(self, cloud):
        """A cancel that lands before the body starts aborts the
        activation without consuming a container or a billed second."""
        cloud.faas.register("fn", slow_handler)

        def driver():
            handle = cloud.faas.launch("fn")
            # The invoke overhead alone is > 0; cancel immediately, long
            # before startup completes.
            assert handle.cancel("early") is True
            try:
                yield handle.completion
            except FunctionCancelled:
                return "cancelled"
            return "ran"

        assert cloud.sim.run_process(driver()) == "cancelled"
        assert cloud.faas.stats.cancellations == 1
        assert cloud.faas.billing_log == []
        assert cloud.faas.stats.billed_gb_seconds == 0.0

    def test_invoke_still_returns_plain_event(self, cloud):
        cloud.faas.register("fn", instant_handler)

        def driver():
            return (yield cloud.faas.invoke("fn"))

        assert cloud.sim.run_process(driver()) is None


class TestCancellationScope:
    def test_tracked_subprocesses_are_interrupted(self, cloud):
        log = []

        def handler(ctx, payload):
            def sub():
                try:
                    yield ctx.sim.timeout(1000.0)
                    log.append("sub finished")
                except Exception:
                    log.append("sub interrupted")
                    raise

            ctx.track(ctx.sim.process(sub(), name="sub"))
            yield ctx.sleep(500.0)

        cloud.faas.register("fn", handler)

        def driver():
            handle = cloud.faas.launch("fn")
            yield cloud.sim.timeout(10.0)
            handle.cancel()
            try:
                yield handle.completion
            except FunctionCancelled:
                pass

        cloud.sim.run_process(driver())
        assert log == ["sub interrupted"]

    def test_on_cancel_callbacks_run_with_cause(self, cloud):
        causes = []

        def handler(ctx, payload):
            ctx.on_cancel(causes.append)
            yield ctx.sleep(500.0)

        cloud.faas.register("fn", handler)

        def driver():
            handle = cloud.faas.launch("fn")
            yield cloud.sim.timeout(10.0)
            handle.cancel("race lost")
            try:
                yield handle.completion
            except FunctionCancelled:
                pass

        cloud.sim.run_process(driver())
        assert len(causes) == 1
        assert "race lost" in str(causes[0])

    def test_crash_fires_cancellation_scope(self, cloud):
        fired = []

        def handler(ctx, payload):
            ctx.on_cancel(fired.append)
            yield ctx.sleep(500.0)

        cloud.faas.register("fn", handler, timeout_s=600.0)
        cloud.faas.crash_probability = 1.0
        cloud.faas.crash_latest_s = 5.0

        def driver():
            try:
                yield cloud.faas.invoke("fn")
            except FunctionCrashed:
                return "crashed"

        assert cloud.sim.run_process(driver()) == "crashed"
        assert len(fired) == 1

    def test_timeout_fires_cancellation_scope(self, cloud):
        fired = []

        def handler(ctx, payload):
            ctx.on_cancel(fired.append)
            yield ctx.sleep(500.0)

        cloud.faas.register("fn", handler, timeout_s=3.0)

        def driver():
            try:
                yield cloud.faas.invoke("fn")
            except FunctionTimeout:
                return "timed out"

        assert cloud.sim.run_process(driver()) == "timed out"
        assert len(fired) == 1

    def test_handler_error_fires_cancellation_scope(self, cloud):
        fired = []

        def handler(ctx, payload):
            ctx.on_cancel(fired.append)
            yield ctx.sleep(1.0)
            raise ValueError("app bug")

        cloud.faas.register("fn", handler)

        def driver():
            try:
                yield cloud.faas.invoke("fn")
            except ValueError:
                return "raised"

        assert cloud.sim.run_process(driver()) == "raised"
        assert len(fired) == 1

    def test_normal_completion_does_not_fire_scope(self, cloud):
        fired = []

        def handler(ctx, payload):
            ctx.on_cancel(fired.append)
            yield ctx.sleep(1.0)
            return "ok"

        cloud.faas.register("fn", handler)

        def driver():
            return (yield cloud.faas.invoke("fn"))

        assert cloud.sim.run_process(driver()) == "ok"
        assert fired == []

    def test_attempt_id_is_the_activation_id(self, cloud):
        seen = []

        def handler(ctx, payload):
            seen.append((ctx.attempt_id, ctx.activation_id))
            yield ctx.sleep(0.1)

        cloud.faas.register("fn", handler)

        def driver():
            handle = cloud.faas.launch("fn")
            yield handle.completion
            return handle.activation_id

        activation_id = cloud.sim.run_process(driver())
        assert seen == [(activation_id, activation_id)]


class TestBillingAudit:
    def test_cancelled_attempt_billed_once_up_to_the_kill(self, cloud):
        cloud.faas.register("fn", slow_handler, memory_mb=1024)

        def driver():
            handle = cloud.faas.launch("fn")
            yield cloud.sim.timeout(20.0)
            handle.cancel()
            try:
                yield handle.completion
            except FunctionCancelled:
                pass
            return handle.activation_id

        activation_id = cloud.sim.run_process(driver())
        lines = [b for b in cloud.faas.billing_log if b.activation_id == activation_id]
        assert len(lines) == 1  # billed exactly once, never double
        (line,) = lines
        assert line.outcome == "cancelled"
        # The handler would have run 100 s; the kill landed by t=20, so
        # the billed window must be far short of the full duration.
        assert line.billed_s < 25.0

    def test_billing_log_outcomes(self, cloud):
        def ok(ctx, payload):
            yield ctx.sleep(1.0)
            return 1

        cloud.faas.register("ok", ok)
        cloud.faas.register("slow", slow_handler, timeout_s=3.0)

        def driver():
            yield cloud.faas.invoke("ok")
            try:
                yield cloud.faas.invoke("slow")
            except FunctionTimeout:
                pass

        cloud.sim.run_process(driver())
        outcomes = [line.outcome for line in cloud.faas.billing_log]
        assert outcomes == ["ok", "timeout"]
        assert all(line.gb_seconds > 0 for line in cloud.faas.billing_log)
