"""Unit tests for the VM-hosted partition relay.

Covers the three behaviours the substrate's economics rest on:
bounded memory with backpressure, NIC contention between concurrent
PUSH/PULL flows, and per-second billing from provision to terminate.
"""

import pytest

from repro.cloud import Cloud
from repro.cloud.profiles import GB, ibm_us_east
from repro.cloud.vm import (
    RelayCapacityExceeded,
    RelayKeyMissing,
    UnknownRelay,
    VmNotRunning,
    provision_relay,
    relay_ready,
)


@pytest.fixture
def cloud():
    return Cloud.fresh(seed=5, profile=ibm_us_east(deterministic=True))


@pytest.fixture
def relay(cloud):
    return relay_ready(cloud.vms, "bx2-2x8")


class TestBasicOps:
    def test_push_pull_roundtrip(self, cloud, relay):
        client = relay.client()

        def scenario():
            yield client.push("k", b"partition-bytes")
            return (yield client.pull("k"))

        assert cloud.sim.run_process(scenario()) == b"partition-bytes"
        assert relay.stats.pushes == 1
        assert relay.stats.pulls == 1

    def test_mpush_mpull_preserve_order(self, cloud, relay):
        client = relay.client()
        items = [(f"k{i}", bytes([i]) * 8) for i in range(6)]

        def scenario():
            yield client.mpush(items)
            return (yield client.mpull([key for key, _data in items]))

        assert cloud.sim.run_process(scenario()) == [d for _k, d in items]

    def test_pull_missing_key_raises(self, cloud, relay):
        client = relay.client()

        def scenario():
            yield client.pull("ghost")

        with pytest.raises(RelayKeyMissing):
            cloud.sim.run_process(scenario())

    def test_overwriting_push_releases_old_reservation_first(self, cloud, relay):
        """Re-pushing a key (a retried/speculative mapper) must not
        demand old+new bytes at once — that deadlocks on a full relay."""
        client = relay.client()
        chunk = relay.capacity_bytes * 0.6  # two copies cannot coexist

        def scenario():
            yield client.push("k", b"v1", logical_size=chunk)
            yield client.push("k", b"v2", logical_size=chunk)
            return (yield client.pull("k"))

        assert cloud.sim.run_process(scenario()) == b"v2"
        assert relay.used_logical == pytest.approx(chunk)
        assert relay.key_count == 1

    def test_repushed_mpush_batch_is_idempotent_on_a_full_relay(self, cloud, relay):
        client = relay.client()
        chunk = relay.capacity_bytes * 0.4
        items = [("a", b"x"), ("b", b"y")]
        sizes = [chunk, chunk]

        def scenario():
            yield client.mpush(items, logical_sizes=sizes)
            yield client.mpush(items, logical_sizes=sizes)  # mapper retry

        cloud.sim.run_process(scenario())
        assert relay.used_logical == pytest.approx(2 * chunk)
        assert relay.key_count == 2

    def test_failed_mpull_does_not_count_served_pulls(self, cloud, relay):
        client = relay.client()

        def scenario():
            yield client.push("k1", b"alive", logical_size=500.0)
            try:
                yield client.mpull(["k1", "ghost"])
            except RelayKeyMissing:
                pass

        cloud.sim.run_process(scenario())
        assert relay.stats.pulls == 0  # nothing was actually served
        assert relay.stats.bytes_out == 0.0
        assert relay.stats.misses == 1

    def test_failed_consuming_mpull_neither_loses_data_nor_leaks(self, cloud, relay):
        """A missing key mid-batch must abort the MPULL before anything
        is consumed: present keys stay pullable and reserved memory is
        not leaked."""
        client = relay.client()

        def scenario():
            yield client.push("k1", b"alive", logical_size=500.0)
            try:
                yield client.mpull(["k1", "ghost"], consume=True)
            except RelayKeyMissing:
                pass
            return (yield client.pull("k1"))

        assert cloud.sim.run_process(scenario()) == b"alive"
        assert relay.used_logical == 500.0  # still resident, not leaked

    def test_mdelete_removes_batch_and_frees_memory(self, cloud, relay):
        client = relay.client()

        def scenario():
            yield client.mpush([("a", b"x"), ("b", b"y")],
                               logical_sizes=[100.0, 200.0])
            return (yield client.mdelete(["a", "b", "ghost"]))

        assert cloud.sim.run_process(scenario()) == 2
        assert relay.key_count == 0
        assert relay.used_logical == 0.0

    def test_consuming_pull_frees_memory(self, cloud, relay):
        client = relay.client()

        def scenario():
            yield client.push("k", b"x" * 64, logical_size=1000.0)
            before = relay.used_logical
            yield client.pull("k", consume=True)
            return before, relay.used_logical

        before, after = cloud.sim.run_process(scenario())
        assert before == 1000.0
        assert after == 0.0
        assert relay.key_count == 0

    def test_terminated_relay_refuses_requests(self, cloud, relay):
        client = relay.client()
        relay.terminate()

        def scenario():
            yield client.push("k", b"x")

        with pytest.raises(VmNotRunning):
            cloud.sim.run_process(scenario())

    def test_unknown_relay_id_rejected(self, cloud):
        with pytest.raises(UnknownRelay):
            cloud.vms.relay("relay-vm-999")

    def test_terminate_drops_payloads_and_deregisters(self, cloud, relay):
        client = relay.client()

        def scenario():
            yield client.push("k", b"payload", logical_size=500.0)

        cloud.sim.run_process(scenario())
        relay_id = relay.relay_id
        relay.terminate()
        assert relay.key_count == 0
        assert relay.used_logical == 0.0
        with pytest.raises(UnknownRelay):
            cloud.vms.relay(relay_id)


class TestCapacityAndBackpressure:
    def test_partition_that_can_never_fit_rejected(self, cloud, relay):
        client = relay.client()
        too_big = relay.capacity_bytes * 1.01

        def scenario():
            yield client.push("k", b"x", logical_size=too_big)

        with pytest.raises(RelayCapacityExceeded):
            cloud.sim.run_process(scenario())

    def test_rejected_oversized_repush_preserves_old_value(self, cloud, relay):
        """A push that can never fit must fail *before* evicting the
        key's resident value — failed requests are side-effect-free."""
        client = relay.client()

        def scenario():
            yield client.push("k", b"old", logical_size=100.0)
            try:
                yield client.push("k", b"huge",
                                  logical_size=relay.capacity_bytes * 2)
            except RelayCapacityExceeded:
                pass
            try:
                yield client.mpush([("k", b"huge2")],
                                   logical_sizes=[relay.capacity_bytes * 2])
            except RelayCapacityExceeded:
                pass
            return (yield client.pull("k"))

        assert cloud.sim.run_process(scenario()) == b"old"
        assert relay.used_logical == 100.0

    def test_oversubscribed_push_waits_for_consumer(self, cloud, relay):
        """A PUSH that does not fit blocks until a consuming PULL frees
        space — backpressure, not failure."""
        client = relay.client()
        chunk = relay.capacity_bytes * 0.6  # two of these cannot coexist
        events = []

        def pusher():
            yield client.push("a", b"a" * 16, logical_size=chunk)
            events.append(("pushed-a", cloud.sim.now))
            yield client.push("b", b"b" * 16, logical_size=chunk)
            events.append(("pushed-b", cloud.sim.now))

        def consumer():
            yield cloud.sim.timeout(50.0)  # relay is full by now
            yield client.pull("a", consume=True)
            events.append(("consumed-a", cloud.sim.now))

        cloud.sim.process(pusher())
        cloud.sim.process(consumer())
        cloud.sim.run()

        order = [name for name, _time in events]
        assert order == ["pushed-a", "consumed-a", "pushed-b"]
        times = dict(events)
        assert times["pushed-b"] >= times["consumed-a"]
        assert times["pushed-b"] >= 50.0
        assert relay.stats.backpressure_waits == 1

    def test_waiting_pushes_drain_in_fifo_order(self, cloud, relay):
        client = relay.client()
        chunk = relay.capacity_bytes * 0.9
        completions = []

        def pusher(name, delay):
            yield cloud.sim.timeout(delay)
            yield client.push(name, b"x", logical_size=chunk)
            completions.append(name)

        def consumer():
            for step in range(3):
                # Poll until push ``step`` has landed, then consume it so
                # the next queued push can be admitted.
                while f"p{step}" not in completions:
                    yield cloud.sim.timeout(1.0)
                yield client.pull(f"p{step}", consume=True)

        cloud.sim.process(pusher("p0", 0.0))
        cloud.sim.process(pusher("p1", 1.0))
        cloud.sim.process(pusher("p2", 2.0))
        cloud.sim.process(consumer())
        cloud.sim.run()
        assert completions == ["p0", "p1", "p2"]
        assert relay.stats.backpressure_waits == 2

    def test_peak_fill_tracks_reservations(self, cloud, relay):
        client = relay.client()
        half = relay.capacity_bytes / 2

        def scenario():
            yield client.push("a", b"x", logical_size=half)
            yield client.pull("a", consume=True)
            yield client.push("b", b"x", logical_size=half / 2)

        cloud.sim.run_process(scenario())
        assert relay.peak_fill_fraction == pytest.approx(0.5)
        assert relay.fill_fraction == pytest.approx(0.25)


class TestNicContention:
    # Big enough that transfer dominates latency, small enough that two
    # partitions coexist in a bx2-2x8 relay's memory (8 GB x 0.85).
    LOGICAL = 2.0 * GB

    def _pull_duration(self, cloud, relay, streams):
        client = relay.client()
        finished = {}

        def seed():
            for index in range(streams):
                yield client.push(f"k{index}", b"x", logical_size=self.LOGICAL)

        cloud.sim.run_process(seed())
        started = cloud.sim.now

        def puller(index):
            yield client.pull(f"k{index}")
            finished[index] = cloud.sim.now - started

        for index in range(streams):
            cloud.sim.process(puller(index))
        cloud.sim.run()
        return finished

    def test_concurrent_pulls_share_the_instance_nic(self, cloud):
        relay_one = relay_ready(cloud.vms, "bx2-2x8")
        one = self._pull_duration(cloud, relay_one, streams=1)
        relay_two = relay_ready(cloud.vms, "bx2-2x8")
        two = self._pull_duration(cloud, relay_two, streams=2)

        nic = relay_one.vm.instance_type.nic_bandwidth
        assert one[0] == pytest.approx(self.LOGICAL / nic, rel=0.01)
        # Two uncapped flows split the NIC: each takes ~twice as long.
        for duration in two.values():
            assert duration == pytest.approx(2 * self.LOGICAL / nic, rel=0.01)

    def test_concurrent_push_and_pull_contend(self, cloud, relay):
        client = relay.client()
        nic = relay.vm.instance_type.nic_bandwidth
        done = {}

        def seed():
            yield client.push("seed", b"x", logical_size=self.LOGICAL)

        cloud.sim.run_process(seed())
        started = cloud.sim.now

        def pusher():
            yield client.push("new", b"y", logical_size=self.LOGICAL)
            done["push"] = cloud.sim.now - started

        def puller():
            yield client.pull("seed")
            done["pull"] = cloud.sim.now - started

        cloud.sim.process(pusher())
        cloud.sim.process(puller())
        cloud.sim.run()
        # Inbound and outbound flows share one NIC in this model, so
        # both finish in ~2x the uncontended time.
        for duration in done.values():
            assert duration == pytest.approx(2 * self.LOGICAL / nic, rel=0.01)

    def test_client_nic_cap_bounds_single_flow(self, cloud, relay):
        capped = relay.client(connection_bandwidth=relay.vm.instance_type.nic_bandwidth / 8)

        def scenario():
            yield capped.push("k", b"x", logical_size=self.LOGICAL)
            before = cloud.sim.now
            yield capped.pull("k")
            return cloud.sim.now - before

        duration = cloud.sim.run_process(scenario())
        expected = self.LOGICAL / (relay.vm.instance_type.nic_bandwidth / 8)
        assert duration == pytest.approx(expected, rel=0.01)


class TestBilling:
    def test_billed_from_warm_provision_to_terminate(self, cloud):
        relay = relay_ready(cloud.vms, "bx2-8x32")

        def scenario():
            yield cloud.sim.timeout(300.0)

        cloud.sim.run_process(scenario())
        relay.terminate()
        vm_lines = cloud.meter.filtered(service="vm")
        assert vm_lines, "terminate must bill the relay VM"
        seconds = sum(
            line.quantity for line in vm_lines if line.item == "instance_second"
        )
        assert seconds == pytest.approx(300.0)
        instance = relay.vm.instance_type
        instance_usd = sum(
            line.usd for line in vm_lines if line.item == "instance_second"
        )
        assert instance_usd == pytest.approx(300.0 * instance.per_second_usd)
        # The boot volume is billed alongside the instance.
        assert any(line.item == "volume_gb_hour" for line in vm_lines)

    def test_cold_provision_pays_boot_and_bills_it(self, cloud):
        def scenario():
            relay = yield provision_relay(cloud.vms, "bx2-8x32")
            return relay, cloud.sim.now

        relay, ready_at = cloud.sim.run_process(scenario())
        assert relay.state == "running"
        assert ready_at == pytest.approx(cloud.profile.vm.boot.mean)
        relay.terminate()
        seconds = sum(
            line.quantity
            for line in cloud.meter.filtered(service="vm")
            if line.item == "instance_second"
        )
        # Billing starts at the provision call, so the boot window and
        # the provider's minimum billed runtime both count.
        assert seconds == pytest.approx(
            max(ready_at, cloud.profile.vm.minimum_billed_s)
        )

    def test_minimum_billed_window_applies(self, cloud):
        relay = relay_ready(cloud.vms, "bx2-2x8")
        relay.terminate()  # immediately
        seconds = sum(
            line.quantity
            for line in cloud.meter.filtered(service="vm")
            if line.item == "instance_second"
        )
        assert seconds == pytest.approx(cloud.profile.vm.minimum_billed_s)
