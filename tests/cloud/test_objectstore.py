"""Unit tests for the simulated object store."""

import dataclasses

import pytest

from repro.cloud import Cloud, MB
from repro.cloud.objectstore import (
    BucketAlreadyExists,
    InvalidRange,
    MultipartError,
    NoSuchBucket,
    NoSuchKey,
    SlowDown,
)
from repro.cloud.profiles import ibm_us_east


@pytest.fixture
def cloud():
    cloud = Cloud.fresh(seed=3, profile=ibm_us_east(deterministic=True))
    cloud.store.ensure_bucket("bucket")
    return cloud


def run(cloud, generator):
    return cloud.sim.run_process(generator)


class TestBuckets:
    def test_create_and_exists(self, cloud):
        cloud.store.create_bucket("fresh")
        assert cloud.store.bucket_exists("fresh")

    def test_duplicate_create_raises(self, cloud):
        with pytest.raises(BucketAlreadyExists):
            cloud.store.create_bucket("bucket")

    def test_ensure_bucket_is_idempotent(self, cloud):
        cloud.store.ensure_bucket("bucket")
        cloud.store.ensure_bucket("bucket")
        assert cloud.store.bucket_exists("bucket")

    def test_missing_bucket_raises(self, cloud):
        def scenario():
            yield cloud.store.put("nope", "k", b"x")

        with pytest.raises(NoSuchBucket):
            run(cloud, scenario())


class TestPutGet:
    def test_roundtrip_preserves_bytes(self, cloud):
        payload = bytes(range(256)) * 100

        def scenario():
            yield cloud.store.put("bucket", "key", payload)
            return (yield cloud.store.get("bucket", "key"))

        assert run(cloud, scenario()) == payload

    def test_get_missing_key_raises(self, cloud):
        def scenario():
            yield cloud.store.get("bucket", "missing")

        with pytest.raises(NoSuchKey):
            run(cloud, scenario())

    def test_overwrite_replaces_content(self, cloud):
        def scenario():
            yield cloud.store.put("bucket", "key", b"old")
            yield cloud.store.put("bucket", "key", b"new")
            return (yield cloud.store.get("bucket", "key"))

        assert run(cloud, scenario()) == b"new"

    def test_put_returns_metadata(self, cloud):
        def scenario():
            return (yield cloud.store.put("bucket", "key", b"abc"))

        meta = run(cloud, scenario())
        assert meta.size == 3
        assert meta.bucket == "bucket"
        assert meta.key == "key"
        assert meta.etag  # non-empty content hash

    def test_transfer_time_scales_with_size(self, cloud):
        profile = cloud.profile.objectstore
        small, large = 1 * MB, 10 * MB

        def timed_put(n):
            start = cloud.sim.now
            yield cloud.store.put("bucket", f"k{n}", b"x" * n)
            return cloud.sim.now - start

        t_small = run(cloud, timed_put(small))
        t_large = run(cloud, timed_put(large))
        expected_delta = (large - small) / profile.per_connection_bandwidth
        assert t_large - t_small == pytest.approx(expected_delta, rel=1e-6)

    def test_empty_object_allowed(self, cloud):
        def scenario():
            yield cloud.store.put("bucket", "empty", b"")
            return (yield cloud.store.get("bucket", "empty"))

        assert run(cloud, scenario()) == b""


class TestRangeReads:
    def test_range_returns_slice(self, cloud):
        payload = bytes(range(100))

        def scenario():
            yield cloud.store.put("bucket", "key", payload)
            return (yield cloud.store.get_range("bucket", "key", 10, 20))

        assert run(cloud, scenario()) == payload[10:20]

    def test_range_past_end_truncates(self, cloud):
        def scenario():
            yield cloud.store.put("bucket", "key", b"0123456789")
            return (yield cloud.store.get_range("bucket", "key", 5, 100))

        assert run(cloud, scenario()) == b"56789"

    def test_invalid_range_raises(self, cloud):
        def scenario():
            yield cloud.store.put("bucket", "key", b"0123456789")
            yield cloud.store.get_range("bucket", "key", 8, 2)

        with pytest.raises(InvalidRange):
            run(cloud, scenario())

    def test_negative_start_raises(self, cloud):
        def scenario():
            yield cloud.store.put("bucket", "key", b"0123456789")
            yield cloud.store.get_range("bucket", "key", -1, 5)

        with pytest.raises(InvalidRange):
            run(cloud, scenario())


class TestListHeadDelete:
    def test_list_filters_by_prefix_sorted(self, cloud):
        def scenario():
            yield cloud.store.put("bucket", "a/2", b"x")
            yield cloud.store.put("bucket", "a/1", b"x")
            yield cloud.store.put("bucket", "b/1", b"x")
            return (yield cloud.store.list_keys("bucket", prefix="a/"))

        assert run(cloud, scenario()) == ["a/1", "a/2"]

    def test_head_returns_metadata_without_transfer(self, cloud):
        def scenario():
            yield cloud.store.put("bucket", "key", b"x" * MB)
            before = cloud.store.stats.bytes_out
            meta = yield cloud.store.head("bucket", "key")
            return meta, cloud.store.stats.bytes_out - before

        meta, delta_out = run(cloud, scenario())
        assert meta.size == MB
        assert delta_out == 0

    def test_head_missing_raises(self, cloud):
        def scenario():
            yield cloud.store.head("bucket", "missing")

        with pytest.raises(NoSuchKey):
            run(cloud, scenario())

    def test_delete_removes_object(self, cloud):
        def scenario():
            yield cloud.store.put("bucket", "key", b"x")
            yield cloud.store.delete("bucket", "key")
            yield cloud.store.get("bucket", "key")

        with pytest.raises(NoSuchKey):
            run(cloud, scenario())

    def test_delete_is_idempotent(self, cloud):
        def scenario():
            yield cloud.store.delete("bucket", "never-existed")
            return "ok"

        assert run(cloud, scenario()) == "ok"


class TestMultipart:
    def test_parts_concatenate_in_number_order(self, cloud):
        def scenario():
            upload_id = yield cloud.store.create_multipart_upload("bucket", "big")
            yield cloud.store.upload_part(upload_id, 2, b"world")
            yield cloud.store.upload_part(upload_id, 1, b"hello ")
            yield cloud.store.complete_multipart_upload(upload_id)
            return (yield cloud.store.get("bucket", "big"))

        assert run(cloud, scenario()) == b"hello world"

    def test_unknown_upload_rejected(self, cloud):
        def scenario():
            yield cloud.store.upload_part("mpu-999", 1, b"x")

        with pytest.raises(MultipartError):
            run(cloud, scenario())

    def test_complete_twice_rejected(self, cloud):
        def scenario():
            upload_id = yield cloud.store.create_multipart_upload("bucket", "k")
            yield cloud.store.upload_part(upload_id, 1, b"x")
            yield cloud.store.complete_multipart_upload(upload_id)
            yield cloud.store.complete_multipart_upload(upload_id)

        with pytest.raises(MultipartError):
            run(cloud, scenario())

    def test_empty_complete_rejected(self, cloud):
        def scenario():
            upload_id = yield cloud.store.create_multipart_upload("bucket", "k")
            yield cloud.store.complete_multipart_upload(upload_id)

        with pytest.raises(MultipartError):
            run(cloud, scenario())


class TestRateLimiting:
    def test_ops_rate_caps_small_request_throughput(self):
        profile = ibm_us_east(deterministic=True)
        profile.objectstore.ops_per_second = 100.0
        profile.objectstore.ops_burst = 1.0
        profile.objectstore.read_latency.mean = 0.0
        profile.objectstore.write_latency.mean = 0.0
        profile.objectstore.slowdown_after_s = None
        cloud = Cloud.fresh(seed=3, profile=profile)
        cloud.store.ensure_bucket("bucket")
        done_times = []

        def worker(index):
            yield cloud.store.put("bucket", f"k{index}", b"x")
            done_times.append(cloud.sim.now)

        for index in range(200):
            cloud.sim.process(worker(index))
        cloud.sim.run()
        duration = max(done_times) - min(done_times)
        measured_rate = (len(done_times) - 1) / duration
        assert measured_rate == pytest.approx(100.0, rel=0.05)

    def test_slowdown_raised_when_backlog_exceeds_threshold(self):
        profile = ibm_us_east(deterministic=True)
        profile.objectstore.ops_per_second = 10.0
        profile.objectstore.ops_burst = 1.0
        profile.objectstore.slowdown_after_s = 1.0
        cloud = Cloud.fresh(seed=3, profile=profile)
        cloud.store.ensure_bucket("bucket")
        outcomes = {"ok": 0, "slow": 0}

        def worker(index):
            try:
                yield cloud.store.put("bucket", f"k{index}", b"x")
                outcomes["ok"] += 1
            except SlowDown:
                outcomes["slow"] += 1

        for index in range(100):
            cloud.sim.process(worker(index))
        cloud.sim.run()
        assert outcomes["slow"] > 0
        assert outcomes["ok"] >= 10  # the burst plus the first waiters
        assert cloud.store.stats.slowdowns == outcomes["slow"]


class TestAggregateBandwidth:
    def test_parallel_readers_share_aggregate_pipe(self):
        profile = ibm_us_east(deterministic=True)
        profile.objectstore.read_latency.mean = 0.0
        profile.objectstore.write_latency.mean = 0.0
        profile.objectstore.per_connection_bandwidth = 100 * MB
        profile.objectstore.aggregate_bandwidth = 200 * MB
        cloud = Cloud.fresh(seed=3, profile=profile)
        cloud.store.ensure_bucket("bucket")
        payload = b"x" * (100 * MB)

        def scenario():
            yield cloud.store.put("bucket", "k", payload)
            start = cloud.sim.now
            events = [cloud.store.get("bucket", "k") for _ in range(4)]
            yield cloud.sim.all_of(events)
            return cloud.sim.now - start

        elapsed = run(cloud, scenario())
        # 4 readers of 100 MB through a 200 MB/s aggregate: 400/200 = 2 s.
        assert elapsed == pytest.approx(2.0, rel=0.01)

    def test_connection_cap_binds_single_reader(self):
        profile = ibm_us_east(deterministic=True)
        profile.objectstore.read_latency.mean = 0.0
        profile.objectstore.write_latency.mean = 0.0
        profile.objectstore.per_connection_bandwidth = 50 * MB
        profile.objectstore.aggregate_bandwidth = 200 * MB
        cloud = Cloud.fresh(seed=3, profile=profile)
        cloud.store.ensure_bucket("bucket")

        def scenario():
            yield cloud.store.put("bucket", "k", b"x" * (100 * MB))
            start = cloud.sim.now
            yield cloud.store.get("bucket", "k")
            return cloud.sim.now - start

        elapsed = run(cloud, scenario())
        assert elapsed == pytest.approx(2.0, rel=0.01)  # 100 MB at 50 MB/s


class TestLogicalScale:
    def test_logical_scale_multiplies_transfer_time(self):
        base = ibm_us_east(deterministic=True)
        base.objectstore.read_latency.mean = 0.0
        base.objectstore.write_latency.mean = 0.0
        scaled = dataclasses.replace(base, logical_scale=100.0)
        results = {}
        for label, profile in (("base", base), ("scaled", scaled)):
            cloud = Cloud.fresh(seed=3, profile=profile)
            cloud.store.ensure_bucket("bucket")

            def scenario():
                start = cloud.sim.now
                yield cloud.store.put("bucket", "k", b"x" * MB)
                return cloud.sim.now - start

            results[label] = cloud.sim.run_process(scenario())
        assert results["scaled"] == pytest.approx(results["base"] * 100.0, rel=1e-6)

    def test_request_counts_unaffected_by_scale(self):
        profile = ibm_us_east(deterministic=True, logical_scale=50.0)
        cloud = Cloud.fresh(seed=3, profile=profile)
        cloud.store.ensure_bucket("bucket")

        def scenario():
            yield cloud.store.put("bucket", "k", b"x" * 1000)
            yield cloud.store.get("bucket", "k")

        cloud.sim.run_process(scenario())
        assert cloud.store.stats.puts == 1
        assert cloud.store.stats.gets == 1
        assert cloud.store.stats.bytes_in == pytest.approx(50.0 * 1000)


class TestBilling:
    def test_requests_charged_by_class(self, cloud):
        def scenario():
            yield cloud.store.put("bucket", "k", b"x")  # class A
            yield cloud.store.get("bucket", "k")  # class B
            yield cloud.store.list_keys("bucket")  # class A

        run(cloud, scenario())
        by_item = cloud.meter.total_by_item()
        profile = cloud.profile.objectstore
        assert by_item[("objectstore", "class_a_request")] == pytest.approx(
            2 * profile.class_a_price_usd
        )
        assert by_item[("objectstore", "class_b_request")] == pytest.approx(
            1 * profile.class_b_price_usd
        )

    def test_volume_billing_accrues_over_time(self, cloud):
        def scenario():
            yield cloud.store.put("bucket", "k", b"x" * (100 * MB))
            yield cloud.sim.timeout(3600.0)  # hold for one hour

        run(cloud, scenario())
        cloud.store.finalize_billing()
        volume_lines = [
            line for line in cloud.meter.lines if line.item == "storage_gb_hour"
        ]
        assert len(volume_lines) == 1
        expected_gb_hours = (100 * MB) / (1024**3) * 1.0
        assert volume_lines[0].quantity == pytest.approx(expected_gb_hours, rel=0.01)
