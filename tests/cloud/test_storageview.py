"""Tests for bandwidth-bounded storage views."""

import pytest

from repro.cloud import Cloud, MB
from repro.cloud.profiles import ibm_us_east
from repro.cloud.storageview import BoundStorage


@pytest.fixture
def cloud():
    profile = ibm_us_east(deterministic=True)
    profile.objectstore.read_latency.mean = 0.0
    profile.objectstore.write_latency.mean = 0.0
    cloud = Cloud.fresh(seed=47, profile=profile)
    cloud.store.ensure_bucket("b")
    return cloud


class TestBoundStorage:
    def test_unbounded_view_uses_store_connection_cap(self, cloud):
        view = BoundStorage(cloud.store, None)
        per_connection = cloud.profile.objectstore.per_connection_bandwidth

        def scenario():
            yield view.put("b", "k", b"x" * (10 * MB))
            start = cloud.sim.now
            yield view.get("b", "k")
            return cloud.sim.now - start

        elapsed = cloud.sim.run_process(scenario())
        assert elapsed == pytest.approx(10 * MB / per_connection, rel=0.01)

    def test_bound_caps_transfer_rate(self, cloud):
        view = BoundStorage(cloud.store, 5 * MB)

        def scenario():
            yield view.put("b", "k", b"x" * (10 * MB))
            start = cloud.sim.now
            yield view.get("b", "k")
            return cloud.sim.now - start

        elapsed = cloud.sim.run_process(scenario())
        assert elapsed == pytest.approx(2.0, rel=0.01)  # 10 MB at 5 MB/s

    def test_bounded_never_exceeds_parent(self, cloud):
        parent = BoundStorage(cloud.store, 5 * MB)
        child = parent.bounded(50 * MB)  # request looser: must stay at 5
        assert child.connection_bandwidth == 5 * MB

    def test_bounded_tightens(self, cloud):
        parent = BoundStorage(cloud.store, 20 * MB)
        child = parent.bounded(5 * MB)
        assert child.connection_bandwidth == 5 * MB

    def test_bounded_from_unbounded(self, cloud):
        parent = BoundStorage(cloud.store, None)
        child = parent.bounded(7 * MB)
        assert child.connection_bandwidth == 7 * MB

    def test_raw_exposes_store(self, cloud):
        view = BoundStorage(cloud.store, None)
        assert view.raw is cloud.store

    def test_multipart_through_view(self, cloud):
        view = BoundStorage(cloud.store, 10 * MB)

        def scenario():
            upload_id = yield view.create_multipart_upload("b", "big")
            yield view.upload_part(upload_id, 1, b"part1-")
            yield view.upload_part(upload_id, 2, b"part2")
            yield view.complete_multipart_upload(upload_id)
            return (yield view.get("b", "big"))

        assert cloud.sim.run_process(scenario()) == b"part1-part2"
