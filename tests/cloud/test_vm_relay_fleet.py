"""Unit tests for the sharded multi-relay fleet.

The fleet must look exactly like one relay to the rest of the stack
(same client API, same cancellation/fencing contract, same accounting
invariants) while actually spreading keys, memory and NIC load over N
shard VMs — and billing N instances for it.
"""

import pytest

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.cloud.vm import (
    RelayAttemptFenced,
    RelayKeyMissing,
    UnknownRelay,
    fleet_ready,
    provision_fleet,
)


@pytest.fixture
def cloud():
    return Cloud.fresh(seed=9, profile=ibm_us_east(deterministic=True))


@pytest.fixture
def fleet(cloud):
    return fleet_ready(cloud.vms, "bx2-2x8", shards=3)


class TestRouting:
    def test_routing_is_deterministic_and_total(self, fleet):
        keys = [f"prefix/m{m:05d}.r{r:05d}" for m in range(8) for r in range(8)]
        first = [fleet.shard_index_for_key(key) for key in keys]
        second = [fleet.shard_index_for_key(key) for key in keys]
        assert first == second
        assert all(0 <= index < fleet.shard_count for index in first)

    def test_routing_spreads_keys_over_every_shard(self, fleet):
        keys = [f"prefix/m{m:05d}.r{r:05d}" for m in range(16) for r in range(16)]
        used = {fleet.shard_index_for_key(key) for key in keys}
        assert used == set(range(fleet.shard_count))

    def test_same_key_always_same_shard_object(self, fleet):
        assert fleet.shard_for_key("k1") is fleet.shard_for_key("k1")


class TestFanOut:
    def test_mpush_mpull_roundtrip_preserves_order(self, cloud, fleet):
        client = fleet.client()
        items = [(f"k{i}", bytes([i + 1]) * 16) for i in range(12)]

        def scenario():
            yield client.mpush(items)
            return (yield client.mpull([key for key, _data in items]))

        assert cloud.sim.run_process(scenario()) == [d for _k, d in items]
        # The batch really spread over the shards...
        resident = [shard.key_count for shard in fleet.shards]
        assert sum(resident) == len(items)
        assert sum(1 for count in resident if count > 0) > 1
        # ...and the aggregate stats line up.
        assert fleet.stats.pushes == len(items)
        assert fleet.stats.pulls == len(items)

    def test_single_key_ops_route_to_one_shard(self, cloud, fleet):
        client = fleet.client()

        def scenario():
            yield client.push("solo", b"x" * 32)
            data = yield client.pull("solo")
            removed = yield client.delete("solo")
            return data, removed

        data, removed = cloud.sim.run_process(scenario())
        assert data == b"x" * 32
        assert removed is True
        assert fleet.key_count == 0

    def test_mpull_missing_key_fails_whole_batch(self, cloud, fleet):
        client = fleet.client()

        def scenario():
            yield client.mpush([("a", b"1"), ("b", b"2")])
            yield client.mpull(["a", "ghost", "b"])

        with pytest.raises(RelayKeyMissing):
            cloud.sim.run_process(scenario())

    def test_mdelete_counts_across_shards(self, cloud, fleet):
        client = fleet.client()
        items = [(f"d{i}", b"z" * 8) for i in range(9)]

        def scenario():
            yield client.mpush(items)
            return (yield client.mdelete([k for k, _d in items] + ["ghost"]))

        assert cloud.sim.run_process(scenario()) == len(items)

    def test_empty_batches_are_cheap_noops(self, cloud, fleet):
        client = fleet.client()

        def scenario():
            yield client.mpush([])
            pulled = yield client.mpull([])
            removed = yield client.mdelete([])
            return pulled, removed

        assert cloud.sim.run_process(scenario()) == ([], 0)


class TestAggregation:
    def test_capacity_and_fill_aggregate_over_shards(self, cloud, fleet):
        per_shard = fleet.shards[0].capacity_bytes
        assert fleet.capacity_bytes == pytest.approx(3 * per_shard)
        client = fleet.client()

        def scenario():
            yield client.mpush([(f"k{i}", b"y" * 64) for i in range(6)])

        cloud.sim.run_process(scenario())
        assert fleet.used_logical == pytest.approx(fleet.entry_bytes)
        assert 0 < fleet.fill_fraction < 1
        assert fleet.peak_fill_fraction >= max(
            shard.peak_fill_fraction for shard in fleet.shards
        ) - 1e-12
        fleet.check_memory_accounting()

    def test_aggregate_nic_is_n_times_one_instance(self, fleet):
        one = fleet.shards[0].vm.instance_type.nic_bandwidth
        assert fleet.aggregate_nic_bandwidth == pytest.approx(3 * one)

    def test_terminate_bills_every_shard_and_deregisters(self, cloud, fleet):
        def tick():
            yield cloud.sim.timeout(120.0)

        cloud.sim.run_process(tick())
        marker = cloud.meter.snapshot()
        fleet.terminate()
        assert fleet.state == "terminated"
        lines = [
            line for line in cloud.meter.since(marker).lines
            if line.service == "vm" and line.item == "instance_second"
        ]
        assert len(lines) == 3
        with pytest.raises(UnknownRelay):
            cloud.vms.relay(fleet.relay_id)

    def test_workers_resolve_the_fleet_by_id(self, cloud, fleet):
        """The fleet id travels in task payloads exactly like a relay
        id; the VM service resolves it to the fleet façade."""
        assert cloud.vms.relay(fleet.relay_id) is fleet


class TestFleetCancellation:
    def test_cancel_attempt_forwards_to_every_shard(self, cloud, fleet):
        client = fleet.client(attempt_id="attempt-1")

        def scenario():
            yield client.mpush([(f"k{i}", b"w" * 32) for i in range(9)])

        cloud.sim.run_process(scenario())
        fleet.cancel_attempt("attempt-1")
        assert fleet.is_fenced("attempt-1")
        for shard in fleet.shards:
            assert shard.is_fenced("attempt-1")
        # Committed data is untouched; nothing was in flight to reclaim.
        assert fleet.key_count == 9
        assert fleet.residual_reservation_bytes("attempt-1") == 0.0

    def test_fenced_attempt_rejected_on_any_shard(self, cloud, fleet):
        fleet.cancel_attempt("zombie")
        client = fleet.client(attempt_id="zombie")

        def scenario():
            yield client.mpush([("a", b"1"), ("b", b"2"), ("c", b"3")])

        with pytest.raises(RelayAttemptFenced):
            cloud.sim.run_process(scenario())
        assert fleet.residual_reservation_bytes() == 0.0
        fleet.check_memory_accounting()

    def test_mid_transfer_cancel_reclaims_on_every_shard(self, cloud, fleet):
        """Cancel while a fan-out MPUSH is mid-flight: every shard's
        reservation must be reclaimed and accounting must balance."""
        # A slow caller NIC stretches the transfers to tens of ms, so
        # the cancel below is guaranteed to land mid-flight.
        client = fleet.client(connection_bandwidth=1e6, attempt_id="doomed")
        items = [(f"big{i}", b"B" * 4096) for i in range(9)]

        def pusher():
            yield client.mpush(items)

        def canceller():
            # Past the request latency (sub-ms), inside the transfer.
            yield cloud.sim.timeout(0.002)
            reclaimed = fleet.cancel_attempt("doomed")
            return reclaimed

        push_process = cloud.sim.process(pusher(), name="pusher")
        cancel = cloud.sim.process(canceller(), name="canceller")
        with pytest.raises(RelayAttemptFenced):
            cloud.sim.run(until=push_process.completion)
        cloud.sim.run(until=cancel.completion)
        assert fleet.residual_reservation_bytes() == 0.0
        assert fleet.active_flows == 0
        assert fleet.key_count == 0  # nothing committed
        fleet.check_memory_accounting()


class TestValidateHeadroom:
    def test_fleet_sort_rejects_data_without_per_shard_headroom(self, cloud):
        """Aggregate capacity is not enough: the hash split is uneven,
        so a fleet that only just fits in total must be rejected before
        a hot shard can backpressure-deadlock mid-run."""
        from repro.errors import ShuffleError
        from repro.shuffle import ShardedRelayExchange

        fleet = fleet_ready(cloud.vms, "bx2-2x8", shards=2)
        exchange = ShardedRelayExchange(fleet)
        # 95% of aggregate capacity: passes the total check, fails the
        # per-shard imbalance headroom.
        with pytest.raises(ShuffleError, match="imbalance headroom"):
            exchange.validate(fleet.capacity_bytes * 0.95)
        # Well under the headroom: accepted.
        exchange.validate(fleet.capacity_bytes * 0.5)


class TestProvisioning:
    def test_cold_fleet_boots_shards_in_parallel(self, cloud):
        started = cloud.sim.now

        def scenario():
            return (yield provision_fleet(cloud.vms, "bx2-2x8", shards=4))

        fleet = cloud.sim.run_process(scenario())
        boot = cloud.profile.vm.boot.mean
        # One boot latency, not four: the shards provision concurrently.
        assert cloud.sim.now - started == pytest.approx(boot, rel=0.01)
        assert fleet.shard_count == 4
        assert fleet.state == "running"

    def test_zero_shards_rejected(self, cloud):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            fleet_ready(cloud.vms, "bx2-2x8", shards=0)
