"""Multi-tenant relay primitives: read-leases, scopes, peak epochs.

The three single-job assumptions the shared ExchangeService exposed,
pinned at the relay level:

* consuming pulls from *worker attempts* take read-leases — the entry
  stays resident and pullable until the attempt commits, and a dead or
  fenced attempt's leases are reinstated (crash-safe consume mode);
* scope fencing — attempts bind to a ``tenant/job`` scope and
  ``cancel_scope`` reclaims/fences exactly that scope's attempts,
  never a sibling tenant's;
* epoch-scoped peak tracking — concurrent jobs measure their own high
  watermark without resetting each other's.
"""

import pytest

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.cloud.vm import RelayAttemptFenced, relay_ready
from repro.cloud.vm.fleet import fleet_ready
from repro.errors import SimulationError


@pytest.fixture
def cloud():
    return Cloud.fresh(seed=5, profile=ibm_us_east(deterministic=True))


@pytest.fixture
def relay(cloud):
    return relay_ready(cloud.vms, "bx2-2x8")


class TestConsumeLeases:
    def test_driver_consume_removes_immediately(self, cloud, relay):
        """Clients without an attempt id keep the old semantics."""
        client = relay.client()

        def scenario():
            yield client.push("k", b"v", logical_size=100.0)
            yield client.pull("k", consume=True)
            return relay.key_count

        assert cloud.sim.run_process(scenario()) == 0
        assert relay.stats.consume_leases == 0

    def test_attempt_consume_defers_removal_to_commit(self, cloud, relay):
        client = relay.client(attempt_id="att-1")

        def scenario():
            yield client.push("k", b"v", logical_size=100.0)
            data = yield client.pull("k", consume=True)
            assert data == b"v"
            # Leased, not removed: still resident and re-pullable.
            assert relay.key_count == 1
            assert (yield client.pull("k")) == b"v"
            removed = relay.commit_attempt("att-1")
            assert removed == 1
            assert relay.key_count == 0

        cloud.sim.run_process(scenario())
        assert relay.stats.consume_leases == 1
        assert relay.stats.lease_commits == 1
        relay.check_memory_accounting()

    def test_dead_attempt_lease_is_reinstated(self, cloud, relay):
        filler = relay.client()
        victim = relay.client(attempt_id="att-2")

        def scenario():
            yield filler.push("k", b"v", logical_size=100.0)
            yield victim.pull("k", consume=True)
            assert relay.key_count == 1
            relay.cancel_attempt("att-2")
            # The lease died with the attempt; the entry survives.
            assert relay.key_count == 1
            assert (yield filler.pull("k")) == b"v"

        cloud.sim.run_process(scenario())
        assert relay.stats.lease_reinstatements == 1
        assert relay.stats.lease_commits == 0
        assert relay.used_logical == pytest.approx(100.0)
        relay.check_memory_accounting()

    def test_commit_of_unknown_attempt_is_noop(self, cloud, relay):
        assert relay.commit_attempt("never-seen") == 0
        assert relay.commit_attempt(None) == 0

    def test_double_lease_commits_once(self, cloud, relay):
        """A retried pull of the same key by the same attempt holds one
        lease, and commit removes the entry exactly once."""
        client = relay.client(attempt_id="att-3")

        def scenario():
            yield client.push("k", b"v", logical_size=50.0)
            yield client.pull("k", consume=True)
            yield client.pull("k", consume=True)
            assert relay.stats.consume_leases == 1
            assert relay.commit_attempt("att-3") == 1

        cloud.sim.run_process(scenario())
        relay.check_memory_accounting()


class TestScopeFencing:
    def test_cancel_scope_reclaims_only_its_tenant(self, cloud, relay):
        alice = relay.client(attempt_id="a-1", scope="alice/job-1")
        bob = relay.client(attempt_id="b-1", scope="bob/job-2")

        def scenario():
            yield alice.push("alice-k", b"a", logical_size=200.0)
            yield bob.push("bob-k", b"b", logical_size=300.0)
            relay.cancel_scope("alice/job-1")
            # Alice's attempt is fenced; Bob's bytes are untouched.
            assert relay.is_fenced("a-1")
            assert not relay.is_fenced("b-1")
            assert (yield bob.pull("bob-k")) == b"b"

        cloud.sim.run_process(scenario())
        assert relay.scope_fenced("alice/job-1")
        assert not relay.scope_fenced("bob/job-2")
        assert relay.residual_reservation_bytes() == 0.0
        relay.check_memory_accounting()

    def test_binding_into_fenced_scope_is_dead_on_arrival(self, cloud, relay):
        relay.cancel_scope("alice/job-1")
        zombie = relay.client(attempt_id="late-1", scope="alice/job-1")

        def scenario():
            with pytest.raises(RelayAttemptFenced):
                yield zombie.push("k", b"v", logical_size=10.0)

        cloud.sim.run_process(scenario())

    def test_scope_cancel_reinstates_consume_leases(self, cloud, relay):
        filler = relay.client()
        worker = relay.client(attempt_id="w-1", scope="alice/job-1")

        def scenario():
            yield filler.push("k", b"v", logical_size=100.0)
            yield worker.pull("k", consume=True)
            relay.cancel_scope("alice/job-1")
            assert relay.key_count == 1
            assert (yield filler.pull("k")) == b"v"

        cloud.sim.run_process(scenario())
        assert relay.stats.lease_reinstatements == 1

    def test_fleet_scope_fencing_covers_every_shard(self, cloud):
        fleet = fleet_ready(cloud.vms, "bx2-2x8", shards=2)
        client = fleet.client(attempt_id="w-1", scope="alice/job-1")

        def scenario():
            # Two keys that land on different shards (CRC spread).
            yield client.mpush(
                [("k-0", b"a"), ("k-7", b"b")], logical_sizes=[100.0, 100.0]
            )

        cloud.sim.run_process(scenario())
        fleet.cancel_scope("alice/job-1")
        assert fleet.scope_fenced("alice/job-1")
        assert fleet.is_fenced("w-1")
        assert fleet.residual_reservation_bytes() == 0.0
        fleet.check_memory_accounting()


class TestPeakEpochs:
    def test_epochs_track_independent_windows(self, cloud, relay):
        client = relay.client()
        cap = relay.capacity_bytes

        def scenario():
            yield client.push("a", b"x", logical_size=cap * 0.5)
            first = relay.begin_peak_epoch()
            yield client.push("b", b"x", logical_size=cap * 0.25)
            second = relay.begin_peak_epoch()
            yield client.pull("a", consume=True)  # driver: immediate
            yield client.pull("b", consume=True)
            # Both epochs saw the 0.75 peak fill (fractions of capacity);
            # the later low-water traffic never lowers either.
            assert relay.peak_fill_since(first) == pytest.approx(0.75)
            assert relay.peak_fill_since(second) == pytest.approx(0.75)
            yield client.push("c", b"x", logical_size=cap * 0.1)
            assert relay.end_peak_epoch(first) == pytest.approx(0.75)
            assert relay.end_peak_epoch(second) == pytest.approx(0.75)

        cloud.sim.run_process(scenario())

    def test_epoch_does_not_disturb_legacy_peak(self, cloud, relay):
        client = relay.client()

        def scenario():
            yield client.push("a", b"x", logical_size=1000.0)
            token = relay.begin_peak_epoch()
            yield client.pull("a", consume=True)
            relay.end_peak_epoch(token)
            # The relay-global peak still remembers the early high.
            assert relay.peak_used_logical == pytest.approx(1000.0)

        cloud.sim.run_process(scenario())

    def test_closed_or_unknown_token_raises(self, cloud, relay):
        token = relay.begin_peak_epoch()
        relay.end_peak_epoch(token)
        with pytest.raises(SimulationError):
            relay.peak_fill_since(token)
        with pytest.raises(SimulationError):
            relay.end_peak_epoch(token)
        with pytest.raises(SimulationError):
            relay.peak_fill_since(99999)

    def test_fleet_epoch_is_max_over_shards(self, cloud):
        fleet = fleet_ready(cloud.vms, "bx2-2x8", shards=2)
        client = fleet.client()
        token = fleet.begin_peak_epoch()

        def scenario():
            yield client.mpush(
                [("k-0", b"a"), ("k-7", b"b")],
                logical_sizes=[400.0, 100.0],
            )

        cloud.sim.run_process(scenario())
        hottest = max(
            shard.used_logical / shard.capacity_bytes for shard in fleet.shards
        )
        assert fleet.end_peak_epoch(token) == pytest.approx(hottest)
