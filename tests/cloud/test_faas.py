"""Unit tests for the simulated FaaS platform."""

import pytest

from repro.cloud import Cloud, MB
from repro.cloud.faas import (
    FunctionAlreadyRegistered,
    FunctionCrashed,
    FunctionNotFound,
    FunctionTimeout,
    InvalidFunctionConfig,
)
from repro.cloud.profiles import ibm_us_east


@pytest.fixture
def cloud():
    cloud = Cloud.fresh(seed=5, profile=ibm_us_east(deterministic=True))
    cloud.store.ensure_bucket("bucket")
    return cloud


def echo_handler(ctx, payload):
    yield ctx.sleep(0.0)
    return payload


class TestRegistration:
    def test_register_and_lookup(self, cloud):
        cloud.faas.register("echo", echo_handler, memory_mb=1024)
        definition = cloud.faas.function("echo")
        assert definition.memory_mb == 1024
        assert cloud.faas.is_registered("echo")

    def test_duplicate_registration_rejected(self, cloud):
        cloud.faas.register("echo", echo_handler)
        with pytest.raises(FunctionAlreadyRegistered):
            cloud.faas.register("echo", echo_handler)

    def test_unknown_function_rejected(self, cloud):
        with pytest.raises(FunctionNotFound):
            cloud.faas.invoke("ghost")

    def test_bad_memory_rejected(self, cloud):
        with pytest.raises(InvalidFunctionConfig):
            cloud.faas.register("tiny", echo_handler, memory_mb=1)


class TestInvocation:
    def test_result_passes_through(self, cloud):
        cloud.faas.register("echo", echo_handler)
        event = cloud.faas.invoke("echo", {"answer": 42})
        assert cloud.sim.run(until=event) == {"answer": 42}

    def test_handler_exception_fails_event(self, cloud):
        def bad_handler(ctx, payload):
            yield ctx.sleep(0.1)
            raise ValueError("application bug")

        cloud.faas.register("bad", bad_handler)
        event = cloud.faas.invoke("bad")
        with pytest.raises(ValueError, match="application bug"):
            cloud.sim.run(until=event)

    def test_handler_can_use_storage(self, cloud):
        def writer(ctx, payload):
            yield ctx.storage.put("bucket", payload["key"], payload["data"])
            return "written"

        cloud.faas.register("writer", writer)
        event = cloud.faas.invoke("writer", {"key": "out", "data": b"hello"})
        assert cloud.sim.run(until=event) == "written"
        assert cloud.store.peek("bucket", "out") == b"hello"

    def test_parallel_invocations_overlap(self, cloud):
        def slow(ctx, payload):
            yield ctx.sleep(10.0)
            return payload

        cloud.faas.register("slow", slow)
        events = [cloud.faas.invoke("slow", index) for index in range(8)]
        gathered = cloud.sim.all_of(events)
        results = cloud.sim.run(until=gathered)
        assert results == list(range(8))
        # 8 x 10 s of work, fully parallel: well under 8x serial time.
        assert cloud.sim.now < 15.0


class TestColdWarmStarts:
    def test_first_call_cold_second_warm(self, cloud):
        cloud.faas.register("echo", echo_handler)

        def scenario():
            yield cloud.faas.invoke("echo", 1)
            yield cloud.faas.invoke("echo", 2)

        cloud.sim.run_process(scenario())
        assert cloud.faas.stats.cold_starts == 1
        assert cloud.faas.stats.warm_starts == 1

    def test_parallel_burst_pays_all_cold_starts(self, cloud):
        cloud.faas.register("echo", echo_handler)
        events = [cloud.faas.invoke("echo", index) for index in range(16)]
        cloud.sim.run(until=cloud.sim.all_of(events))
        assert cloud.faas.stats.cold_starts == 16

    def test_container_expires_after_keep_alive(self, cloud):
        cloud.faas.register("echo", echo_handler)

        def scenario():
            yield cloud.faas.invoke("echo", 1)
            yield cloud.sim.timeout(cloud.profile.faas.keep_alive_s + 1.0)
            yield cloud.faas.invoke("echo", 2)

        cloud.sim.run_process(scenario())
        assert cloud.faas.stats.cold_starts == 2

    def test_warm_start_is_faster(self, cloud):
        cloud.faas.register("echo", echo_handler)
        durations = []

        def scenario():
            for index in range(2):
                start = cloud.sim.now
                yield cloud.faas.invoke("echo", index)
                durations.append(cloud.sim.now - start)

        cloud.sim.run_process(scenario())
        assert durations[1] < durations[0]

    def test_warm_container_count(self, cloud):
        cloud.faas.register("echo", echo_handler)
        events = [cloud.faas.invoke("echo", index) for index in range(4)]
        cloud.sim.run(until=cloud.sim.all_of(events))
        assert cloud.faas.warm_container_count("echo") == 4


class TestCpuShare:
    def test_small_memory_means_slower_compute(self, cloud):
        def cpu_bound(ctx, payload):
            yield ctx.compute(2.0)
            return ctx.cpu_share

        cloud.faas.register("full", cpu_bound, memory_mb=2048)
        cloud.faas.register("half", cpu_bound, memory_mb=1024)
        durations = {}

        def scenario():
            for name in ("full", "half"):
                start = cloud.sim.now
                yield cloud.faas.invoke(name)
                durations[name] = cloud.sim.now - start

        cloud.sim.run_process(scenario())
        # The half-share function takes ~2 s longer (4 s vs 2 s of compute).
        assert durations["half"] - durations["full"] == pytest.approx(2.0, abs=0.2)

    def test_memory_above_full_share_does_not_overclock(self, cloud):
        def probe(ctx, payload):
            yield ctx.sleep(0.0)
            return ctx.cpu_share

        cloud.faas.register("big", probe, memory_mb=4096)
        event = cloud.faas.invoke("big")
        assert cloud.sim.run(until=event) == 1.0


class TestTimeoutsAndCrashes:
    def test_function_timeout_kills_handler(self, cloud):
        def endless(ctx, payload):
            yield ctx.sleep(1e9)

        cloud.faas.register("endless", endless, timeout_s=5.0)
        event = cloud.faas.invoke("endless")
        with pytest.raises(FunctionTimeout):
            cloud.sim.run(until=event)
        assert cloud.faas.stats.timeouts == 1

    def test_crash_injection(self, cloud):
        def steady(ctx, payload):
            yield ctx.sleep(30.0)
            return "survived"

        cloud.faas.register("steady", steady, timeout_s=300.0)
        cloud.faas.crash_probability = 1.0
        event = cloud.faas.invoke("steady")
        with pytest.raises(FunctionCrashed):
            cloud.sim.run(until=event)
        assert cloud.faas.stats.crashes == 1

    def test_no_crashes_by_default(self, cloud):
        cloud.faas.register("echo", echo_handler)
        events = [cloud.faas.invoke("echo", index) for index in range(20)]
        cloud.sim.run(until=cloud.sim.all_of(events))
        assert cloud.faas.stats.crashes == 0


class TestConcurrencyLimit:
    def test_account_concurrency_serializes_excess(self):
        profile = ibm_us_east(deterministic=True)
        profile.faas.account_concurrency = 2
        cloud = Cloud.fresh(seed=5, profile=profile)

        def slow(ctx, payload):
            yield ctx.sleep(10.0)

        cloud.faas.register("slow", slow)
        events = [cloud.faas.invoke("slow") for _ in range(4)]
        cloud.sim.run(until=cloud.sim.all_of(events))
        # 4 invocations, 2 at a time, 10 s each → at least 2 rounds.
        assert cloud.sim.now >= 20.0


class TestBilling:
    def test_gb_seconds_rounded_up_to_granularity(self, cloud):
        def precise(ctx, payload):
            yield ctx.sleep(0.234)

        cloud.faas.register("precise", precise, memory_mb=2048)
        cloud.sim.run(until=cloud.faas.invoke("precise"))
        # 0.234 s rounds to 0.3 s at 2 GB → 0.6 GB-s.
        assert cloud.faas.stats.billed_gb_seconds == pytest.approx(0.6)

    def test_memory_multiplies_cost(self, cloud):
        def fixed(ctx, payload):
            yield ctx.sleep(1.0)

        cloud.faas.register("small", fixed, memory_mb=1024)
        cloud.faas.register("large", fixed, memory_mb=4096)

        def scenario():
            yield cloud.faas.invoke("small")
            yield cloud.faas.invoke("large")

        cloud.sim.run_process(scenario())
        small = sum(
            line.usd
            for line in cloud.meter.filtered("faas", function="small")
        )
        large = sum(
            line.usd
            for line in cloud.meter.filtered("faas", function="large")
        )
        assert large == pytest.approx(small * 4.0)

    def test_failed_invocations_still_billed(self, cloud):
        def bad(ctx, payload):
            yield ctx.sleep(1.0)
            raise RuntimeError("boom")

        cloud.faas.register("bad", bad)
        event = cloud.faas.invoke("bad")
        with pytest.raises(RuntimeError):
            cloud.sim.run(until=event)
        assert cloud.faas.stats.billed_gb_seconds > 0


class TestInstanceBandwidth:
    def test_function_storage_capped_by_instance_nic(self):
        profile = ibm_us_east(deterministic=True)
        profile.objectstore.read_latency.mean = 0.0
        profile.objectstore.write_latency.mean = 0.0
        profile.faas.instance_bandwidth = 10 * MB
        profile.faas.cold_start.mean = 0.0
        profile.faas.warm_start.mean = 0.0
        profile.faas.invoke_overhead.mean = 0.0
        cloud = Cloud.fresh(seed=5, profile=profile)
        cloud.store.ensure_bucket("bucket")

        def reader(ctx, payload):
            start = ctx.sim.now
            yield ctx.storage.get("bucket", "k")
            return ctx.sim.now - start

        cloud.faas.register("reader", reader)

        def scenario():
            yield cloud.store.put("bucket", "k", b"x" * (100 * MB))
            return (yield cloud.faas.invoke("reader"))

        elapsed = cloud.sim.run_process(scenario())
        assert elapsed == pytest.approx(10.0, rel=0.02)  # 100 MB at 10 MB/s
