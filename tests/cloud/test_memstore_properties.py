"""Property-based tests of cache-node and cache-cluster invariants.

The capacity accounting and LRU mechanics of :class:`CacheNode` are load
bearing for the cache-shuffle experiments: a leak in ``used_logical``
would silently change when clusters refuse writes or evict, and with it
every S8 result.  These properties pin the bookkeeping down across
randomized operation sequences.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import Cloud
from repro.cloud.memstore.errors import CacheOutOfMemory
from repro.cloud.memstore.node import CacheNode
from repro.cloud.profiles import (
    ALLKEYS_LRU,
    NOEVICTION,
    CacheNodeType,
    MemStoreProfile,
    ibm_us_east,
)
from repro.sim import Simulator

#: ~4 KB usable so small value sequences exercise eviction paths.
TINY = CacheNodeType("tiny", 4096 / (1 << 30), 1e8, 0.1)


def make_node(policy: str) -> CacheNode:
    profile = MemStoreProfile(
        usable_memory_fraction=1.0, eviction_policy=policy
    )
    return CacheNode(Simulator(seed=1), "n0", TINY, profile)


#: op = (kind, key index, size) over a small key universe.
OPS = st.lists(
    st.tuples(
        st.sampled_from(["store", "fetch", "remove"]),
        st.integers(0, 7),
        st.integers(0, 1200),
    ),
    max_size=80,
)


def apply_ops(node: CacheNode, ops) -> dict[str, bytes]:
    """Drive the node, mirroring its expected contents in a plain dict."""
    mirror: dict[str, bytes] = {}
    for kind, key_index, size in ops:
        key = f"k{key_index}"
        if kind == "store":
            data = bytes(size)
            try:
                evicted = node.store(key, data, float(size))
            except CacheOutOfMemory:
                assert node.profile.eviction_policy == NOEVICTION or (
                    size > node.capacity_bytes
                )
                continue
            mirror[key] = data
            if evicted:
                # Re-derive the survivor set from the node itself; LRU
                # order is the node's business, membership is ours.
                mirror = {
                    k: v for k, v in mirror.items() if node.contains(k)
                }
        elif kind == "fetch":
            entry = node.fetch(key)
            if key in mirror:
                assert entry is not None and entry.data == mirror[key]
            else:
                assert entry is None
        else:
            existed = node.remove(key)
            assert existed == (key in mirror)
            mirror.pop(key, None)
    return mirror


class TestNodeInvariants:
    @given(ops=OPS)
    @settings(max_examples=80, deadline=None)
    def test_lru_accounting_matches_contents(self, ops):
        node = make_node(ALLKEYS_LRU)
        mirror = apply_ops(node, ops)
        assert node.key_count == len(mirror)
        assert node.used_logical == pytest.approx(
            sum(len(value) for value in mirror.values())
        )
        assert node.used_logical <= node.capacity_bytes

    @given(ops=OPS)
    @settings(max_examples=80, deadline=None)
    def test_noeviction_never_drops_keys_silently(self, ops):
        node = make_node(NOEVICTION)
        mirror = apply_ops(node, ops)
        # Everything the mirror believes is stored must be readable.
        for key, value in mirror.items():
            entry = node.fetch(key)
            assert entry is not None and entry.data == value
        assert node.stats.evictions == 0

    @given(
        sizes=st.lists(st.integers(1, 1500), min_size=1, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_lru_store_of_fitting_values_never_fails(self, sizes):
        node = make_node(ALLKEYS_LRU)
        for index, size in enumerate(sizes):
            node.store(f"k{index}", bytes(size), float(size))
        assert node.used_logical <= node.capacity_bytes


class TestClusterInvariants:
    @given(
        items=st.dictionaries(
            st.text(
                alphabet=st.characters(min_codepoint=33, max_codepoint=126),
                min_size=1,
                max_size=24,
            ),
            st.binary(max_size=64),
            min_size=1,
            max_size=30,
        ),
        nodes=st.integers(1, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_mset_mget_roundtrip_any_keys(self, items, nodes):
        cloud = Cloud.fresh(seed=2, profile=ibm_us_east(deterministic=True))
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=nodes)
        client = cluster.client()
        pairs = sorted(items.items())

        def driver():
            yield client.mset(pairs)
            return (yield client.mget([key for key, _value in pairs]))

        values = cloud.sim.run_process(driver())
        assert values == [value for _key, value in pairs]
        assert cluster.key_count == len(pairs)

    @given(
        keys=st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=33, max_codepoint=126),
                min_size=1,
                max_size=16,
            ),
            min_size=1,
            max_size=40,
            unique=True,
        ),
        nodes=st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_sharding_is_a_partition_of_the_keyspace(self, keys, nodes):
        cloud = Cloud.fresh(seed=2, profile=ibm_us_east(deterministic=True))
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=nodes)
        owners = {key: cluster.node_for(key).node_id for key in keys}
        # Placement is a function of the key alone (stable), and every
        # key has exactly one owner.
        assert owners == {key: cluster.node_for(key).node_id for key in keys}
