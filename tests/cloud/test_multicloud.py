"""Tests for the AWS provider profile and multi-cloud configuration."""

import dataclasses

import pytest

from repro.cloud import (
    M5_CATALOG,
    PROVIDER_PROFILES,
    Cloud,
    aws_us_east,
    ibm_us_east,
    profile_named,
)
from repro.core import ExperimentConfig, PURE_SERVERLESS, run_pipeline
from repro.errors import ConfigError


class TestAwsProfile:
    def test_validates(self):
        aws_us_east().validate()

    def test_region_name(self):
        assert aws_us_east().region == "aws-us-east-1"

    def test_lambda_characteristics(self):
        profile = aws_us_east()
        ibm = ibm_us_east()
        # Faster cold starts, finer billing, higher request ceiling.
        assert profile.faas.cold_start.mean < ibm.faas.cold_start.mean
        assert profile.faas.billing_granularity_s < ibm.faas.billing_granularity_s
        assert profile.objectstore.ops_per_second > ibm.objectstore.ops_per_second

    def test_m5_catalog_has_paper_equivalent(self):
        instance = M5_CATALOG["m5.2xlarge"]
        assert instance.vcpus == 8
        assert instance.memory_gb == 32
        # Same hourly price as the paper's bx2-8x32.
        assert instance.hourly_usd == pytest.approx(0.384)

    def test_deterministic_mode_zeroes_jitter(self):
        profile = aws_us_east(deterministic=True)
        assert profile.faas.cold_start.sigma == 0.0
        assert profile.objectstore.read_latency.sigma == 0.0
        assert profile.memstore.provision.sigma == 0.0

    def test_elasticache_catalog_present(self):
        assert "cache.r5.large" in aws_us_east().memstore.catalog

    def test_cloud_builds_on_aws_profile(self):
        cloud = Cloud.fresh(seed=1, profile=aws_us_east(deterministic=True))
        assert cloud.profile.region == "aws-us-east-1"
        assert "m5.2xlarge" in cloud.vms.profile.catalog


class TestProfileRegistry:
    def test_known_providers(self):
        assert set(PROVIDER_PROFILES) == {"ibm-us-east", "aws-us-east"}

    def test_profile_named_dispatch(self):
        assert profile_named("aws-us-east").region == "aws-us-east-1"
        assert profile_named("ibm-us-east").region == "us-east"

    def test_unknown_provider_rejected(self):
        with pytest.raises(ConfigError, match="unknown provider"):
            profile_named("gcp-us-central")

    def test_profile_named_forwards_scale(self):
        assert profile_named("aws-us-east", logical_scale=64.0).logical_scale == 64.0


class TestProviderConfig:
    def test_default_provider_is_the_papers(self):
        config = ExperimentConfig()
        assert config.provider == "ibm-us-east"
        assert config.resolved_vm_instance_type == "bx2-8x32"

    def test_aws_provider_resolves_equivalent_vm(self):
        config = ExperimentConfig(provider="aws-us-east")
        assert config.resolved_vm_instance_type == "m5.2xlarge"

    def test_explicit_vm_type_wins(self):
        config = ExperimentConfig(provider="aws-us-east",
                                  vm_instance_type="m5.4xlarge")
        assert config.resolved_vm_instance_type == "m5.4xlarge"

    def test_make_profile_uses_provider(self):
        config = ExperimentConfig(provider="aws-us-east")
        assert config.make_profile().region == "aws-us-east-1"

    def test_unknown_provider_fails_at_profile_time(self):
        config = ExperimentConfig(provider="nimbus-west")
        with pytest.raises(ConfigError):
            config.make_profile()

    def test_serverless_pipeline_runs_on_aws(self):
        config = ExperimentConfig(logical_scale=8192.0, parallelism=2,
                                  provider="aws-us-east")
        run = run_pipeline(config, PURE_SERVERLESS)
        assert run.latency_s > 0
        assert run.workflow.artifacts["encode"]["ratio"] > 5.0
