"""Unit tests for the cost meter."""

import pytest

from repro.cloud.billing import CostMeter


class TestCostMeter:
    def test_total_accumulates(self):
        meter = CostMeter()
        meter.charge(0.0, "faas", "gb_second", 2.0, 0.10)
        meter.charge(1.0, "vm", "instance_second", 60.0, 0.02)
        assert meter.total_usd == pytest.approx(0.12)

    def test_total_by_service(self):
        meter = CostMeter()
        meter.charge(0.0, "faas", "gb_second", 1.0, 0.10)
        meter.charge(0.0, "faas", "gb_second", 1.0, 0.05)
        meter.charge(0.0, "vm", "instance_second", 1.0, 0.02)
        totals = meter.total_by_service()
        assert totals["faas"] == pytest.approx(0.15)
        assert totals["vm"] == pytest.approx(0.02)

    def test_tags_recorded_and_filterable(self):
        meter = CostMeter()
        meter.charge(0.0, "faas", "gb_second", 1.0, 0.10, function="sort")
        meter.charge(0.0, "faas", "gb_second", 1.0, 0.20, function="encode")
        sort_lines = meter.filtered("faas", function="sort")
        assert len(sort_lines) == 1
        assert sort_lines[0].usd == pytest.approx(0.10)

    def test_context_tags_apply_to_all_charges(self):
        meter = CostMeter()
        meter.push_tag("stage", "sort")
        meter.charge(0.0, "objectstore", "class_a_request", 1.0, 0.001)
        meter.pop_tag("stage")
        meter.charge(0.0, "objectstore", "class_a_request", 1.0, 0.001)
        by_stage = meter.total_by_tag("stage")
        assert by_stage["sort"] == pytest.approx(0.001)
        assert by_stage["(untagged)"] == pytest.approx(0.001)

    def test_explicit_tag_overrides_context(self):
        meter = CostMeter()
        meter.push_tag("stage", "ambient")
        meter.charge(0.0, "faas", "gb_second", 1.0, 0.1, stage="explicit")
        meter.pop_tag("stage")
        assert meter.total_by_tag("stage") == {"explicit": pytest.approx(0.1)}

    def test_snapshot_and_since(self):
        meter = CostMeter()
        meter.charge(0.0, "faas", "gb_second", 1.0, 0.10)
        marker = meter.snapshot()
        meter.charge(1.0, "faas", "gb_second", 1.0, 0.30)
        delta = meter.since(marker)
        assert delta.total_usd == pytest.approx(0.30)

    def test_report_contains_items_and_total(self):
        meter = CostMeter()
        meter.charge(0.0, "faas", "gb_second", 2.5, 0.10)
        report = meter.report()
        assert "gb_second" in report
        assert "TOTAL" in report
        assert "0.10" in report

    def test_pop_missing_tag_is_noop(self):
        meter = CostMeter()
        meter.pop_tag("never-set")  # must not raise
        assert meter.total_usd == 0.0

    def test_nested_push_restores_outer_value(self):
        """Nested attribution: an inner push of the *same* key (a stage
        inside a tenant-tagged workflow, a sub-stage inside a stage)
        must shadow the outer value, and its pop must restore it — not
        drop the key entirely."""
        meter = CostMeter()
        meter.push_tag("stage", "outer")
        meter.push_tag("stage", "inner")
        meter.charge(0.0, "faas", "gb_second", 1.0, 0.10)
        meter.pop_tag("stage")
        meter.charge(0.0, "faas", "gb_second", 1.0, 0.20)  # outer again
        meter.pop_tag("stage")
        meter.charge(0.0, "faas", "gb_second", 1.0, 0.40)  # untagged
        by_stage = meter.total_by_tag("stage")
        assert by_stage["inner"] == pytest.approx(0.10)
        assert by_stage["outer"] == pytest.approx(0.20)
        assert by_stage["(untagged)"] == pytest.approx(0.40)

    def test_nested_push_of_distinct_keys_is_independent(self):
        meter = CostMeter()
        meter.push_tag("tenant", "alice")
        meter.push_tag("stage", "sort")
        meter.charge(0.0, "faas", "gb_second", 1.0, 0.10)
        meter.pop_tag("stage")
        meter.charge(0.0, "faas", "gb_second", 1.0, 0.20)
        meter.pop_tag("tenant")
        tagged = meter.filtered(tenant="alice")
        assert len(tagged) == 2
        assert meter.total_by_tag("stage")["sort"] == pytest.approx(0.10)

    def test_pop_after_deep_nesting_unwinds_in_order(self):
        meter = CostMeter()
        meter.push_tag("stage", "a")
        meter.push_tag("stage", "b")
        meter.push_tag("stage", "c")
        meter.pop_tag("stage")
        meter.charge(0.0, "faas", "gb_second", 1.0, 0.1)
        meter.pop_tag("stage")
        meter.charge(0.0, "faas", "gb_second", 1.0, 0.2)
        meter.pop_tag("stage")
        meter.charge(0.0, "faas", "gb_second", 1.0, 0.4)
        by_stage = meter.total_by_tag("stage")
        assert by_stage["b"] == pytest.approx(0.1)
        assert by_stage["a"] == pytest.approx(0.2)
        assert by_stage["(untagged)"] == pytest.approx(0.4)
