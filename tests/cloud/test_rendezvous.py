"""Rendezvous primitives under the streaming exchange.

`RelayClient.pull_wait` and `CacheClient.get_wait` block until their key
is published instead of failing a miss — these tests pin down the edge
cases the streaming reducer relies on: immediate reads when the key
already exists, fencing of cancelled attempts parked at the rendezvous,
fleet routing, and clean failure (not a hang) when the backing
infrastructure is terminated underneath a parked reader.
"""

import pytest

from repro.cloud import Cloud
from repro.cloud.memstore.errors import CacheKeyMissing, ClusterNotRunning
from repro.cloud.profiles import ibm_us_east
from repro.cloud.vm.errors import RelayAttemptFenced, VmNotRunning
from repro.cloud.vm.fleet import fleet_ready
from repro.cloud.vm.relay import relay_ready


def fresh_cloud():
    return Cloud.fresh(seed=7, profile=ibm_us_east(deterministic=True))


class TestRelayPullWait:
    def test_resolves_immediately_when_key_exists(self):
        cloud = fresh_cloud()
        relay = relay_ready(cloud.vms, "bx2-8x32")
        client = relay.client()

        def driver():
            yield client.push("k", b"v")
            return (yield client.pull_wait("k"))

        assert cloud.sim.run_process(driver()) == b"v"
        # No rendezvous wait was needed, and no miss was counted.
        assert relay.stats.rendezvous_waits == 0
        assert relay.stats.misses == 0

    def test_multiple_waiters_all_wake_on_one_publish(self):
        cloud = fresh_cloud()
        relay = relay_ready(cloud.vms, "bx2-8x32")
        client = relay.client()
        results = []

        def consumer(index):
            value = yield client.pull_wait("shared")
            results.append((index, value))

        consumers = [
            cloud.sim.process(consumer(index), name=f"c{index}")
            for index in range(3)
        ]

        def producer():
            yield cloud.sim.timeout(1.0)
            yield client.push("shared", b"x")

        cloud.sim.process(producer(), name="p")
        cloud.sim.run(until=cloud.sim.all_of([c.completion for c in consumers]))
        assert sorted(results) == [(0, b"x"), (1, b"x"), (2, b"x")]
        assert relay.stats.rendezvous_waits == 3

    def test_fenced_attempt_cannot_complete_a_parked_pull(self):
        """A zombie parked at the rendezvous must not read the winner's
        data after its attempt was cancelled and fenced."""
        cloud = fresh_cloud()
        relay = relay_ready(cloud.vms, "bx2-8x32")
        zombie = relay.client(attempt_id="attempt-z")
        fresh = relay.client()

        def parked():
            return (yield zombie.pull_wait("contested"))

        process = cloud.sim.process(parked(), name="zombie")

        def rest():
            yield cloud.sim.timeout(1.0)
            relay.cancel_attempt("attempt-z")
            yield fresh.push("contested", b"winner-data")

        cloud.sim.process(rest(), name="rest")
        with pytest.raises(RelayAttemptFenced):
            cloud.sim.run(until=process.completion)
        assert relay.stats.fenced_requests >= 1

    def test_terminate_fails_parked_readers_instead_of_hanging(self):
        cloud = fresh_cloud()
        relay = relay_ready(cloud.vms, "bx2-8x32")
        client = relay.client()

        def parked():
            return (yield client.pull_wait("never"))

        process = cloud.sim.process(parked(), name="parked")

        def killer():
            yield cloud.sim.timeout(1.0)
            relay.terminate()

        cloud.sim.process(killer(), name="killer")
        # The same infrastructure-level error every other operation on a
        # dead relay raises — not a data-level "key missing".
        with pytest.raises(VmNotRunning):
            cloud.sim.run(until=process.completion)

    def test_fleet_routes_pull_wait_to_the_owning_shard(self):
        cloud = fresh_cloud()
        fleet = fleet_ready(cloud.vms, "bx2-8x32", shards=3)
        client = fleet.client()

        def driver():
            results = []
            for index in range(6):
                key = f"part-{index}"
                yield client.push(key, bytes([index]))
                results.append((yield client.pull_wait(key)))
            return results

        assert cloud.sim.run_process(driver()) == [bytes([i]) for i in range(6)]
        # Keys spread over shards, and every pull hit its owner.
        assert sum(shard.stats.pulls for shard in fleet.shards) == 6


class TestCacheGetWait:
    def test_resolves_once_the_value_is_set(self):
        cloud = fresh_cloud()
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=2)
        client = cluster.client()

        def consumer():
            return (yield client.get_wait("late"))

        process = cloud.sim.process(consumer(), name="consumer")

        def producer():
            yield cloud.sim.timeout(2.0)
            yield client.set("late", b"value")

        cloud.sim.process(producer(), name="producer")
        assert cloud.sim.run(until=process.completion) == b"value"
        assert cloud.sim.now >= 2.0
        assert cluster.stats_totals()["rendezvous_waits"] == 1

    def test_immediate_when_present(self):
        cloud = fresh_cloud()
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=1)
        client = cluster.client()

        def driver():
            yield client.set("k", b"v")
            return (yield client.get_wait("k"))

        assert cloud.sim.run_process(driver()) == b"v"
        assert cluster.stats_totals()["rendezvous_waits"] == 0

    def test_terminate_fails_parked_readers(self):
        cloud = fresh_cloud()
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=1)
        client = cluster.client()

        def parked():
            return (yield client.get_wait("never"))

        process = cloud.sim.process(parked(), name="parked")

        def killer():
            yield cloud.sim.timeout(1.0)
            cluster.terminate()

        cloud.sim.process(killer(), name="killer")
        with pytest.raises(ClusterNotRunning):
            cloud.sim.run(until=process.completion)

    def test_lru_evicted_key_fails_the_read_instead_of_hanging(self):
        """A rendezvous read arriving after its key was LRU-evicted must
        get the staged path's CacheKeyMissing, not park forever —
        committed stream chunks are never re-published."""
        from repro.cloud.profiles import ALLKEYS_LRU

        cloud = fresh_cloud()
        cloud.cache.profile.eviction_policy = ALLKEYS_LRU
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=1)
        node = cluster.nodes[0]
        client = cluster.client()
        filler = bytes(64)

        def driver():
            # Two oversized logical values: the second set evicts the first.
            yield client.set(
                "victim", filler, logical_size=node.capacity_bytes * 0.7
            )
            yield client.set(
                "hog", filler, logical_size=node.capacity_bytes * 0.7
            )
            assert node.stats.evictions == 1
            assert node.was_evicted("victim")
            return (yield client.get_wait("victim"))

        process = cloud.sim.process(driver(), name="driver")
        with pytest.raises(CacheKeyMissing):
            cloud.sim.run(until=process.completion)

    def test_restored_key_clears_the_eviction_tombstone(self):
        from repro.cloud.profiles import ALLKEYS_LRU

        cloud = fresh_cloud()
        cloud.cache.profile.eviction_policy = ALLKEYS_LRU
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=1)
        node = cluster.nodes[0]
        client = cluster.client()
        filler = bytes(64)

        def driver():
            yield client.set(
                "victim", filler, logical_size=node.capacity_bytes * 0.7
            )
            yield client.set(
                "hog", filler, logical_size=node.capacity_bytes * 0.7
            )
            # A speculative duplicate re-publishes the identical chunk:
            # the tombstone clears and reads succeed again.
            yield client.set("victim", filler, logical_size=8.0)
            return (yield client.get_wait("victim"))

        assert cloud.sim.run_process(driver()) == filler
        assert not node.was_evicted("victim")
