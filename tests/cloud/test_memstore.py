"""Unit tests for the simulated in-memory key-value store (cache) service."""

import pytest

from repro.cloud import Cloud, MB
from repro.cloud.memstore import (
    CacheKeyMissing,
    CacheOutOfMemory,
    ClusterAlreadyTerminated,
    ClusterNotRunning,
    UnknownCacheNodeType,
    UnknownCluster,
)
from repro.cloud.profiles import ALLKEYS_LRU, ibm_us_east


@pytest.fixture
def cloud():
    return Cloud.fresh(seed=5, profile=ibm_us_east(deterministic=True))


def run(cloud, generator):
    return cloud.sim.run_process(generator)


class TestProvisioning:
    def test_provision_takes_cluster_creation_time(self, cloud):
        def scenario():
            cluster = yield cloud.cache.provision("cache.r5.large")
            return cluster, cloud.sim.now

        cluster, ready_time = run(cloud, scenario())
        assert cluster.state == "running"
        assert ready_time == pytest.approx(cloud.profile.memstore.provision.mean)

    def test_provision_ready_skips_creation_time(self, cloud):
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=3)
        assert cluster.state == "running"
        assert cloud.sim.now == 0.0
        assert len(cluster.nodes) == 3

    def test_unknown_node_type_rejected(self, cloud):
        with pytest.raises(UnknownCacheNodeType):
            cloud.cache.provision("cache.r9.mega")

    def test_zero_nodes_rejected(self, cloud):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            cloud.cache.provision("cache.r5.large", nodes=0)

    def test_requests_before_ready_rejected(self, cloud):
        boot = cloud.cache.provision("cache.r5.large")
        cluster = next(iter(cloud.cache.clusters.values()))
        client = cluster.client()

        def scenario():
            yield client.set("k", b"v")

        with pytest.raises(ClusterNotRunning):
            run(cloud, scenario())
        cloud.sim.run(until=boot)  # cleanup: let the boot finish

    def test_cluster_lookup_by_id(self, cloud):
        cluster = cloud.cache.provision_ready("cache.r5.large")
        assert cloud.cache.cluster(cluster.cluster_id) is cluster

    def test_unknown_cluster_id_rejected(self, cloud):
        with pytest.raises(UnknownCluster):
            cloud.cache.cluster("cache-999")


class TestSingleKeyOps:
    def test_set_get_roundtrip(self, cloud):
        cluster = cloud.cache.provision_ready("cache.r5.large")
        client = cluster.client()

        def scenario():
            yield client.set("key", b"payload")
            return (yield client.get("key"))

        assert run(cloud, scenario()) == b"payload"

    def test_get_missing_key_fails(self, cloud):
        cluster = cloud.cache.provision_ready("cache.r5.large")
        client = cluster.client()

        def scenario():
            yield client.get("nope")

        with pytest.raises(CacheKeyMissing):
            run(cloud, scenario())

    def test_set_replaces_value(self, cloud):
        cluster = cloud.cache.provision_ready("cache.r5.large")
        client = cluster.client()

        def scenario():
            yield client.set("key", b"one")
            yield client.set("key", b"two-longer")
            return (yield client.get("key"))

        assert run(cloud, scenario()) == b"two-longer"
        assert cluster.key_count == 1

    def test_delete_returns_existence(self, cloud):
        cluster = cloud.cache.provision_ready("cache.r5.large")
        client = cluster.client()

        def scenario():
            yield client.set("key", b"v")
            first = yield client.delete("key")
            second = yield client.delete("key")
            return first, second

        assert run(cloud, scenario()) == (True, False)

    def test_exists(self, cloud):
        cluster = cloud.cache.provision_ready("cache.r5.large")
        client = cluster.client()

        def scenario():
            yield client.set("key", b"v")
            return (yield client.exists("key")), (yield client.exists("other"))

        assert run(cloud, scenario()) == (True, False)

    def test_request_latency_is_submillisecond(self, cloud):
        cluster = cloud.cache.provision_ready("cache.r5.large")
        client = cluster.client()

        def scenario():
            yield client.set("key", b"")
            return cloud.sim.now

        elapsed = run(cloud, scenario())
        assert elapsed == pytest.approx(cloud.profile.memstore.write_latency.mean)
        assert elapsed < 0.01

    def test_logical_scale_applies_to_capacity(self):
        profile = ibm_us_east(logical_scale=1000.0, deterministic=True)
        cloud = Cloud.fresh(seed=5, profile=profile)
        cluster = cloud.cache.provision_ready("cache.r5.large")
        client = cluster.client()

        def scenario():
            yield client.set("key", b"x" * 100)

        run(cloud, scenario())
        assert cluster.used_logical == pytest.approx(100 * 1000.0)


class TestBatchedOps:
    def test_mset_mget_roundtrip_in_input_order(self, cloud):
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=3)
        client = cluster.client()
        items = [(f"k{i}", bytes([i]) * (i + 1)) for i in range(20)]

        def scenario():
            yield client.mset(items)
            return (yield client.mget([key for key, _ in reversed(items)]))

        values = run(cloud, scenario())
        assert values == [data for _, data in reversed(items)]

    def test_empty_batches_are_noops(self, cloud):
        cluster = cloud.cache.provision_ready("cache.r5.large")
        client = cluster.client()

        def scenario():
            yield client.mset([])
            return (yield client.mget([]))

        assert run(cloud, scenario()) == []
        assert cloud.sim.now == 0.0

    def test_mget_missing_key_names_it(self, cloud):
        cluster = cloud.cache.provision_ready("cache.r5.large")
        client = cluster.client()

        def scenario():
            yield client.mset([("a", b"1")])
            yield client.mget(["a", "ghost"])

        with pytest.raises(CacheKeyMissing, match="ghost"):
            run(cloud, scenario())

    def test_batch_pays_one_latency_per_node_not_per_key(self, cloud):
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=1)
        client = cluster.client()
        items = [(f"k{i}", b"") for i in range(50)]

        def scenario():
            yield client.mset(items)
            return cloud.sim.now

        elapsed = run(cloud, scenario())
        # One node batch: a single write latency, not 50.
        assert elapsed == pytest.approx(cloud.profile.memstore.write_latency.mean)

    def test_batch_consumes_one_token_per_key(self):
        # With a 10 ops/s node, a 40-key batch must wait ~3 s for rate-limit
        # tokens: batching amortizes latency but not the request rate.
        profile = ibm_us_east(deterministic=True)
        profile.memstore.ops_per_node = 10.0
        profile.memstore.ops_burst = 10.0
        cloud = Cloud.fresh(seed=5, profile=profile)
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=1)
        client = cluster.client()
        items = [(f"k{i}", b"") for i in range(40)]

        def scenario():
            yield client.mset(items)
            return cloud.sim.now

        elapsed = cloud.sim.run_process(scenario())
        assert elapsed == pytest.approx(
            3.0 + cloud.profile.memstore.write_latency.mean, rel=0.01
        )

    def test_mismatched_logical_sizes_rejected(self, cloud):
        from repro.errors import SimulationError

        cluster = cloud.cache.provision_ready("cache.r5.large")
        client = cluster.client()

        def scenario():
            yield client.mset([("a", b"1"), ("b", b"2")], logical_sizes=[1.0])

        with pytest.raises(SimulationError):
            run(cloud, scenario())


class TestSharding:
    def test_keys_spread_across_nodes(self, cloud):
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=4)
        client = cluster.client()
        items = [(f"key-{i}", b"x") for i in range(200)]

        def scenario():
            yield client.mset(items)

        run(cloud, scenario())
        counts = [node.key_count for node in cluster.nodes]
        assert sum(counts) == 200
        assert all(count > 0 for count in counts)

    def test_placement_is_stable(self, cloud):
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=5)
        first = cluster.node_for("some-key")
        assert all(cluster.node_for("some-key") is first for _ in range(10))


class TestMemoryPressure:
    def _small_cluster(self, policy):
        profile = ibm_us_east(deterministic=True)
        # Shrink a node to ~1 KB usable so tests fill it instantly.
        profile.memstore.usable_memory_fraction = 1.0
        profile.memstore.catalog = {
            "tiny": type(next(iter(profile.memstore.catalog.values())))(
                name="tiny",
                memory_gb=1024 / (1 << 30),
                nic_bandwidth=100 * MB,
                hourly_usd=0.1,
            )
        }
        profile.memstore.eviction_policy = policy
        cloud = Cloud.fresh(seed=5, profile=profile)
        return cloud, cloud.cache.provision_ready("tiny")

    def test_noeviction_fails_when_full(self):
        cloud, cluster = self._small_cluster("noeviction")
        client = cluster.client()

        def scenario():
            yield client.set("a", b"x" * 600)
            yield client.set("b", b"y" * 600)

        with pytest.raises(CacheOutOfMemory):
            cloud.sim.run_process(scenario())
        assert cluster.stats_totals()["oom_errors"] == 1

    def test_value_larger_than_node_always_fails(self):
        cloud, cluster = self._small_cluster(ALLKEYS_LRU)
        client = cluster.client()

        def scenario():
            yield client.set("a", b"x" * 2048)

        with pytest.raises(CacheOutOfMemory):
            cloud.sim.run_process(scenario())

    def test_refused_write_keeps_previous_value(self):
        cloud, cluster = self._small_cluster("noeviction")
        client = cluster.client()

        def scenario():
            yield client.set("a", b"x" * 600)
            try:
                yield client.set("a", b"y" * 600 + b"z" * 600)
            except CacheOutOfMemory:
                pass
            return (yield client.get("a"))

        assert cloud.sim.run_process(scenario()) == b"x" * 600

    def test_lru_evicts_oldest_first(self):
        cloud, cluster = self._small_cluster(ALLKEYS_LRU)
        client = cluster.client()

        def scenario():
            yield client.set("old", b"x" * 400)
            yield client.set("mid", b"y" * 400)
            # Touch "old" so "mid" becomes the LRU victim.
            yield client.get("old")
            yield client.set("new", b"z" * 400)
            old = yield client.exists("old")
            mid = yield client.exists("mid")
            new = yield client.exists("new")
            return old, mid, new

        assert cloud.sim.run_process(scenario()) == (True, False, True)
        assert cluster.stats_totals()["evictions"] == 1

    def test_eviction_frees_accounting(self):
        cloud, cluster = self._small_cluster(ALLKEYS_LRU)
        client = cluster.client()

        def scenario():
            for index in range(10):
                yield client.set(f"k{index}", b"x" * 300)

        cloud.sim.run_process(scenario())
        node = cluster.nodes[0]
        assert node.used_logical <= node.capacity_bytes
        assert node.used_logical == pytest.approx(node.key_count * 300)


class TestBillingAndLifecycle:
    def test_node_seconds_billed_on_terminate(self, cloud):
        cluster = cloud.cache.provision_ready("cache.r5.large", nodes=2)

        def scenario():
            yield cloud.sim.timeout(100.0)
            cluster.terminate()

        run(cloud, scenario())
        lines = cloud.meter.filtered(service="memstore")
        assert len(lines) == 2  # one line per node
        node_type = cloud.profile.memstore.catalog["cache.r5.large"]
        expected = 100.0 * node_type.per_second_usd
        assert sum(line.usd for line in lines) == pytest.approx(2 * expected)

    def test_minimum_billed_duration(self, cloud):
        cluster = cloud.cache.provision_ready("cache.r5.large")

        def scenario():
            yield cloud.sim.timeout(1.0)
            cluster.terminate()

        run(cloud, scenario())
        line = cloud.meter.filtered(service="memstore")[0]
        assert line.quantity == pytest.approx(cloud.profile.memstore.minimum_billed_s)

    def test_double_terminate_rejected(self, cloud):
        cluster = cloud.cache.provision_ready("cache.r5.large")
        cluster.terminate()
        with pytest.raises(ClusterAlreadyTerminated):
            cluster.terminate()

    def test_requests_after_terminate_rejected(self, cloud):
        cluster = cloud.cache.provision_ready("cache.r5.large")
        client = cluster.client()
        cluster.terminate()

        def scenario():
            yield client.get("k")

        with pytest.raises(ClusterNotRunning):
            run(cloud, scenario())

    def test_finalize_terminates_running_clusters(self, cloud):
        cluster = cloud.cache.provision_ready("cache.r5.large")
        cloud.finalize()
        assert cluster.state == "terminated"
        assert cloud.meter.filtered(service="memstore")

    def test_cost_scales_with_node_count(self, cloud):
        for nodes in (1, 3):
            fresh = Cloud.fresh(seed=5, profile=ibm_us_east(deterministic=True))
            cluster = fresh.cache.provision_ready("cache.r5.large", nodes=nodes)

            def scenario():
                yield fresh.sim.timeout(500.0)
                cluster.terminate()

            fresh.sim.run_process(scenario())
            if nodes == 1:
                single = sum(l.usd for l in fresh.meter.filtered(service="memstore"))
            else:
                triple = sum(l.usd for l in fresh.meter.filtered(service="memstore"))
        assert triple == pytest.approx(3 * single)


class TestContextIntegration:
    def test_function_context_kv_access(self, cloud):
        cluster = cloud.cache.provision_ready("cache.r5.large")
        cluster_id = cluster.cluster_id

        def handler(ctx, payload):
            client = ctx.kv(payload["cluster_id"])
            yield client.set("from-function", b"hello")
            return (yield client.get("from-function"))

        cloud.faas.register("kv-fn", handler)

        def scenario():
            return (
                yield cloud.faas.invoke("kv-fn", {"cluster_id": cluster_id})
            )

        assert run(cloud, scenario()) == b"hello"

    def test_function_client_is_nic_bounded(self, cloud):
        cluster = cloud.cache.provision_ready("cache.r5.large")
        captured = {}

        def handler(ctx, payload):
            captured["client"] = ctx.kv(payload)
            yield ctx.sleep(0.0)

        cloud.faas.register("kv-fn", handler)

        def scenario():
            yield cloud.faas.invoke("kv-fn", cluster.cluster_id)

        run(cloud, scenario())
        assert (
            captured["client"].connection_bandwidth
            == cloud.profile.faas.instance_bandwidth
        )

    def test_vm_context_kv_access(self, cloud):
        cluster = cloud.cache.provision_ready("cache.r5.large")
        cluster_id = cluster.cluster_id

        def scenario():
            vm = yield cloud.vms.provision("bx2-2x8")

            def task(vm_ctx):
                client = vm_ctx.kv(cluster_id)
                yield client.set("from-vm", b"vm-data")
                return (yield client.get("from-vm"))

            result = yield vm.run(task)
            vm.terminate()
            return result

        assert run(cloud, scenario()) == b"vm-data"
