"""Attempt-tagged reservations, cancel-and-reclaim and the atomic swap.

The relay's side of the attempt-scoped cancellation contract: a dead
attempt's reservations are reclaimed immediately (waiting *and*
mid-transfer), the attempt id is fenced against stragglers, and a
replacing PUSH swaps old for new atomically so concurrent readers never
observe a missing key — the absence window the pre-cancellation design
had is a regression test here.
"""

import pytest

from repro.cloud import Cloud
from repro.cloud.profiles import ibm_us_east
from repro.cloud.vm import RelayAttemptFenced, relay_ready


@pytest.fixture
def cloud():
    return Cloud.fresh(seed=5, profile=ibm_us_east(deterministic=True))


@pytest.fixture
def relay(cloud):
    return relay_ready(cloud.vms, "bx2-2x8")


class TestCancelAndReclaim:
    def test_cancel_reclaims_mid_transfer_reservation(self, cloud, relay):
        client = relay.client(attempt_id="att-1")
        big = 4e9  # ~8 s on this NIC: still in flight at t=5

        def pusher():
            yield client.push("k", b"x", logical_size=big)

        process = cloud.sim.process(pusher())
        snapshots = {}

        def canceller():
            yield cloud.sim.timeout(5.0)
            snapshots["before"] = (
                relay.used_logical,
                relay.link.active_flows,
                relay.residual_reservation_bytes("att-1"),
            )
            process.interrupt(cause="killed")
            relay.cancel_attempt("att-1")
            snapshots["after"] = (
                relay.used_logical,
                relay.link.active_flows,
                relay.residual_reservation_bytes("att-1"),
            )

        cloud.sim.process(canceller())
        cloud.sim.run()
        assert snapshots["before"] == (big, 1, big)
        assert snapshots["after"] == (0.0, 0, 0.0)
        assert relay.key_count == 0
        assert relay.stats.cancelled_transfers == 1
        relay.check_memory_accounting()

    def test_cancel_reclaims_waiting_admission(self, cloud, relay):
        filler = relay.client()
        victim = relay.client(attempt_id="att-2")
        chunk = relay.capacity_bytes * 0.7
        outcome = []

        def fill():
            yield filler.push("resident", b"x", logical_size=chunk)

        cloud.sim.run_process(fill())

        def pusher():
            try:
                yield victim.push("new", b"y", logical_size=chunk)
                outcome.append("pushed")
            except RelayAttemptFenced:
                outcome.append("fenced")

        def canceller():
            yield cloud.sim.timeout(5.0)  # pusher is queued by now
            relay.cancel_attempt("att-2")

        cloud.sim.process(pusher())
        cloud.sim.process(canceller())
        cloud.sim.run()
        # The queued admission was failed, not left to hang, and the
        # resident entry was untouched.
        assert outcome == ["fenced"]
        assert relay.used_logical == pytest.approx(chunk)
        assert relay.key_count == 1
        relay.check_memory_accounting()

    def test_cancel_spares_committed_entries_and_delete_frees_waiters(
        self, cloud, relay
    ):
        """cancel_attempt reclaims only *uncommitted* custody: data a
        dead attempt finished publishing stays valid (the exchange is
        idempotent by content); an explicit delete then frees the space
        and wakes queued pushes."""
        dead = relay.client(attempt_id="dead")
        live = relay.client()
        chunk = relay.capacity_bytes * 0.6
        done = []

        def dead_pusher():
            yield dead.push("a", b"x", logical_size=chunk)

        cloud.sim.run_process(dead_pusher())

        def live_pusher():
            yield live.push("b", b"y", logical_size=chunk)  # must queue
            done.append(cloud.sim.now)

        def canceller():
            yield cloud.sim.timeout(50.0)
            relay.cancel_attempt("dead")
            assert relay.key_count == 1  # committed entry untouched
            yield live.delete("a")

        cloud.sim.process(live_pusher())
        cloud.sim.process(canceller())
        cloud.sim.run()
        assert done and done[0] >= 50.0
        relay.check_memory_accounting()

    def test_cancel_attempt_is_idempotent_and_none_safe(self, cloud, relay):
        assert relay.cancel_attempt(None) == 0.0
        assert relay.cancel_attempt("ghost") == 0.0
        assert relay.cancel_attempt("ghost") == 0.0
        assert not relay.is_fenced(None)

    def test_terminate_aborts_inflight_reservations(self, cloud, relay):
        client = relay.client(attempt_id="att-t")
        outcome = []

        def pusher():
            try:
                yield client.push("k", b"x", logical_size=4e9)
                outcome.append("pushed")
            except RelayAttemptFenced:
                outcome.append("aborted")

        cloud.sim.process(pusher())

        def terminator():
            yield cloud.sim.timeout(5.0)  # push is mid-transfer
            relay.terminate()

        cloud.sim.process(terminator())
        cloud.sim.run()
        assert outcome == ["aborted"]
        assert relay.used_logical == 0.0
        assert relay.residual_reservation_bytes() == 0.0


class TestFencing:
    def test_fenced_attempt_rejected_on_every_op(self, cloud, relay):
        client = relay.client(attempt_id="loser")
        relay.cancel_attempt("loser")
        ops = [
            lambda: client.push("k", b"x"),
            lambda: client.mpush([("k", b"x")]),
            lambda: client.pull("k"),
            lambda: client.mpull(["k"]),
            lambda: client.delete("k"),
            lambda: client.mdelete(["k"]),
        ]
        for op in ops:
            def scenario(op=op):
                yield op()

            with pytest.raises(RelayAttemptFenced):
                cloud.sim.run_process(scenario())
        assert relay.stats.fenced_requests == len(ops)

    def test_driver_clients_are_never_fenced(self, cloud, relay):
        client = relay.client()  # no attempt id
        relay.cancel_attempt("someone-else")

        def scenario():
            yield client.push("k", b"payload")
            return (yield client.pull("k"))

        assert cloud.sim.run_process(scenario()) == b"payload"

    def test_fence_catches_request_parked_upstream_of_its_reservation(
        self, cloud, relay
    ):
        """A push cancelled while still waiting on the ops bucket or the
        request latency has no reservation yet for cancel_attempt to
        abort — the fence must stop it before it takes memory custody,
        and a parked consuming pull before it destroys the winner's
        entry."""
        zombie = relay.client(attempt_id="zombie")
        winner = relay.client()
        outcome = []

        def seed():
            yield winner.push("k", b"winner-bytes", logical_size=500.0)

        cloud.sim.run_process(seed())

        def zombie_push():
            try:
                yield zombie.push("k", b"zombie-bytes", logical_size=500.0)
                outcome.append("pushed")
            except RelayAttemptFenced:
                outcome.append("push fenced")

        def zombie_consume():
            try:
                yield zombie.pull("k", consume=True)
                outcome.append("consumed")
            except RelayAttemptFenced:
                outcome.append("pull fenced")

        cloud.sim.process(zombie_push())
        cloud.sim.process(zombie_consume())
        # Fence immediately: both requests are still parked upstream
        # (kickoff/token/latency), neither has touched relay state.
        relay.cancel_attempt("zombie")
        cloud.sim.run()
        assert sorted(outcome) == ["pull fenced", "push fenced"]

        def check():
            return (yield winner.pull("k"))

        assert cloud.sim.run_process(check()) == b"winner-bytes"
        assert relay.used_logical == pytest.approx(500.0)
        relay.check_memory_accounting()

    def test_fence_prevents_zombie_overwrite(self, cloud, relay):
        """A fenced loser's late MPUSH must not clobber the winner's
        partitions — the speculative-race guarantee."""
        winner = relay.client(attempt_id="winner")
        loser = relay.client(attempt_id="loser")

        def scenario():
            yield winner.push("m0.r0", b"winner-bytes")
            relay.cancel_attempt("loser")
            try:
                yield loser.mpush([("m0.r0", b"loser-bytes")])
            except RelayAttemptFenced:
                pass
            return (yield winner.pull("m0.r0"))

        assert cloud.sim.run_process(scenario()) == b"winner-bytes"


class TestAtomicSwap:
    def test_concurrent_pull_never_observes_missing_key(self, cloud, relay):
        """Regression for the replacing-MPUSH absence window: the old
        value stays pullable for the whole replacement transfer."""
        client = relay.client()
        chunk = relay.capacity_bytes * 0.6  # old+new can never coexist
        observed = []

        def seed():
            yield client.push("k", b"v1", logical_size=chunk)

        cloud.sim.run_process(seed())

        def replacer():
            yield client.mpush([("k", b"v2")], logical_sizes=[chunk])

        def poller():
            for _ in range(40):
                data = yield client.pull("k")  # must never raise
                observed.append(data)
                yield cloud.sim.timeout(1.0)

        cloud.sim.process(replacer())
        cloud.sim.process(poller())
        cloud.sim.run()
        assert set(observed) == {b"v1", b"v2"}  # both sides seen, no gap
        assert observed == sorted(observed)  # v1...v1,v2...v2: one swap
        assert relay.used_logical == pytest.approx(chunk)
        relay.check_memory_accounting()

    def test_same_size_repush_admitted_on_full_relay(self, cloud, relay):
        """The swap credit: a retried mapper re-pushing its batch needs
        zero extra bytes even when the relay is completely full."""
        client = relay.client()
        half = relay.capacity_bytes * 0.5
        times = []

        def scenario():
            yield client.mpush([("a", b"1"), ("b", b"2")],
                               logical_sizes=[half, half])
            started = cloud.sim.now
            yield client.mpush([("a", b"3"), ("b", b"4")],
                               logical_sizes=[half, half])
            times.append(cloud.sim.now - started)
            return (yield client.mpull(["a", "b"]))

        assert cloud.sim.run_process(scenario()) == [b"3", b"4"]
        assert relay.stats.backpressure_waits == 0  # no admission wait
        assert relay.used_logical == pytest.approx(relay.capacity_bytes)
        relay.check_memory_accounting()

    def test_cancelled_replacement_preserves_old_value(self, cloud, relay):
        winner = relay.client()
        loser = relay.client(attempt_id="loser")
        chunk = relay.capacity_bytes * 0.6  # ~8 s replacement transfer

        def seed():
            yield winner.push("k", b"old", logical_size=chunk)

        cloud.sim.run_process(seed())

        def replacer():
            yield loser.push("k", b"new", logical_size=chunk)

        process = cloud.sim.process(replacer())

        def canceller():
            yield cloud.sim.timeout(5.0)  # replacement mid-transfer
            process.interrupt(cause="lost race")
            relay.cancel_attempt("loser")

        cloud.sim.process(canceller())
        cloud.sim.run()

        def check():
            return (yield winner.pull("k"))

        assert cloud.sim.run_process(check()) == b"old"
        assert relay.used_logical == pytest.approx(chunk)
        relay.check_memory_accounting()

    def test_consume_during_replacement_is_absorbed(self, cloud, relay):
        """An old entry consumed mid-swap keeps its bytes reserved for
        the incoming replacement — no release/re-admit churn, exact
        accounting either way the swap ends."""
        client = relay.client()

        def scenario():
            yield client.push("a", b"old", logical_size=1000.0)
            replacement = client.push("a", b"new", logical_size=2e9)
            yield cloud.sim.timeout(0.5)  # replacement is mid-transfer
            data = yield client.pull("a", consume=True)
            assert data == b"old"
            relay.check_memory_accounting()
            yield replacement
            return (yield client.pull("a"))

        assert cloud.sim.run_process(scenario()) == b"new"
        assert relay.used_logical == pytest.approx(2e9)
        relay.check_memory_accounting()

    def test_rejected_oversized_swap_preserves_old_value(self, cloud, relay):
        client = relay.client()

        def scenario():
            yield client.push("k", b"old", logical_size=100.0)
            try:
                yield client.mpush([("k", b"huge")],
                                   logical_sizes=[relay.capacity_bytes * 2])
            except Exception:
                pass
            return (yield client.pull("k"))

        assert cloud.sim.run_process(scenario()) == b"old"
        assert relay.used_logical == 100.0
        relay.check_memory_accounting()


class TestInterruptCleanup:
    def test_interrupted_pull_aborts_its_flow(self, cloud, relay):
        """Killing the tracked op process (what the activation's cancel
        scope does) must stop the pull's NIC flow immediately."""

        class Owner:
            def __init__(self):
                self.processes = []

            def track(self, process):
                self.processes.append(process)
                return process

        owner = Owner()
        client = relay.client(owner=owner)
        checked = []

        def seed():
            yield client.push("k", b"x", logical_size=4e9)

        cloud.sim.run_process(seed())

        def puller():
            yield client.pull("k")

        cloud.sim.process(puller())

        def canceller():
            yield cloud.sim.timeout(5.0)
            assert relay.link.active_flows == 1
            pull_op = owner.processes[-1]  # the spawned _pull_op process
            pull_op.interrupt(cause="killed")
            assert relay.link.active_flows == 0
            checked.append(True)

        cloud.sim.process(canceller())
        cloud.sim.run()
        assert checked == [True]
        assert relay.used_logical == pytest.approx(4e9)  # entry untouched
        relay.check_memory_accounting()

    def test_interrupted_token_wait_does_not_burn_tokens(self, cloud, relay):
        """A cancelled request queued on the ops bucket withdraws its
        token demand so later requests are not stalled behind a ghost."""

        class Owner:
            def __init__(self):
                self.processes = []

            def track(self, process):
                self.processes.append(process)
                return process

        owner = Owner()
        client = relay.client(owner=owner)
        burst = int(relay.ops.capacity)
        keys = [(f"k{i}", b"") for i in range(burst)]

        def hog():
            # Exhaust the whole burst so the next batch must queue.
            yield client.mpush(keys, logical_sizes=[0.0] * len(keys))

        cloud.sim.run_process(hog())

        def victim():
            yield client.mpush(keys, logical_sizes=[0.0] * len(keys))

        cloud.sim.process(victim())
        observed = []

        def canceller():
            yield cloud.sim.timeout(0.001)  # victim is queued on tokens
            observed.append(relay.ops.pending_demand)
            owner.processes[-1].interrupt(cause="killed")
            observed.append(relay.ops.pending_demand)

        cloud.sim.process(canceller())
        cloud.sim.run()
        assert observed[0] > 0.0  # it really was waiting for tokens
        assert observed[1] == 0.0  # the demand was withdrawn, not burned
        relay.check_memory_accounting()
