"""Transient object-storage failure injection and client retries.

The compute side's crash injection (S9) has a storage twin: real object
stores return sporadic 500s, and every layer that talks to storage —
driver clients, function handlers, VM tasks — must absorb them with
backoff instead of failing the pipeline.
"""

import pytest

from repro.cloud import Cloud
from repro.cloud.objectstore.errors import InternalError
from repro.cloud.profiles import ibm_us_east
from repro.errors import StorageError
from repro.executor import FunctionExecutor
from repro.shuffle import FixedWidthCodec, ShuffleSort


@pytest.fixture
def cloud():
    cloud = Cloud.fresh(seed=13, profile=ibm_us_east(deterministic=True))
    cloud.store.ensure_bucket("bucket")
    return cloud


def seed_object(cloud, key="obj", data=b"payload"):
    def stage():
        yield cloud.store.put("bucket", key, data)

    cloud.sim.run_process(stage())


class TestRawStoreFaults:
    def test_injected_fault_raises_internal_error(self, cloud):
        seed_object(cloud)
        cloud.store.fault_probability = 1.0

        def scenario():
            return (yield cloud.store.get("bucket", "obj"))

        with pytest.raises(InternalError):
            cloud.sim.run_process(scenario())

    def test_faults_are_counted(self, cloud):
        seed_object(cloud)
        cloud.store.fault_probability = 1.0

        def scenario():
            yield cloud.store.get("bucket", "obj")

        with pytest.raises(InternalError):
            cloud.sim.run_process(scenario())
        assert cloud.store.stats.internal_errors == 1
        assert "internal_errors" in cloud.store.stats.as_dict()

    def test_zero_probability_never_fails(self, cloud):
        seed_object(cloud)

        def scenario():
            for _round in range(50):
                yield cloud.store.get("bucket", "obj")

        cloud.sim.run_process(scenario())
        assert cloud.store.stats.internal_errors == 0


class TestWorkerSideRetries:
    def test_function_handler_survives_transient_faults(self, cloud):
        seed_object(cloud, data=b"x" * 1000)
        cloud.store.fault_probability = 0.2

        def handler(ctx, _payload):
            data = yield ctx.storage.get("bucket", "obj")
            return len(data)

        cloud.faas.register("reader", handler)

        def scenario():
            results = []
            for _round in range(10):
                results.append((yield cloud.faas.invoke("reader")))
            return results

        assert cloud.sim.run_process(scenario()) == [1000] * 10
        assert cloud.store.stats.internal_errors > 0

    def test_persistent_outage_surfaces_as_storage_error(self, cloud):
        seed_object(cloud)
        cloud.store.fault_probability = 1.0

        def handler(ctx, _payload):
            return (yield ctx.storage.get("bucket", "obj"))

        cloud.faas.register("reader", handler)

        def scenario():
            return (yield cloud.faas.invoke("reader"))

        with pytest.raises(StorageError, match="still failing"):
            cloud.sim.run_process(scenario())

    def test_retries_cost_backoff_time(self, cloud):
        seed_object(cloud)

        def handler(ctx, _payload):
            return (yield ctx.storage.get("bucket", "obj"))

        cloud.faas.register("reader", handler)

        def run_once():
            def scenario():
                yield cloud.faas.invoke("reader")

            before = cloud.sim.now
            cloud.sim.run_process(scenario())
            return cloud.sim.now - before

        run_once()  # absorb the cold start; both probes below run warm
        healthy = run_once()
        cloud.store.fault_probability = 0.6
        degraded = run_once()
        assert degraded > healthy

    def test_vm_task_survives_transient_faults(self, cloud):
        seed_object(cloud, data=b"y" * 500)
        cloud.store.fault_probability = 0.2

        def scenario():
            vm = yield cloud.vms.provision("bx2-2x8")

            def task(ctx):
                payloads = []
                for _round in range(10):
                    payloads.append((yield ctx.storage.get("bucket", "obj")))
                return payloads

            result = yield vm.run(task)
            vm.terminate()
            return result

        assert cloud.sim.run_process(scenario()) == [b"y" * 500] * 10
        assert cloud.store.stats.internal_errors > 0


class TestEndToEndUnderFaults:
    def test_shuffle_stays_lossless_under_faults(self, cloud):
        import random

        rng = random.Random(3)
        codec = FixedWidthCodec(record_size=16, key_bytes=8)
        payload = b"".join(
            rng.getrandbits(64).to_bytes(8, "big") + bytes(8)
            for _ in range(2000)
        )
        cloud.store.fault_probability = 0.05
        executor = FunctionExecutor(cloud, bucket="bucket")
        operator = ShuffleSort(executor, codec)

        def driver():
            yield cloud.store.put("bucket", "input.bin", payload)
            return (yield operator.sort("bucket", "input.bin", workers=4))

        result = cloud.sim.run_process(driver())
        merged = b"".join(
            cloud.store.peek("bucket", run.key) for run in result.runs
        )
        keys = [codec.key(record) for record in codec.split(merged)]
        assert keys == sorted(keys)
        assert result.total_records == 2000
        assert cloud.store.stats.internal_errors > 0
