"""Supplementary experiment sweeps (S1-S8 in DESIGN.md).

These are the ablations the paper's argument rests on but does not plot
in the two-page demo: the worker-count U-curve behind "the appropriate
number of functions", data-size scaling, storage-throughput and
cold-start sensitivity, the codec-vs-gzip ratio, the function-memory
trade-off, the write-combining I/O ablation, and the three-way
data-exchange comparison against the in-memory cache alternative.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.cas import output_digest
from repro.cloud.environment import Cloud
from repro.core.calibration import ExperimentConfig
from repro.core.experiment import run_pipeline, stage_input
from repro.cloud.vm.fleet import fleet_ready
from repro.cloud.vm.relay import relay_ready
from repro.core.pipelines import (
    CACHE_SUPPORTED,
    PURE_SERVERLESS,
    RELAY_SUPPORTED,
    VM_SUPPORTED,
)
from repro.executor.executor import FunctionExecutor
from repro.executor.speculation import SpeculationPolicy
from repro.methcomp.codec import compression_ratio, gzip_ratio
from repro.methcomp.datagen import MethylomeGenerator
from repro.methcomp.pipeline import bed_record_codec
from repro.shuffle.cacheoperator import CacheShuffleSort
from repro.shuffle.cacheplanner import required_cache_nodes
from repro.shuffle.operator import ShuffleSort
from repro.shuffle.planner import plan_shuffle
from repro.shuffle.adaptive import EXCHANGE_SUBSTRATES
from repro.errors import ShuffleError
from repro.shuffle.relay import RelayShuffleSort, ShardedRelayShuffleSort
from repro.shuffle.relayplanner import required_relay_fleet
from repro.shuffle.streaming import (
    STREAMING_BACKENDS,
    StreamConfig,
    StreamingShuffleSort,
)
from repro.sim import Simulator


def _fresh_cloud(config: ExperimentConfig) -> Cloud:
    return Cloud(Simulator(seed=config.seed), config.make_profile())


# ----------------------------------------------------------------------
# S1: shuffle worker-count sweep (the "appropriate number of functions")
# ----------------------------------------------------------------------
def sweep_workers(
    config: ExperimentConfig | None = None,
    worker_counts: t.Sequence[int] = (2, 4, 8, 16, 32, 64),
) -> list[dict]:
    """Simulated sort latency vs worker count, with the planner's curve."""
    config = config if config is not None else ExperimentConfig()
    plan = plan_shuffle(
        config.logical_bytes,
        config.make_profile(),
        config.workload.shuffle_cost_model(),
        candidates=list(worker_counts),
    )
    rows = []
    for workers in worker_counts:
        cloud = _fresh_cloud(config)
        stage_input(cloud, config, "pipeline", "input/methylome.bed")
        executor = FunctionExecutor(
            cloud, runtime_memory_mb=config.function_memory_mb, bucket="pipeline"
        )
        operator = ShuffleSort(
            executor, bed_record_codec(), cost=config.workload.shuffle_cost_model()
        )

        def driver():
            return (
                yield operator.sort(
                    "pipeline", "input/methylome.bed", workers=workers
                )
            )

        result = cloud.sim.run_process(driver())
        rows.append(
            {
                "workers": workers,
                "sort_latency_s": result.duration_s,
                "planner_predicted_s": plan.point(workers).total_s,
                "planner_optimum": plan.workers,
            }
        )
    return rows


# ----------------------------------------------------------------------
# S2: data-size scaling
# ----------------------------------------------------------------------
def sweep_size(
    config: ExperimentConfig | None = None,
    sizes_gb: t.Sequence[float] = (0.5, 1.0, 2.0, 3.5, 7.0),
) -> list[dict]:
    """End-to-end latency of both configurations vs input size."""
    base = config if config is not None else ExperimentConfig()
    rows = []
    for size_gb in sizes_gb:
        cfg = dataclasses.replace(base, size_gb=size_gb)
        serverless = run_pipeline(cfg, PURE_SERVERLESS)
        vm = run_pipeline(cfg, VM_SUPPORTED)
        rows.append(
            {
                "size_gb": size_gb,
                "serverless_latency_s": serverless.latency_s,
                "vm_latency_s": vm.latency_s,
                "serverless_cost_usd": serverless.cost_usd,
                "vm_cost_usd": vm.cost_usd,
                "speedup": vm.latency_s / serverless.latency_s,
            }
        )
    return rows


# ----------------------------------------------------------------------
# S3: object-store ops/s sensitivity
# ----------------------------------------------------------------------
def sweep_storage_ops(
    config: ExperimentConfig | None = None,
    ops_rates: t.Sequence[float] = (100, 250, 500, 1000, 3000, 8000),
    workers: int = 32,
    write_combining: bool = False,
) -> list[dict]:
    """Sort latency vs the store's request-rate ceiling.

    Defaults to the *naive* all-to-all layout (no write-combining: W²
    PUTs + W² GETs), which is the configuration the paper's warning
    about "a few thousand operations/s" applies to.  With Primula's
    write-combining the same shuffle is nearly insensitive to the
    ceiling — that contrast is benchmark S7 (``bench_io_ablation``).
    """
    base = config if config is not None else ExperimentConfig()
    rows = []
    for ops in ops_rates:
        cfg = dataclasses.replace(base)
        profile = cfg.make_profile()
        profile.objectstore.ops_per_second = float(ops)
        profile.objectstore.ops_burst = float(ops)
        cloud = Cloud(Simulator(seed=cfg.seed), profile)
        stage_input(cloud, cfg, "pipeline", "input/methylome.bed")
        executor = FunctionExecutor(
            cloud, runtime_memory_mb=cfg.function_memory_mb, bucket="pipeline"
        )
        cost = cfg.workload.shuffle_cost_model()
        cost.write_combining = write_combining
        operator = ShuffleSort(executor, bed_record_codec(), cost=cost)

        def driver():
            return (
                yield operator.sort("pipeline", "input/methylome.bed", workers=workers)
            )

        result = cloud.sim.run_process(driver())
        rows.append(
            {
                "ops_per_second": ops,
                "workers": workers,
                "write_combining": write_combining,
                "sort_latency_s": result.duration_s,
                "slowdowns": cloud.store.stats.slowdowns,
                "requests": cloud.store.stats.total_requests,
            }
        )
    return rows


# ----------------------------------------------------------------------
# S7: write-combining I/O ablation (Primula's optimization)
# ----------------------------------------------------------------------
def sweep_io_ablation(
    config: ExperimentConfig | None = None,
    worker_counts: t.Sequence[int] = (8, 16, 32),
) -> list[dict]:
    """Shuffle latency and request counts with and without write-combining."""
    base = config if config is not None else ExperimentConfig()
    rows = []
    for workers in worker_counts:
        for write_combining in (True, False):
            cloud = _fresh_cloud(base)
            stage_input(cloud, base, "pipeline", "input/methylome.bed")
            executor = FunctionExecutor(
                cloud, runtime_memory_mb=base.function_memory_mb, bucket="pipeline"
            )
            cost = base.workload.shuffle_cost_model()
            cost.write_combining = write_combining
            operator = ShuffleSort(executor, bed_record_codec(), cost=cost)

            def driver():
                return (
                    yield operator.sort(
                        "pipeline", "input/methylome.bed", workers=workers
                    )
                )

            result = cloud.sim.run_process(driver())
            rows.append(
                {
                    "workers": workers,
                    "write_combining": write_combining,
                    "sort_latency_s": result.duration_s,
                    "storage_puts": cloud.store.stats.puts,
                    "storage_gets": cloud.store.stats.gets,
                }
            )
    return rows


# ----------------------------------------------------------------------
# S8: data-exchange strategy comparison (COS vs cache vs relay vs fleet)
# ----------------------------------------------------------------------
def _make_exchange_operator(
    cloud: Cloud, config: ExperimentConfig, strategy: str,
    executor: FunctionExecutor, stream: StreamConfig | None = None,
):
    """One shuffle operator + its provisioned substrate (or ``None``).

    The single construction point for every substrate the sweeps
    compare — in either execution mode: pass a
    :class:`~repro.shuffle.streaming.StreamConfig` to get the
    substrate's streaming twin over the same provisioned resource.
    The returned operator's uniform
    :class:`~repro.shuffle.exchange.ExchangeReport` replaces the
    per-substrate metadata the sweeps used to special-case.
    """
    codec = bed_record_codec()

    def wrap(staged_class, cost, provisioned):
        if stream is None:
            if provisioned is None:
                return staged_class(executor, codec, cost=cost), None
            return staged_class(executor, codec, provisioned, cost=cost), provisioned
        if provisioned is None:
            backend = STREAMING_BACKENDS[strategy](cost=cost, stream=stream)
        else:
            backend = STREAMING_BACKENDS[strategy](
                provisioned, cost=cost, stream=stream
            )
        return StreamingShuffleSort(executor, codec, backend=backend), provisioned

    if strategy == "objectstore":
        return wrap(ShuffleSort, config.workload.shuffle_cost_model(), None)
    if strategy == "cache":
        nodes = required_cache_nodes(
            config.logical_bytes, cloud.profile, config.cache_node_type
        )
        cluster = cloud.cache.provision_ready(config.cache_node_type, nodes=nodes)
        return wrap(
            CacheShuffleSort, config.workload.cache_shuffle_cost_model(), cluster
        )
    if strategy == "relay":
        relay = relay_ready(cloud.vms, config.resolved_relay_instance_type)
        return wrap(
            RelayShuffleSort, config.workload.relay_shuffle_cost_model(), relay
        )
    if strategy == "sharded-relay":
        fleet = fleet_ready(
            cloud.vms, config.resolved_relay_instance_type,
            shards=config.relay_shards,
        )
        return wrap(
            ShardedRelayShuffleSort, config.workload.relay_shuffle_cost_model(),
            fleet,
        )
    raise ValueError(
        f"unknown exchange strategy {strategy!r}; expected a subset of "
        f"{EXCHANGE_SUBSTRATES}"
    )


def sweep_exchange(
    config: ExperimentConfig | None = None,
    worker_counts: t.Sequence[int] = (4, 8, 16, 32, 64),
    strategies: t.Sequence[str] = EXCHANGE_SUBSTRATES,
) -> list[dict]:
    """Sort latency/cost of the four exchange substrates vs worker count.

    The contrast the models predict: the object-storage shuffle
    deteriorates at high worker counts (its W² range-GETs hit per-request
    latency and the account ops/s ceiling) while the cache's and the VM
    relays' batched sub-millisecond requests keep them nearly flat — at
    the price of provisioned node/instance-hours the COS rows never pay;
    past the worker count that saturates one instance NIC, the sharded
    fleet pulls away from the single relay.  Every row also carries a
    digest of the concatenated sorted runs so callers can assert the
    substrates produced identical artifacts, plus the substrate's
    uniform report fields (provisioned infrastructure dollars) and the
    rendered :meth:`~repro.shuffle.exchange.ExchangeReport.describe`
    table (``_report`` — popped by table formatters).

    The sweep gates itself before returning
    (:class:`~repro.obs.slo.SloGate`): per worker count, every
    substrate's output digest must match (byte parity), and any planner
    prediction must land within a 2x envelope of the measured sort.
    """
    from repro.obs.slo import SloGate
    base = config if config is not None else ExperimentConfig()
    for strategy in strategies:
        if strategy not in EXCHANGE_SUBSTRATES:
            raise ValueError(
                f"unknown exchange strategy {strategy!r}; expected a "
                f"subset of {EXCHANGE_SUBSTRATES}"
            )
    rows = []
    for workers in worker_counts:
        for strategy in strategies:
            cloud = _fresh_cloud(base)
            stage_input(cloud, base, "pipeline", "input/methylome.bed")
            executor = FunctionExecutor(
                cloud, runtime_memory_mb=base.function_memory_mb, bucket="pipeline"
            )
            marker = cloud.meter.snapshot()
            operator, provisioned = _make_exchange_operator(
                cloud, base, strategy, executor
            )

            def driver():
                return (
                    yield operator.sort(
                        "pipeline", "input/methylome.bed", workers=workers
                    )
                )

            result = cloud.sim.run_process(driver())
            if provisioned is not None:
                provisioned.terminate()
            rows.append(
                {
                    "workers": workers,
                    "strategy": strategy,
                    "sort_latency_s": result.duration_s,
                    "sort_cost_usd": cloud.meter.since(marker).total_usd,
                    "provisioned_usd": operator.report.provisioned_usd,
                    "storage_requests": cloud.store.stats.total_requests,
                    "output_digest": output_digest(cloud, result),
                    "_report": operator.report.describe(),
                    "_predicted_s": operator.report.predicted_s,
                }
            )
    gate = SloGate("s8-exchange")
    for workers in worker_counts:
        group = [row for row in rows if row["workers"] == workers]
        gate.equal(
            f"byte-parity@{workers}w",
            *[row["output_digest"] for row in group],
        )
        for row in group:
            gate.prediction_envelope(
                f"{row['strategy']}@{workers}w",
                row.pop("_predicted_s"),
                row["sort_latency_s"],
            )
    gate.assert_ok()
    return rows


def sweep_relay_shards(
    config: ExperimentConfig | None = None,
    shard_counts: t.Sequence[int] = (1, 2, 4),
    workers: int = 64,
) -> list[dict]:
    """S8b: shard-count sweep at one (NIC-saturating) worker count.

    At high W the aggregate demand of the workers' NICs exceeds one
    relay instance's line rate; every added shard contributes another
    instance NIC (and another billing clock).  The first row is an
    object-storage baseline at the same worker count so callers can
    assert byte parity across every fleet size.
    """
    base = config if config is not None else ExperimentConfig()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    for shards in shard_counts:
        if shards < 1:
            raise ValueError(f"shard counts must be >= 1, got {shards}")
    rows = []

    def run_one(strategy: str, shards: int) -> dict:
        cfg = dataclasses.replace(base, relay_shards=max(1, shards))
        cloud = _fresh_cloud(cfg)
        stage_input(cloud, cfg, "pipeline", "input/methylome.bed")
        executor = FunctionExecutor(
            cloud, runtime_memory_mb=cfg.function_memory_mb, bucket="pipeline"
        )
        marker = cloud.meter.snapshot()
        operator, provisioned = _make_exchange_operator(
            cloud, cfg, strategy, executor
        )

        def driver():
            return (
                yield operator.sort(
                    "pipeline", "input/methylome.bed", workers=workers
                )
            )

        result = cloud.sim.run_process(driver())
        residual = 0.0
        backpressure = 0
        if provisioned is not None:
            if hasattr(provisioned, "residual_reservation_bytes"):
                residual = provisioned.residual_reservation_bytes()
            provisioned.terminate()
        report = operator.report
        if strategy == "sharded-relay":
            backpressure = report.backpressure_waits
        return {
            "strategy": strategy,
            "shards": shards,
            "workers": workers,
            "sort_latency_s": result.duration_s,
            "sort_cost_usd": cloud.meter.since(marker).total_usd,
            "provisioned_usd": report.provisioned_usd,
            "backpressure_waits": backpressure,
            "residual_bytes": residual,
            "output_digest": output_digest(cloud, result),
        }

    rows.append(run_one("objectstore", 0))
    for shards in shard_counts:
        rows.append(run_one("sharded-relay", shards))
    return rows


def sweep_streaming(
    config: ExperimentConfig | None = None,
    strategies: t.Sequence[str] = ("objectstore", "cache", "relay"),
    workers: int = 16,
    chunk_mb: float = 32.0,
    buffer_mb: float = 256.0,
    bounded_buffer_mb: float = 4.0,
) -> list[dict]:
    """S10: staged vs streaming execution per exchange substrate.

    For each substrate the sweep runs the same seeded sort three ways —
    staged (the wave barrier), streaming with an ample reducer buffer,
    and streaming with the buffer bounded *below* what the map wave can
    deliver (``bounded_buffer_mb``), which forces the reducers to exert
    backpressure.  Every row carries the output digest (byte parity
    across all nine runs is the point: only *when* bytes move changes,
    never the bytes), the measured map/reduce wall-clock overlap, the
    reducer-buffer high watermark and the summed backpressure waits.
    """
    base = config if config is not None else ExperimentConfig()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    for strategy in strategies:
        if strategy not in EXCHANGE_SUBSTRATES:
            raise ValueError(
                f"unknown exchange strategy {strategy!r}; expected a "
                f"subset of {EXCHANGE_SUBSTRATES}"
            )
    rows = []

    def run_one(strategy: str, mode: str, buffer_cap_mb: float) -> dict:
        cloud = _fresh_cloud(base)
        stage_input(cloud, base, "pipeline", "input/methylome.bed")
        executor = FunctionExecutor(
            cloud, runtime_memory_mb=base.function_memory_mb, bucket="pipeline"
        )
        marker = cloud.meter.snapshot()
        stream = None
        if mode != "staged":
            stream = StreamConfig(
                chunk_bytes=chunk_mb * (1 << 20),
                buffer_bytes=buffer_cap_mb * (1 << 20)
                if buffer_cap_mb > 0 else None,
            )
        operator, provisioned = _make_exchange_operator(
            cloud, base, strategy, executor, stream=stream
        )

        def driver():
            return (
                yield operator.sort(
                    "pipeline", "input/methylome.bed", workers=workers
                )
            )

        result = cloud.sim.run_process(driver())
        residual = 0.0
        if provisioned is not None:
            if hasattr(provisioned, "residual_reservation_bytes"):
                residual = provisioned.residual_reservation_bytes()
            provisioned.terminate()
        report = operator.report
        return {
            "strategy": strategy,
            "mode": mode,
            "buffer_mb": buffer_cap_mb if mode != "staged" else 0.0,
            "workers": workers,
            "sort_latency_s": result.duration_s,
            "overlap_s": report.overlap_s,
            "backpressure_waits": report.extra.get(
                "buffer_backpressure_waits", 0
            ),
            "buffer_hwm_mb": report.buffer_high_watermark_bytes / (1 << 20),
            "sort_cost_usd": cloud.meter.since(marker).total_usd,
            "provisioned_usd": report.provisioned_usd,
            "residual_bytes": residual,
            "output_digest": output_digest(cloud, result),
        }

    for strategy in strategies:
        rows.append(run_one(strategy, "staged", 0.0))
        rows.append(run_one(strategy, "streaming", buffer_mb))
        rows.append(run_one(strategy, "streaming-bounded", bounded_buffer_mb))
    return rows


def sweep_skew(
    config: ExperimentConfig | None = None,
    distributions: t.Sequence[str] = ("uniform", "zipf"),
    workers: int = 12,
    shards: int = 2,
    zipf_s: float = 2.0,
    distinct_keys: int = 4,
    relay_instance_type: str = "bx2-2x8",
    worker_nic_bps: float = 150e6,
) -> list[dict]:
    """S11: skew-aware shuffle — CRC vs load-aware fleet routing.

    For each key distribution the sweep sorts the *same* seeded dataset
    three ways: an object-storage baseline, the sharded relay fleet
    with naive CRC-32 key routing (``rebalance=False``), and the fleet
    with load-aware routing (the default — planned partition bytes
    spread over the shards with a deterministic LPT assignment).  The
    fleet uses small-NIC shards and the workers' NICs are raised via a
    profile mutator so the *fleet side* is the exchange bottleneck —
    the regime where routing imbalance costs wall clock.

    Every row carries the output digest (routing moves bytes between
    shards, never changes the artifact), the measured
    ``partition_skew`` (max/mean reducer bytes — identical across rows
    of one distribution), the post-map ``hot_shard_share`` (the
    fraction of exchange bytes the hottest shard absorbed: ~1/shards
    when balanced, well above it when CRC routing piles a Zipf
    workload onto one shard), residual reservations (asserted zero by
    the bench) and the skew-aware planner's prediction at the measured
    skew, so the bench can check predicted-vs-actual tracking.
    """
    from repro.shuffle.relayplanner import (
        predict_relay_shuffle_time,
        resolve_relay_instance,
    )
    from repro.shuffle.skew import KEY_DISTRIBUTIONS

    base = config if config is not None else ExperimentConfig()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    for distribution in distributions:
        if distribution not in KEY_DISTRIBUTIONS:
            raise ValueError(
                f"unknown key distribution {distribution!r}; expected a "
                f"subset of {KEY_DISTRIBUTIONS}"
            )

    def fat_workers(profile) -> None:
        profile.faas.instance_bandwidth = worker_nic_bps

    rows = []
    for distribution in distributions:
        cfg = dataclasses.replace(
            base,
            key_distribution=distribution,
            zipf_s=zipf_s,
            skew_distinct_keys=distinct_keys,
            profile_mutator=fat_workers,
        )

        def run_one(strategy: str, routing: str) -> dict:
            cloud = _fresh_cloud(cfg)
            stage_input(cloud, cfg, "pipeline", "input/methylome.bed")
            executor = FunctionExecutor(
                cloud, runtime_memory_mb=cfg.function_memory_mb,
                bucket="pipeline",
            )
            marker = cloud.meter.snapshot()
            fleet = None
            if strategy == "objectstore":
                operator = ShuffleSort(
                    executor, bed_record_codec(),
                    cost=cfg.workload.shuffle_cost_model(),
                )
            else:
                fleet = fleet_ready(
                    cloud.vms, relay_instance_type, shards=shards
                )
                cost = cfg.workload.relay_shuffle_cost_model()
                cost.rebalance = routing == "rebalanced"
                operator = ShardedRelayShuffleSort(
                    executor, bed_record_codec(), fleet, cost=cost
                )

            def driver():
                return (
                    yield operator.sort(
                        "pipeline", "input/methylome.bed", workers=workers
                    )
                )

            result = cloud.sim.run_process(driver())
            report = operator.report
            residual = 0.0
            predicted_s = float("nan")
            hot_share = 0.0
            if fleet is not None:
                residual = fleet.residual_reservation_bytes()
                hot_share = report.hot_shard_share
                # The skew-aware model, evaluated at the *measured*
                # partition skew — what a planner that trusts its
                # sampling pass would have predicted for this run.
                predicted_s = predict_relay_shuffle_time(
                    cfg.logical_bytes,
                    workers,
                    cloud.profile,
                    resolve_relay_instance(cloud.profile, relay_instance_type),
                    cfg.workload.relay_shuffle_cost_model(),
                    shards=shards,
                    skew=report.partition_skew,
                ).total_s
                fleet.terminate()
            return {
                "distribution": distribution,
                "strategy": strategy,
                "routing": routing,
                "workers": workers,
                "shards": shards if fleet is not None else 0,
                "sort_latency_s": result.duration_s,
                "predicted_s": predicted_s,
                "partition_skew": report.partition_skew,
                "predicted_skew": report.predicted_partition_skew,
                "hot_shard_share": hot_share,
                "sort_cost_usd": cloud.meter.since(marker).total_usd,
                "residual_bytes": residual,
                "output_digest": output_digest(cloud, result),
            }

        rows.append(run_one("objectstore", "-"))
        rows.append(run_one("sharded-relay", "crc"))
        rows.append(run_one("sharded-relay", "rebalanced"))
    return rows


def sweep_exchange_pipelines(
    config: ExperimentConfig | None = None,
    sizes_gb: t.Sequence[float] = (1.0, 3.5, 7.0),
) -> list[dict]:
    """End-to-end four-way pipeline comparison across input sizes."""
    base = config if config is not None else ExperimentConfig()
    rows = []
    for size_gb in sizes_gb:
        cfg = dataclasses.replace(base, size_gb=size_gb)
        for variant in (PURE_SERVERLESS, VM_SUPPORTED, CACHE_SUPPORTED,
                        RELAY_SUPPORTED):
            run = run_pipeline(cfg, variant)
            rows.append(
                {
                    "size_gb": size_gb,
                    "variant": variant,
                    "latency_s": run.latency_s,
                    "cost_usd": run.cost_usd,
                    "sort_s": run.stage_durations.get("sort"),
                }
            )
    return rows


# ----------------------------------------------------------------------
# S9: fault injection and straggler mitigation
# ----------------------------------------------------------------------
def sweep_exchange_faults(
    config: ExperimentConfig | None = None,
    crash_rates: t.Sequence[float] = (0.0, 0.1, 0.25),
    strategies: t.Sequence[str] = EXCHANGE_SUBSTRATES,
    workers: int = 16,
    retries: int = 6,
) -> list[dict]:
    """S9c: crash-injected shuffle on every exchange substrate.

    Attempt-scoped cancellation makes crash-retry safe on the stateful
    substrates too: a killed mapper's in-flight transfers are aborted
    and its reservations reclaimed, so the retried attempt never races
    an orphaned predecessor.  Every row carries the artifact digest —
    the sweep itself asserts byte parity with the crash-free run — and
    the relay rows additionally report residual reservations, asserted
    zero.
    """
    base = config if config is not None else ExperimentConfig()
    rows = []
    baseline_digest: str | None = None
    for rate in crash_rates:
        for strategy in strategies:
            cloud = _fresh_cloud(base)
            stage_input(cloud, base, "pipeline", "input/methylome.bed")
            cloud.faas.crash_probability = rate
            executor = FunctionExecutor(
                cloud, runtime_memory_mb=base.function_memory_mb,
                bucket="pipeline", retries=retries,
            )
            operator, provisioned = _make_exchange_operator(
                cloud, base, strategy, executor
            )

            def driver():
                return (
                    yield operator.sort(
                        "pipeline", "input/methylome.bed", workers=workers
                    )
                )

            result = cloud.sim.run_process(driver())
            digest = output_digest(cloud, result)
            if baseline_digest is None:
                baseline_digest = digest
            # Self-healing must be lossless on every substrate.
            assert digest == baseline_digest, (
                f"{strategy} diverged at crash rate {rate}"
            )
            residual = 0.0
            reclaimed = 0.0
            if strategy in ("relay", "sharded-relay"):
                residual = provisioned.residual_reservation_bytes()
                assert residual == 0.0, f"{strategy} leaked reservations"
                provisioned.check_memory_accounting()
                reclaimed = provisioned.stats.reclaimed_bytes
            rows.append(
                {
                    "strategy": strategy,
                    "crash_probability": rate,
                    "sort_latency_s": result.duration_s,
                    "crashes": cloud.faas.stats.crashes,
                    "invocations": cloud.faas.stats.invocations,
                    "reclaimed_bytes": reclaimed,
                    "residual_bytes": residual,
                    "output_digest": digest,
                }
            )
            if provisioned is not None:
                provisioned.terminate()
    return rows


def sweep_exchange_speculation(
    config: ExperimentConfig | None = None,
    strategies: t.Sequence[str] = EXCHANGE_SUBSTRATES,
    workers: int = 16,
    cold_start_sigma: float = 1.4,
) -> list[dict]:
    """S9d: straggler mitigation per exchange substrate.

    The speculator cancels losing attempts through the platform, so
    backup tasks are safe on the provisioned substrates too: identical
    digests with speculation on, cancelled losers billed only up to the
    kill (``cancelled_gb_s`` is the leftover cost of losing attempts).
    """
    base = config if config is not None else ExperimentConfig()
    policy = SpeculationPolicy(quantile=0.7, latency_multiplier=1.3)
    rows = []
    digests: set[str] = set()
    for strategy in strategies:
        for label, speculation in (("off", None), ("on", policy)):
            profile = base.make_profile()
            profile.faas.cold_start.mean = 1.5
            profile.faas.cold_start.sigma = cold_start_sigma
            cloud = Cloud(Simulator(seed=base.seed), profile)
            stage_input(cloud, base, "pipeline", "input/methylome.bed")
            executor = FunctionExecutor(
                cloud, runtime_memory_mb=base.function_memory_mb,
                bucket="pipeline", speculation=speculation,
            )
            operator, provisioned = _make_exchange_operator(
                cloud, base, strategy, executor
            )

            def driver():
                return (
                    yield operator.sort(
                        "pipeline", "input/methylome.bed", workers=workers
                    )
                )

            result = cloud.sim.run_process(driver())
            digests.add(output_digest(cloud, result, full=True))
            rows.append(
                {
                    "strategy": strategy,
                    "speculation": label,
                    "sort_latency_s": result.duration_s,
                    "backup_tasks": executor.speculative_launches,
                    "cancelled_attempts": cloud.faas.stats.cancellations,
                    "cancelled_gb_s": sum(
                        line.gb_seconds
                        for line in cloud.faas.billing_log
                        if line.outcome == "cancelled"
                    ),
                    "invocations": cloud.faas.stats.invocations,
                }
            )
            if provisioned is not None:
                provisioned.terminate()
    # Speculation must never change the artifact, on any substrate.
    assert len(digests) == 1, "speculation changed the sorted artifact"
    return rows


def sweep_fault_rate(
    config: ExperimentConfig | None = None,
    crash_rates: t.Sequence[float] = (0.0, 0.05, 0.15, 0.3),
    calls: int = 32,
    call_cpu_s: float = 10.0,
) -> list[dict]:
    """Map-job latency/cost overhead as invocation crashes are injected.

    The executor re-invokes crashed calls (Lithops-style); the rows show
    what that self-healing costs in wall clock and dollars.
    """
    from repro.executor import FunctionExecutor

    base = config if config is not None else ExperimentConfig()
    rows = []
    for rate in crash_rates:
        cloud = _fresh_cloud(base)
        cloud.faas.crash_probability = rate
        cloud.faas.crash_latest_s = call_cpu_s
        executor = FunctionExecutor(
            cloud, runtime_memory_mb=base.function_memory_mb
        )

        def driver():
            futures = yield executor.map(
                _identity, list(range(calls)), cpu_model=lambda _x: call_cpu_s
            )
            return (yield executor.get_result(futures))

        results = cloud.sim.run_process(driver())
        assert results == list(range(calls))  # self-healing must be lossless
        rows.append(
            {
                "crash_probability": rate,
                "latency_s": cloud.sim.now,
                "cost_usd": cloud.meter.total_usd,
                "crashes": cloud.faas.stats.crashes,
                "invocations": cloud.faas.stats.invocations,
            }
        )
    return rows


def sweep_speculation(
    config: ExperimentConfig | None = None,
    calls: int = 48,
    call_cpu_s: float = 5.0,
    cold_start_sigma: float = 1.4,
) -> list[dict]:
    """Straggler-mitigation ablation under heavy-tailed cold starts."""
    from repro.executor import FunctionExecutor, SpeculationPolicy

    base = config if config is not None else ExperimentConfig()
    rows = []
    for label, policy in (
        ("off", None),
        ("on", SpeculationPolicy(quantile=0.7, latency_multiplier=1.3)),
    ):
        profile = base.make_profile()
        profile.faas.cold_start.mean = 1.5
        profile.faas.cold_start.sigma = cold_start_sigma
        cloud = Cloud(Simulator(seed=base.seed), profile)
        executor = FunctionExecutor(
            cloud, runtime_memory_mb=base.function_memory_mb, speculation=policy
        )

        def driver():
            futures = yield executor.map(
                _identity, list(range(calls)), cpu_model=lambda _x: call_cpu_s
            )
            return (yield executor.get_result(futures))

        cloud.sim.run_process(driver())
        rows.append(
            {
                "speculation": label,
                "latency_s": cloud.sim.now,
                "cost_usd": cloud.meter.total_usd,
                "backup_tasks": executor.speculative_launches,
                "invocations": cloud.faas.stats.invocations,
            }
        )
    return rows


def _identity(x):
    """Module-level map payload (needs to be picklable by name)."""
    return x


# ----------------------------------------------------------------------
# S10: online tuner vs static calibration vs oracle
# ----------------------------------------------------------------------
def _tuner_scenarios() -> dict[str, t.Callable | None]:
    def slow_nic(profile):
        profile.faas.instance_bandwidth = 8e6

    def high_latency(profile):
        profile.objectstore.read_latency.mean = 0.15
        profile.objectstore.write_latency.mean = 0.25

    return {"calibrated": None, "slow-nic": slow_nic, "high-latency": high_latency}


def sweep_tuner(
    config: ExperimentConfig | None = None,
    worker_candidates: t.Sequence[int] = (4, 8, 16, 32, 64, 128),
    scenarios: dict[str, t.Callable | None] | None = None,
) -> list[dict]:
    """Primula's on-the-fly tuning vs a stale static calibration.

    For each region scenario the sweep measures the real sort latency at
    every candidate worker count (the *oracle* curve), then compares the
    picks of (a) the static planner running on the *unperturbed*
    calibration — what a planner calibrated last month would do — and
    (b) the online tuner that probes the live region first.  Regret is
    the measured latency of a pick over the oracle's best; the tuner's
    regret additionally pays its probe time.
    """
    from repro.shuffle.adaptive import OnlineTuner

    base = config if config is not None else ExperimentConfig()
    scenarios = scenarios if scenarios is not None else _tuner_scenarios()
    cost = base.workload.shuffle_cost_model()
    rows = []
    for name, mutate in scenarios.items():
        cfg = dataclasses.replace(base, profile_mutator=mutate)

        def measure(workers: int) -> float:
            cloud = _fresh_cloud(cfg)
            stage_input(cloud, cfg, "pipeline", "input/methylome.bed")
            executor = FunctionExecutor(
                cloud, runtime_memory_mb=cfg.function_memory_mb, bucket="pipeline"
            )
            operator = ShuffleSort(executor, bed_record_codec(), cost=cost)

            def driver():
                return (
                    yield operator.sort(
                        "pipeline", "input/methylome.bed", workers=workers
                    )
                )

            return cloud.sim.run_process(driver()).duration_s

        measured = {workers: measure(workers) for workers in worker_candidates}
        oracle_pick = min(measured, key=measured.get)

        static_pick = plan_shuffle(
            base.logical_bytes,
            base.make_profile(),  # stale calibration: no perturbation
            cost,
            candidates=worker_candidates,
        ).workers

        probe_cloud = _fresh_cloud(cfg)
        stage_input(probe_cloud, cfg, "pipeline", "input/methylome.bed")
        tuner = OnlineTuner(
            FunctionExecutor(
                probe_cloud, runtime_memory_mb=cfg.function_memory_mb,
                bucket="pipeline",
            )
        )

        def tune_driver():
            return (
                yield tuner.tune(
                    "pipeline", base.logical_bytes, cost,
                    candidates=worker_candidates,
                )
            )

        report, tuned_plan = probe_cloud.sim.run_process(tune_driver())
        tuned_pick = tuned_plan.workers

        best = measured[oracle_pick]
        rows.append(
            {
                "scenario": name,
                "oracle_pick": oracle_pick,
                "static_pick": static_pick,
                "tuned_pick": tuned_pick,
                "oracle_latency_s": best,
                "static_latency_s": measured[static_pick],
                "tuned_latency_s": measured[tuned_pick] + report.duration_s,
                "static_regret": measured[static_pick] / best,
                "tuned_regret": (measured[tuned_pick] + report.duration_s) / best,
                "probe_s": report.duration_s,
            }
        )
    return rows


# ----------------------------------------------------------------------
# S12: online mid-stream re-selection vs every static decision
# ----------------------------------------------------------------------
def sweep_online(
    config: ExperimentConfig | None = None,
    workers: int = 8,
    chunk_mb: float = 32.0,
    time_value_usd_per_hour: float = 1.0,
    shift_at_s: float = 60.0,
    brownout_read_latency_s: float = 0.45,
    brownout_write_latency_s: float = 0.45,
    brownout_connection_bps: float = 2e6,
    switch_margin: float = 0.05,
) -> list[dict]:
    """S12: mid-stream re-selection against the static decision grid.

    The adversarial scenario no pre-flight decision can win: a
    ``late-hot`` dataset (uniform head, hot key only in the stream's
    tail — invisible to sampling) *plus* an object-storage **brownout**
    (connection throttling + latency inflation) in effect at launch
    that clears mid-run, after every static operator has already
    committed its whole-split input reads at brownout bandwidth.  The
    online operator's chunked map-side reads ride the brownout out one
    chunk at a time, its initial decision avoids routing the exchange
    through the throttled store, and the first post-recovery refit
    switches it onto the store once that is the cheapest substrate
    again.  The sweep sorts the same seeded dataset nine ways — the
    online operator (free to re-decide between waves) and all eight
    static (substrate × mode) decisions pinned at the same worker count
    on identical clouds with the identical brownout + recovery — and
    scores each run the way the planner does: ``latency × time-value +
    provisioned infrastructure dollars``.

    Every row carries the output digest (re-selection moves bytes,
    never changes them: byte parity across all nine runs), the score,
    and for the online row the decision-timeline summary
    (``_timeline`` — a list of lines, popped by table formatters), the
    switch count and the chunk-reroute count.  A final ``reroute`` row
    restricts the online operator to the sharded fleet so the late hot
    key must be absorbed by chunk-grain rerouting; its
    ``peak_fill`` column (hottest shard's peak fill fraction of
    ``relay_usable_bytes``) is asserted ``<= 1`` by the bench.
    """
    from repro.shuffle.online import OnlineShuffleSort

    base = config if config is not None else ExperimentConfig()
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    healthy_profile = base.make_profile()
    healthy = {
        "read_latency_s": healthy_profile.objectstore.read_latency.mean,
        "write_latency_s": healthy_profile.objectstore.write_latency.mean,
        "connection_bps": healthy_profile.objectstore.per_connection_bandwidth,
    }

    def brownout(profile) -> None:
        """Launch-time COS brownout: throttled connections, fat latency."""
        if base.profile_mutator is not None:
            base.profile_mutator(profile)
        profile.objectstore.read_latency.mean = brownout_read_latency_s
        profile.objectstore.write_latency.mean = brownout_write_latency_s
        profile.objectstore.per_connection_bandwidth = brownout_connection_bps

    def small_relays(profile) -> None:
        """Brownout plus relay VMs shrunk so the fleet must shard.

        At this sweep's dataset size one stock relay VM swallows the
        whole exchange, leaving nothing for chunk-grain rerouting to
        balance; 1 GB instances force a multi-shard fleet.
        """
        brownout(profile)
        profile.vm.catalog = {
            name: dataclasses.replace(
                spec, memory_gb=min(spec.memory_gb, 1.0)
            )
            for name, spec in profile.vm.catalog.items()
        }

    cfg = dataclasses.replace(
        base, key_distribution="late-hot", profile_mutator=brownout
    )
    time_value = time_value_usd_per_hour
    reroute_cfg = dataclasses.replace(cfg, profile_mutator=small_relays)

    def shifted(cloud: Cloud):
        """Mid-run recovery: the COS brownout clears at ``shift_at_s``."""

        def proc():
            yield cloud.sim.timeout(shift_at_s)
            cloud.profile.objectstore.read_latency.mean = healthy[
                "read_latency_s"
            ]
            cloud.profile.objectstore.write_latency.mean = healthy[
                "write_latency_s"
            ]
            cloud.profile.objectstore.per_connection_bandwidth = healthy[
                "connection_bps"
            ]

        return proc()

    stream = StreamConfig(chunk_bytes=chunk_mb * (1 << 20))

    def run_row(scenario: str, strategy: str, mode: str) -> dict:
        row_cfg = reroute_cfg if scenario == "reroute" else cfg
        cloud = _fresh_cloud(row_cfg)
        stage_input(cloud, row_cfg, "pipeline", "input/methylome.bed")
        executor = FunctionExecutor(
            cloud, runtime_memory_mb=row_cfg.function_memory_mb, bucket="pipeline"
        )
        provisioned = None
        if strategy == "online":
            operator = OnlineShuffleSort(
                executor,
                bed_record_codec(),
                stream=stream,
                shuffle_cost=row_cfg.workload.shuffle_cost_model(),
                cache_cost=row_cfg.workload.cache_shuffle_cost_model(),
                relay_cost=row_cfg.workload.relay_shuffle_cost_model(),
                time_value_usd_per_hour=time_value,
                substrates=(
                    ("sharded-relay",) if scenario == "reroute" else None
                ),
                modes=(
                    ("streaming",) if scenario == "reroute"
                    else ("staged", "streaming")
                ),
                switch_margin=switch_margin,
            )
        else:
            operator, provisioned = _make_exchange_operator(
                cloud, row_cfg, strategy, executor,
                stream=stream if mode == "streaming" else None,
            )

        def driver():
            cloud.sim.process(shifted(cloud), name="s12.shift")
            return (
                yield operator.sort(
                    "pipeline", "input/methylome.bed", workers=workers
                )
            )

        result = cloud.sim.run_process(driver())
        if provisioned is not None:
            provisioned.terminate()
        report = operator.report
        score = (
            result.duration_s * time_value / 3600.0 + report.provisioned_usd
        )
        row = {
            "scenario": scenario,
            "strategy": strategy,
            "mode": mode,
            "workers": workers,
            "sort_latency_s": result.duration_s,
            "provisioned_usd": report.provisioned_usd,
            "score_usd": score,
            "switches": 0,
            "reroutes": 0,
            "peak_fill": 0.0,
            "output_digest": output_digest(cloud, result),
        }
        if strategy == "online":
            row["switches"] = operator.timeline.switches
            row["reroutes"] = operator.chunk_reroutes
            row["peak_fill"] = report.extra.get("relay_peak_fill", 0.0)
            row["_timeline"] = [
                point.describe() for point in operator.timeline
            ]
        return row

    rows = [run_row("shift", "online", "online")]
    for strategy in EXCHANGE_SUBSTRATES:
        for mode in ("staged", "streaming"):
            rows.append(run_row("shift", strategy, mode))
    rows.append(run_row("reroute", "online", "online"))
    return rows


# ----------------------------------------------------------------------
# S11: multi-cloud portability (Lithops' multi-cloud story, ref [3])
# ----------------------------------------------------------------------
def sweep_multicloud(
    config: ExperimentConfig | None = None,
    providers: t.Sequence[str] = ("ibm-us-east", "aws-us-east"),
) -> list[dict]:
    """Re-run the Table 1 comparison on every provider profile.

    Absolute latencies and costs shift with each provider's constants;
    what must *not* shift is the paper's conclusion — the purely
    serverless pipeline beats the VM-supported one at comparable cost.
    """
    base = config if config is not None else ExperimentConfig()
    rows = []
    for provider in providers:
        cfg = dataclasses.replace(base, provider=provider)
        serverless = run_pipeline(cfg, PURE_SERVERLESS)
        vm = run_pipeline(cfg, VM_SUPPORTED)
        rows.append(
            {
                "provider": provider,
                "vm_type": cfg.resolved_vm_instance_type,
                "serverless_latency_s": serverless.latency_s,
                "vm_latency_s": vm.latency_s,
                "speedup": vm.latency_s / serverless.latency_s,
                "serverless_cost_usd": serverless.cost_usd,
                "vm_cost_usd": vm.cost_usd,
            }
        )
    return rows


# ----------------------------------------------------------------------
# S4: startup-time sensitivity
# ----------------------------------------------------------------------
def sweep_startup(
    config: ExperimentConfig | None = None,
    cold_multipliers: t.Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    boot_times: t.Sequence[float] = (30.0, 60.0, 105.0, 180.0),
) -> list[dict]:
    """Latency sensitivity to function cold starts and VM boot time."""
    base = config if config is not None else ExperimentConfig()
    rows = []
    for multiplier in cold_multipliers:
        def scale_cold(profile, m=multiplier):
            profile.faas.cold_start.mean *= m

        cfg = dataclasses.replace(base, profile_mutator=scale_cold)
        run = run_pipeline(cfg, PURE_SERVERLESS)
        rows.append(
            {
                "knob": "cold_start_x",
                "value": multiplier,
                "latency_s": run.latency_s,
                "variant": PURE_SERVERLESS,
            }
        )
    for boot in boot_times:
        def set_boot(profile, b=boot):
            profile.vm.boot.mean = b

        cfg = dataclasses.replace(base, profile_mutator=set_boot)
        run = run_pipeline(cfg, VM_SUPPORTED)
        rows.append(
            {
                "knob": "vm_boot_s",
                "value": boot,
                "latency_s": run.latency_s,
                "variant": VM_SUPPORTED,
            }
        )
    return rows


# ----------------------------------------------------------------------
# S5: codec ratio vs gzip
# ----------------------------------------------------------------------
def sweep_codec(
    record_counts: t.Sequence[int] = (10_000, 50_000, 150_000),
    seed: int = 2021,
) -> list[dict]:
    """METHCOMP-vs-gzip compression ratios on synthetic methylomes."""
    from repro.methcomp.bed import serialize_records

    rows = []
    for count in record_counts:
        corpus = serialize_records(MethylomeGenerator(seed=seed).records(count))
        ours = compression_ratio(corpus)
        gz = gzip_ratio(corpus)
        rows.append(
            {
                "records": count,
                "raw_mb": len(corpus) / (1 << 20),
                "methcomp_ratio": ours,
                "gzip_ratio": gz,
                "methcomp_vs_gzip": ours / gz,
            }
        )
    return rows


# ----------------------------------------------------------------------
# S6: function-memory sweep
# ----------------------------------------------------------------------
def sweep_memory(
    config: ExperimentConfig | None = None,
    memory_sizes: t.Sequence[int] = (512, 1024, 2048, 4096),
) -> list[dict]:
    """Serverless pipeline latency/cost vs function memory size.

    Memory buys CPU share (below the full-share point) but costs
    linearly in GB-seconds — the classic serverless sizing trade-off.
    """
    base = config if config is not None else ExperimentConfig()
    rows = []
    for memory_mb in memory_sizes:
        cfg = dataclasses.replace(base, function_memory_mb=memory_mb)
        run = run_pipeline(cfg, PURE_SERVERLESS)
        rows.append(
            {
                "memory_mb": memory_mb,
                "latency_s": run.latency_s,
                "cost_usd": run.cost_usd,
            }
        )
    return rows

# ----------------------------------------------------------------------
# S13: multi-tenant exchange service vs provision-per-job
# ----------------------------------------------------------------------
#: Open-loop arrival schedule: (arrival_s, tenant, size fraction of the
#: config dataset).  Three full-size jobs burst in the first seconds
#: (demand the autoscaler must grow for), then two small tail jobs keep
#: the service busy after the burst drains (demand it must shrink for).
SERVICE_ARRIVALS: tuple[tuple[float, str, float], ...] = (
    (0.0, "alice", 1.0),
    (2.0, "bob", 1.0),
    (4.0, "carol", 1.0),
    (150.0, "bob", 0.4),
    (180.0, "carol", 0.4),
)


def _p95(values: t.Sequence[float]) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(0, int(-(-0.95 * len(ordered) // 1)) - 1)
    return ordered[rank]


def sweep_service(
    config: ExperimentConfig | None = None,
    arrivals: t.Sequence[tuple[float, str, float]] = SERVICE_ARRIVALS,
    workers: int = 8,
    max_shards: int = 4,
    tenant_rate_per_s: float = 0.05,
    tenant_burst: float = 2.0,
) -> list[dict]:
    """S13: one shared autoscaled exchange service vs a fleet per job.

    The same open-loop arrival schedule — several tenants submitting
    sort jobs at fixed times — is served two ways on identical clouds:

    * ``service`` — one :class:`~repro.service.ExchangeService`: shared
      admission queue with per-tenant token buckets, tenant-scoped
      fencing, and a relay fleet resized from observed demand (a new
      warm generation per resize, the old one draining its jobs);
    * ``per-job`` — the deployment shape every earlier experiment used:
      each arrival cold-provisions its own right-sized fleet, sorts,
      and terminates it, paying a full VM boot and a private fleet's
      instance-seconds per job.

    Per-job rows (``kind="job"``) carry queue/boot wait, submit-to-done
    latency and the output digest; ``kind="total"`` rows carry the
    strategy's p95 latency, its dollar totals and the service's scale
    event counts; ``kind="tenant"`` rows expose the service's
    per-tenant attribution (functions exactly, fleet by byte-seconds)
    whose sum the bench asserts equals the fleet total.
    """
    from repro.service import ExchangeService

    base = config if config is not None else ExperimentConfig()
    profile = base.make_profile()
    # The flavour that holds one full-size job in a single shard; the
    # service scales shard count, the baseline right-sizes per job.
    instance_type, _ = required_relay_fleet(
        base.logical_bytes, profile, max_shards=1
    )

    jobs = [
        {
            "job": f"j{index + 1}",
            "tenant": tenant,
            "arrival_s": arrival_s,
            "key": f"input/j{index + 1}.bed",
            "config": dataclasses.replace(
                base,
                size_gb=base.size_gb * fraction,
                seed=base.seed + index + 1,
            ),
        }
        for index, (arrival_s, tenant, fraction) in enumerate(arrivals)
    ]

    def stage_all(cloud: Cloud) -> None:
        for job in jobs:
            stage_input(cloud, job["config"], "pipeline", job["key"])

    rows: list[dict] = []

    def blank_row(**overrides) -> dict:
        row = {
            "strategy": "",
            "kind": "job",
            "job": "",
            "tenant": "",
            "arrival_s": 0.0,
            "wait_s": 0.0,
            "latency_s": 0.0,
            "p95_latency_s": 0.0,
            "faas_usd": 0.0,
            "fleet_usd": 0.0,
            "total_usd": 0.0,
            "scale_ups": 0,
            "scale_downs": 0,
            "output_digest": "",
        }
        row.update(overrides)
        return row

    # -- shared service ------------------------------------------------
    cloud = _fresh_cloud(base)
    stage_all(cloud)
    service = ExchangeService(
        cloud,
        bed_record_codec(),
        instance_type=instance_type,
        min_shards=1,
        max_shards=max_shards,
        tenant_rate_per_s=tenant_rate_per_s,
        tenant_burst=tenant_burst,
        memory_mb=base.function_memory_mb,
        relay_cost=base.workload.relay_shuffle_cost_model(),
    )

    def service_driver():
        service.start()
        handles = []
        now = 0.0
        for job in jobs:
            if job["arrival_s"] > now:
                yield cloud.sim.timeout(job["arrival_s"] - now)
                now = job["arrival_s"]
            handles.append(
                service.submit(
                    job["tenant"],
                    "pipeline",
                    job["key"],
                    job["config"].logical_bytes,
                    workers=workers,
                )
            )
        yield service.drain()
        service.shutdown()
        return handles

    handles = cloud.sim.run_process(service_driver())
    for job, handle in zip(jobs, handles):
        if handle.state != "done":
            raise ShuffleError(
                f"service starved job {handle.job_id} "
                f"({handle.tenant}): state={handle.state!r}"
            )
        rows.append(blank_row(
            strategy="service",
            job=job["job"],
            tenant=job["tenant"],
            arrival_s=job["arrival_s"],
            wait_s=handle.queue_wait_s,
            latency_s=handle.latency_s,
            output_digest=handle.output_digest,
        ))
    costs = service.tenant_costs()
    for tenant in sorted(costs):
        rows.append(blank_row(
            strategy="service", kind="tenant", tenant=tenant, **costs[tenant]
        ))
    fleet_usd = service.fleet_cost_usd()
    faas_usd = sum(entry["faas_usd"] for entry in costs.values())
    rows.append(blank_row(
        strategy="service",
        kind="total",
        p95_latency_s=_p95([handle.latency_s for handle in handles]),
        faas_usd=faas_usd,
        fleet_usd=fleet_usd,
        total_usd=faas_usd + fleet_usd,
        scale_ups=sum(
            1 for event in service.scale_events if event["direction"] == "up"
        ),
        scale_downs=sum(
            1 for event in service.scale_events if event["direction"] == "down"
        ),
    ))

    # -- provision-per-job baseline ------------------------------------
    from repro.cloud.vm.fleet import provision_fleet

    cloud = _fresh_cloud(base)
    stage_all(cloud)
    outcomes: dict[str, dict] = {}

    def one_job(job: dict):
        yield cloud.sim.timeout(job["arrival_s"])
        fleet_type, shards = required_relay_fleet(
            job["config"].logical_bytes,
            cloud.profile,
            instance_type_name=instance_type,
            max_shards=max_shards,
        )
        fleet = yield provision_fleet(cloud.vms, fleet_type, shards)
        boot_done = cloud.sim.now
        executor = FunctionExecutor(
            cloud,
            runtime_memory_mb=base.function_memory_mb,
            bucket="pipeline",
            billing_tags={"tenant": job["tenant"], "job": job["job"]},
        )
        cost = dataclasses.replace(
            base.workload.relay_shuffle_cost_model(), consume=True
        )
        operator = ShardedRelayShuffleSort(
            executor, bed_record_codec(), fleet, cost=cost
        )
        result = yield operator.sort(
            "pipeline", job["key"], out_prefix=job["job"], workers=workers
        )
        cloud.meter.push_tag("fleet", f"perjob-{job['job']}")
        try:
            fleet.terminate()
        finally:
            cloud.meter.pop_tag("fleet")
        outcomes[job["job"]] = {
            "wait_s": boot_done - job["arrival_s"],
            "latency_s": cloud.sim.now - job["arrival_s"],
            "output_digest": output_digest(cloud, result),
        }

    def perjob_driver():
        procs = [
            cloud.sim.process(one_job(job), name=f"perjob.{job['job']}")
            for job in jobs
        ]
        yield cloud.sim.all_of([proc.completion for proc in procs])

    cloud.sim.run_process(perjob_driver())
    for job in jobs:
        rows.append(blank_row(
            strategy="per-job",
            job=job["job"],
            tenant=job["tenant"],
            arrival_s=job["arrival_s"],
            **outcomes[job["job"]],
        ))
    perjob_faas = sum(
        line.usd for line in cloud.meter.filtered(service="faas")
    )
    perjob_fleet = sum(
        line.usd
        for line in cloud.meter.filtered(service="vm")
        if dict(line.tags).get("fleet", "").startswith("perjob-")
    )
    rows.append(blank_row(
        strategy="per-job",
        kind="total",
        p95_latency_s=_p95(
            [outcomes[job["job"]]["latency_s"] for job in jobs]
        ),
        faas_usd=perjob_faas,
        fleet_usd=perjob_fleet,
        total_usd=perjob_faas + perjob_fleet,
    ))
    return rows
