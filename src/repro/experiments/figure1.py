"""Figure 1 regenerator: the two pipeline architectures, side by side.

The paper's Figure 1 is a diagram of the purely serverless (A) and
hybrid (B) incarnations of the genomics compression pipeline.  We render
the exact DAGs the experiment executes as annotated ASCII — same
content, headless medium.
"""

from __future__ import annotations

from repro.core.calibration import ExperimentConfig
from repro.core.pipelines import pure_serverless_pipeline, vm_supported_pipeline
from repro.workflows.render import render_dag, render_side_by_side


def render_figure1(config: ExperimentConfig | None = None) -> str:
    """The Figure 1 reproduction as a printable string."""
    config = config if config is not None else ExperimentConfig()
    serverless = render_dag(
        pure_serverless_pipeline(config),
        title="(B) Purely serverless",
    )
    hybrid = render_dag(
        vm_supported_pipeline(config),
        title="(A) VM-supported (hybrid)",
    )
    header = (
        "Figure 1: implementations of the genomics compression pipeline\n"
        "(all intermediate data flows through object storage)\n"
    )
    return header + render_side_by_side(hybrid, serverless)


def main() -> None:  # pragma: no cover - CLI shim
    print(render_figure1())


if __name__ == "__main__":  # pragma: no cover
    main()
