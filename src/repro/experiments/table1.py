"""Table 1 regenerator (thin wrapper over :mod:`repro.core.experiment`)."""

from __future__ import annotations

from repro.core.calibration import ExperimentConfig
from repro.core.experiment import Table1Result, run_table1


def regenerate_table1(
    logical_scale: float = 256.0,
    seed: int = 2021,
    parallelism: int = 8,
    verify: bool = False,
) -> Table1Result:
    """Run both configurations with the calibrated defaults."""
    config = ExperimentConfig(
        logical_scale=logical_scale, seed=seed, parallelism=parallelism
    )
    return run_table1(config, verify=verify)


def main() -> None:  # pragma: no cover - CLI shim
    result = regenerate_table1()
    print(result.to_table())
    print()
    print("Per-stage breakdown (purely serverless):")
    print(result.serverless.workflow.tracker.render())
    print()
    print("Per-stage breakdown (VM-supported):")
    print(result.vm.workflow.tracker.render())


if __name__ == "__main__":  # pragma: no cover
    main()
