"""Command-line entry point for the experiment regenerators.

Usage::

    repro-experiments table1 [--scale 256] [--seed 2021]
    repro-experiments figure1
    repro-experiments sweep-workers
    repro-experiments sweep-size
    repro-experiments sweep-storage
    repro-experiments sweep-startup
    repro-experiments sweep-codec
    repro-experiments sweep-memory
    repro-experiments sweep-exchange
    repro-experiments sweep-relay-shards
    repro-experiments sweep-streaming
    repro-experiments sweep-skew
    repro-experiments sweep-online
    repro-experiments sweep-faults
    repro-experiments sweep-speculation
    repro-experiments sweep-exchange-faults
    repro-experiments sweep-exchange-speculation
    repro-experiments sweep-tuner
    repro-experiments sweep-multicloud
    repro-experiments sweep-service
    repro-experiments exchange
    repro-experiments trace [--out s8_trace.json]
    repro-experiments metrics [--out s8_metrics.txt]

The last two run one adaptive (``auto_sort``) pipeline with the
unified observability plane enabled and export it: ``trace`` writes
Perfetto-loadable Chrome trace-event JSON (open at ui.perfetto.dev),
``metrics`` writes a Prometheus text-format snapshot of the substrate
metrics registry plus the run's SLO verdicts.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.calibration import ExperimentConfig
from repro.experiments import sweeps
from repro.experiments.figure1 import render_figure1
from repro.experiments.format import format_rows
from repro.experiments.table1 import regenerate_table1


def _config(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(logical_scale=args.scale, seed=args.seed)


def _print_rows(title: str, rows: list[dict]) -> None:
    if not rows:
        print(f"{title}: no rows")
        return
    headers = list(rows[0].keys())
    print(format_rows(headers, [[row[h] for h in headers] for row in rows], title))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables/figures and the ablation sweeps.",
    )
    parser.add_argument("--scale", type=float, default=256.0,
                        help="logical-to-real byte scale (default 256)")
    parser.add_argument("--seed", type=int, default=2021)
    sub = parser.add_subparsers(dest="command", required=True)
    for name in (
        "table1",
        "figure1",
        "sweep-workers",
        "sweep-size",
        "sweep-storage",
        "sweep-startup",
        "sweep-codec",
        "sweep-memory",
        "sweep-io",
        "sweep-exchange",
        "sweep-relay-shards",
        "sweep-streaming",
        "sweep-skew",
        "sweep-online",
        "sweep-faults",
        "sweep-speculation",
        "sweep-exchange-faults",
        "sweep-exchange-speculation",
        "sweep-tuner",
        "sweep-multicloud",
        "sweep-service",
        "exchange",
    ):
        sub.add_parser(name)
    trace_parser = sub.add_parser(
        "trace", help="export one traced auto_sort run as Chrome trace JSON"
    )
    trace_parser.add_argument("--out", default="s8_trace.json")
    metrics_parser = sub.add_parser(
        "metrics", help="export one run's metrics registry as Prometheus text"
    )
    metrics_parser.add_argument("--out", default="s8_metrics.txt")
    replay_parser = sub.add_parser(
        "replay-verify",
        help="re-derive a RunManifest's hash chain offline and PASS/FAIL it",
    )
    replay_parser.add_argument(
        "--manifest", required=True,
        help="path to a RunManifest JSON file (e.g. the S16 artifact)",
    )
    args = parser.parse_args(argv)

    if args.command == "table1":
        result = regenerate_table1(logical_scale=args.scale, seed=args.seed)
        print(result.to_table())
        print()
        print(result.serverless.workflow.tracker.render())
        print()
        print(result.vm.workflow.tracker.render())
    elif args.command == "figure1":
        print(render_figure1())
    elif args.command == "sweep-workers":
        _print_rows("S1: shuffle worker-count sweep", sweeps.sweep_workers(_config(args)))
    elif args.command == "sweep-size":
        _print_rows("S2: data-size scaling", sweeps.sweep_size(_config(args)))
    elif args.command == "sweep-storage":
        _print_rows(
            "S3: object-store ops/s sensitivity", sweeps.sweep_storage_ops(_config(args))
        )
    elif args.command == "sweep-startup":
        _print_rows("S4: startup-time sensitivity", sweeps.sweep_startup(_config(args)))
    elif args.command == "sweep-codec":
        _print_rows("S5: codec ratio vs gzip", sweeps.sweep_codec(seed=args.seed))
    elif args.command == "sweep-memory":
        _print_rows("S6: function-memory sweep", sweeps.sweep_memory(_config(args)))
    elif args.command == "sweep-io":
        _print_rows(
            "S7: write-combining ablation", sweeps.sweep_io_ablation(_config(args))
        )
    elif args.command == "sweep-exchange":
        rows = sweeps.sweep_exchange(_config(args))
        reports = [row.pop("_report", None) for row in rows]
        _print_rows("S8: exchange-substrate worker sweep", rows)
        last_report = next((r for r in reversed(reports) if r), None)
        if last_report:
            print()
            print(last_report)
    elif args.command == "sweep-relay-shards":
        _print_rows(
            "S8b: relay shard-count sweep",
            sweeps.sweep_relay_shards(_config(args)),
        )
    elif args.command == "sweep-streaming":
        _print_rows(
            "S10: streaming vs staged exchange",
            sweeps.sweep_streaming(_config(args)),
        )
    elif args.command == "sweep-skew":
        _print_rows(
            "S11: skew-aware shuffle (CRC vs rebalanced fleet routing)",
            sweeps.sweep_skew(_config(args)),
        )
    elif args.command == "sweep-online":
        rows = sweeps.sweep_online(_config(args))
        timeline: list[str] = []
        for row in rows:
            lines = row.pop("_timeline", None)
            if lines and not timeline:
                timeline = lines
        _print_rows(
            "S12: online mid-stream re-selection vs static decisions", rows
        )
        print()
        print("online decision timeline:")
        for line in timeline:
            print(f"  {line}")
    elif args.command == "sweep-faults":
        _print_rows(
            "S9a: crash-rate overhead", sweeps.sweep_fault_rate(_config(args))
        )
    elif args.command == "sweep-speculation":
        _print_rows(
            "S9b: straggler mitigation", sweeps.sweep_speculation(_config(args))
        )
    elif args.command == "sweep-exchange-faults":
        _print_rows(
            "S9c: crash injection by exchange substrate",
            sweeps.sweep_exchange_faults(_config(args)),
        )
    elif args.command == "sweep-exchange-speculation":
        _print_rows(
            "S9d: speculation by exchange substrate",
            sweeps.sweep_exchange_speculation(_config(args)),
        )
    elif args.command == "sweep-tuner":
        _print_rows(
            "S10a: on-the-fly tuning vs static calibration",
            sweeps.sweep_tuner(_config(args)),
        )
    elif args.command == "sweep-multicloud":
        _print_rows(
            "S11: multi-cloud portability", sweeps.sweep_multicloud(_config(args))
        )
    elif args.command == "sweep-service":
        _print_rows(
            "S13: shared exchange service vs provision-per-job",
            sweeps.sweep_service(_config(args)),
        )
    elif args.command == "exchange":
        from repro.core.experiment import run_exchange_comparison

        print(run_exchange_comparison(_config(args)).to_table())
    elif args.command == "trace":
        from repro.obs.cli import export_trace

        summary = export_trace(args.out, logical_scale=args.scale, seed=args.seed)
        if summary["problems"]:
            print("trace problems:")
            for problem in summary["problems"]:
                print(f"  {problem}")
            return 1
        print(
            f"wrote {summary['path']}: {summary['spans']} spans, "
            f"{summary['timeline_records']} timeline records "
            f"(latency {summary['latency_s']:.2f}s, "
            f"${summary['cost_usd']:.6f}); open at ui.perfetto.dev"
        )
    elif args.command == "replay-verify":
        from repro.shuffle.content import verify_manifest_file

        problems = verify_manifest_file(args.manifest)
        if problems:
            print(f"FAIL: {args.manifest}")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print(f"PASS: {args.manifest} (hash chain verified)")
    elif args.command == "metrics":
        from repro.obs.cli import export_metrics

        summary = export_metrics(args.out, logical_scale=args.scale, seed=args.seed)
        print(
            f"wrote {summary['path']}: {summary['metrics']} metrics "
            f"(latency {summary['latency_s']:.2f}s, "
            f"${summary['cost_usd']:.6f})"
        )
        print(summary["slo"])
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
