"""Tiny table formatter shared by the experiment regenerators."""

from __future__ import annotations

import typing as t


def format_rows(
    headers: list[str],
    rows: list[t.Sequence[t.Any]],
    title: str | None = None,
) -> str:
    """Fixed-width text table (right-aligned numbers, left-aligned text)."""
    rendered: list[list[str]] = []
    for row in rows:
        rendered.append(
            [
                f"{value:.4g}" if isinstance(value, float) else str(value)
                for value in row
            ]
        )
    widths = [
        max(len(headers[column]), *(len(row[column]) for row in rendered))
        if rendered
        else len(headers[column])
        for column in range(len(headers))
    ]

    def fmt(cells: t.Sequence[str], pad: str = " ") -> str:
        return "  ".join(cell.rjust(width, pad) for cell, width in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(fmt(headers))
    out.append("  ".join("-" * width for width in widths))
    out.extend(fmt(row) for row in rendered)
    return "\n".join(out)
