"""Regenerators for the paper's evaluation artifacts.

* :mod:`repro.experiments.table1` — Table 1 (latency/cost, both configs);
* :mod:`repro.experiments.figure1` — Figure 1 (architecture diagrams);
* :mod:`repro.experiments.sweeps` — supplementary sweeps S1-S11;
* :mod:`repro.experiments.cli` — ``repro-experiments`` command.
"""

from repro.experiments.figure1 import render_figure1
from repro.experiments.format import format_rows
from repro.experiments.sweeps import (
    sweep_codec,
    sweep_exchange,
    sweep_exchange_faults,
    sweep_exchange_pipelines,
    sweep_exchange_speculation,
    sweep_fault_rate,
    sweep_io_ablation,
    sweep_memory,
    sweep_multicloud,
    sweep_relay_shards,
    sweep_size,
    sweep_skew,
    sweep_speculation,
    sweep_startup,
    sweep_storage_ops,
    sweep_streaming,
    sweep_tuner,
    sweep_workers,
)
from repro.experiments.table1 import regenerate_table1

__all__ = [
    "format_rows",
    "regenerate_table1",
    "render_figure1",
    "sweep_codec",
    "sweep_exchange",
    "sweep_exchange_faults",
    "sweep_exchange_pipelines",
    "sweep_exchange_speculation",
    "sweep_fault_rate",
    "sweep_io_ablation",
    "sweep_memory",
    "sweep_multicloud",
    "sweep_relay_shards",
    "sweep_size",
    "sweep_skew",
    "sweep_speculation",
    "sweep_startup",
    "sweep_storage_ops",
    "sweep_streaming",
    "sweep_tuner",
    "sweep_workers",
]
