"""Declarative DAG pipelines with cost tracking over the simulated cloud."""

from repro.workflows.dag import StageSpec, WorkflowDag
from repro.workflows.engine import (
    StageContext,
    StageImpl,
    WorkflowEngine,
    WorkflowResult,
    register_stage_kind,
    registered_kinds,
    stage_kind,
)
from repro.workflows.gantt import (
    GanttSpan,
    render_gantt,
    spans_from_timeline,
    spans_from_tracker,
    workflow_gantt,
)
from repro.workflows.render import (
    register_substrate_label,
    render_dag,
    render_side_by_side,
    substrate_label,
)
from repro.workflows.spec import dump_spec, load_spec_file, parse_spec
from repro.workflows.tracker import JobTracker, StageReport

__all__ = [
    "GanttSpan",
    "JobTracker",
    "StageContext",
    "StageImpl",
    "StageReport",
    "StageSpec",
    "WorkflowDag",
    "WorkflowEngine",
    "WorkflowResult",
    "dump_spec",
    "load_spec_file",
    "parse_spec",
    "register_stage_kind",
    "register_substrate_label",
    "registered_kinds",
    "render_dag",
    "render_gantt",
    "spans_from_timeline",
    "spans_from_tracker",
    "workflow_gantt",
    "render_side_by_side",
    "stage_kind",
    "substrate_label",
]
