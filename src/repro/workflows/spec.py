"""Declarative JSON pipeline specifications.

The paper: "we augmented Lithops with a module to create pipelines from
JSON configuration files".  This module is that feature: a JSON document
describes the DAG, the engine executes it.

Schema::

    {
      "name": "methcomp-pure-serverless",
      "bucket": "pipeline",
      "stages": [
        {"name": "ingest", "kind": "methylome_dataset",
         "params": {"size_gb": 3.5, "seed": 7}},
        {"name": "sort", "kind": "shuffle_sort", "after": ["ingest"],
         "params": {"workers": 8}},
        {"name": "encode", "kind": "methcomp_encode", "after": ["sort"]}
      ]
    }
"""

from __future__ import annotations

import json
import typing as t

from repro.errors import ConfigError
from repro.workflows.dag import StageSpec, WorkflowDag

_ALLOWED_TOP_KEYS = {"name", "bucket", "stages"}
_ALLOWED_STAGE_KEYS = {"name", "kind", "after", "params"}


def parse_spec(document: str | bytes | dict) -> WorkflowDag:
    """Parse and validate a JSON workflow document into a DAG."""
    if isinstance(document, (str, bytes)):
        try:
            payload = json.loads(document)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid workflow JSON: {exc}") from exc
    else:
        payload = document
    if not isinstance(payload, dict):
        raise ConfigError("workflow document must be a JSON object")

    unknown = set(payload) - _ALLOWED_TOP_KEYS
    if unknown:
        raise ConfigError(f"unknown workflow keys: {sorted(unknown)}")
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        raise ConfigError("workflow 'name' must be a non-empty string")
    bucket = payload.get("bucket", "pipeline")
    if not isinstance(bucket, str) or not bucket:
        raise ConfigError("workflow 'bucket' must be a non-empty string")
    raw_stages = payload.get("stages")
    if not isinstance(raw_stages, list) or not raw_stages:
        raise ConfigError("workflow 'stages' must be a non-empty list")

    stages = []
    for index, raw in enumerate(raw_stages):
        if not isinstance(raw, dict):
            raise ConfigError(f"stage #{index} must be an object")
        unknown = set(raw) - _ALLOWED_STAGE_KEYS
        if unknown:
            raise ConfigError(f"stage #{index}: unknown keys {sorted(unknown)}")
        stage_name = raw.get("name")
        if not isinstance(stage_name, str) or not stage_name:
            raise ConfigError(f"stage #{index}: 'name' must be a non-empty string")
        kind = raw.get("kind")
        if not isinstance(kind, str) or not kind:
            raise ConfigError(f"stage {stage_name!r}: 'kind' must be a string")
        after = raw.get("after", [])
        if not isinstance(after, list) or not all(isinstance(a, str) for a in after):
            raise ConfigError(f"stage {stage_name!r}: 'after' must be a string list")
        params = raw.get("params", {})
        if not isinstance(params, dict):
            raise ConfigError(f"stage {stage_name!r}: 'params' must be an object")
        stages.append(
            StageSpec(name=stage_name, kind=kind, after=tuple(after), params=params)
        )
    return WorkflowDag(name=name, stages=stages, bucket=bucket)


def load_spec_file(path: str) -> WorkflowDag:
    """Parse a workflow spec from a JSON file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_spec(handle.read())


def dump_spec(dag: WorkflowDag) -> str:
    """Serialize a DAG back to canonical JSON (round-trippable)."""
    return json.dumps(
        {
            "name": dag.name,
            "bucket": dag.bucket,
            "stages": [
                {
                    "name": stage.name,
                    "kind": stage.kind,
                    "after": list(stage.after),
                    "params": stage.params,
                }
                for stage in dag.stages
            ],
        },
        indent=2,
    )


def spec_roundtrip(document: str | bytes | dict) -> t.Any:
    """Parse then re-dump (normalization helper used in tests)."""
    return json.loads(dump_spec(parse_spec(document)))
