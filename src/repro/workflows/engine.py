"""Workflow execution engine.

Runs a :class:`~repro.workflows.dag.WorkflowDag` on a simulated
:class:`~repro.cloud.environment.Cloud`.  Stage *kinds* are resolved
against a registry of implementations (see
:func:`register_stage_kind`); the library pre-registers the kinds the
METHCOMP pipelines need in :mod:`repro.core.stages`.

Stages execute in deterministic topological order, one at a time — the
Lithops model, where parallelism lives *inside* a stage (its map jobs),
not across stages.  This also makes the per-stage cost breakdown exact:
every charge recorded while a stage runs belongs to that stage.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.cloud.environment import Cloud
from repro.errors import WorkflowError
from repro.sim import SimEvent
from repro.workflows.dag import StageSpec, WorkflowDag
from repro.workflows.tracker import JobTracker

#: Stage implementation: generator taking (StageContext, inputs dict)
#: and returning the stage's artifact (any picklable value).
StageImpl = t.Callable[["StageContext", dict[str, t.Any]], t.Generator]

_STAGE_KINDS: dict[str, StageImpl] = {}


def register_stage_kind(kind: str, impl: StageImpl, replace: bool = False) -> None:
    """Register an implementation for stage ``kind``."""
    if kind in _STAGE_KINDS and not replace:
        raise WorkflowError(f"stage kind already registered: {kind!r}")
    _STAGE_KINDS[kind] = impl


def stage_kind(kind: str) -> StageImpl:
    """Look up a stage implementation."""
    try:
        return _STAGE_KINDS[kind]
    except KeyError:
        raise WorkflowError(
            f"unknown stage kind {kind!r}; registered: {sorted(_STAGE_KINDS)}"
        ) from None


def registered_kinds() -> list[str]:
    return sorted(_STAGE_KINDS)


class StageContext:
    """What a stage implementation may touch."""

    def __init__(self, engine: "WorkflowEngine", spec: StageSpec):
        self.engine = engine
        self.cloud: Cloud = engine.cloud
        self.sim = engine.cloud.sim
        self.bucket = engine.dag.bucket
        self.spec = spec
        self.params = dict(spec.params)

    def param(self, key: str, default: t.Any = None, required: bool = False) -> t.Any:
        if required and key not in self.params:
            raise WorkflowError(
                f"stage {self.spec.name!r} requires parameter {key!r}"
            )
        return self.params.get(key, default)


@dataclasses.dataclass(slots=True)
class WorkflowResult:
    """Outcome of one workflow run."""

    name: str
    makespan_s: float
    cost_usd: float
    artifacts: dict[str, t.Any]
    tracker: JobTracker

    def stage_duration(self, name: str) -> float:
        duration = self.tracker.reports[name].duration_s
        if duration is None:
            raise WorkflowError(f"stage {name!r} did not finish")
        return duration


class WorkflowEngine:
    """Executes one DAG on one simulated cloud region."""

    def __init__(
        self,
        cloud: Cloud,
        dag: WorkflowDag,
        meter_tags: dict[str, str] | None = None,
    ):
        self.cloud = cloud
        self.dag = dag
        #: Ambient attribution tags stamped on every cost line of the
        #: whole run (tenant, experiment id, ...).  Pushed around the
        #: workflow body, so a key reused by a stage — or by a nested
        #: engine on the same region — shadows the outer value for its
        #: duration and restores it afterwards.
        self.meter_tags = dict(meter_tags or {})
        self.tracker = JobTracker(dag.name, meter=cloud.meter)
        for stage in dag.topological_order():
            stage_kind(stage.kind)  # fail fast on unknown kinds
            self.tracker.stage_registered(stage.name, stage.kind)

    # ------------------------------------------------------------------
    def run(self) -> SimEvent:
        """Start the workflow; the event carries a :class:`WorkflowResult`."""
        return self.cloud.sim.process(
            self._run(), name=f"workflow.{self.dag.name}"
        ).completion

    def execute(self) -> WorkflowResult:
        """Convenience: run the simulation to workflow completion."""
        return t.cast(WorkflowResult, self.cloud.sim.run(until=self.run()))

    # ------------------------------------------------------------------
    def _run(self) -> t.Generator:
        for key, value in self.meter_tags.items():
            self.cloud.meter.push_tag(key, value)
        try:
            return (yield from self._run_body())
        finally:
            for key in reversed(list(self.meter_tags)):
                self.cloud.meter.pop_tag(key)

    def _run_body(self) -> t.Generator:
        sim = self.cloud.sim
        started_at = sim.now
        self.cloud.store.ensure_bucket(self.dag.bucket)
        artifacts: dict[str, t.Any] = {}
        run_span = sim.tracer.span(
            f"workflow:{self.dag.name}", category="workflow",
            stages=len(self.dag.stages),
        )
        with run_span:
            for spec in self.dag.topological_order():
                impl = stage_kind(spec.kind)
                context = StageContext(self, spec)
                inputs = {name: artifacts[name] for name in spec.after}
                cost_marker = self.cloud.meter.snapshot()
                self.cloud.meter.push_tag("stage", spec.name)
                self.tracker.stage_started(spec.name, sim.now)
                stage_span = sim.tracer.span(
                    f"stage:{spec.name}", category="stage",
                    parent=run_span, kind=spec.kind,
                )
                try:
                    with stage_span:
                        artifact = yield from impl(context, inputs)
                except Exception as exc:
                    self.tracker.stage_failed(spec.name, sim.now, exc)
                    self.cloud.meter.pop_tag("stage")
                    raise
                self.cloud.meter.pop_tag("stage")
                stage_cost = self.cloud.meter.since(cost_marker).total_usd
                detail = artifact if isinstance(artifact, dict) else {}
                self.tracker.stage_finished(
                    spec.name,
                    sim.now,
                    stage_cost,
                    detail={k: v for k, v in detail.items() if isinstance(v, (int, float, str))},
                )
                artifacts[spec.name] = artifact
        return WorkflowResult(
            name=self.dag.name,
            makespan_s=sim.now - started_at,
            cost_usd=self.tracker.total_cost_usd,
            artifacts=artifacts,
            tracker=self.tracker,
        )
