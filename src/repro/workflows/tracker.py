"""Job tracking with per-stage cost breakdown.

The paper's demo includes "a IPython interface for job tracking in real
time, which displays the workflow progress and breaks the cost down at
each stage".  This is the headless equivalent: the engine feeds the
tracker stage events; the tracker renders progress tables and exposes
the same numbers programmatically.
"""

from __future__ import annotations

import dataclasses
import typing as t


@dataclasses.dataclass(slots=True)
class StageReport:
    """Execution record of one stage."""

    name: str
    kind: str
    status: str = "pending"  # pending | running | done | failed
    started_at: float | None = None
    finished_at: float | None = None
    cost_usd: float = 0.0
    detail: dict[str, t.Any] = dataclasses.field(default_factory=dict)

    @property
    def duration_s(self) -> float | None:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at


class JobTracker:
    """Collects stage progress and renders it for humans."""

    def __init__(self, workflow_name: str):
        self.workflow_name = workflow_name
        self.reports: dict[str, StageReport] = {}
        self._order: list[str] = []
        self.log: list[str] = []

    # ------------------------------------------------------------------
    # engine-facing API
    # ------------------------------------------------------------------
    def stage_registered(self, name: str, kind: str) -> None:
        self.reports[name] = StageReport(name=name, kind=kind)
        self._order.append(name)

    def stage_started(self, name: str, time: float) -> None:
        report = self.reports[name]
        report.status = "running"
        report.started_at = time
        self.log.append(f"[{time:10.2f}s] {name}: started")

    def stage_finished(
        self,
        name: str,
        time: float,
        cost_usd: float,
        detail: dict[str, t.Any] | None = None,
    ) -> None:
        report = self.reports[name]
        report.status = "done"
        report.finished_at = time
        report.cost_usd = cost_usd
        if detail:
            report.detail.update(detail)
        self.log.append(
            f"[{time:10.2f}s] {name}: done "
            f"({report.duration_s:.2f}s, ${cost_usd:.6f})"
        )

    def stage_failed(self, name: str, time: float, error: BaseException) -> None:
        report = self.reports[name]
        report.status = "failed"
        report.finished_at = time
        self.log.append(f"[{time:10.2f}s] {name}: FAILED ({error!r})")

    # ------------------------------------------------------------------
    # aggregate views
    # ------------------------------------------------------------------
    @property
    def total_cost_usd(self) -> float:
        return sum(report.cost_usd for report in self.reports.values())

    @property
    def done(self) -> bool:
        return all(report.status == "done" for report in self.reports.values())

    def cost_breakdown(self) -> dict[str, float]:
        """Stage name → dollars, in execution order."""
        return {name: self.reports[name].cost_usd for name in self._order}

    def render(self) -> str:
        """Progress table, one row per stage."""
        rows = [
            f"Workflow: {self.workflow_name}",
            f"{'stage':<22} {'kind':<18} {'status':<8} "
            f"{'duration':>10} {'cost ($)':>12}",
            "-" * 74,
        ]
        for name in self._order:
            report = self.reports[name]
            duration = (
                f"{report.duration_s:.2f}s" if report.duration_s is not None else "-"
            )
            rows.append(
                f"{report.name:<22} {report.kind:<18} {report.status:<8} "
                f"{duration:>10} {report.cost_usd:>12.6f}"
            )
        rows.append("-" * 74)
        rows.append(f"{'TOTAL':<50} {self.total_cost_usd:>23.6f}")
        return "\n".join(rows)
