"""Job tracking with per-stage cost breakdown.

The paper's demo includes "a IPython interface for job tracking in real
time, which displays the workflow progress and breaks the cost down at
each stage".  This is the headless equivalent: the engine feeds the
tracker stage events; the tracker renders progress tables and exposes
the same numbers programmatically.

Dollars come from the :class:`~repro.cloud.billing.CostMeter` when the
engine hands one over: the engine tags every line it records with
``stage=<name>``, so :meth:`JobTracker.cost_breakdown` reads
``meter.total_by_tag("stage")`` instead of trusting the snapshot-delta
captured at stage exit.  The two disagree exactly when a substrate
bills after the stage popped its tag (a relay fleet terminating on a
later stage's clock): the tag travels with the line, the snapshot
window does not.
"""

from __future__ import annotations

import dataclasses
import typing as t


@dataclasses.dataclass(slots=True)
class StageReport:
    """Execution record of one stage."""

    name: str
    kind: str
    status: str = "pending"  # pending | running | done | failed
    started_at: float | None = None
    finished_at: float | None = None
    cost_usd: float = 0.0
    detail: dict[str, t.Any] = dataclasses.field(default_factory=dict)

    @property
    def duration_s(self) -> float | None:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def drift(self) -> float | None:
        """Actual over predicted seconds for sort stages (None otherwise).

        1.0 is a perfect prediction; the S11 SLO gate allows a factor
        of two either way.
        """
        predicted = self.detail.get("predicted_s")
        actual = self.detail.get("actual_s")
        if not predicted or actual is None:
            return None
        return actual / predicted


class JobTracker:
    """Collects stage progress and renders it for humans."""

    def __init__(self, workflow_name: str, meter=None):
        self.workflow_name = workflow_name
        #: Optional :class:`~repro.cloud.billing.CostMeter` whose
        #: ``stage``-tagged lines are the authoritative dollars.
        self.meter = meter
        self.reports: dict[str, StageReport] = {}
        self._order: list[str] = []
        self.log: list[str] = []

    # ------------------------------------------------------------------
    # engine-facing API
    # ------------------------------------------------------------------
    def stage_registered(self, name: str, kind: str) -> None:
        self.reports[name] = StageReport(name=name, kind=kind)
        self._order.append(name)

    def stage_started(self, name: str, time: float) -> None:
        report = self.reports[name]
        report.status = "running"
        report.started_at = time
        self.log.append(f"[{time:10.2f}s] {name}: started")

    def stage_finished(
        self,
        name: str,
        time: float,
        cost_usd: float,
        detail: dict[str, t.Any] | None = None,
    ) -> None:
        report = self.reports[name]
        report.status = "done"
        report.finished_at = time
        report.cost_usd = cost_usd
        if detail:
            report.detail.update(detail)
        self.log.append(
            f"[{time:10.2f}s] {name}: done "
            f"({report.duration_s:.2f}s, ${cost_usd:.6f})"
        )

    def stage_failed(self, name: str, time: float, error: BaseException) -> None:
        report = self.reports[name]
        report.status = "failed"
        report.finished_at = time
        self.log.append(f"[{time:10.2f}s] {name}: FAILED ({error!r})")

    # ------------------------------------------------------------------
    # aggregate views
    # ------------------------------------------------------------------
    @property
    def total_cost_usd(self) -> float:
        return sum(self.cost_breakdown().values())

    @property
    def done(self) -> bool:
        return all(report.status == "done" for report in self.reports.values())

    def cost_breakdown(self) -> dict[str, float]:
        """Stage name → dollars, in execution order.

        Tag-attributed off the meter when one is attached (charges
        landing after stage exit — terminate-time instance lines —
        still reach their stage); the stage-exit snapshot deltas
        otherwise.
        """
        if self.meter is not None:
            by_tag = self.meter.total_by_tag("stage")
            return {name: by_tag.get(name, 0.0) for name in self._order}
        return {name: self.reports[name].cost_usd for name in self._order}

    def render(self) -> str:
        """Progress table: one row per stage, drift on sort stages."""
        costs = self.cost_breakdown()
        rows = [
            f"Workflow: {self.workflow_name}",
            f"{'stage':<22} {'kind':<18} {'status':<8} "
            f"{'duration':>10} {'cost ($)':>12} {'drift':>7}",
            "-" * 82,
        ]
        for name in self._order:
            report = self.reports[name]
            duration = (
                f"{report.duration_s:.2f}s" if report.duration_s is not None else "-"
            )
            drift = f"{report.drift:.2f}x" if report.drift is not None else "-"
            rows.append(
                f"{report.name:<22} {report.kind:<18} {report.status:<8} "
                f"{duration:>10} {costs[name]:>12.6f} {drift:>7}"
            )
        rows.append("-" * 82)
        rows.append(f"{'TOTAL':<50} {self.total_cost_usd:>23.6f}")
        return "\n".join(rows)
