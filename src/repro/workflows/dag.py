"""DAG model for declarative pipelines.

A workflow is a directed acyclic graph of named stages.  Nodes carry a
*kind* (resolved against the stage-kind registry at execution time) and
a parameter dict; edges are data dependencies — a stage receives the
artifacts of the stages it depends on.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import WorkflowError


@dataclasses.dataclass(frozen=True, slots=True)
class StageSpec:
    """One node of the workflow DAG."""

    name: str
    kind: str
    after: tuple[str, ...] = ()
    params: dict[str, t.Any] = dataclasses.field(default_factory=dict)


class WorkflowDag:
    """Validated DAG of :class:`StageSpec` nodes."""

    def __init__(self, name: str, stages: t.Sequence[StageSpec], bucket: str = "pipeline"):
        self.name = name
        self.bucket = bucket
        self.stages = list(stages)
        self._by_name = {stage.name: stage for stage in self.stages}
        self._validate()
        self._order = self._topological_order()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self.stages:
            raise WorkflowError(f"workflow {self.name!r} has no stages")
        if len(self._by_name) != len(self.stages):
            seen: set[str] = set()
            for stage in self.stages:
                if stage.name in seen:
                    raise WorkflowError(f"duplicate stage name: {stage.name!r}")
                seen.add(stage.name)
        for stage in self.stages:
            for dependency in stage.after:
                if dependency not in self._by_name:
                    raise WorkflowError(
                        f"stage {stage.name!r} depends on unknown stage "
                        f"{dependency!r}"
                    )
                if dependency == stage.name:
                    raise WorkflowError(f"stage {stage.name!r} depends on itself")

    def _topological_order(self) -> list[StageSpec]:
        in_degree = {stage.name: len(stage.after) for stage in self.stages}
        children: dict[str, list[str]] = {stage.name: [] for stage in self.stages}
        for stage in self.stages:
            for dependency in stage.after:
                children[dependency].append(stage.name)
        # Kahn's algorithm, stable on declaration order for determinism.
        ready = [stage.name for stage in self.stages if in_degree[stage.name] == 0]
        order: list[StageSpec] = []
        while ready:
            name = ready.pop(0)
            order.append(self._by_name[name])
            for child in children[name]:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    ready.append(child)
        if len(order) != len(self.stages):
            cyclic = sorted(name for name, degree in in_degree.items() if degree > 0)
            raise WorkflowError(f"workflow {self.name!r} has a cycle among {cyclic}")
        return order

    # ------------------------------------------------------------------
    def stage(self, name: str) -> StageSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise WorkflowError(f"unknown stage: {name!r}") from None

    def topological_order(self) -> list[StageSpec]:
        """Stages in a deterministic dependency-respecting order."""
        return list(self._order)

    def roots(self) -> list[StageSpec]:
        return [stage for stage in self.stages if not stage.after]

    def leaves(self) -> list[StageSpec]:
        referenced = {dep for stage in self.stages for dep in stage.after}
        return [stage for stage in self.stages if stage.name not in referenced]

    def __len__(self) -> int:
        return len(self.stages)
