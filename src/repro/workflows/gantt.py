"""ASCII Gantt charts of simulated pipeline executions.

The paper demos an IPython job-tracking interface showing workflow
progress in real time.  :mod:`repro.workflows.tracker` covers the
numbers; this module covers the *picture*: where the time went, drawn
from the simulation timeline —

* one bar per function activation (cold starts marked), so a stage's
  fan-out, stragglers and speculation duplicates are visible at a
  glance;
* one bar per VM and per cache cluster, making the hybrid pipeline's
  provisioning penalty impossible to miss;
* one bar per shuffle *wave* (map / reduce), so the streaming mode's
  wave overlap — and the staged mode's hard barrier — are visible
  directly;
* one bar per workflow stage (from the tracker), giving the chart its
  coarse structure.

Requires the simulator to run with ``trace=True`` (timeline recording is
off by default for speed).
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.sim.timeline import Timeline

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workflows.tracker import JobTracker


@dataclasses.dataclass(frozen=True, slots=True)
class GanttSpan:
    """One horizontal bar on the chart."""

    label: str
    start: float
    end: float
    kind: str  # "stage" | "function" | "function-cold" | "vm" | "cache" | "wave"

    @property
    def duration(self) -> float:
        return self.end - self.start


#: Bar glyph per span kind (cold activations render distinctly).
_GLYPHS = {
    "stage": "=",
    "function": "#",
    "function-cold": "#",
    "vm": "%",
    "cache": "~",
    "wave": "+",
}


def spans_from_timeline(timeline: Timeline) -> list[GanttSpan]:
    """Extract activation/VM/cache spans from a traced simulation."""
    spans: list[GanttSpan] = []

    starts: dict[str, tuple[float, bool]] = {}
    for record in timeline.filter("faas", "activation_start"):
        starts[record.fields["activation"]] = (record.time, record.fields["cold"])
    for record in timeline.filter("faas", "activation_end"):
        activation = record.fields["activation"]
        if activation not in starts:
            continue  # end without a start: started before tracing began
        start, cold = starts.pop(activation)
        spans.append(
            GanttSpan(
                label=f"{record.fields['function']}.{activation}",
                start=start,
                end=record.time,
                kind="function-cold" if cold else "function",
            )
        )

    vm_starts = {
        record.fields["vm"]: record.time
        for record in timeline.filter("vm", "provision")
    }
    for record in timeline.filter("vm", "terminate"):
        vm_id = record.fields["vm"]
        if vm_id in vm_starts:
            spans.append(
                GanttSpan(
                    label=f"{vm_id} ({record.fields.get('type', '?')})",
                    start=vm_starts.pop(vm_id),
                    end=record.time,
                    kind="vm",
                )
            )

    wave_starts = {
        (record.fields["job"], record.fields["wave"]): record.time
        for record in timeline.filter("shuffle", "wave_start")
    }
    for record in timeline.filter("shuffle", "wave_end"):
        wave_key = (record.fields["job"], record.fields["wave"])
        start = wave_starts.pop(wave_key, None)
        if start is not None:
            spans.append(
                GanttSpan(
                    label=f"{wave_key[1]} wave [{wave_key[0]}]",
                    start=start,
                    end=record.time,
                    kind="wave",
                )
            )

    cache_starts = {
        record.fields["cluster"]: record.time
        for record in timeline.filter("memstore", "provision")
    }
    for record in timeline.filter("memstore", "terminate"):
        cluster = record.fields["cluster"]
        start = cache_starts.pop(cluster, None)
        if start is not None:
            spans.append(
                GanttSpan(
                    label=f"{cluster} ({record.fields.get('type', '?')})",
                    start=start,
                    end=record.time,
                    kind="cache",
                )
            )

    spans.sort(key=lambda span: (span.start, span.end, span.label))
    return spans


def spans_from_tracker(tracker: "JobTracker") -> list[GanttSpan]:
    """One span per finished workflow stage.

    A stage that recorded a substrate decision (the adaptive
    ``auto_sort`` kind) carries the chosen substrate in its label, so
    the Gantt chart shows *where* the exchange ran, not just when.
    """
    spans = []
    for report in tracker.reports.values():
        if report.started_at is None or report.finished_at is None:
            continue
        label = f"[{report.name}]"
        substrate = report.detail.get("substrate")
        if substrate:
            label = f"[{report.name}→{substrate}]"
            # A streaming-mode sort names its mode too, so the chart
            # says not just where the exchange ran but how.
            mode = report.detail.get(
                "substrate_mode", report.detail.get("mode")
            )
            if mode and mode != "staged":
                label = f"[{report.name}→{substrate} {mode}]"
        spans.append(
            GanttSpan(
                label=label,
                start=report.started_at,
                end=report.finished_at,
                kind="stage",
            )
        )
    spans.sort(key=lambda span: (span.start, span.end, span.label))
    return spans


def render_gantt(
    spans: t.Sequence[GanttSpan],
    width: int = 64,
    label_width: int = 28,
    max_rows: int = 48,
    title: str | None = None,
) -> str:
    """Draw spans as fixed-width ASCII rows on a shared time axis.

    When there are more spans than ``max_rows``, the busiest middle is
    elided (the first and last rows are the interesting ones: startup
    structure and stragglers).
    """
    if not spans:
        return "(no spans to draw)"
    t0 = min(span.start for span in spans)
    t1 = max(span.end for span in spans)
    extent = max(t1 - t0, 1e-9)

    def column(time: float) -> int:
        return int((time - t0) / extent * (width - 1))

    rows: list[str] = []
    if title:
        rows.append(title)
    rows.append(f"{'':<{label_width}} t={t0:.2f}s{'':<{width - 18}}t={t1:.2f}s")
    rows.append(f"{'':<{label_width}} {'-' * width}")

    visible = list(spans)
    elided = 0
    if len(visible) > max_rows:
        head = max_rows // 2
        tail = max_rows - head
        elided = len(visible) - head - tail
        visible = visible[:head] + visible[-tail:]
        elide_at = head
    for index, span in enumerate(visible):
        if elided and index == elide_at:
            rows.append(
                f"{'':<{label_width}} ... {elided} more spans elided ..."
            )
        first = column(span.start)
        last = max(column(span.end), first)  # at least one cell
        glyph = _GLYPHS.get(span.kind, "#")
        bar = " " * first + glyph * (last - first + 1)
        label = span.label
        if len(label) > label_width:
            # Keep the tail: for activations the distinguishing part is
            # the call id at the end, not the runtime-name prefix.
            label = "…" + label[-(label_width - 1):]
        marker = "*" if span.kind == "function-cold" else " "
        rows.append(f"{label:<{label_width}}{marker}{bar:<{width}}")
    rows.append(f"{'':<{label_width}} {'-' * width}")
    rows.append(
        f"{'':<{label_width}} {len(spans)} spans; = stage, # function "
        "(* = cold start), % vm, ~ cache, + wave"
    )
    return "\n".join(rows)


def workflow_gantt(
    tracker: "JobTracker",
    timeline: Timeline,
    width: int = 64,
    max_rows: int = 48,
) -> str:
    """Stage bars interleaved with the activations/VMs/caches they ran."""
    spans = sorted(
        spans_from_tracker(tracker) + spans_from_timeline(timeline),
        key=lambda span: (span.start, span.kind != "stage", span.end),
    )
    return render_gantt(
        spans,
        width=width,
        max_rows=max_rows,
        title=f"Workflow timeline: {tracker.workflow_name}",
    )
