"""ASCII rendering of workflow DAGs (Figure 1 reproduction).

The paper's Figure 1 is an architecture diagram of the two METHCOMP
incarnations: purely serverless (A) and hybrid/VM-supported (B).  The
renderer draws any :class:`~repro.workflows.dag.WorkflowDag` as a
top-down ASCII diagram, annotating each stage with the substrate it
runs on — the textual equivalent of the figure.
"""

from __future__ import annotations

from repro.workflows.dag import WorkflowDag

#: stage kind → substrate label shown in the box.  Every registered
#: sort kind must have an entry here (regression-tested): a sort stage
#: falling back to the generic "cloud" label hides exactly the
#: substrate distinction Figure 1 exists to show.
_SUBSTRATE_LABELS = {
    "methylome_dataset": "object storage",
    "dataset_ref": "object storage",
    "shuffle_sort": "cloud functions",
    "vm_sort": "virtual machine",
    "cache_sort": "cloud functions + cache cluster",
    "relay_sort": "cloud functions + VM relay",
    "sharded_relay_sort": "cloud functions + VM relay fleet",
    "streaming_sort": "cloud functions + streaming exchange (pipelined waves)",
    "auto_sort": "cloud functions + adaptive exchange substrate",
    "online_sort": "cloud functions + online re-selecting exchange",
    "methcomp_encode": "cloud functions",
    "methcomp_verify": "cloud functions",
}


def substrate_label(kind: str) -> str:
    """Substrate annotation for a stage kind (extensible)."""
    return _SUBSTRATE_LABELS.get(kind, "cloud")


def register_substrate_label(kind: str, label: str) -> None:
    """Register the substrate annotation for a custom stage kind."""
    _SUBSTRATE_LABELS[kind] = label


def _box(lines: list[str]) -> list[str]:
    width = max(len(line) for line in lines)
    top = "+" + "-" * (width + 2) + "+"
    body = [f"| {line.ljust(width)} |" for line in lines]
    return [top, *body, top]


def render_dag(dag: WorkflowDag, title: str | None = None) -> str:
    """Draw the DAG top-down with substrate-annotated stage boxes.

    Data always flows through object storage between stages (the paper's
    data-passing mechanism), so edges are annotated with it.
    """
    out: list[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    order = dag.topological_order()
    for index, stage in enumerate(order):
        label = substrate_label(stage.kind)
        lines = [f"{stage.name}", f"kind: {stage.kind}", f"runs on: {label}"]
        interesting = {
            key: value
            for key, value in stage.params.items()
            if isinstance(value, (int, float, str))
        }
        if interesting:
            lines.append(
                "params: "
                + ", ".join(f"{key}={value}" for key, value in sorted(interesting.items()))
            )
        box = _box(lines)
        indent = "    "
        out.extend(indent + line for line in box)
        if index < len(order) - 1:
            out.append(indent + "        |")
            out.append(indent + "        |  (intermediate data via object storage)")
            out.append(indent + "        v")
    return "\n".join(out)


def render_side_by_side(left: str, right: str, gap: int = 6) -> str:
    """Join two rendered diagrams horizontally (Figure 1's A | B layout)."""
    left_lines = left.splitlines()
    right_lines = right.splitlines()
    height = max(len(left_lines), len(right_lines))
    left_lines += [""] * (height - len(left_lines))
    right_lines += [""] * (height - len(right_lines))
    width = max((len(line) for line in left.splitlines()), default=0)
    return "\n".join(
        f"{l.ljust(width + gap)}{r}" for l, r in zip(left_lines, right_lines)
    )
