"""Observability CLI helpers.

Back the ``repro-experiments trace`` and ``repro-experiments metrics``
subcommands: run one S8-style ``auto_sort`` pipeline with span tracing
and the legacy timeline both enabled, then export the run as a
Perfetto-loadable Chrome trace or a Prometheus text snapshot.  The same
helpers produce the CI trace artifact and the S15 bench inputs.

Kept separate from :mod:`repro.experiments.cli` so the exporters are
importable without argparse, and imported lazily there so ``repro.obs``
stays dependency-free for the simulator core.
"""

from __future__ import annotations

import typing as t

from repro.obs.export import write_chrome_trace, write_prometheus_text
from repro.obs.metrics import reset_registry
from repro.obs.slo import SloGate


def run_traced_pipeline(
    logical_scale: float = 256.0,
    seed: int = 2021,
    variant: str | None = None,
):
    """Run one pipeline with spans + timeline recording; return (run, cloud).

    The metrics registry is reset first so the snapshot describes this
    run alone.  Defaults to the adaptive (``auto_sort``) incarnation —
    the S8 shape: substrate decision, sort waves, encode stage.
    """
    from repro.cloud.environment import Cloud
    from repro.core.calibration import ExperimentConfig
    from repro.core.experiment import run_pipeline
    from repro.core.pipelines import AUTO_SUPPORTED
    from repro.sim import Simulator

    if variant is None:
        variant = AUTO_SUPPORTED
    config = ExperimentConfig(logical_scale=logical_scale, seed=seed)
    cloud = Cloud(
        Simulator(seed=config.seed, trace=True, spans=True),
        config.make_profile(),
    )
    reset_registry()
    run = run_pipeline(config, variant, cloud=cloud)
    return run, cloud


def export_trace(
    path: str, logical_scale: float = 256.0, seed: int = 2021
) -> dict[str, t.Any]:
    """Export one traced pipeline run as Chrome trace-event JSON."""
    run, cloud = run_traced_pipeline(logical_scale, seed)
    write_chrome_trace(path, cloud.sim.tracer, timeline=cloud.sim.timeline)
    return {
        "path": path,
        "spans": len(cloud.sim.tracer.spans),
        "timeline_records": len(cloud.sim.timeline.records),
        "problems": cloud.sim.tracer.validate(),
        "latency_s": run.latency_s,
        "cost_usd": run.cost_usd,
    }


def export_metrics(
    path: str, logical_scale: float = 256.0, seed: int = 2021
) -> dict[str, t.Any]:
    """Export one traced pipeline run's registry as Prometheus text.

    Also evaluates the run's SLO gate (prediction envelope on the sort
    stage) and reports its verdicts alongside the snapshot path.
    """
    from repro.obs.metrics import registry

    run, cloud = run_traced_pipeline(logical_scale, seed)
    write_prometheus_text(path, registry())
    gate = SloGate("pipeline")
    sort = run.workflow.tracker.reports.get("sort")
    if sort is not None:
        # A pinned-worker sort skips the planner (predicted_s=None);
        # the substrate decision's estimate is still a prediction.
        predicted = sort.detail.get("predicted_s") or sort.detail.get(
            "substrate_predicted_s"
        )
        gate.prediction_envelope(
            "sort-prediction",
            predicted,
            sort.detail.get("actual_s", sort.duration_s),
        )
    return {
        "path": path,
        "metrics": len(registry().names()),
        "slo": gate.describe(),
        "latency_s": run.latency_s,
        "cost_usd": run.cost_usd,
    }
