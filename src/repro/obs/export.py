"""Exporters: Chrome trace-event JSON (Perfetto) and Prometheus text.

``chrome_trace_events`` turns a :class:`~repro.obs.trace.Tracer`'s spans
into the Chrome trace-event format that https://ui.perfetto.dev loads
directly: one complete event (``ph: "X"``) per span, instant events
(``ph: "i"``) for span events, and thread-name metadata so each
worker/shard/tenant renders on its own track.  Timestamps are the
simulation clock in microseconds, so the Perfetto timeline reads in
simulated seconds.

The exporter also folds in the legacy surfaces (satellite 1): pass the
sim :class:`~repro.sim.timeline.Timeline` and its records — waves,
substrate switches, service scale events — appear as instants on
``timeline:<category>`` tracks in the same file.  Sweeps should read
spans/metrics rather than the raw ``Timeline``; direct ``Timeline``
reads are deprecated in favour of this exporter.

Output is deterministic: ids are counter-based, tracks are numbered in
order of first appearance, and span wall-clock self-measurements are
deliberately *not* exported.
"""

from __future__ import annotations

import json
import typing as t

from repro.obs.metrics import MetricsRegistry, registry as _default_registry
from repro.obs.trace import Tracer

_US = 1_000_000  # sim seconds -> trace microseconds


def _clean(attrs: dict[str, t.Any]) -> dict[str, t.Any]:
    """JSON-safe argument dict (Perfetto shows these in the side panel)."""
    out: dict[str, t.Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = str(value)
    return out


def chrome_trace_events(
    tracer: Tracer,
    timeline: t.Any | None = None,
    decision_timeline: t.Any | None = None,
) -> list[dict[str, t.Any]]:
    """Chrome trace-event list for a tracer (and optional sim Timeline).

    ``decision_timeline`` accepts a
    :class:`~repro.shuffle.adaptive.DecisionTimeline`; each decision
    point becomes a counter event (``ph: "C"``) on a ``decisions``
    track, so Perfetto renders the planner's monetized score, predicted
    latency, worker count, and cumulative switch count as step series
    over the run.
    """
    events: list[dict[str, t.Any]] = []
    tracks: dict[str, int] = {}

    def tid(track: str) -> int:
        if track not in tracks:
            tracks[track] = len(tracks) + 1
            events.append(
                {
                    "ph": "M",
                    "pid": 1,
                    "tid": tracks[track],
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        return tracks[track]

    for span in tracer.spans:
        track = str(
            span.attributes.get("track") or span.category or "driver"
        )
        thread = tid(track)
        args = _clean(span.attributes)
        args["span_id"] = span.span_id
        args["trace_id"] = span.trace_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.links:
            args["links"] = ",".join(span.links)
        args["status"] = span.status
        end_s = span.end_s
        if end_s is None:
            # Export unfinished spans as zero-duration and flag them;
            # validate() already reports them as structural problems.
            end_s = span.start_s
            args["unfinished"] = True
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": thread,
                "name": span.name,
                "cat": span.category or "span",
                "ts": round(span.start_s * _US, 3),
                "dur": round((end_s - span.start_s) * _US, 3),
                "args": args,
            }
        )
        for at_s, name, attrs in span.events:
            events.append(
                {
                    "ph": "i",
                    "pid": 1,
                    "tid": thread,
                    "name": name,
                    "cat": span.category or "span",
                    "ts": round(at_s * _US, 3),
                    "s": "t",
                    "args": _clean(dict(attrs, span_id=span.span_id)),
                }
            )

    if timeline is not None:
        for record in getattr(timeline, "records", ()):  # TraceRecord
            track = f"timeline:{record.category}"
            events.append(
                {
                    "ph": "i",
                    "pid": 1,
                    "tid": tid(track),
                    "name": record.name,
                    "cat": record.category,
                    "ts": round(record.time * _US, 3),
                    "s": "p",
                    "args": _clean(dict(record.fields)),
                }
            )

    if decision_timeline is not None:
        thread = tid("decisions")
        switches = 0
        for point in getattr(decision_timeline, "points", ()):
            if point.switched:
                switches += 1
            chosen = point.decision.chosen
            events.append(
                {
                    "ph": "C",
                    "pid": 1,
                    "tid": thread,
                    "name": "substrate_decision",
                    "cat": "decision",
                    "ts": round(point.at_s * _US, 3),
                    "args": {
                        "score_usd": chosen.score_usd,
                        "predicted_s": chosen.predicted_s,
                        "workers": chosen.workers,
                        "switches": switches,
                    },
                }
            )

    return events


def chrome_trace_json(
    tracer: Tracer,
    timeline: t.Any | None = None,
    decision_timeline: t.Any | None = None,
) -> str:
    """Serialized Chrome trace (the string Perfetto opens)."""
    payload = {
        "traceEvents": chrome_trace_events(tracer, timeline, decision_timeline),
        "displayTimeUnit": "ms",
        "otherData": {"clock": "sim-seconds", "source": "repro.obs"},
    }
    return json.dumps(payload, indent=None, separators=(",", ":"), sort_keys=False)


def write_chrome_trace(
    path: str,
    tracer: Tracer,
    timeline: t.Any | None = None,
    decision_timeline: t.Any | None = None,
) -> str:
    """Write the Perfetto-loadable trace file; returns the path."""
    text = chrome_trace_json(tracer, timeline, decision_timeline)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return path


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _fmt_labels(key: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in key]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(reg: MetricsRegistry | None = None) -> str:
    """Prometheus text exposition (v0.0.4) of the registry."""
    reg = reg if reg is not None else _default_registry()
    lines: list[str] = []
    for metric in reg.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if metric.kind == "histogram":
            for key, obs in metric.samples():
                ordered = sorted(obs)
                for bound in metric.buckets:
                    cumulative = sum(1 for v in ordered if v <= bound)
                    bound_label = 'le="' + _fmt_value(bound) + '"'
                    lines.append(
                        f"{metric.name}_bucket{_fmt_labels(key, bound_label)} "
                        f"{cumulative}"
                    )
                inf_label = 'le="+Inf"'
                lines.append(
                    f"{metric.name}_bucket{_fmt_labels(key, inf_label)} "
                    f"{len(ordered)}"
                )
                lines.append(
                    f"{metric.name}_sum{_fmt_labels(key)} "
                    f"{_fmt_value(sum(ordered))}"
                )
                lines.append(
                    f"{metric.name}_count{_fmt_labels(key)} {len(ordered)}"
                )
        else:
            for key, value in metric.samples():
                lines.append(
                    f"{metric.name}{_fmt_labels(key)} {_fmt_value(value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus_text(path: str, reg: MetricsRegistry | None = None) -> str:
    text = prometheus_text(reg)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return path
