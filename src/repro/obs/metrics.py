"""Process-wide metrics registry: counters, gauges, histograms.

Backends, drivers and the :class:`~repro.service.exchange_service.ExchangeService`
publish here instead of growing bespoke ``extra`` dicts.  The
:class:`~repro.shuffle.exchange.ExchangeReport` keeps its shape but
becomes a *view* over this registry: every report constructed publishes
its common fields and numeric extras as ``repro_exchange_*`` series.

Naming conventions (documented in the README "Observability" section):

* every series is prefixed ``repro_``;
* units are spelled out in the name (``_seconds``, ``_bytes``, ``_usd``,
  ``_total`` for counters), Prometheus style;
* labels are lowercase snake_case; values are stringified.

Determinism: the registry is pure interpreter-side state — dict and
list mutation, never sim events or RNG — so publishing from inside the
simulation cannot perturb it.
"""

from __future__ import annotations

import re
import typing as t

LabelKey = t.Tuple[t.Tuple[str, str], ...]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str) -> str:
    """Coerce an arbitrary key into a legal Prometheus metric name."""
    name = _NAME_RE.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _label_key(labels: dict[str, str] | None) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count per label set."""

    kind = "counter"
    __slots__ = ("name", "help", "_series")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._series: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def samples(self) -> list[tuple[LabelKey, float]]:
        return sorted(self._series.items())


class Gauge:
    """Last-written value per label set (fills, watermarks, depths)."""

    kind = "gauge"
    __slots__ = ("name", "help", "_series")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._series: dict[LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        self._series[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels) -> None:
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def max(self, value: float, **labels) -> None:
        """Keep the high watermark of ``value`` for this label set."""
        key = _label_key(labels)
        current = self._series.get(key)
        if current is None or value > current:
            self._series[key] = float(value)

    def value(self, **labels) -> float | None:
        return self._series.get(_label_key(labels))

    def samples(self) -> list[tuple[LabelKey, float]]:
        return sorted(self._series.items())


class Histogram:
    """Bucketed distribution with exact quantiles.

    Simulation runs are small enough to keep every observation, so
    :meth:`quantile` is exact (sorted copy on demand) while the
    Prometheus exposition uses the configured cumulative buckets.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "_obs")

    DEFAULT_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0)

    def __init__(self, name: str, help: str = "", buckets: t.Sequence[float] | None = None):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets if buckets is not None else self.DEFAULT_BUCKETS))
        self._obs: dict[LabelKey, list[float]] = {}

    def observe(self, value: float, **labels) -> None:
        self._obs.setdefault(_label_key(labels), []).append(float(value))

    def observations(self, **labels) -> list[float]:
        return list(self._obs.get(_label_key(labels), ()))

    def all_observations(self) -> list[float]:
        merged: list[float] = []
        for obs in self._obs.values():
            merged.extend(obs)
        return merged

    def count(self, **labels) -> int:
        return len(self._obs.get(_label_key(labels), ()))

    def total(self, **labels) -> float:
        return sum(self._obs.get(_label_key(labels), ()))

    def quantile(self, q: float, **labels) -> float | None:
        """Exact q-quantile (nearest-rank) over this label set's samples."""
        obs = self._obs.get(_label_key(labels))
        if not obs:
            return None
        ordered = sorted(obs)
        rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
        return ordered[rank]

    def samples(self) -> list[tuple[LabelKey, list[float]]]:
        return sorted((key, list(obs)) for key, obs in self._obs.items())


Metric = t.Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named collection of metrics; one per process by default.

    ``counter``/``gauge``/``histogram`` are get-or-create: repeat
    registrations with the same name return the existing instrument
    (help text from the first registration wins), so call sites don't
    need module-level metric globals.
    """

    def __init__(self):
        self._metrics: dict[str, Metric] = {}

    # -- get-or-create ------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(name, Gauge, help)

    def histogram(
        self, name: str, help: str = "", buckets: t.Sequence[float] | None = None
    ) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, help, buckets)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def _register(self, name: str, cls: type, help: str) -> t.Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    # -- introspection -------------------------------------------------
    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def metrics(self) -> list[Metric]:
        return [self._metrics[name] for name in self.names()]

    def snapshot(self) -> dict[str, dict[str, t.Any]]:
        """Plain-data view of every series (for SLO checks and tests)."""
        out: dict[str, dict[str, t.Any]] = {}
        for name in self.names():
            metric = self._metrics[name]
            series: dict[str, t.Any] = {}
            for key, value in metric.samples():
                label_text = ",".join(f"{k}={v}" for k, v in key)
                series[label_text] = value
            out[name] = {"kind": metric.kind, "series": series}
        return out

    def clear(self) -> None:
        self._metrics.clear()


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry everything publishes into."""
    return _REGISTRY


def reset_registry() -> MetricsRegistry:
    """Drop every series (tests and fresh CLI runs call this)."""
    _REGISTRY.clear()
    return _REGISTRY


# ----------------------------------------------------------------------
# publication helpers
# ----------------------------------------------------------------------

def publish_exchange_report(report: t.Any) -> None:
    """Publish an ``ExchangeReport``'s fields as ``repro_exchange_*``.

    Called from ``ExchangeReport.__post_init__`` so every construction
    path — ``backend.report(...)``, the online sort's direct build, the
    service's per-job reports — lands in the registry uniformly.  The
    report object itself stays the ergonomic per-sort view; the registry
    holds the cross-run aggregate.
    """
    reg = _REGISTRY
    labels = {"substrate": report.substrate, "mode": report.extra.get("mode", "staged")}
    reg.counter(
        "repro_exchange_sorts_total", "Exchange reports constructed"
    ).inc(1, **labels)
    reg.gauge(
        "repro_exchange_workers", "Workers used by the last sort"
    ).set(report.workers, **labels)
    reg.gauge(
        "repro_exchange_actual_seconds", "Measured exchange duration"
    ).set(report.actual_s, **labels)
    if report.predicted_s is not None:
        reg.gauge(
            "repro_exchange_predicted_seconds", "Planner-predicted duration"
        ).set(report.predicted_s, **labels)
    reg.gauge(
        "repro_exchange_provisioned_usd", "Provisioned substrate cost"
    ).set(report.provisioned_usd, **labels)
    reg.gauge(
        "repro_exchange_overlap_seconds", "Map/reduce overlap (streaming)"
    ).set(report.overlap_s, **labels)
    reg.gauge(
        "repro_exchange_buffer_high_watermark_bytes", "Stream buffer peak"
    ).max(report.buffer_high_watermark_bytes, **labels)
    reg.gauge(
        "repro_exchange_partition_skew", "Max/mean partition size ratio"
    ).set(report.partition_skew, **labels)
    for key, value in report.extra.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        reg.gauge(
            f"repro_exchange_{sanitize_name(str(key))}",
            "Exchange report extra field",
        ).set(float(value), **labels)


def publish_kernel_rates(extras: dict[str, t.Any]) -> None:
    """Publish kernel throughput extras (``*_records_per_s``) as gauges."""
    reg = _REGISTRY
    for key, value in extras.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if key.endswith("_records_per_s"):
            reg.gauge(
                f"repro_kernel_{sanitize_name(key)}",
                "Record-kernel throughput",
            ).set(float(value))
