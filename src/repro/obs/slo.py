"""Declarative SLO checks evaluated from reports and the metrics registry.

Sweeps and benches used to re-implement the paper's acceptance rules
inline — the 2x prediction envelope here, a residual-reservation assert
there, digest comparisons in a third place.  :class:`SloGate` is the one
gate they all assert through: build checks declaratively, then
``gate.assert_ok()`` raises :class:`SloViolation` listing every failed
objective at once.
"""

from __future__ import annotations

import typing as t

from repro.obs.metrics import Histogram, MetricsRegistry, registry as _default_registry


class SloViolation(AssertionError):
    """One or more SLO checks failed; message lists all of them."""


class SloCheck(t.NamedTuple):
    name: str
    ok: bool
    detail: str


class SloGate:
    """Accumulates named pass/fail checks, then asserts them as one.

    The check helpers mirror the paper's acceptance criteria:

    * :meth:`prediction_envelope` — actual within ``factor``x of the
      planner's prediction (the paper's 2x envelope);
    * :meth:`zero` — exactly-zero invariants (residual relay
      reservations, leaked leases);
    * :meth:`p95` — tail-latency bounds over a sample list or a
      registry histogram;
    * :meth:`equal` — byte-parity digest matches across substrates or
      tracing on/off.
    """

    def __init__(self, name: str = "slo", reg: MetricsRegistry | None = None):
        self.name = name
        self.registry = reg if reg is not None else _default_registry()
        self.checks: list[SloCheck] = []

    # -- generic -------------------------------------------------------
    def check(self, name: str, ok: bool, detail: str = "") -> bool:
        self.checks.append(SloCheck(name, bool(ok), detail))
        return bool(ok)

    # -- the paper's objectives -----------------------------------------
    def prediction_envelope(
        self,
        name: str,
        predicted_s: float | None,
        actual_s: float,
        factor: float = 2.0,
    ) -> bool:
        """Actual duration within ``factor``x of the prediction, both ways."""
        if predicted_s is None or predicted_s <= 0:
            return self.check(name, True, "no prediction recorded (vacuous)")
        ratio = actual_s / predicted_s
        ok = (1.0 / factor) <= ratio <= factor
        return self.check(
            name,
            ok,
            f"predicted={predicted_s:.3f}s actual={actual_s:.3f}s "
            f"ratio={ratio:.2f} (allowed {1.0 / factor:.2f}..{factor:.2f})",
        )

    def zero(self, name: str, value: float) -> bool:
        return self.check(name, value == 0, f"expected 0, got {value}")

    def p95(
        self,
        name: str,
        samples: "t.Sequence[float] | str",
        threshold_s: float,
        **labels,
    ) -> bool:
        """p95 of ``samples`` (a list, or a registry histogram name) ≤ bound."""
        if isinstance(samples, str):
            metric = self.registry.get(samples)
            if not isinstance(metric, Histogram):
                return self.check(
                    name, False, f"histogram {samples!r} not in registry"
                )
            values = (
                metric.observations(**labels) if labels else metric.all_observations()
            )
        else:
            values = list(samples)
        if not values:
            return self.check(name, True, "no samples (vacuous)")
        ordered = sorted(values)
        rank = min(len(ordered) - 1, max(0, int(round(0.95 * (len(ordered) - 1)))))
        p95 = ordered[rank]
        return self.check(
            name,
            p95 <= threshold_s,
            f"p95={p95:.4f} threshold={threshold_s:.4f} n={len(ordered)}",
        )

    def equal(self, name: str, *values: t.Any) -> bool:
        distinct = {repr(v) for v in values}
        return self.check(
            name,
            len(distinct) <= 1,
            f"{len(distinct)} distinct values: {sorted(distinct)}"
            if len(distinct) > 1
            else f"all {len(values)} values match",
        )

    # -- verdict ---------------------------------------------------------
    @property
    def passed(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> list[SloCheck]:
        return [check for check in self.checks if not check.ok]

    def describe(self) -> str:
        """Fixed-width pass/fail table of every check."""
        if not self.checks:
            return f"slo gate {self.name}: no checks recorded"
        width = max(len(check.name) for check in self.checks)
        lines = [f"slo gate {self.name}:"]
        for check in self.checks:
            mark = "PASS" if check.ok else "FAIL"
            lines.append(f"  {mark}  {check.name.ljust(width)}  {check.detail}")
        return "\n".join(lines)

    def assert_ok(self) -> None:
        """Raise :class:`SloViolation` listing every failed check."""
        bad = self.failures
        if bad:
            details = "; ".join(
                f"{check.name}: {check.detail}" for check in bad
            )
            raise SloViolation(
                f"slo gate {self.name}: {len(bad)}/{len(self.checks)} "
                f"checks failed — {details}"
            )
