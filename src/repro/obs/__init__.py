"""Unified observability plane: tracing, metrics, exporters, SLO gates.

One coherent surface over what used to be five ad-hoc ones (the sim
:class:`~repro.sim.timeline.Timeline`, the workflow
:class:`~repro.workflows.tracker.JobTracker`, ``ExchangeReport.extra``,
the online sort's :class:`~repro.shuffle.adaptive.DecisionTimeline`,
and :class:`~repro.cloud.billing.CostMeter` tags):

* :mod:`repro.obs.trace` — an attempt-scoped span tracer carried on the
  simulator (``sim.tracer``) and through every
  :class:`~repro.cloud.faas.context.FunctionContext`;
* :mod:`repro.obs.metrics` — the process-wide registry of
  counters/gauges/histograms that backends and the
  :class:`~repro.service.exchange_service.ExchangeService` publish into;
* :mod:`repro.obs.export` — Chrome trace-event JSON (opens in Perfetto)
  and Prometheus text exposition;
* :mod:`repro.obs.slo` — declarative SLO checks evaluated from the
  registry, asserted by sweeps and benches through one gate.

Tracing is **zero-cost-off**: every tracer operation is pure
interpreter-side bookkeeping (stamp ``sim.now``, append to a list) and
never schedules simulation events, yields, or consumes RNG — so chaos,
speculation and cross-substrate parity matrices are byte-identical with
``REPRO_TRACE=1`` and unset.
"""

from repro.obs.metrics import MetricsRegistry, registry, reset_registry
from repro.obs.slo import SloGate, SloViolation
from repro.obs.trace import NOOP_SPAN, Span, TraceError, Tracer

__all__ = [
    "MetricsRegistry",
    "NOOP_SPAN",
    "SloGate",
    "SloViolation",
    "Span",
    "TraceError",
    "Tracer",
    "registry",
    "reset_registry",
]
