"""Attempt-scoped span tracing for the simulated cloud.

A :class:`Tracer` lives on each :class:`~repro.sim.kernel.Simulator`
(``sim.tracer``) the way the legacy :class:`~repro.sim.timeline.Timeline`
does, and is enabled per simulator (``Simulator(spans=True)``) or
globally via ``REPRO_TRACE=1``.  Spans form the run's causal tree:

* the shuffle drivers open one **sort** span per sort with **wave**
  children (sample/map/reduce);
* the FaaS platform opens one **attempt** span per executed activation,
  parented under the wave that submitted it, and ends it *exactly once*
  — in the same ``finally`` that bills the attempt — whatever the
  outcome (ok / timeout / crash / cancelled / error);
* exchange operations (storage PUT/GET, relay PUSH/PULL/MPUSH/MPULL,
  cache SET/GET, rendezvous waits, backpressure stalls, lease commits)
  land as **span events** on the owning attempt's span.

Determinism contract (the reason chaos/speculation/parity matrices are
byte-identical with tracing on and off): tracer calls are pure
interpreter-side bookkeeping.  They read the simulation clock and
append to Python lists; they never create simulation events, never
yield, and never consume RNG.  Span/trace ids come from plain counters.
Wall-clock self-measurement uses ``time.perf_counter`` exactly like
``kernel_report_extras`` — stamped between sim steps, never across a
yield.
"""

from __future__ import annotations

import os
import time
import typing as t


class TraceError(Exception):
    """A span lifecycle rule was violated (double end, event after end)."""


def trace_enabled_from_env() -> bool:
    """Whether ``REPRO_TRACE`` asks for span tracing (``1/true/yes/on``)."""
    return os.environ.get("REPRO_TRACE", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


class _NoopSpan:
    """The disabled tracer's span: every operation is a cheap no-op.

    Call sites hold a span unconditionally (``ctx.span``); hot paths
    that would build kwargs dicts guard on :attr:`recording` first.
    """

    __slots__ = ()
    recording = False
    span_id = ""
    trace_id = ""

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def event(self, name: str, **attrs) -> None:
        return None

    def event_at(self, at_s: float, name: str, **attrs) -> None:
        return None

    def add_link(self, span_id: str) -> None:
        return None

    def end(self, status: str | None = None) -> None:
        return None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    @property
    def ended(self) -> bool:
        return True


#: Shared singleton bound to contexts/operators when tracing is off.
NOOP_SPAN = _NoopSpan()


class Span:
    """One node of the trace tree.

    ``start_s``/``end_s`` are simulation-clock stamps; ``wall_s`` is the
    interpreter-side ``perf_counter`` delta between start and end (real
    seconds the *simulation* spent inside the span — useful for
    overhead work, excluded from exports to keep them deterministic).
    """

    __slots__ = (
        "tracer",
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "category",
        "start_s",
        "end_s",
        "status",
        "attributes",
        "events",
        "links",
        "wall_s",
        "_wall_start",
    )

    recording = True

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        name: str,
        category: str,
        start_s: float,
        attributes: dict[str, t.Any],
    ):
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start_s = start_s
        self.end_s: float | None = None
        self.status = "unset"
        self.attributes = attributes
        self.events: list[tuple[float, str, dict[str, t.Any]]] = []
        self.links: list[str] = []
        self.wall_s = 0.0
        self._wall_start = time.perf_counter()

    # ------------------------------------------------------------------
    @property
    def ended(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float | None:
        if self.end_s is None:
            return None
        return self.end_s - self.start_s

    def set(self, **attrs) -> "Span":
        """Attach/overwrite attributes; chainable."""
        self.attributes.update(attrs)
        return self

    def event(self, name: str, **attrs) -> None:
        """Record a point event at the current simulation time."""
        self.event_at(self.tracer.now(), name, **attrs)

    def event_at(self, at_s: float, name: str, **attrs) -> None:
        """Record a point event at an explicit simulation time."""
        if self.end_s is not None:
            raise TraceError(
                f"event {name!r} on ended span {self.name!r} ({self.span_id})"
            )
        self.events.append((at_s, name, attrs))

    def add_link(self, span_id: str) -> None:
        """Causal link to a sibling span (speculative attempt pairing).

        Links are directed span-id references outside the parent/child
        tree — e.g. a backup attempt linking to the primary it races.
        Self-links and duplicates are dropped.
        """
        if span_id and span_id != self.span_id and span_id not in self.links:
            self.links.append(span_id)

    def end(self, status: str | None = None) -> None:
        """Close the span exactly once.

        ``status`` defaults to the span's ``outcome`` attribute (the
        FaaS platform records the attempt outcome there before the
        closing ``finally`` runs) or ``"ok"``.  Ending twice raises
        :class:`TraceError` — the tracer test suite's core property.
        """
        if self.end_s is not None:
            raise TraceError(
                f"span {self.name!r} ({self.span_id}) ended twice"
            )
        self.wall_s = time.perf_counter() - self._wall_start
        self.end_s = self.tracer.now()
        if status is None:
            status = str(self.attributes.get("outcome", "ok"))
        self.status = status
        self.tracer._on_span_end(self)

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.end_s is None:
            self.end("error" if exc_type is not None else None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"start={self.start_s:.3f}, end={self.end_s})"
        )


class Tracer:
    """Owner of one simulation run's spans.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulation time
        (the simulator passes its own ``now``).
    enabled:
        When false every :meth:`span` call returns the shared
        :data:`NOOP_SPAN` and the tracer allocates nothing.
    """

    def __init__(self, clock: t.Callable[[], float] | None = None, enabled: bool = False):
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.enabled = bool(enabled)
        self.spans: list[Span] = []
        self._open = 0
        self._next_trace = 0
        self._next_span = 0
        #: attempt_id -> live attempt span, so services that only know
        #: the attempt id (the relay's backpressure/lease bookkeeping)
        #: can attach events without holding the context.
        self._attempts: dict[str, Span] = {}

    # ------------------------------------------------------------------
    def now(self) -> float:
        return self._clock()

    def span(
        self,
        name: str,
        category: str = "",
        parent: "Span | _NoopSpan | None" = None,
        track: str | None = None,
        **attrs,
    ) -> "Span | _NoopSpan":
        """Start a span (or return :data:`NOOP_SPAN` when disabled).

        ``parent`` threads the causal tree across interleaved driver
        generators — parenting is explicit rather than ambient because
        simulation processes interleave arbitrarily.  ``track`` names
        the Perfetto lane the span renders on (worker/shard/tenant).
        """
        if not self.enabled:
            return NOOP_SPAN
        if parent is not None and not getattr(parent, "recording", False):
            parent = None
        if parent is None:
            self._next_trace += 1
            trace_id = f"t{self._next_trace:04d}"
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        self._next_span += 1
        if track is not None:
            attrs["track"] = track
        span = Span(
            tracer=self,
            trace_id=trace_id,
            span_id=f"s{self._next_span:06d}",
            parent_id=parent_id,
            name=name,
            category=category,
            start_s=self.now(),
            attributes=attrs,
        )
        self.spans.append(span)
        self._open += 1
        return span

    def _on_span_end(self, span: Span) -> None:
        self._open -= 1

    # ------------------------------------------------------------------
    # attempt registry (services know attempt ids, not contexts)
    # ------------------------------------------------------------------
    def bind_attempt(self, attempt_id: str, span: Span) -> None:
        self._attempts[attempt_id] = span

    def release_attempt(self, attempt_id: str) -> None:
        self._attempts.pop(attempt_id, None)

    def attempt_span(self, attempt_id: str) -> "Span | None":
        return self._attempts.get(attempt_id)

    def attempt_event(self, attempt_id: str | None, name: str, **attrs) -> None:
        """Point event on a live attempt's span, by attempt id.

        No-op when tracing is off, when the attempt is unknown (driver-
        side clients have no attempt), or when its span already ended
        (a commit racing the teardown of an unrelated attempt).
        """
        if not self.enabled or attempt_id is None:
            return
        span = self._attempts.get(attempt_id)
        if span is not None and not span.ended:
            span.events.append((self.now(), name, attrs))

    # ------------------------------------------------------------------
    # introspection (the test suite's well-formedness checks)
    # ------------------------------------------------------------------
    @property
    def open_span_count(self) -> int:
        return self._open

    def open_spans(self) -> list[Span]:
        return [span for span in self.spans if span.end_s is None]

    def validate(self) -> list[str]:
        """Structural problems of the recorded span set (empty = sound).

        Checks: every span ended; parents exist and share the child's
        trace; exactly one root per trace; events within the span's
        sim-time bounds; no span ends before it starts.
        """
        problems: list[str] = []
        by_id = {span.span_id: span for span in self.spans}
        roots: dict[str, list[str]] = {}
        for span in self.spans:
            if span.end_s is None:
                problems.append(f"span {span.span_id} ({span.name}) never ended")
            elif span.end_s < span.start_s:
                problems.append(f"span {span.span_id} ends before it starts")
            if span.parent_id is None:
                roots.setdefault(span.trace_id, []).append(span.span_id)
            else:
                parent = by_id.get(span.parent_id)
                if parent is None:
                    problems.append(
                        f"span {span.span_id} has orphan parent {span.parent_id}"
                    )
                elif parent.trace_id != span.trace_id:
                    problems.append(
                        f"span {span.span_id} crosses traces "
                        f"({span.trace_id} -> {parent.trace_id})"
                    )
            for at_s, name, _attrs in span.events:
                if at_s < span.start_s or (
                    span.end_s is not None and at_s > span.end_s
                ):
                    problems.append(
                        f"event {name!r} at {at_s:.6f} outside span "
                        f"{span.span_id} [{span.start_s:.6f}, {span.end_s}]"
                    )
        for trace_id, trace_roots in roots.items():
            if len(trace_roots) != 1:
                problems.append(
                    f"trace {trace_id} has {len(trace_roots)} roots: {trace_roots}"
                )
        return problems

    def clear(self) -> None:
        self.spans.clear()
        self._attempts.clear()
        self._open = 0
