"""Content-addressed hashing core (CAS).

Every exchange artifact in this repo is byte-deterministic across all
four substrates and both execution modes — an invariant the parity
matrices assert on every PR.  This module turns that invariant into a
primitive the rest of the stack can *spend*: a stable content hash for
raw chunk bytes and for structured metadata, plus the process-wide
``REPRO_CAS`` gate the dedup/lineage/replay features hang off.

It deliberately has **zero** intra-repo imports so the storage, cache
and relay services can all use it without cycles.  The object store's
existing ``compute_etag`` (md5, the S3-compatible ETag) stays the
*transport* checksum on :class:`~repro.cloud.objectstore.service.ObjectMetadata`;
the CAS layer adds sha256 as the *content address* — the two coexist
exactly as they do on real object stores.

Determinism contract: everything here is pure interpreter-side hashing
of real bytes.  No simulation events, no RNG, no clock reads — safe to
call from inside client ops without perturbing timelines.
"""

from __future__ import annotations

import hashlib
import os
import typing as t


def cas_enabled() -> bool:
    """Whether content addressing is on (default **on**).

    ``REPRO_CAS=0/false/no/off`` falls back to the legacy path — no
    dedup, no lineage cache, no run manifests — at byte parity (the
    gate only ever changes *timing and billing*, never artifact bytes).
    """
    return os.environ.get("REPRO_CAS", "").strip().lower() not in (
        "0",
        "false",
        "no",
        "off",
    )


def sha256_hex(data: bytes) -> str:
    """Content address of raw bytes (64 hex chars)."""
    return hashlib.sha256(data).hexdigest()


def stable_serialize(obj: t.Any) -> bytes:
    """Canonical byte encoding of plain nested data.

    Unambiguous by construction — every value is tagged and
    length-prefixed, so ``["ab", "c"]`` and ``["a", "bc"]`` (or a str
    and the identically-spelled bytes) can never serialize to the same
    byte string.  Dict entries are sorted by their encoded key.  The
    repo's serializer (cloudpickle) is *not* hash-stable across runs,
    which is why the CAS layer carries its own encoding.

    Supported types: ``None``, ``bool``, ``int``, ``float``, ``str``,
    ``bytes``, ``list``/``tuple``, ``dict``.  Anything else raises
    ``TypeError`` — silent ``repr`` coercion could smuggle memory
    addresses into a supposedly stable hash.
    """
    out = bytearray()
    _encode(obj, out)
    return bytes(out)


def _encode(obj: t.Any, out: bytearray) -> None:
    if obj is None:
        out += b"n;"
    elif isinstance(obj, bool):
        out += b"b1;" if obj else b"b0;"
    elif isinstance(obj, int):
        body = repr(obj).encode("ascii")
        out += b"i%d:" % len(body) + body
    elif isinstance(obj, float):
        body = repr(obj).encode("ascii")
        out += b"f%d:" % len(body) + body
    elif isinstance(obj, str):
        body = obj.encode("utf-8")
        out += b"s%d:" % len(body) + body
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        body = bytes(obj)
        out += b"y%d:" % len(body) + body
    elif isinstance(obj, (list, tuple)):
        out += b"l%d:" % len(obj)
        for item in obj:
            _encode(item, out)
        out += b";"
    elif isinstance(obj, dict):
        encoded: list[tuple[bytes, t.Any]] = []
        for key, value in obj.items():
            key_out = bytearray()
            _encode(key, key_out)
            encoded.append((bytes(key_out), value))
        encoded.sort(key=lambda pair: pair[0])
        out += b"d%d:" % len(encoded)
        for key_bytes, value in encoded:
            out += key_bytes
            _encode(value, out)
        out += b";"
    else:
        raise TypeError(
            f"stable_serialize cannot encode {type(obj).__name__!r}; "
            "coerce to plain data first"
        )


def content_hash(obj: t.Any) -> str:
    """sha256 of the stable serialization (64 hex chars)."""
    return sha256_hex(stable_serialize(obj))


def output_digest(cloud: t.Any, result: t.Any, *, full: bool = False) -> str:
    """sha256-over-runs digest of a sort's output artifact.

    The one byte-parity fingerprint every sweep and bench compares:
    the sorted runs' real bytes, peeked free of charge in partition
    order.  ``full`` returns all 64 hex chars (the speculation sweep
    compares whole digests); the default is the 16-char prefix the
    sweep tables print.
    """
    digest = hashlib.sha256()
    for run in result.runs:
        digest.update(cloud.store.peek(run.bucket, run.key))
    text = digest.hexdigest()
    return text if full else text[:16]
