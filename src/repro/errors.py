"""Exception hierarchy shared across the ``repro`` packages.

Every subsystem defines its own specific exceptions, but they all derive
from :class:`ReproError` so callers can catch library failures with a
single ``except`` clause.  Simulation-control exceptions (such as
:class:`Interrupted`) intentionally do *not* derive from
:class:`ReproError`: they are control-flow signals, not failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all failures raised by the ``repro`` library."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly or reached a bad state."""


class DeadlockError(SimulationError):
    """``Simulator.run`` ran out of events while processes were still waiting."""


class Interrupted(Exception):
    """Raised inside a process that another process interrupted.

    This deliberately subclasses :class:`Exception` (not
    :class:`ReproError`) because it is a control-flow signal used for
    failure injection and cancellation, not a library failure.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class StorageError(ReproError):
    """Base class for object-storage failures."""


class FaasError(ReproError):
    """Base class for FaaS platform failures."""


class VmError(ReproError):
    """Base class for VM service failures."""


class ExecutorError(ReproError):
    """Base class for function-executor failures."""


class ShuffleError(ReproError):
    """Base class for shuffle-operator failures."""


class WorkflowError(ReproError):
    """Base class for workflow-engine failures."""


class CodecError(ReproError):
    """Base class for METHCOMP codec failures."""


class ConfigError(ReproError):
    """A configuration value or declarative spec is invalid."""
