"""Object-store error types, mirroring S3/COS error codes."""

from __future__ import annotations

from repro.errors import StorageError


class NoSuchBucket(StorageError):
    """The referenced bucket does not exist."""

    def __init__(self, bucket: str):
        super().__init__(f"bucket does not exist: {bucket!r}")
        self.bucket = bucket


class NoSuchKey(StorageError):
    """The referenced object does not exist."""

    def __init__(self, bucket: str, key: str):
        super().__init__(f"object does not exist: {bucket!r}/{key!r}")
        self.bucket = bucket
        self.key = key


class BucketAlreadyExists(StorageError):
    """A bucket with this name already exists."""

    def __init__(self, bucket: str):
        super().__init__(f"bucket already exists: {bucket!r}")
        self.bucket = bucket


class SlowDown(StorageError):
    """The request rate exceeds the service limit (HTTP 503 SlowDown).

    Clients are expected to back off and retry; the storage client in
    :mod:`repro.storage.api` does so automatically.
    """

    def __init__(self, estimated_wait_s: float):
        super().__init__(
            f"request rate exceeded; estimated backlog {estimated_wait_s:.1f}s"
        )
        self.estimated_wait_s = estimated_wait_s


class InternalError(StorageError):
    """A transient service-side failure (HTTP 500 InternalError).

    Real object stores return these under load or during internal
    failovers; clients are expected to retry, and the storage client in
    :mod:`repro.storage.api` does so automatically.  Raised by the
    simulated store's failure injection (``ObjectStore.fault_probability``).
    """

    def __init__(self, operation: str):
        super().__init__(f"transient internal error during {operation}")
        self.operation = operation


class InvalidRange(StorageError):
    """A byte-range request fell outside the object."""

    def __init__(self, bucket: str, key: str, start: int, end: int, size: int):
        super().__init__(
            f"invalid range [{start}, {end}) for {bucket!r}/{key!r} of size {size}"
        )
        self.start = start
        self.end = end
        self.size = size


class MultipartError(StorageError):
    """A multipart upload was used incorrectly."""
