"""Stored-object model for the simulated object store."""

from __future__ import annotations

import dataclasses
import hashlib


@dataclasses.dataclass(frozen=True, slots=True)
class ObjectMetadata:
    """What ``HEAD`` returns: identity and sizes, but no payload.

    ``logical_size`` is the size the performance/billing model uses; it
    differs from ``size`` (the real payload length) when the experiment
    runs scaled-down data (see ``CloudProfile.logical_scale``).
    """

    bucket: str
    key: str
    size: int
    logical_size: float
    etag: str
    created_at: float


@dataclasses.dataclass(slots=True)
class StoredObject:
    """Payload plus metadata, as held by the store."""

    data: bytes
    meta: ObjectMetadata


def compute_etag(data: bytes) -> str:
    """Deterministic content hash used as the object ETag."""
    return hashlib.md5(data).hexdigest()  # noqa: S324 - identity, not security


@dataclasses.dataclass(slots=True)
class MultipartUpload:
    """In-progress multipart upload state."""

    bucket: str
    key: str
    upload_id: str
    parts: dict[int, bytes] = dataclasses.field(default_factory=dict)
    part_logical: dict[int, float] = dataclasses.field(default_factory=dict)
    completed: bool = False
