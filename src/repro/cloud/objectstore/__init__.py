"""Simulated object storage service (IBM COS-like)."""

from repro.cloud.objectstore.blobs import MultipartUpload, ObjectMetadata, StoredObject
from repro.cloud.objectstore.errors import (
    BucketAlreadyExists,
    InvalidRange,
    MultipartError,
    NoSuchBucket,
    NoSuchKey,
    SlowDown,
)
from repro.cloud.objectstore.service import ObjectStore, OpStats

__all__ = [
    "BucketAlreadyExists",
    "InvalidRange",
    "MultipartError",
    "MultipartUpload",
    "NoSuchBucket",
    "NoSuchKey",
    "ObjectMetadata",
    "ObjectStore",
    "OpStats",
    "SlowDown",
    "StoredObject",
]
