"""The simulated object storage service (IBM COS-like).

The model captures the three characteristics the paper's argument rests
on:

1. **limited request throughput** — an account-level token bucket caps
   sustained requests/s ("IBM COS only supports a few thousand
   operations/s"); when the backlog exceeds a threshold the service
   fails requests with :class:`SlowDown`, like the real thing;
2. **large aggregate bandwidth** — all transfers share one max-min
   fair :class:`~repro.sim.links.FairShareLink` whose capacity is far
   above any single connection ("the huge aggregated bandwidth offered
   by object stores");
3. **per-connection bandwidth caps and per-request latency** — each
   GET/PUT pays a first-byte latency and streams at a bounded
   per-connection rate, so few large readers cannot saturate the
   aggregate pipe.

All operations return :class:`~repro.sim.events.SimEvent`s; callers are
simulation processes that ``yield`` them.

Real payload bytes are stored verbatim; ``logical_scale`` only affects
*timing and volume billing*, so scaled-down experiments still move real
data through real code.
"""

from __future__ import annotations

import itertools
import typing as t

from repro.cas import cas_enabled, sha256_hex
from repro.cloud.billing import CostMeter
from repro.cloud.objectstore.blobs import (
    MultipartUpload,
    ObjectMetadata,
    StoredObject,
    compute_etag,
)
from repro.cloud.objectstore.errors import (
    BucketAlreadyExists,
    InternalError,
    InvalidRange,
    MultipartError,
    NoSuchBucket,
    NoSuchKey,
    SlowDown,
)
from repro.cloud.profiles import GB, ObjectStoreProfile
from repro.obs.metrics import registry
from repro.sim import FairShareLink, SimEvent, Simulator, TokenBucket


class OpStats:
    """Operation counters exposed for planners, reports and tests."""

    def __init__(self) -> None:
        self.puts = 0
        self.gets = 0
        self.heads = 0
        self.lists = 0
        self.deletes = 0
        self.slowdowns = 0
        self.internal_errors = 0
        self.bytes_in = 0.0  # logical bytes written
        self.bytes_out = 0.0  # logical bytes read
        self.dedup_ops = 0  # PUTs short-circuited by content dedup
        self.dedup_bytes = 0.0  # logical wire bytes those PUTs skipped

    @property
    def total_requests(self) -> int:
        return self.puts + self.gets + self.heads + self.lists + self.deletes

    def as_dict(self) -> dict[str, float]:
        return {
            "puts": self.puts,
            "gets": self.gets,
            "heads": self.heads,
            "lists": self.lists,
            "deletes": self.deletes,
            "slowdowns": self.slowdowns,
            "internal_errors": self.internal_errors,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "dedup_ops": self.dedup_ops,
            "dedup_bytes": self.dedup_bytes,
        }


class ObjectStore:
    """Simulated object storage with COS-like performance and pricing."""

    def __init__(
        self,
        sim: Simulator,
        profile: ObjectStoreProfile,
        meter: CostMeter,
        logical_scale: float = 1.0,
        name: str = "cos",
    ):
        self.sim = sim
        self.profile = profile
        self.meter = meter
        self.logical_scale = logical_scale
        self.name = name
        self._buckets: dict[str, dict[str, StoredObject]] = {}
        self._ops = TokenBucket(
            sim,
            rate=profile.ops_per_second,
            capacity=profile.ops_burst,
            name=f"{name}.ops",
        )
        self._aggregate = FairShareLink(
            sim, capacity=profile.aggregate_bandwidth, name=f"{name}.aggregate"
        )
        self._rng_read = sim.rng.stream(f"{name}.read_latency")
        self._rng_write = sim.rng.stream(f"{name}.write_latency")
        self._rng_faults = sim.rng.stream(f"{name}.faults")
        #: Probability that a data-plane request fails transiently with
        #: :class:`InternalError` after admission (failure injection for
        #: client-retry tests); 0 by default.
        self.fault_probability = 0.0
        self._uploads: dict[str, MultipartUpload] = {}
        self._upload_ids = itertools.count(1)
        self.stats = OpStats()
        # Content addressing: (bucket, sha256) → last key that stored
        # those bytes, plus an append-only log of dedup-eligible PUTs
        # for run-manifest construction.  Hits are validated by byte
        # equality, so stale or colliding index entries can never
        # silently alias different content.
        self._cas_index: dict[tuple[str, str], str] = {}
        self.cas_log: list[tuple[str, str, float]] = []
        # Storage-volume billing: integral of logical bytes over time.
        self._stored_logical = 0.0
        self._volume_updated_at = sim.now
        self._volume_gb_hours = 0.0

    # ------------------------------------------------------------------
    # buckets
    # ------------------------------------------------------------------
    def create_bucket(self, bucket: str) -> None:
        """Create a bucket (control-plane action: instantaneous, free)."""
        if bucket in self._buckets:
            raise BucketAlreadyExists(bucket)
        self._buckets[bucket] = {}

    def ensure_bucket(self, bucket: str) -> None:
        """Create ``bucket`` if it does not already exist."""
        self._buckets.setdefault(bucket, {})

    def bucket_exists(self, bucket: str) -> bool:
        return bucket in self._buckets

    def _bucket(self, bucket: str) -> dict[str, StoredObject]:
        try:
            return self._buckets[bucket]
        except KeyError:
            raise NoSuchBucket(bucket) from None

    # ------------------------------------------------------------------
    # data-plane operations (each returns a completion SimEvent)
    # ------------------------------------------------------------------
    def put(
        self,
        bucket: str,
        key: str,
        data: bytes,
        logical_size: float | None = None,
        connection_bandwidth: float | None = None,
        dedup: bool = False,
    ) -> SimEvent:
        """Store ``data`` under ``bucket/key``; event → :class:`ObjectMetadata`.

        ``dedup=True`` opts this PUT into content addressing: when
        byte-identical content is already resident in the bucket the
        payload transfer is skipped and the request bills as a cheap
        HEAD-shaped round trip (class B).  The object is still stored
        under ``key`` with full residency semantics either way.
        """
        return self._spawn(
            self._put_op(
                bucket, key, data, logical_size, connection_bandwidth, dedup
            ),
            f"put:{key}",
        )

    def get(
        self, bucket: str, key: str, connection_bandwidth: float | None = None
    ) -> SimEvent:
        """Fetch a whole object; event → ``bytes``."""
        return self._spawn(
            self._get_op(bucket, key, None, connection_bandwidth), f"get:{key}"
        )

    def get_range(
        self,
        bucket: str,
        key: str,
        start: int,
        end: int,
        connection_bandwidth: float | None = None,
    ) -> SimEvent:
        """Fetch bytes ``[start, end)`` of an object; event → ``bytes``."""
        return self._spawn(
            self._get_op(bucket, key, (start, end), connection_bandwidth),
            f"get_range:{key}",
        )

    def head(self, bucket: str, key: str) -> SimEvent:
        """Metadata lookup; event → :class:`ObjectMetadata`."""
        return self._spawn(self._head_op(bucket, key), f"head:{key}")

    def list_keys(self, bucket: str, prefix: str = "") -> SimEvent:
        """List keys with ``prefix``; event → ``list[str]`` (sorted)."""
        return self._spawn(self._list_op(bucket, prefix), f"list:{prefix}")

    def delete(self, bucket: str, key: str) -> SimEvent:
        """Delete an object (idempotent); event → ``None``."""
        return self._spawn(self._delete_op(bucket, key), f"delete:{key}")

    def _spawn(self, generator: t.Generator, name: str) -> SimEvent:
        return self.sim.process(generator, name=f"{self.name}.{name}").completion

    # ------------------------------------------------------------------
    # operation bodies
    # ------------------------------------------------------------------
    def _admit(self, operation: str = "request") -> t.Generator:
        """Pass the request-rate limiter, or fail fast with SlowDown.

        Admitted requests may still fail transiently when failure
        injection is enabled — a failed request *has* consumed a rate
        token and a round trip, like a real 500.
        """
        limit = self.profile.slowdown_after_s
        if limit is not None and self._ops.estimated_wait(1.0) > limit:
            self.stats.slowdowns += 1
            self.sim.timeline.record(self.sim.now, "storage", "slowdown")
            raise SlowDown(self._ops.estimated_wait(1.0))
        yield self._ops.consume(1.0)
        if (
            self.fault_probability > 0.0
            and self._rng_faults.random() < self.fault_probability
        ):
            self.stats.internal_errors += 1
            self.sim.timeline.record(
                self.sim.now, "storage", "internal_error", operation=operation
            )
            raise InternalError(operation)

    def _logical(self, real_bytes: float, logical_size: float | None) -> float:
        if logical_size is not None:
            return logical_size
        return real_bytes * self.logical_scale

    def _flow_cap(self, connection_bandwidth: float | None) -> float:
        cap = self.profile.per_connection_bandwidth
        if connection_bandwidth is not None:
            cap = min(cap, connection_bandwidth)
        return cap

    def _put_op(
        self,
        bucket: str,
        key: str,
        data: bytes,
        logical_size: float | None,
        connection_bandwidth: float | None,
        dedup: bool = False,
    ) -> t.Generator:
        objects = self._bucket(bucket)
        sha: str | None = None
        hit = False
        if dedup and data and cas_enabled():
            sha = sha256_hex(data)
            existing_key = self._cas_index.get((bucket, sha))
            if existing_key is not None:
                existing = objects.get(existing_key)
                # Byte-equality guard: a deleted/overwritten referent or
                # a hash collision degrades to a normal PUT, never an
                # alias to different content.
                hit = existing is not None and existing.data == data
        yield from self._admit("put")
        logical = self._logical(len(data), logical_size)
        if hit:
            # Content already resident: the request is a metadata round
            # trip (read latency, class B) with no payload transfer.
            yield self.sim.timeout(self.profile.read_latency.sample(self._rng_read))
        else:
            yield self.sim.timeout(self.profile.write_latency.sample(self._rng_write))
            if logical > 0:
                yield self._aggregate.transfer(
                    logical, self._flow_cap(connection_bandwidth)
                )
        meta = ObjectMetadata(
            bucket=bucket,
            key=key,
            size=len(data),
            logical_size=logical,
            etag=compute_etag(data),
            created_at=self.sim.now,
        )
        self._accrue_volume()
        previous = objects.get(key)
        if previous is not None:
            self._stored_logical -= previous.meta.logical_size
        objects[key] = StoredObject(bytes(data), meta)
        self._stored_logical += logical
        self.stats.puts += 1
        if hit:
            self.stats.dedup_ops += 1
            self.stats.dedup_bytes += logical
            registry().counter(
                "repro_dedup_bytes_total",
                "Wire bytes saved by content-addressed dedup",
            ).inc(logical, substrate="objectstore")
            self._charge_request("class_b_request", self.profile.class_b_price_usd)
        else:
            self.stats.bytes_in += logical
            self._charge_request("class_a_request", self.profile.class_a_price_usd)
        if sha is not None:
            self._cas_index[(bucket, sha)] = key
            self.cas_log.append((key, sha, logical))
        if hit:
            self.sim.timeline.record(
                self.sim.now,
                "storage",
                "put",
                bucket=bucket,
                key=key,
                logical=logical,
                dedup=True,
            )
        else:
            self.sim.timeline.record(
                self.sim.now, "storage", "put", bucket=bucket, key=key, logical=logical
            )
        return meta

    def _get_op(
        self,
        bucket: str,
        key: str,
        byte_range: tuple[int, int] | None,
        connection_bandwidth: float | None,
    ) -> t.Generator:
        objects = self._bucket(bucket)
        yield from self._admit("get")
        yield self.sim.timeout(self.profile.read_latency.sample(self._rng_read))
        stored = objects.get(key)
        if stored is None:
            raise NoSuchKey(bucket, key)
        if byte_range is None:
            payload = stored.data
        else:
            start, end = byte_range
            if start < 0 or end < start or start > len(stored.data):
                raise InvalidRange(bucket, key, start, end, len(stored.data))
            payload = stored.data[start:end]
        logical = len(payload) * (
            stored.meta.logical_size / stored.meta.size if stored.meta.size else 1.0
        )
        if logical > 0:
            yield self._aggregate.transfer(logical, self._flow_cap(connection_bandwidth))
        self.stats.gets += 1
        self.stats.bytes_out += logical
        self._charge_request("class_b_request", self.profile.class_b_price_usd)
        self.sim.timeline.record(
            self.sim.now, "storage", "get", bucket=bucket, key=key, logical=logical
        )
        return payload

    def _head_op(self, bucket: str, key: str) -> t.Generator:
        objects = self._bucket(bucket)
        yield from self._admit()
        yield self.sim.timeout(self.profile.read_latency.sample(self._rng_read))
        stored = objects.get(key)
        if stored is None:
            raise NoSuchKey(bucket, key)
        self.stats.heads += 1
        self._charge_request("class_b_request", self.profile.class_b_price_usd)
        return stored.meta

    def _list_op(self, bucket: str, prefix: str) -> t.Generator:
        objects = self._bucket(bucket)
        yield from self._admit()
        yield self.sim.timeout(self.profile.read_latency.sample(self._rng_read))
        self.stats.lists += 1
        self._charge_request("class_a_request", self.profile.class_a_price_usd)
        return sorted(key for key in objects if key.startswith(prefix))

    def _delete_op(self, bucket: str, key: str) -> t.Generator:
        objects = self._bucket(bucket)
        yield from self._admit()
        yield self.sim.timeout(self.profile.write_latency.sample(self._rng_write))
        stored = objects.pop(key, None)
        if stored is not None:
            self._accrue_volume()
            self._stored_logical -= stored.meta.logical_size
        self.stats.deletes += 1
        self._charge_request("class_a_request", self.profile.class_a_price_usd)
        return None

    # ------------------------------------------------------------------
    # multipart upload
    # ------------------------------------------------------------------
    def create_multipart_upload(self, bucket: str, key: str) -> SimEvent:
        """Begin a multipart upload; event → ``upload_id`` string."""
        return self._spawn(self._create_multipart_op(bucket, key), f"mpu:{key}")

    def upload_part(
        self,
        upload_id: str,
        part_number: int,
        data: bytes,
        logical_size: float | None = None,
        connection_bandwidth: float | None = None,
    ) -> SimEvent:
        """Upload one part; parts may be sent concurrently; event → ``None``."""
        return self._spawn(
            self._upload_part_op(
                upload_id, part_number, data, logical_size, connection_bandwidth
            ),
            f"part:{upload_id}:{part_number}",
        )

    def complete_multipart_upload(self, upload_id: str) -> SimEvent:
        """Concatenate parts in part-number order; event → metadata."""
        return self._spawn(self._complete_multipart_op(upload_id), f"mpuc:{upload_id}")

    def _create_multipart_op(self, bucket: str, key: str) -> t.Generator:
        self._bucket(bucket)  # existence check
        yield from self._admit()
        yield self.sim.timeout(self.profile.write_latency.sample(self._rng_write))
        upload_id = f"mpu-{next(self._upload_ids)}"
        self._uploads[upload_id] = MultipartUpload(bucket, key, upload_id)
        self._charge_request("class_a_request", self.profile.class_a_price_usd)
        return upload_id

    def _upload_part_op(
        self,
        upload_id: str,
        part_number: int,
        data: bytes,
        logical_size: float | None,
        connection_bandwidth: float | None,
    ) -> t.Generator:
        upload = self._uploads.get(upload_id)
        if upload is None or upload.completed:
            raise MultipartError(f"unknown or completed upload: {upload_id!r}")
        if part_number < 1:
            raise MultipartError(f"part numbers start at 1, got {part_number}")
        yield from self._admit()
        yield self.sim.timeout(self.profile.write_latency.sample(self._rng_write))
        logical = self._logical(len(data), logical_size)
        if logical > 0:
            yield self._aggregate.transfer(logical, self._flow_cap(connection_bandwidth))
        upload.parts[part_number] = bytes(data)
        upload.part_logical[part_number] = logical
        self.stats.puts += 1
        self.stats.bytes_in += logical
        self._charge_request("class_a_request", self.profile.class_a_price_usd)
        return None

    def _complete_multipart_op(self, upload_id: str) -> t.Generator:
        upload = self._uploads.get(upload_id)
        if upload is None or upload.completed:
            raise MultipartError(f"unknown or completed upload: {upload_id!r}")
        if not upload.parts:
            raise MultipartError(f"upload {upload_id!r} has no parts")
        yield from self._admit()
        yield self.sim.timeout(self.profile.write_latency.sample(self._rng_write))
        data = b"".join(upload.parts[number] for number in sorted(upload.parts))
        logical = sum(upload.part_logical.values())
        meta = ObjectMetadata(
            bucket=upload.bucket,
            key=upload.key,
            size=len(data),
            logical_size=logical,
            etag=compute_etag(data),
            created_at=self.sim.now,
        )
        objects = self._bucket(upload.bucket)
        self._accrue_volume()
        previous = objects.get(upload.key)
        if previous is not None:
            self._stored_logical -= previous.meta.logical_size
        objects[upload.key] = StoredObject(data, meta)
        self._stored_logical += logical
        upload.completed = True
        self._charge_request("class_a_request", self.profile.class_a_price_usd)
        return meta

    # ------------------------------------------------------------------
    # billing
    # ------------------------------------------------------------------
    def _charge_request(self, item: str, unit_price: float) -> None:
        self.meter.charge(self.sim.now, "objectstore", item, 1.0, unit_price)

    def _accrue_volume(self) -> None:
        now = self.sim.now
        elapsed_hours = (now - self._volume_updated_at) / 3600.0
        if elapsed_hours > 0:
            self._volume_gb_hours += (self._stored_logical / GB) * elapsed_hours
        self._volume_updated_at = now

    def finalize_billing(self) -> None:
        """Charge accrued storage-volume GB-hours.  Call once, at run end."""
        self._accrue_volume()
        if self._volume_gb_hours > 0:
            self.meter.charge(
                self.sim.now,
                "objectstore",
                "storage_gb_hour",
                self._volume_gb_hours,
                self._volume_gb_hours * self.profile.storage_gb_hour_usd,
            )
            self._volume_gb_hours = 0.0

    # ------------------------------------------------------------------
    # introspection helpers (control-plane, free, instantaneous)
    # ------------------------------------------------------------------
    def object_count(self, bucket: str) -> int:
        return len(self._bucket(bucket))

    def stored_logical_bytes(self) -> float:
        return self._stored_logical

    def peek(self, bucket: str, key: str) -> bytes:
        """Read payload without simulation cost (tests/debugging only)."""
        stored = self._bucket(bucket).get(key)
        if stored is None:
            raise NoSuchKey(bucket, key)
        return stored.data

    def cas_entries(self, prefix: str) -> list[tuple[str, str, float]]:
        """Dedup-eligible PUTs whose key starts with ``prefix``.

        ``(key, sha256, logical)`` in commit order; run-manifest
        builders filter by their sort's output prefix.
        """
        return [entry for entry in self.cas_log if entry[0].startswith(prefix)]
