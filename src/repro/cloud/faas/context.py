"""Execution context handed to serverless function handlers.

Handlers are generator functions with the signature::

    def handler(ctx: FunctionContext, payload):
        data = yield ctx.storage.get("bucket", "key")
        yield ctx.compute(cpu_seconds_for(data))
        yield ctx.storage.put("bucket", "out", result)
        return summary

Everything a handler may legitimately touch goes through the context:
storage (bandwidth-bounded by the instance NIC), modeled compute time
(scaled by the memory-proportional CPU share), sleeps, and the RNG.

The context is also the activation's **cancellation scope**.  Every
activation is one *attempt* (``ctx.attempt_id``); sub-processes a
handler spawns through its clients (relay MPUSH flows, cache requests)
register here via :meth:`track`, and services register reclamation
callbacks via :meth:`on_cancel`.  When the platform kills the
activation — timeout, injected crash, or an explicit
:meth:`~repro.cloud.faas.platform.FaasPlatform.cancel` (a lost
speculative race) — it fires :meth:`cancel_resources`, which interrupts
every tracked sub-process and runs every reclamation callback.  That is
what makes crash-retry and speculation safe on stateful substrates: a
dead attempt's transfers stop draining and its reservations are
reclaimed instead of leaking.
"""

from __future__ import annotations

import typing as t

from repro.cloud.retry import RetryPolicy
from repro.cloud.storageview import BoundStorage
from repro.obs.trace import NOOP_SPAN
from repro.sim import SimEvent, Simulator

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cloud.faas.platform import FaasPlatform
    from repro.sim.process import Process


class FunctionContext:
    """Per-invocation view of the platform for a running handler."""

    def __init__(
        self,
        platform: "FaasPlatform",
        function_name: str,
        memory_mb: int,
        activation_id: str,
    ):
        self._platform = platform
        self.function_name = function_name
        self.memory_mb = memory_mb
        self.activation_id = activation_id
        #: The attempt identity threaded through every stateful service
        #: this activation touches.  Activation ids are globally unique,
        #: so each retry/backup invocation is a distinct attempt.
        self.attempt_id = activation_id
        self.sim: Simulator = platform.sim
        self._cancelled = False
        self._cancel_callbacks: list[t.Callable[[object], None]] = []
        self._commit_callbacks: list[t.Callable[[], None]] = []
        self._tracked: list["Process"] = []
        #: This attempt's span (see :mod:`repro.obs.trace`); the noop
        #: singleton when tracing is off, so clients can record events
        #: unconditionally.
        self.span = NOOP_SPAN
        #: Storage client bounded by the function instance's NIC; retries
        #: transient 5xx-style failures like the real worker SDK does.
        self.storage = BoundStorage(
            platform.store,
            platform.profile.instance_bandwidth,
            retry=RetryPolicy(),
            name=f"{function_name}.{activation_id}.storage",
        )
        #: Fraction of a full vCPU this memory size buys.
        self.cpu_share = min(
            1.0, memory_mb / platform.profile.cpu_full_share_mb
        )
        #: Mirrors ``CloudProfile.logical_scale`` for workload cost models.
        self.logical_scale = platform.logical_scale

    def bind_span(self, span) -> None:
        """Attach this attempt's trace span; also hands it to storage."""
        self.span = span
        self.storage.span = span

    # ------------------------------------------------------------------
    # attempt-scoped cancellation
    # ------------------------------------------------------------------
    @property
    def cancelled(self) -> bool:
        """Whether this activation's resources have been torn down."""
        return self._cancelled

    def track(self, process: "Process") -> "Process":
        """Register a sub-process this activation spawned.

        Tracked processes are interrupted when the activation is killed,
        so an orphaned transfer cannot keep draining after its owner is
        gone.  Returns the process for call-site chaining.
        """
        self._tracked.append(process)
        return process

    def on_cancel(self, callback: t.Callable[[object], None]) -> None:
        """Register a reclamation callback run when the activation dies.

        Callbacks run *after* tracked sub-processes were interrupted (so
        their local cleanup has already released what it could) and
        receive the cancellation cause.  A callback registered after
        cancellation runs immediately.
        """
        if self._cancelled:
            callback("already cancelled")
            return
        self._cancel_callbacks.append(callback)

    def cancel_resources(self, cause: object = None) -> None:
        """Tear down everything this activation registered.  Idempotent.

        Called by the platform on timeout, injected crash, and explicit
        cancellation; never by handlers themselves.
        """
        if self._cancelled:
            return
        self._cancelled = True
        for process in self._tracked:
            if process.interruptible:
                process.interrupt(cause=cause)
        self._tracked.clear()
        self._commit_callbacks.clear()
        callbacks, self._cancel_callbacks = self._cancel_callbacks, []
        for callback in callbacks:
            callback(cause)

    def on_commit(self, callback: t.Callable[[], None]) -> None:
        """Register a callback run when the activation *succeeds*.

        The success-side twin of :meth:`on_cancel`: services use it to
        finalize effects that must only become permanent once the handler
        has returned — e.g. the relay's consume leases, whose destructive
        reads are deferred until commit so a crashed reducer loses
        nothing.  Commit callbacks never run on a cancelled activation.
        """
        self._commit_callbacks.append(callback)

    def commit_resources(self) -> None:
        """Finalize registered effects after handler success.  Idempotent.

        Called by the platform exactly once, when the handler body
        returned without error and the activation won its race against
        timeout/crash/cancel; never by handlers themselves.
        """
        if self._cancelled:
            return
        callbacks, self._commit_callbacks = self._commit_callbacks, []
        for callback in callbacks:
            callback()

    # ------------------------------------------------------------------
    # effects for handlers to yield
    # ------------------------------------------------------------------
    def compute(self, cpu_seconds: float) -> SimEvent:
        """Charge ``cpu_seconds`` of single-core work at this instance's share.

        A handler that needs 2 s of full-core CPU on a half-share
        (1024 MB) instance waits 4 s of virtual time.
        """
        return self.sim.timeout(max(0.0, cpu_seconds) / self.cpu_share)

    def compute_bytes(self, real_bytes: float, throughput_bps: float) -> SimEvent:
        """Charge CPU for processing ``real_bytes`` of *real* data.

        The logical scale is applied here, so workload code can pass real
        buffer lengths and a full-core throughput in bytes/second.
        """
        cpu_seconds = (real_bytes * self.logical_scale) / throughput_bps
        return self.compute(cpu_seconds)

    def sleep(self, seconds: float) -> SimEvent:
        """Plain virtual-time sleep (not CPU-scaled)."""
        return self.sim.timeout(seconds)

    def rng(self, name: str):
        """Named deterministic RNG stream scoped to this function."""
        return self.sim.rng.stream(f"fn:{self.function_name}:{name}")

    def kv(self, cluster_id: str):
        """Cache client for ``cluster_id``, bounded by this instance's NIC.

        Worker payloads carry cluster *ids* (plain strings survive
        pickling); the handler resolves them here.  Raises
        :class:`~repro.errors.FaasError` when the region has no cache
        service attached.
        """
        if self._platform.memstore is None:
            from repro.errors import FaasError

            raise FaasError("this region has no memstore service attached")
        cluster = self._platform.memstore.cluster(cluster_id)
        return cluster.client(
            connection_bandwidth=self._platform.profile.instance_bandwidth,
            owner=self,
        )

    def relay(self, relay_id: str, scope: str | None = None):
        """Partition-relay client for ``relay_id``, bounded by this NIC.

        Worker payloads carry relay *ids* (plain strings survive
        pickling), resolved through the region's VM service — the relay
        is just software on a provisioned VM.  Raises
        :class:`~repro.errors.FaasError` when the region has no VM
        service attached.

        The client is bound to this activation's attempt: its requests
        are attempt-tagged on the relay, its transfer processes are
        tracked here, and when the activation dies the relay reclaims
        the attempt's reservations and fences the attempt id out; when
        the activation *succeeds* the relay finalizes the attempt's
        consume leases.  ``scope`` additionally labels the attempt with
        a tenant/job scope for service-level ``cancel_scope`` fencing.
        """
        if self._platform.vms is None:
            from repro.errors import FaasError

            raise FaasError("this region has no VM service attached")
        relay = self._platform.vms.relay(relay_id)
        self.on_cancel(
            lambda cause, relay=relay: relay.cancel_attempt(self.attempt_id)
        )
        self.on_commit(
            lambda relay=relay: relay.commit_attempt(self.attempt_id)
        )
        return relay.client(
            connection_bandwidth=self._platform.profile.instance_bandwidth,
            attempt_id=self.attempt_id,
            owner=self,
            scope=scope,
        )
