"""Execution context handed to serverless function handlers.

Handlers are generator functions with the signature::

    def handler(ctx: FunctionContext, payload):
        data = yield ctx.storage.get("bucket", "key")
        yield ctx.compute(cpu_seconds_for(data))
        yield ctx.storage.put("bucket", "out", result)
        return summary

Everything a handler may legitimately touch goes through the context:
storage (bandwidth-bounded by the instance NIC), modeled compute time
(scaled by the memory-proportional CPU share), sleeps, and the RNG.
"""

from __future__ import annotations

import typing as t

from repro.cloud.retry import RetryPolicy
from repro.cloud.storageview import BoundStorage
from repro.sim import SimEvent, Simulator

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cloud.faas.platform import FaasPlatform


class FunctionContext:
    """Per-invocation view of the platform for a running handler."""

    def __init__(
        self,
        platform: "FaasPlatform",
        function_name: str,
        memory_mb: int,
        activation_id: str,
    ):
        self._platform = platform
        self.function_name = function_name
        self.memory_mb = memory_mb
        self.activation_id = activation_id
        self.sim: Simulator = platform.sim
        #: Storage client bounded by the function instance's NIC; retries
        #: transient 5xx-style failures like the real worker SDK does.
        self.storage = BoundStorage(
            platform.store,
            platform.profile.instance_bandwidth,
            retry=RetryPolicy(),
            name=f"{function_name}.{activation_id}.storage",
        )
        #: Fraction of a full vCPU this memory size buys.
        self.cpu_share = min(
            1.0, memory_mb / platform.profile.cpu_full_share_mb
        )
        #: Mirrors ``CloudProfile.logical_scale`` for workload cost models.
        self.logical_scale = platform.logical_scale

    # ------------------------------------------------------------------
    # effects for handlers to yield
    # ------------------------------------------------------------------
    def compute(self, cpu_seconds: float) -> SimEvent:
        """Charge ``cpu_seconds`` of single-core work at this instance's share.

        A handler that needs 2 s of full-core CPU on a half-share
        (1024 MB) instance waits 4 s of virtual time.
        """
        return self.sim.timeout(max(0.0, cpu_seconds) / self.cpu_share)

    def compute_bytes(self, real_bytes: float, throughput_bps: float) -> SimEvent:
        """Charge CPU for processing ``real_bytes`` of *real* data.

        The logical scale is applied here, so workload code can pass real
        buffer lengths and a full-core throughput in bytes/second.
        """
        cpu_seconds = (real_bytes * self.logical_scale) / throughput_bps
        return self.compute(cpu_seconds)

    def sleep(self, seconds: float) -> SimEvent:
        """Plain virtual-time sleep (not CPU-scaled)."""
        return self.sim.timeout(seconds)

    def rng(self, name: str):
        """Named deterministic RNG stream scoped to this function."""
        return self.sim.rng.stream(f"fn:{self.function_name}:{name}")

    def kv(self, cluster_id: str):
        """Cache client for ``cluster_id``, bounded by this instance's NIC.

        Worker payloads carry cluster *ids* (plain strings survive
        pickling); the handler resolves them here.  Raises
        :class:`~repro.errors.FaasError` when the region has no cache
        service attached.
        """
        if self._platform.memstore is None:
            from repro.errors import FaasError

            raise FaasError("this region has no memstore service attached")
        cluster = self._platform.memstore.cluster(cluster_id)
        return cluster.client(
            connection_bandwidth=self._platform.profile.instance_bandwidth
        )

    def relay(self, relay_id: str):
        """Partition-relay client for ``relay_id``, bounded by this NIC.

        Worker payloads carry relay *ids* (plain strings survive
        pickling), resolved through the region's VM service — the relay
        is just software on a provisioned VM.  Raises
        :class:`~repro.errors.FaasError` when the region has no VM
        service attached.
        """
        if self._platform.vms is None:
            from repro.errors import FaasError

            raise FaasError("this region has no VM service attached")
        relay = self._platform.vms.relay(relay_id)
        return relay.client(
            connection_bandwidth=self._platform.profile.instance_bandwidth
        )
