"""The simulated serverless functions platform (IBM Cloud Functions-like).

Models the pieces that matter for the paper's end-to-end numbers:

* **cold vs warm starts** — per-function warm container pools with a
  keep-alive window; a burst of N parallel invocations on a cold
  function pays N cold starts (exactly the "startup times" included in
  the paper's latencies);
* **account concurrency** — a region-wide cap on concurrently running
  activations;
* **memory-proportional CPU** — a 1024 MB function gets half the CPU of
  a 2048 MB one, scaling every ``ctx.compute`` charge;
* **GB-second billing** — duration rounded up to the billing
  granularity, times allocated memory;
* **attempt-scoped cancellation** — every activation is one *attempt*
  (its activation id); :meth:`FaasPlatform.cancel` (or an injected
  crash/timeout) kills the body *and* fires the context's cancellation
  scope, interrupting the attempt's sub-processes and reclaiming every
  resource it registered on stateful services.  Billing stops at the
  kill, audited per activation in :attr:`FaasPlatform.billing_log`.

Handlers run as simulation processes and may perform storage I/O through
their :class:`~repro.cloud.faas.context.FunctionContext`.
"""

from __future__ import annotations

import collections
import dataclasses
import itertools
import typing as t

from repro.cloud.billing import CostMeter
from repro.cloud.faas.context import FunctionContext
from repro.cloud.faas.errors import (
    FunctionAlreadyRegistered,
    FunctionCancelled,
    FunctionCrashed,
    FunctionNotFound,
    FunctionTimeout,
    InvalidFunctionConfig,
)
from repro.cloud.objectstore.service import ObjectStore
from repro.cloud.profiles import FaasProfile
from repro.sim import Resource, SimEvent, Simulator

#: Handler signature: generator function taking (ctx, payload).
Handler = t.Callable[[FunctionContext, t.Any], t.Generator]


@dataclasses.dataclass(slots=True)
class FunctionDef:
    """A registered function."""

    name: str
    handler: Handler
    memory_mb: int
    timeout_s: float
    #: Extra billing tags stamped on every activation's gb-second charge
    #: (e.g. ``tenant=...`` for a multi-tenant service's attribution).
    billing_tags: dict[str, str] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass(slots=True)
class ActivationHandle:
    """One launched activation: its completion event plus a cancel lever.

    ``completion`` is exactly what :meth:`FaasPlatform.invoke` returns;
    ``cancel`` asks the platform to kill the activation (the losing side
    of a speculative race, a torn-down job).  Cancelling is idempotent
    and returns whether the activation was still live enough to kill.
    """

    activation_id: str
    completion: SimEvent
    platform: "FaasPlatform"

    def cancel(self, reason: str = "cancelled") -> bool:
        return self.platform.cancel(self.activation_id, reason)

    @property
    def finished(self) -> bool:
        return self.completion.triggered


@dataclasses.dataclass(slots=True)
class BilledActivation:
    """One line of the platform's billing log (tests audit this)."""

    activation_id: str
    function: str
    started_at: float
    billed_s: float
    gb_seconds: float
    outcome: str  # ok | timeout | crash | cancelled | error


class FaasStats:
    """Platform counters for reports and tests."""

    def __init__(self) -> None:
        self.invocations = 0
        self.completions = 0
        self.cold_starts = 0
        self.warm_starts = 0
        self.timeouts = 0
        self.crashes = 0
        self.cancellations = 0
        self.errors = 0
        self.billed_gb_seconds = 0.0

    def as_dict(self) -> dict[str, float]:
        return dict(vars(self))


class FaasPlatform:
    """Control plane + runtime for simulated serverless functions."""

    def __init__(
        self,
        sim: Simulator,
        profile: FaasProfile,
        store: ObjectStore,
        meter: CostMeter,
        logical_scale: float = 1.0,
        name: str = "faas",
        memstore=None,
        vms=None,
    ):
        self.sim = sim
        self.profile = profile
        self.store = store
        self.meter = meter
        self.logical_scale = logical_scale
        self.name = name
        #: Optional cache service for function-side key-value exchange
        #: (set by :class:`~repro.cloud.environment.Cloud`).
        self.memstore = memstore
        #: Optional VM service, used to resolve partition relays for
        #: function-side PUSH/PULL exchange (set by ``Cloud``).
        self.vms = vms
        self._functions: dict[str, FunctionDef] = {}
        self._concurrency = Resource(
            sim, capacity=profile.account_concurrency, name=f"{name}.concurrency"
        )
        # Warm containers per function: deque of expiry timestamps.
        self._warm_pools: dict[str, collections.deque[float]] = {}
        self._activation_ids = itertools.count(1)
        self._rng = sim.rng.stream(f"{name}.lifecycle")
        self._fault_rng = sim.rng.stream(f"{name}.faults")
        #: Probability that an invocation crashes mid-flight (failure
        #: injection for retry tests); 0 by default.
        self.crash_probability = 0.0
        #: When an activation is selected to crash, the kill fires at
        #: uniform(0, crash_latest_s) after execution starts.  Note the
        #: kill only materializes if the body has not finished by then.
        self.crash_latest_s = 5.0
        #: Live activations by id: each maps to its cancel event, which
        #: :meth:`cancel` fires to kill the activation wherever it is.
        self._active: dict[str, SimEvent] = {}
        #: One :class:`BilledActivation` per billed activation, in billing
        #: order — the audit trail for "cancelled attempts are billed
        #: once, and only up to the kill".
        self.billing_log: list[BilledActivation] = []
        self.stats = FaasStats()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        handler: Handler,
        memory_mb: int = 2048,
        timeout_s: float | None = None,
        billing_tags: dict[str, str] | None = None,
    ) -> FunctionDef:
        """Register ``handler`` under ``name`` with the given resources."""
        if name in self._functions:
            raise FunctionAlreadyRegistered(name)
        if memory_mb < 128 or memory_mb > 8192:
            raise InvalidFunctionConfig(
                f"memory_mb must be in [128, 8192], got {memory_mb}"
            )
        definition = FunctionDef(
            name=name,
            handler=handler,
            memory_mb=memory_mb,
            timeout_s=timeout_s if timeout_s is not None else self.profile.default_timeout_s,
            billing_tags=dict(billing_tags or {}),
        )
        self._functions[name] = definition
        self._warm_pools[name] = collections.deque()
        return definition

    def is_registered(self, name: str) -> bool:
        return name in self._functions

    def function(self, name: str) -> FunctionDef:
        try:
            return self._functions[name]
        except KeyError:
            raise FunctionNotFound(name) from None

    # ------------------------------------------------------------------
    # invocation
    # ------------------------------------------------------------------
    def invoke(self, name: str, payload: object = None) -> SimEvent:
        """Asynchronously invoke ``name``; the event carries the result.

        The event fails with the handler's exception, with
        :class:`FunctionTimeout`, with :class:`FunctionCrashed`, or with
        :class:`FunctionCancelled`.
        """
        return self.launch(name, payload).completion

    def launch(
        self,
        name: str,
        payload: object = None,
        parent_span=None,
        span_track: str | None = None,
        link_spans: t.Sequence[object] = (),
    ) -> ActivationHandle:
        """Invoke ``name`` and return a cancellable activation handle.

        Same semantics as :meth:`invoke`, plus the activation id (the
        *attempt id* every stateful service sees) and a ``cancel``
        lever.  Executors use this to fence out and reclaim the losing
        attempts of speculative races.

        ``parent_span``/``span_track`` thread the caller's trace context
        so the attempt's span (see :mod:`repro.obs.trace`) parents under
        the submitting wave and renders on the caller-chosen Perfetto
        track.  ``link_spans`` names sibling attempt spans of the same
        speculative race; the new attempt's span and each sibling link
        to each other so the trace exposes the racing pair.
        """
        definition = self.function(name)
        activation_id = f"act-{next(self._activation_ids)}"
        cancel_event = SimEvent(self.sim, name=f"{activation_id}.cancel")
        self._active[activation_id] = cancel_event
        process = self.sim.process(
            self._activation(
                definition, payload, activation_id, cancel_event,
                parent_span, span_track, link_spans,
            ),
            name=f"{self.name}.{name}.{activation_id}",
        )
        return ActivationHandle(activation_id, process.completion, self)

    def cancel(self, activation_id: str, reason: str = "cancelled") -> bool:
        """Kill a live activation; its event fails with FunctionCancelled.

        Cancellation is attempt-scoped: the activation's body is
        interrupted *and* its context tears down every resource the
        attempt registered (relay reservations are reclaimed, its
        in-flight transfers stop, the attempt id is fenced).  Billing
        stops at the kill.  Returns ``False`` when the activation has
        already finished (or was never launched) — cancelling a done
        attempt is a harmless no-op.
        """
        cancel_event = self._active.get(activation_id)
        if cancel_event is None or cancel_event.triggered:
            return False
        cancel_event.succeed(reason)
        return True

    def _activation(
        self,
        definition: FunctionDef,
        payload: object,
        activation_id: str,
        cancel_event: SimEvent,
        parent_span=None,
        span_track: str | None = None,
        link_spans: t.Sequence[object] = (),
    ) -> t.Generator:
        self.stats.invocations += 1
        span = None
        try:
            yield self.sim.timeout(self.profile.invoke_overhead.sample(self._rng))
            yield self._concurrency.acquire()
        except BaseException:
            self._active.pop(activation_id, None)
            raise
        try:
            if cancel_event.triggered:
                # Cancelled while still queueing: nothing ran, nothing
                # is billed, no container was consumed.
                self.stats.cancellations += 1
                raise FunctionCancelled(definition.name, str(cancel_event.value))
            started_cold = self._acquire_container(definition.name)
            if started_cold:
                self.stats.cold_starts += 1
                startup = self.profile.cold_start.sample(self._rng)
            else:
                self.stats.warm_starts += 1
                startup = self.profile.warm_start.sample(self._rng)
            self.sim.timeline.record(
                self.sim.now,
                "faas",
                "cold_start" if started_cold else "warm_start",
                function=definition.name,
                activation=activation_id,
            )
            yield self.sim.timeout(startup)

            execution_start = self.sim.now
            self.sim.timeline.record(
                self.sim.now,
                "faas",
                "activation_start",
                function=definition.name,
                activation=activation_id,
                cold=started_cold,
            )
            context = FunctionContext(
                self, definition.name, definition.memory_mb, activation_id
            )
            if self.sim.tracer.enabled:
                # One span per executed *attempt*.  Its outcome attribute
                # is set where billing decides it; it ends exactly once,
                # in the outer finally, after commit_resources so lease
                # commits still land on a live span.
                span = self.sim.tracer.span(
                    definition.name,
                    category="attempt",
                    parent=parent_span,
                    track=span_track,
                    activation=activation_id,
                    cold=started_cold,
                )
                self.sim.tracer.bind_attempt(activation_id, span)
                context.bind_span(span)
                for sibling in link_spans:
                    if getattr(sibling, "recording", False):
                        span.add_link(sibling.span_id)
                        sibling.add_link(span.span_id)
            body = self.sim.process(
                definition.handler(context, payload),
                name=f"{definition.name}.body.{activation_id}",
            )
            crash_delay = self._maybe_crash_delay(definition)
            outcome = "ok"
            try:
                result = yield from self._race_body(
                    definition, body, crash_delay, cancel_event, context
                )
            except FunctionTimeout:
                outcome = "timeout"
                raise
            except FunctionCancelled:
                outcome = "cancelled"
                raise
            except FunctionCrashed:
                outcome = "crash"
                raise
            except BaseException:
                # Application errors also tear the attempt down: a failed
                # attempt must not leave reservations behind either.
                outcome = "error"
                context.cancel_resources("handler error")
                raise
            finally:
                self._bill(definition, execution_start, activation_id, outcome)
                self._release_container(definition.name)
                if span is not None:
                    span.set(outcome=outcome)
                self.sim.timeline.record(
                    self.sim.now,
                    "faas",
                    "activation_end",
                    function=definition.name,
                    activation=activation_id,
                    started=execution_start,
                )
            # The handler returned and won its race: finalize deferred
            # effects (e.g. relay consume leases become real deletions).
            context.commit_resources()
            self.stats.completions += 1
            return result
        finally:
            if span is not None:
                # End after commit_resources so commit events land on a
                # live span; exactly once whatever path got us here.
                self.sim.tracer.release_attempt(activation_id)
                span.end()
            self._active.pop(activation_id, None)
            self._concurrency.release()

    def _maybe_crash_delay(self, definition: FunctionDef) -> float | None:
        """If fault injection decides this activation dies, pick when."""
        if self.crash_probability <= 0.0:
            return None
        if self._fault_rng.random() >= self.crash_probability:
            return None
        window = min(self.crash_latest_s, definition.timeout_s)
        return self._fault_rng.uniform(0.0, window)

    def _race_body(
        self,
        definition: FunctionDef,
        body,
        crash_delay: float | None,
        cancel_event: SimEvent,
        context: FunctionContext,
    ) -> t.Generator:
        """Wait for the handler, its timeout, a cancel, or an injected crash.

        Every losing outcome kills the body *and* fires the context's
        cancellation scope, so the attempt's sub-processes stop and its
        registered resources are reclaimed before the caller learns of
        the failure.
        """
        contenders: list[SimEvent] = [body.completion]
        timeout_event = self.sim.timeout(definition.timeout_s)
        contenders.append(timeout_event)
        cancel_index = len(contenders)
        contenders.append(cancel_event)
        if crash_delay is not None:
            contenders.append(self.sim.timeout(crash_delay, value="crash"))
        winner_index, value = yield self.sim.any_of(contenders)
        if winner_index == 0:
            return value
        if winner_index == 1:
            cause = "killed by platform: timeout"
        elif winner_index == cancel_index:
            cause = f"killed by platform: {cancel_event.value}"
        else:
            cause = "killed by platform: crash"
        body.interrupt(cause=cause)
        context.cancel_resources(cause)
        if winner_index == 1:
            self.stats.timeouts += 1
            raise FunctionTimeout(definition.name, definition.timeout_s)
        if winner_index == cancel_index:
            self.stats.cancellations += 1
            raise FunctionCancelled(definition.name, str(cancel_event.value))
        self.stats.crashes += 1
        raise FunctionCrashed(definition.name)

    # ------------------------------------------------------------------
    # containers
    # ------------------------------------------------------------------
    def _acquire_container(self, name: str) -> bool:
        """Take a warm container if one is alive; return True if cold."""
        pool = self._warm_pools[name]
        now = self.sim.now
        while pool:
            expires_at = pool.popleft()
            if expires_at >= now:
                return False  # warm
        return True  # cold

    def _release_container(self, name: str) -> None:
        self._warm_pools[name].append(self.sim.now + self.profile.keep_alive_s)

    def warm_container_count(self, name: str) -> int:
        """Live warm containers for ``name`` (expired ones excluded)."""
        now = self.sim.now
        return sum(1 for expiry in self._warm_pools[name] if expiry >= now)

    # ------------------------------------------------------------------
    # billing
    # ------------------------------------------------------------------
    def _bill(
        self,
        definition: FunctionDef,
        execution_start: float,
        activation_id: str,
        outcome: str,
    ) -> None:
        duration = self.sim.now - execution_start
        granularity = self.profile.billing_granularity_s
        billed_duration = max(
            granularity,
            ((duration + granularity - 1e-12) // granularity) * granularity,
        )
        gb_seconds = billed_duration * (definition.memory_mb / 1024.0)
        self.stats.billed_gb_seconds += gb_seconds
        self.billing_log.append(
            BilledActivation(
                activation_id=activation_id,
                function=definition.name,
                started_at=execution_start,
                billed_s=billed_duration,
                gb_seconds=gb_seconds,
                outcome=outcome,
            )
        )
        self.meter.charge(
            self.sim.now,
            "faas",
            "gb_second",
            gb_seconds,
            gb_seconds * self.profile.gb_second_usd,
            function=definition.name,
            **definition.billing_tags,
        )
