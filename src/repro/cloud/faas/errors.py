"""FaaS platform error types."""

from __future__ import annotations

from repro.errors import FaasError


class FunctionNotFound(FaasError):
    """Invocation of a function name that was never registered."""

    def __init__(self, name: str):
        super().__init__(f"function not registered: {name!r}")
        self.name = name


class FunctionAlreadyRegistered(FaasError):
    """A function name was registered twice."""

    def __init__(self, name: str):
        super().__init__(f"function already registered: {name!r}")
        self.name = name


class FunctionTimeout(FaasError):
    """The function exceeded its configured timeout and was killed."""

    def __init__(self, name: str, timeout_s: float):
        super().__init__(f"function {name!r} timed out after {timeout_s:.1f}s")
        self.name = name
        self.timeout_s = timeout_s


class FunctionCrashed(FaasError):
    """The platform killed the invocation (injected infrastructure failure)."""

    def __init__(self, name: str):
        super().__init__(f"function {name!r} crashed (infrastructure failure)")
        self.name = name


class FunctionCancelled(FaasError):
    """The invocation was cancelled through the platform's cancel API.

    Distinct from :class:`FunctionCrashed` on purpose: a crash is the
    platform's fault and retried by executors, while cancellation is a
    deliberate caller decision (a speculative race was lost, a job was
    torn down) and must never trigger a retry.
    """

    def __init__(self, name: str, reason: str = "cancelled"):
        super().__init__(f"function {name!r} cancelled: {reason}")
        self.name = name
        self.reason = reason


class InvalidFunctionConfig(FaasError):
    """A function was registered with nonsensical resources."""
