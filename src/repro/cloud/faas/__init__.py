"""Simulated serverless functions platform (IBM Cloud Functions-like)."""

from repro.cloud.faas.context import FunctionContext
from repro.cloud.faas.errors import (
    FunctionAlreadyRegistered,
    FunctionCrashed,
    FunctionNotFound,
    FunctionTimeout,
    InvalidFunctionConfig,
)
from repro.cloud.faas.platform import FaasPlatform, FaasStats, FunctionDef, Handler

__all__ = [
    "FaasPlatform",
    "FaasStats",
    "FunctionAlreadyRegistered",
    "FunctionContext",
    "FunctionCrashed",
    "FunctionDef",
    "FunctionNotFound",
    "FunctionTimeout",
    "Handler",
    "InvalidFunctionConfig",
]
