"""Simulated serverless functions platform (IBM Cloud Functions-like)."""

from repro.cloud.faas.context import FunctionContext
from repro.cloud.faas.errors import (
    FunctionAlreadyRegistered,
    FunctionCancelled,
    FunctionCrashed,
    FunctionNotFound,
    FunctionTimeout,
    InvalidFunctionConfig,
)
from repro.cloud.faas.platform import (
    ActivationHandle,
    FaasPlatform,
    FaasStats,
    FunctionDef,
    Handler,
)

__all__ = [
    "ActivationHandle",
    "FaasPlatform",
    "FaasStats",
    "FunctionAlreadyRegistered",
    "FunctionCancelled",
    "FunctionContext",
    "FunctionCrashed",
    "FunctionDef",
    "FunctionNotFound",
    "FunctionTimeout",
    "Handler",
    "InvalidFunctionConfig",
]
