"""Simulated cloud substrate: object storage, FaaS, VMs, billing.

The substitution for the paper's IBM Cloud account (see DESIGN.md §2):
calibrated performance/pricing models over the deterministic simulation
kernel in :mod:`repro.sim`.
"""

from repro.cloud.billing import CostLine, CostMeter
from repro.cloud.environment import Cloud
from repro.cloud.profiles import (
    ALLKEYS_LRU,
    BX2_CATALOG,
    CACHE_R5_CATALOG,
    M5_CATALOG,
    PROVIDER_PROFILES,
    GB,
    KB,
    MB,
    NOEVICTION,
    CacheNodeType,
    CloudProfile,
    FaasProfile,
    InstanceType,
    LatencyModel,
    MemStoreProfile,
    ObjectStoreProfile,
    VmProfile,
    aws_us_east,
    ibm_us_east,
    profile_named,
)
from repro.cloud.retry import RETRYABLE_ERRORS, RetryPolicy
from repro.cloud.storageview import BoundStorage

__all__ = [
    "ALLKEYS_LRU",
    "BX2_CATALOG",
    "BoundStorage",
    "CACHE_R5_CATALOG",
    "CacheNodeType",
    "Cloud",
    "CloudProfile",
    "CostLine",
    "CostMeter",
    "FaasProfile",
    "GB",
    "InstanceType",
    "KB",
    "LatencyModel",
    "M5_CATALOG",
    "MB",
    "MemStoreProfile",
    "NOEVICTION",
    "ObjectStoreProfile",
    "PROVIDER_PROFILES",
    "RETRYABLE_ERRORS",
    "RetryPolicy",
    "VmProfile",
    "aws_us_east",
    "ibm_us_east",
    "profile_named",
]
