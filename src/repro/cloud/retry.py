"""Retry policy for transient object-storage failures.

Lives in the cloud layer (below :mod:`repro.storage`) so that both the
driver-side :class:`~repro.storage.api.Storage` client and the
worker-side :class:`~repro.cloud.storageview.BoundStorage` can share it
without an import cycle.  Real COS/S3 SDKs retry 503 SlowDown and 500
InternalError with exponential backoff and full jitter; so do we.
"""

from __future__ import annotations

import dataclasses

from repro.cloud.objectstore.errors import InternalError, SlowDown

#: Failures a client is expected to back off and retry (5xx-style).
RETRYABLE_ERRORS = (SlowDown, InternalError)


@dataclasses.dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Exponential backoff with full jitter, COS-client style."""

    max_attempts: int = 6
    base_delay_s: float = 0.5
    max_delay_s: float = 20.0
    multiplier: float = 2.0

    def delay(self, attempt: int, rng) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        ceiling = min(
            self.max_delay_s, self.base_delay_s * (self.multiplier ** (attempt - 1))
        )
        return rng.uniform(0.0, ceiling)
